"""Figure 8: BERT per-step compute vs all-reduce breakdown.

Observations to reproduce: per-chip batch 2 at 4096 chips (4-48 at other
scales); the all-reduce share is larger than ResNet-50's at every scale
(334M params vs 25.6M), reaching 27.3% of device step time at 4096 chips.
"""

from __future__ import annotations

from repro.experiments.report import Figure
from repro.experiments.scaling import SCALING_CHIPS, sweep

PAPER_ALLREDUCE_FRACTION_4096 = 0.273


def run(chips: tuple[int, ...] = SCALING_CHIPS) -> Figure:
    s = sweep("bert", "tf", chips)
    fig = Figure("Figure 8: BERT step breakdown (ms/step on device)", "chips")
    breakdown = s.step_breakdown_ms()
    fig.add_series("compute_ms", s.chips, [round(breakdown[c][0], 3) for c in s.chips])
    fig.add_series("allreduce_ms", s.chips, [round(breakdown[c][1], 3) for c in s.chips])
    fig.add_series(
        "batch_per_chip", s.chips, [s.batch_per_chip()[c] for c in s.chips]
    )
    if 4096 in s.runs:
        fig.add_series(
            "allreduce_fraction_at_4096",
            [4096],
            [round(s.allreduce_fraction(4096), 4)],
        )
    return fig

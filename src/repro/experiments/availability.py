"""Goodput vs. failure rate x chip count (availability sweep).

The paper scales synchronous training to 4096 chips; at that size the
fleet-wide failure rate is what decides whether the speedup survives
contact with production.  This driver sweeps a per-chip-per-step failure
probability against pod sizes and reports the modeled goodput of the
checkpoint/restore recovery loop in :mod:`repro.resilience.chaos` — the
accounting-only mode, so the 4096-chip points cost no numerics.

A second, small table runs the *real* elastic harness (actual WUS
training through injected failures, restored onto the survivors) to show
the accounting rows are backed by executable recovery, not just a
timeline formula.

Three control-plane tables ride on top (PR 4):

* :func:`heartbeat_sweep` — MTTD vs. heartbeat interval: replacing the
  oracle detector with a :class:`HeartbeatDetector` makes detection
  latency a *measured* cost, and the sweep shows goodput degrading as
  the heartbeat gets lazier;
* :func:`checkpoint_sweep` — checkpoint interval vs. goodput with a
  non-overlapped write cost, including the Young/Daly
  :class:`RiskAdaptive` row that lands near the sweep's optimum;
* :func:`controlplane_scenario` — the Section 2 failure-domain contrast:
  the same coordinator death kills a single-client job outright
  (nobody watches the watcher) while the multi-client peer ring detects
  it and re-forms, with Table 2-shaped init/re-init columns.

Seeds are fixed: every run of this experiment reproduces the same fault
draws and therefore the same tables.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry as _telemetry
from repro.controlplane import (
    HeartbeatDetector,
    HostGroup,
    JobKilledError,
    MultiClientGroup,
    RiskAdaptive,
    SingleClientCoordinator,
)
from repro.core.trainer import TrainerConfig, make_trainer
from repro.experiments.report import Table
from repro.frameworks.base import GraphProfile
from repro.models.mlp import MLP
from repro.optim.adam import Adam
from repro.resilience.chaos import ChaosConfig, run_chaos
from repro.resilience.faults import FaultPlan

#: Checkpoint payload of the modeled sweep: ~400M params in f32 plus two
#: f64 Adam slots each — a BERT-scale restore transfer.
_STATE_BYTES = int(400e6 * (4 + 2 * 8))

#: Restore path: reading the snapshot back over ~10 GB/s of host network.
_RESTORE_BW = 10e9

_TARGET_STEPS = 200
_CHECKPOINT_INTERVAL = 20
_BASE_STEP_SECONDS = 1.0


def _mesh_for(chips: int) -> tuple[int, int]:
    side = int(np.sqrt(chips))
    if side * side != chips:
        raise ValueError(f"chip count {chips} is not a square")
    return (side, side)


def _postmortem_cell(dumps_before: int) -> str:
    """Time-to-postmortem for one run, or ``-`` when nothing dumped.

    The process flight recorder is attached to every chaos run by default;
    a run that survives its fault plan produces no bundle, while a
    consistency rewind or fleet extermination dumps one and records the
    wall seconds the dump took — the operator's time-to-first-evidence.
    """
    rec = _telemetry.flight_recorder
    if rec.dump_count == dumps_before:
        return "-"
    return f"{rec.last_postmortem_seconds * 1e3:.1f}"


def sweep(
    chip_counts: tuple[int, ...] = (256, 1024, 4096),
    failure_rates: tuple[float, ...] = (0.0, 1e-6, 1e-5, 1e-4),
    seed: int = 2021,
) -> Table:
    """Goodput table over chips x per-chip-per-step failure probability."""
    table = Table(
        "Availability: goodput vs. failure rate and pod size "
        f"({_TARGET_STEPS} steps, checkpoint every {_CHECKPOINT_INTERVAL})",
        ["Chips", "Chip fail rate", "Failures", "Restarts", "Lost steps",
         "MTTR (s)", "Goodput", "Postmortem (ms)"],
    )
    for chips in chip_counts:
        mesh_shape = _mesh_for(chips)
        config = ChaosConfig(
            mesh_shape=mesh_shape,
            target_steps=_TARGET_STEPS,
            checkpoint_interval=_CHECKPOINT_INTERVAL,
            base_step_seconds=_BASE_STEP_SECONDS,
            detection_timeout_s=10.0,
            restore_bandwidth_bytes_per_s=_RESTORE_BW,
        )
        for rate in failure_rates:
            expected = rate * chips * _TARGET_STEPS
            plan = FaultPlan.sample(
                seed + chips,  # same draws for every rate=0-adjacent column
                mesh_shape,
                _TARGET_STEPS,
                expected_chip_failures=expected,
                step_time_s=_BASE_STEP_SECONDS,
            )
            dumps_before = _telemetry.flight_recorder.dump_count
            report = run_chaos(plan, config, state_bytes=_STATE_BYTES)
            # Consume the GoodputAccounting schema shared with the cluster
            # scheduler's JobReport — one accounting contract for both.
            acc = report.accounting_dict()
            table.add_row(
                chips,
                f"{rate:.0e}" if rate else "0",
                report.device_failures,
                int(acc["restarts"]),
                int(acc["lost_steps"]),
                f"{acc['mttr_seconds']:.1f}",
                f"{acc['goodput']:.3f}",
                _postmortem_cell(dumps_before),
            )
    return table


def chaos_demo(seed: int = 7) -> Table:
    """Executable backing for the sweep: real WUS training through faults.

    Trains a small MLP with weight-update sharding on a 2x2 replica mesh
    through a sampled fault plan; every restore reshards the checkpoint
    onto the surviving replicas.  The final column checks determinism:
    the end params are a pure function of the fault plan (and, with no
    failures, bit-identical to a plain uninterrupted run).
    """

    trainer_config = TrainerConfig(
        model=MLP([8, 16, 4]),
        optimizer=Adam(learning_rate=0.01),
        strategy="wus",
        seed=seed,
    )

    def factory(num_replicas: int):
        # The same trainer run_chaos builds internally from trainer_config;
        # the replay check needs its own handle to re-execute from scratch.
        return make_trainer(trainer_config.with_(mesh_shape=(num_replicas, 1)))

    def batch(step: int):
        rng = np.random.default_rng(10_000 + step)
        return rng.standard_normal((12, 8)), rng.integers(0, 4, size=12)

    config = ChaosConfig(
        mesh_shape=(2, 2), target_steps=24, checkpoint_interval=6,
        base_step_seconds=1.0, detection_timeout_s=0.5,
    )
    table = Table(
        "Chaos run: WUS trainer through sampled chip failures (2x2 mesh)",
        ["Expected failures", "Failures", "Restarts", "Lost steps",
         "Survivors", "Goodput", "Deterministic replay"],
    )
    for expected in (0.0, 1.0, 2.0):
        plan = FaultPlan.sample(
            seed, (2, 2), config.target_steps,
            expected_chip_failures=expected,
        )
        report = run_chaos(
            plan, config, trainer_config=trainer_config, batch_fn=batch
        )
        table.add_row(
            f"{expected:.0f}",
            report.device_failures,
            report.restarts,
            report.lost_steps,
            report.survivors,
            f"{report.goodput:.3f}",
            "yes" if _replays_identically(report, plan, config, factory, batch)
            else "NO",
        )
    return table


def _replays_identically(report, plan, config, factory, batch) -> bool:
    """Check the elastic run is a deterministic function of its fault plan.

    With no failures drawn, the reference is a plain uninterrupted run of
    the full mesh — the chaos run must match it bit-for-bit (checkpoints
    must be pure snapshots).  With failures, an independent re-execution
    of the harness must land on exactly the same floats.  (The stronger
    single-failure claim — equality with a clean run on the surviving
    shape resumed from the same checkpoint — is pinned in the tests.)
    """
    if report.device_failures == 0:
        x_size, y_size = config.mesh_shape
        reference = factory(x_size * y_size)
        for step in range(config.target_steps):
            reference.step(*batch(step))
        reference_params = reference.params
    else:
        twin = run_chaos(plan, config, trainer_factory=factory, batch_fn=batch)
        reference_params = twin.final_params
    return all(
        np.array_equal(report.final_params[name], reference_params[name])
        for name in reference_params
    )


def postmortem_demo(seed: int = 7) -> Table:
    """Terminal failure with the flight recorder attached (always-on).

    A seed-deterministic fault plan exterminates the whole 2x2 fleet
    mid-run; the chaos harness raises
    :class:`~repro.resilience.faults.DeviceLostError` and the process
    flight recorder dumps a postmortem bundle on the way out.  The table
    shows what an operator gets and how fast: the bundle's record count,
    how many of those are spans from the preceding steps, and the wall
    time from the fatal raise to a complete bundle.
    """
    from repro.resilience.faults import ChipFailure, DeviceLostError

    trainer_config = TrainerConfig(
        model=MLP([8, 16, 4]),
        optimizer=Adam(learning_rate=0.01),
        strategy="wus",
        seed=seed,
    )

    def batch(step: int):
        rng = np.random.default_rng(20_000 + step)
        return rng.standard_normal((12, 8)), rng.integers(0, 4, size=12)

    config = ChaosConfig(
        mesh_shape=(2, 2), target_steps=24, checkpoint_interval=6,
        base_step_seconds=1.0, detection_timeout_s=0.5,
    )
    kill_step = 12
    plan = FaultPlan(
        seed=seed,
        chip_failures=tuple(
            ChipFailure(device=(x, y), at_step=kill_step)
            for x in range(2) for y in range(2)
        ),
    )
    table = Table(
        "Postmortem: flight-recorder bundle on fleet extermination "
        f"(2x2 mesh, all chips die at step {kill_step})",
        ["Outcome", "Steps before death", "Bundle records", "Spans",
         "Fault events", "Time-to-postmortem (ms)"],
    )
    rec = _telemetry.flight_recorder
    try:
        run_chaos(
            plan, config, trainer_config=trainer_config, batch_fn=batch
        )
        outcome = "survived (unexpected)"
    except DeviceLostError:
        outcome = "DeviceLostError"
    bundle = rec.last_postmortem or {"records": []}
    records = bundle.get("records", [])
    table.add_row(
        outcome,
        kill_step,
        len(records),
        sum(1 for r in records if r["kind"] == "span"),
        sum(1 for r in records if r["kind"] == "fault"),
        f"{rec.last_postmortem_seconds * 1e3:.1f}",
    )
    return table


def _fault_plan_for(chips: int, seed: int, rate: float = 1e-5) -> FaultPlan:
    """The shared, seed-pinned plan the control-plane sweeps run against."""
    mesh_shape = _mesh_for(chips)
    return FaultPlan.sample(
        seed + chips,
        mesh_shape,
        _TARGET_STEPS,
        expected_chip_failures=rate * chips * _TARGET_STEPS,
        step_time_s=_BASE_STEP_SECONDS,
    )


def heartbeat_sweep(chips: int = 1024, seed: int = 2021) -> Table:
    """MTTD vs. heartbeat interval: detection latency priced into goodput.

    The oracle row is PR 3's behavior (a fixed 10 s declaration); the
    heartbeat rows replay the *same* fault plan with measured detection —
    suspicion builds over ``2`` missed beats, so MTTD grows with the
    interval and goodput falls with it.
    """
    mesh_shape = _mesh_for(chips)
    config = ChaosConfig(
        mesh_shape=mesh_shape,
        target_steps=_TARGET_STEPS,
        checkpoint_interval=_CHECKPOINT_INTERVAL,
        base_step_seconds=_BASE_STEP_SECONDS,
        detection_timeout_s=10.0,
        restore_bandwidth_bytes_per_s=_RESTORE_BW,
    )
    plan = _fault_plan_for(chips, seed)
    table = Table(
        f"Control plane: MTTD vs. heartbeat interval ({chips} chips, "
        "suspicion threshold 2)",
        ["Detector", "Interval (s)", "Timeout (s)", "MTTD (s)",
         "Restarts", "Lost steps", "Goodput"],
    )
    oracle = run_chaos(plan, config, state_bytes=_STATE_BYTES)
    table.add_row(
        "oracle", "n/a", "10.0", f"{oracle.mttd_seconds:.2f}",
        oracle.restarts, oracle.lost_steps, f"{oracle.goodput:.3f}",
    )
    for interval in (0.5, 1.0, 2.0, 5.0, 10.0, 30.0):
        detector = HeartbeatDetector(
            interval_s=interval, timeout_s=interval / 2, suspicion_threshold=2
        )
        report = run_chaos(
            plan, config, state_bytes=_STATE_BYTES, detector=detector
        )
        table.add_row(
            "heartbeat", f"{interval:g}", f"{interval / 2:g}",
            f"{report.mttd_seconds:.2f}",
            report.restarts, report.lost_steps, f"{report.goodput:.3f}",
        )
    return table


def checkpoint_sweep(chips: int = 1024, seed: int = 2021) -> Table:
    """Checkpoint interval vs. goodput, with the Young/Daly row.

    A non-overlapped write cost (the restore transfer paid forward) makes
    the trade-off real: checkpoint every few steps and the writes eat
    goodput, checkpoint rarely and every failure rewinds a long way.  The
    risk-adaptive policy derives its interval from the plan's own hazard
    rate and should land near the sweep's optimum.
    """
    mesh_shape = _mesh_for(chips)
    plan = _fault_plan_for(chips, seed)
    write_s = _STATE_BYTES / _RESTORE_BW
    table = Table(
        f"Control plane: checkpoint interval vs. goodput ({chips} chips, "
        f"{write_s:.1f}s non-overlapped write)",
        ["Policy", "Interval", "Checkpoints", "Restarts", "Lost steps",
         "Goodput"],
    )

    def config_with(every_steps: int) -> ChaosConfig:
        return ChaosConfig(
            mesh_shape=mesh_shape,
            target_steps=_TARGET_STEPS,
            checkpoint_interval=every_steps,
            base_step_seconds=_BASE_STEP_SECONDS,
            detection_timeout_s=10.0,
            restore_bandwidth_bytes_per_s=_RESTORE_BW,
            checkpoint_write_seconds=write_s,
        )

    for every in (2, 5, 10, 20, 50, 100):
        report = run_chaos(plan, config_with(every), state_bytes=_STATE_BYTES)
        table.add_row(
            "step-interval", f"{every} steps", report.checkpoints_taken,
            report.restarts, report.lost_steps, f"{report.goodput:.3f}",
        )
    risk = RiskAdaptive.from_plan(
        plan,
        horizon_s=_TARGET_STEPS * _BASE_STEP_SECONDS,
        state_bytes=_STATE_BYTES,
        bandwidth_bytes_per_s=_RESTORE_BW,
    )
    report = run_chaos(
        plan, config_with(_CHECKPOINT_INTERVAL), state_bytes=_STATE_BYTES,
        checkpoint_policy=risk,
    )
    interval = (
        f"{risk.interval_s:.0f} s" if np.isfinite(risk.interval_s) else "inf"
    )
    table.add_row(
        "risk-adaptive (Young/Daly)", interval, report.checkpoints_taken,
        report.restarts, report.lost_steps, f"{report.goodput:.3f}",
    )
    return table


def controlplane_scenario(
    chips: int = 256, chips_per_host: int = 8, death_time_s: float = 5.0
) -> Table:
    """Coordinator death under both Section 2 control planes.

    The same scenario — host 0 dies mid-run — plays out twice: the
    single-client coordinator is an unobserved single point of failure
    (its own heartbeat protocol produces *no* detection, and the job is
    killed), while the multi-client peer ring detects the death from a
    survivor's lease and re-forms at the framework's (cheap) re-init
    cost.  Init columns are the Table 2 shapes: linear-in-workers vs.
    ~constant.
    """
    group = HostGroup(_mesh_for(chips), chips_per_host=chips_per_host)
    detector = HeartbeatDetector(
        interval_s=1.0, timeout_s=0.5, suspicion_threshold=2
    )
    profiles = {
        "tf": GraphProfile("bert", 250.0, 1.38),
        "jax": GraphProfile("bert", 96.0, 0.0),
    }
    table = Table(
        f"Control plane: host 0 dies at t={death_time_s:g}s "
        f"({group.num_hosts} hosts, heartbeat 1s/0.5s, threshold 2)",
        ["Topology", "Hosts", "Init (s)", "Outcome", "Detected by",
         "MTTD (s)", "Re-init (s)"],
    )
    for topology in (
        SingleClientCoordinator(group),
        MultiClientGroup(group),
    ):
        profile = profiles[topology.framework.name]
        detections = detector.simulate(topology, {0: death_time_s})
        try:
            topology.check_host_failure(0)
            outcome = "survivors re-form"
        except JobKilledError:
            outcome = "JOB KILLED (coordinator SPOF)"
        detection = detections[0] if detections else None
        table.add_row(
            type(topology).__name__,
            group.num_hosts,
            f"{topology.init_time(profile):.0f}",
            outcome,
            f"host {detection.by}" if detection else "nobody",
            f"{detection.latency:.2f}" if detection else "n/a",
            f"{topology.reinit_time(group.num_hosts - 1, profile):.0f}"
            if detection else "n/a",
        )
    return table


def run() -> list[Table]:
    return [
        sweep(),
        chaos_demo(),
        postmortem_demo(),
        heartbeat_sweep(),
        checkpoint_sweep(),
        controlplane_scenario(),
    ]

"""Ablation studies for the design choices the paper calls out.

* :func:`wus_ablation` — Section 3.2/4.4: weight-update sharding removes
  the ~18% LAMB update from BERT's step at 512 chips and buys SSD ~10%
  even under model parallelism.
* :func:`allreduce_2d_ablation` — Section 3.3: the 2-D hierarchical
  schedule vs a flat 4096-chip ring.
* :func:`maskrcnn_comm_ablation` — Section 4.5: XLA communication
  optimizations (fused gradient all-reduce, reshard minimization, halo
  barriers) cut MaskRCNN's model-parallel communication overhead from
  ~30% to ~10% of the step.
* :func:`shuffle_quality_ablation` — Section 3.5: shuffle order and buffer
  size vs dataset coverage and run-to-run batch bias (BERT).
* :func:`input_pipeline_ablation` — Section 3.5: compressed vs
  uncompressed host pipelines on a multipod (ResNet-50).
* :func:`dlrm_input_ablation` — Section 3.5/4.6: batch-granularity
  parsing + feature stacking + pre-serialization vs naive hosts.
* :func:`auc_ablation` — Section 4.6: sort-based AUC vs the naive
  pairwise definition (timed at laptop scale, extrapolated to 90M).
"""

from __future__ import annotations

import time

import numpy as np

from repro.comm.allreduce import flat_ring_allreduce, two_phase_allreduce
from repro.comm.cost import reduce_scatter_time
from repro.core.planner import plan_parallelism
from repro.core.step_time import StepTimeModel
from repro.experiments.calibration import CALIBRATIONS, spec_for
from repro.experiments.report import Table
from repro.hardware.topology import multipod, slice_for_chips
from repro.input_pipeline.dlrm_input import DlrmInputConfig, dlrm_input_throughput
from repro.input_pipeline.imbalance import multipod_input_imbalance
from repro.input_pipeline.shuffle import simulate_shuffle_policy
from repro.metrics.auc import auc_naive, auc_sorted, synthetic_pctr
from repro.spmd.modelgraphs import maskrcnn_graph, spatial_seeds
from repro.spmd.partitioner import V06_FEATURES, V07_FEATURES
from repro.spmd.plan import ShardingSpec, make_partitioner


def wus_ablation() -> Table:
    """Step-time impact of weight-update sharding (BERT @512, SSD @4096)."""
    table = Table(
        "Weight-update sharding ablation (Section 3.2)",
        ["Benchmark", "Chips", "WUS", "step ms", "update ms", "update %",
         "speedup"],
    )
    for name, chips in (("bert", 512), ("ssd", 4096)):
        spec, cal = spec_for(name), CALIBRATIONS[name]
        plan = plan_parallelism(spec, chips)
        steps = {}
        for wus in (False, True):
            cfg = plan.config.with_(use_weight_update_sharding=wus)
            b = StepTimeModel(
                spec, cfg,
                mxu_efficiency=cal.mxu_efficiency,
                step_overhead=cal.step_overhead,
            ).breakdown()
            steps[wus] = b
        for wus in (False, True):
            b = steps[wus]
            table.add_row(
                name, chips, "on" if wus else "off",
                round(b.device_time * 1e3, 2),
                round(b.weight_update * 1e3, 2),
                round(b.weight_update / b.device_time * 100, 1),
                round(steps[False].device_time / b.device_time, 3),
            )
    return table


def allreduce_2d_ablation() -> Table:
    """Flat single ring vs the 2-D hierarchical schedule (Section 3.3)."""
    table = Table(
        "Gradient all-reduce schedule ablation on the 4096-chip multipod",
        ["Payload", "bytes", "flat ring ms", "2-D hierarchical ms", "speedup"],
    )
    mesh = multipod(4)
    for label, payload in (
        ("resnet50 fp32 grads", 25.6e6 * 4),
        ("bert bf16 grads", 334e6 * 2),
        ("transformer bf16 grads", 210e6 * 2),
    ):
        flat = flat_ring_allreduce(mesh, payload).total
        hier = two_phase_allreduce(mesh, payload).total
        table.add_row(
            label, payload, round(flat * 1e3, 3), round(hier * 1e3, 3),
            round(flat / hier, 2),
        )
    return table


#: MaskRCNN dense-gradient tensors (conv weights, biases, heads).
_MASKRCNN_NUM_GRAD_TENSORS = 60
#: Activation bytes resharded per pass between the spatially partitioned
#: convolution layout and the ROI/einsum layout (FPN pyramid levels).
_MASKRCNN_RESHARD_BYTES_PER_PASS = 45e6
#: Fused gradient bundles in the v0.7 schedule (XLA fuses most, not all).
_V07_GRAD_BUNDLES = 4


def maskrcnn_comm_ablation(mp_cores: int = 4, num_chips: int = 512) -> Table:
    """Model-parallel communication overhead, v0.6 vs v0.7 XLA (Section 4.5).

    Paper claim: the optimizations (minimized resharding, a single gradient
    all-reduce across model cores and replicas, halo barrier fixes) cut
    communication from ~30% to ~10% of the step.  Components modeled:

    * compute — the calibrated step-time model at this slice/layout;
    * partitioner comm — halo/all-gather ops from the IR graph (v0.6 pays
      doubled barrier/reshard steps);
    * resharding — FPN activations moving between the conv layout and the
      ROI/einsum layout, once per pass (v0.7) or twice (v0.6);
    * gradient summation — one fused hierarchical all-reduce in a few
      bundles (v0.7) vs per-tensor two-stage reductions (v0.6).
    """
    table = Table(
        "MaskRCNN model-parallel communication overhead (v0.6 vs v0.7 XLA)",
        ["XLA", "compute ms", "mp comm ms", "reshard ms", "grad sum ms",
         "comm %"],
    )
    spec = spec_for("maskrcnn")
    cal = CALIBRATIONS["maskrcnn"]
    mesh = slice_for_chips(num_chips)
    plan = plan_parallelism(spec, num_chips)
    cfg = plan.config.with_(mp_cores=mp_cores, spatial_partitioning=True)
    step_model = StepTimeModel(
        spec, cfg, mesh=mesh,
        mxu_efficiency=cal.mxu_efficiency, step_overhead=cal.step_overhead,
    )
    compute = step_model.compute_time()
    grad_payload = spec.gradient_bytes / mp_cores
    for features, label in ((V06_FEATURES, "v0.6"), (V07_FEATURES, "v0.7")):
        graph = maskrcnn_graph()
        partitioner = make_partitioner(
            features, mesh=mesh, mxu_efficiency=cal.mxu_efficiency
        )
        est = partitioner.partition(
            graph,
            ShardingSpec.from_seeds(mp_cores, dict(spatial_seeds(graph, mp_cores))),
        ).cost
        reshard_steps = 1 if features.minimize_reshards else 2
        reshard = (
            reshard_steps * 2.0  # forward + backward
            * _MASKRCNN_RESHARD_BYTES_PER_PASS / mesh.link_bandwidth
        )
        if features.optimized_halo_barriers:
            # One fused all-reduce across model cores and replicas, split
            # into a few bundles for overlap.
            per_bundle = grad_payload / _V07_GRAD_BUNDLES
            grad = _V07_GRAD_BUNDLES * two_phase_allreduce(
                mesh, per_bundle, mp_size=max(1, mp_cores // 2)
            ).total
        else:
            # Per-tensor, two-stage: model-group reduction then replica
            # rings, each tensor paying the full latency chain.
            per_tensor = grad_payload / _MASKRCNN_NUM_GRAD_TENSORS
            group = reduce_scatter_time(
                mp_cores, per_tensor * mp_cores, mesh.link_bandwidth,
                mesh.chip.link_latency, closed=False,
            ) * 2.0
            replica = two_phase_allreduce(mesh, per_tensor).total
            grad = _MASKRCNN_NUM_GRAD_TENSORS * (group + 2.0 * replica)
        comm = est.comm_seconds + reshard + grad
        total = compute + comm
        table.add_row(
            label,
            round(compute * 1e3, 2),
            round(est.comm_seconds * 1e3, 2),
            round(reshard * 1e3, 2),
            round(grad * 1e3, 2),
            round(comm / total * 100, 1),
        )
    return table


def shuffle_quality_ablation() -> Table:
    """BERT shuffle-policy quality (Section 3.5)."""
    table = Table(
        "BERT shuffle quality: policy x buffer size",
        ["Policy", "Buffer", "coverage", "batch bias std"],
    )
    for before in (True, False):
        for buffer_size in (64, 1024):
            rep = simulate_shuffle_policy(
                shuffle_before_repeat=before, buffer_size=buffer_size,
                num_runs=4, hosts_sampled=4, num_batches=24,
            )
            table.add_row(
                rep.policy, buffer_size,
                round(rep.coverage, 4), round(rep.batch_bias_std, 5),
            )
    return table


def input_pipeline_ablation() -> Table:
    """ResNet-50 host pipeline: compressed vs uncompressed (Section 3.5).

    Parameters approximate the 4096-chip run: 128 examples/host/step at a
    ~10.5 ms step; large-JPEG decode throughput makes the compressed
    pipeline marginal on average, so its heavy tail stalls some hosts.
    """
    from repro.hardware.chip import HostSpec

    host = HostSpec(jpeg_decode_rate=50.0e6)
    compressed, uncompressed = multipod_input_imbalance(
        num_hosts=16, batch_per_host=128, device_step_seconds=0.0105,
        steps=30, host=host,
    )
    table = Table(
        "ResNet-50 multipod input pipeline (slowest-host slowdown)",
        ["Pipeline", "max slowdown", "mean slowdown", "stall fraction"],
    )
    for rep in (compressed, uncompressed):
        table.add_row(
            rep.label, round(rep.max_slowdown, 3),
            round(rep.mean_slowdown, 3), round(rep.stall_fraction, 3),
        )
    return table


def dlrm_input_ablation(device_step_seconds: float = 1.4e-3) -> Table:
    """DLRM host input throughput per optimization set (Section 3.5/4.6)."""
    table = Table(
        "DLRM host input pipeline (need >= device rate to not stall)",
        ["Config", "Mexamples/s per host", "feeds device?"],
    )
    batch_per_host = 8192
    need = batch_per_host / device_step_seconds
    configs = [
        DlrmInputConfig(False, False, False),
        DlrmInputConfig(True, False, False),
        DlrmInputConfig(True, True, False),
        DlrmInputConfig(True, True, True),
    ]
    for config in configs:
        rate = dlrm_input_throughput(config, batch_per_host=batch_per_host)
        table.add_row(
            config.label, round(rate / 1e6, 2), "yes" if rate >= need else "no"
        )
    return table


def auc_ablation(n: int = 2_000_000, seed: int = 0) -> Table:
    """Sorted AUC vs naive pairwise AUC (Section 4.6).

    Times the sort-based implementation at ``n`` samples, checks it against
    the naive definition on a subsample, and extrapolates both to the 90M
    eval set (naive is O(n^2): the extrapolation is why the paper needed a
    custom implementation).
    """
    rng = np.random.default_rng(seed)
    scores, labels = synthetic_pctr(rng, n)
    t0 = time.perf_counter()
    fast = auc_sorted(scores, labels)
    sorted_seconds = time.perf_counter() - t0
    m = 2000
    t0 = time.perf_counter()
    slow = auc_naive(scores[:m], labels[:m])
    naive_seconds_small = time.perf_counter() - t0
    check = auc_sorted(scores[:m], labels[:m])
    target = 89_137_319
    sorted_at_target = sorted_seconds * (target / n) * 1.1  # ~n log n
    naive_at_target = naive_seconds_small * (target / m) ** 2
    table = Table(
        "AUC implementations at the DLRM eval size (89.1M samples)",
        ["Implementation", "AUC @ n", "seconds @ n", "extrapolated s @ 89M"],
    )
    table.add_row("sorted (ours)", round(fast, 5), round(sorted_seconds, 3),
                  round(sorted_at_target, 1))
    table.add_row(f"naive pairwise (n={m})", round(slow, 5),
                  round(naive_seconds_small, 3), f"{naive_at_target:.3g}")
    table.add_row("agreement |delta|", round(abs(slow - check), 8), "-", "-")
    return table


def dlrm_eval_accumulation() -> Table:
    """Multi-step on-device eval accumulation (Section 4.6), on the DES."""
    from repro.core.loop import dlrm_eval_accumulation_ablation

    naive, optimized = dlrm_eval_accumulation_ablation()
    table = Table(
        "DLRM eval: per-step host transfer vs on-device accumulation",
        ["Mode", "total ms", "host sync ms", "eval overhead %"],
    )
    for label, result in (("per-step transfer", naive),
                          ("accumulate on device", optimized)):
        table.add_row(
            label,
            round(result.total_seconds * 1e3, 1),
            round(result.host_sync_seconds * 1e3, 1),
            round(result.eval_overhead_fraction * 100, 1),
        )
    return table


def distributed_batchnorm_ablation() -> Table:
    """Distributed batch-norm group size vs statistics error and cost."""
    import numpy as np

    from repro.core.batchnorm import batch_norm_group_cost, distributed_batch_norm

    rng = np.random.default_rng(0)
    shards = [rng.standard_normal((8, 32)) * 2 + 1 for _ in range(16)]
    pop_mean = np.concatenate(shards).mean(axis=0)
    mesh = slice_for_chips(16)
    table = Table(
        "Distributed batch norm: group size vs moment error and comm cost",
        ["Group", "mean |moment error|", "comm us/layer"],
    )
    for group in (1, 2, 4, 8, 16):
        res = distributed_batch_norm(
            shards, np.ones(32), np.zeros(32), group_size=group
        )
        err = float(np.mean([np.abs(m - pop_mean).mean() for m in res.group_mean]))
        cost = batch_norm_group_cost(
            32, group, mesh.link_bandwidth, mesh.chip.link_latency
        )
        table.add_row(group, round(err, 4), round(cost * 1e6, 2))
    return table


def run() -> list[Table]:
    """All ablations, in paper order."""
    return [
        wus_ablation(),
        allreduce_2d_ablation(),
        maskrcnn_comm_ablation(),
        distributed_batchnorm_ablation(),
        shuffle_quality_ablation(),
        input_pipeline_ablation(),
        dlrm_input_ablation(),
        dlrm_eval_accumulation(),
        auc_ablation(n=500_000),
    ]

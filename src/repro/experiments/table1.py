"""Table 1: end-to-end MLPerf v0.7 times on the TPU-v3 multipod.

Paper values (minutes): ResNet-50 0.48/0.47 (TF/JAX) @4096, BERT 0.39/0.4
@4096, SSD 0.46 @4096 and 0.623/0.55 @2048, Transformer 0.32/0.26 @4096,
MaskRCNN 8.1 @512, DLRM 2.4 @256; speedups over the v0.6 submissions of
2.67 / 2.63 / 1.94 / 2.65 / 4.4 for the models that existed then.
"""

from __future__ import annotations

from repro.core.planner import plan_parallelism
from repro.experiments.calibration import CALIBRATIONS, end_to_end_model, spec_for
from repro.experiments.report import Table

#: The paper's Table 1 configurations: (benchmark, chips, has_jax_result).
TABLE1_ROWS: tuple[tuple[str, int, bool], ...] = (
    ("resnet50", 4096, True),
    ("bert", 4096, True),
    ("ssd", 4096, False),
    ("ssd", 2048, True),
    ("transformer", 4096, True),
    ("maskrcnn", 512, False),
    ("dlrm", 256, False),
)

#: Paper values for side-by-side comparison in the report.
PAPER_TF_MINUTES = {
    ("resnet50", 4096): 0.48,
    ("bert", 4096): 0.39,
    ("ssd", 4096): 0.46,
    ("ssd", 2048): 0.623,
    ("transformer", 4096): 0.32,
    ("maskrcnn", 512): 8.1,
    ("dlrm", 256): 2.4,
}
PAPER_JAX_MINUTES = {
    ("resnet50", 4096): 0.47,
    ("bert", 4096): 0.4,
    ("ssd", 2048): 0.55,
    ("transformer", 4096): 0.26,
}
PAPER_V06_SPEEDUP = {
    ("resnet50", 4096): 2.67,
    ("ssd", 4096): 2.63,
    ("ssd", 2048): 1.94,
    ("transformer", 4096): 2.65,
    ("maskrcnn", 512): 4.4,
}


def run() -> Table:
    """Regenerate Table 1 with the calibrated models."""
    table = Table(
        "Table 1: end-to-end time, TPU-v3 multipod (modeled vs paper)",
        [
            "Benchmark", "Chips", "TF min", "paper TF", "JAX min", "paper JAX",
            "v0.6 speedup", "paper speedup",
        ],
    )
    for name, chips, has_jax in TABLE1_ROWS:
        plan = plan_parallelism(spec_for(name), chips)
        tf_run = end_to_end_model(name, "tf").run(plan.config)
        jax_run = end_to_end_model(name, "jax").run(plan.config)
        cal = CALIBRATIONS[name]
        if cal.v06_minutes is not None:
            speedup = cal.v06_minutes / tf_run.total_minutes
            paper_speedup = PAPER_V06_SPEEDUP.get((name, chips), "N/A")
        else:
            speedup = "N/A"
            paper_speedup = "N/A"
        table.add_row(
            name,
            chips,
            round(tf_run.total_minutes, 3),
            PAPER_TF_MINUTES[(name, chips)],
            round(jax_run.total_minutes, 3) if has_jax else "N/A",
            PAPER_JAX_MINUTES.get((name, chips), "N/A"),
            round(speedup, 2) if isinstance(speedup, float) else speedup,
            paper_speedup,
        )
    return table

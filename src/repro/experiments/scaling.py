"""Shared machinery for the scaling figures (5-8): sweeps over chip counts."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.end_to_end import EndToEndResult
from repro.core.planner import plan_parallelism
from repro.experiments.calibration import end_to_end_model, spec_for

#: Chip counts of the paper's scaling studies.
SCALING_CHIPS: tuple[int, ...] = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


@dataclass(frozen=True)
class ScalingSweep:
    """End-to-end runs of one benchmark across slice sizes."""

    benchmark: str
    runs: dict[int, EndToEndResult]

    @property
    def chips(self) -> list[int]:
        return sorted(self.runs)

    def end_to_end_speedup(self, base_chips: int = 16) -> dict[int, float]:
        """Total-time speedup relative to the smallest slice (Figures 5/7)."""
        base = self.runs[base_chips].total_seconds
        return {c: base / self.runs[c].total_seconds for c in self.chips}

    def throughput_speedup(self, base_chips: int = 16) -> dict[int, float]:
        """Examples/second speedup (the near-ideal curve of Figure 5)."""
        base = self.runs[base_chips].throughput_examples_per_second
        return {
            c: self.runs[c].throughput_examples_per_second / base
            for c in self.chips
        }

    def step_breakdown_ms(self) -> dict[int, tuple[float, float]]:
        """(compute+other, allreduce) device milliseconds (Figures 6/8)."""
        out = {}
        for c in self.chips:
            step = self.runs[c].step
            other = step.device_time - step.allreduce
            out[c] = (other * 1e3, step.allreduce * 1e3)
        return out

    def allreduce_fraction(self, chips: int) -> float:
        return self.runs[chips].step.allreduce_fraction

    def batch_per_chip(self) -> dict[int, float]:
        return {
            c: self.runs[c].config.global_batch / c for c in self.chips
        }


def sweep(benchmark: str, framework: str = "tf",
          chips: tuple[int, ...] = SCALING_CHIPS) -> ScalingSweep:
    """Run the calibrated end-to-end model across slice sizes."""
    spec = spec_for(benchmark)
    model = end_to_end_model(benchmark, framework)
    runs = {}
    for c in chips:
        plan = plan_parallelism(spec, c)
        runs[c] = model.run(plan.config)
    return ScalingSweep(benchmark=benchmark, runs=runs)

"""Multi-tenant cluster scheduling: contention, elasticity, offered load.

The paper's pods are shared infrastructure — MLPerf-0.6 carved one
Multipod into per-workload rectangular slices.  This driver exercises
:mod:`repro.cluster` three ways:

* :func:`contention_demo` — real-numerics priority preemption on a pod
  with room for one job: the high-priority arrival evicts the
  low-priority tenant through the grace-window checkpoint path (zero
  lost steps), the victim retries admission on the shared
  :class:`~repro.resilience.faults.RetryPolicy` backoff, and every
  tenant's final parameters are bit-identical to a solo replay of its
  recorded timeline;
* :func:`elastic_demo` — a chip-death wave shrinks a running tenant onto
  the survivors, healing regrows it in place, and the numerics again
  replay bit-for-bit;
* :func:`load_sweep` — accounting-only offered-load sweep on a 16x16 pod:
  goodput, Jain fairness, SLO attainment, and utilization as tenant
  count climbs past capacity, with admission rejections appearing only
  under heavy overload.

Everything is pinned to fixed seeds; each run reproduces the same tables.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import (
    ClusterConfig,
    ClusterScheduler,
    JobSpec,
    solo_replay,
)
from repro.core.trainer import TrainerConfig
from repro.experiments.report import Table
from repro.models.mlp import MLP
from repro.optim.adam import Adam
from repro.resilience.faults import ChipFailure, FaultPlan

#: Accounting-mode tenants restore ~3 GB of state over 10 GB/s.
_STATE_BYTES = int(3e9)
_RESTORE_BW = 10e9


def _trainer_config() -> TrainerConfig:
    return TrainerConfig(
        model=MLP([8, 16, 4]), optimizer=Adam(learning_rate=0.01),
        strategy="wus",
    )


def _batch_fn_factory(job_seed: int):
    """12-sample global batch: divisible by every survivor count of 2x2."""

    def batch(step: int):
        rng = np.random.default_rng((job_seed, step))
        return rng.standard_normal((12, 8)), rng.integers(0, 4, size=12)

    return batch


def _replay_cell(spec: JobSpec, report, seed: int) -> str:
    replay = solo_replay(spec, report, seed)
    if replay is None or report.final_params is None:
        return "n/a"
    identical = all(
        np.array_equal(report.final_params[k], replay[k]) for k in replay
    )
    return "yes" if identical else "NO"


def contention_demo(seed: int = 2021) -> Table:
    """Priority preemption with zero lost steps, on real numerics."""
    trainer_config = _trainer_config()
    specs = [
        JobSpec(
            name="tenant-low", slice_shape=(2, 2), target_steps=12,
            priority=0, checkpoint_interval=4,
            trainer_config=trainer_config,
            batch_fn_factory=_batch_fn_factory,
        ),
        JobSpec(
            name="tenant-high", slice_shape=(2, 2), target_steps=8,
            priority=1, arrival_tick=5, checkpoint_interval=4,
            trainer_config=trainer_config,
            batch_fn_factory=_batch_fn_factory,
        ),
    ]
    config = ClusterConfig(mesh_shape=(2, 2), chips_per_host=2, seed=seed)
    result = ClusterScheduler(specs, config).run()
    table = Table(
        "Cluster contention: strict-priority preemption on a one-slice pod "
        "(2x2 chips, grace-window saves)",
        ["Tenant", "Priority", "State", "Steps", "Lost steps", "Preempted",
         "Retries", "Goodput", "Solo replay identical"],
    )
    for spec in specs:
        report = result.jobs[spec.name]
        table.add_row(
            spec.name, spec.priority, report.state, report.steps_executed,
            report.lost_steps, report.preemptions, report.admission_retries,
            f"{report.goodput:.3f}", _replay_cell(spec, report, seed),
        )
    return table


def elastic_demo(seed: int = 2021) -> Table:
    """Chip-death wave: shrink onto survivors, regrow on heal, replay bit-for-bit.

    One 2x2 tenant trains through two chip deaths at step 6 (announced
    via nothing — the oracle detector prices the detection latency), runs
    degraded on the 2 survivors, and regrows to the full slice once the
    chips heal 8 s later.  A healthy twin tenant on the same pod is
    untouched — its goodput stays 1.0 and its numerics match a solo run.
    """
    trainer_config = _trainer_config()
    specs = [
        JobSpec(
            name="wave-victim", slice_shape=(2, 2), target_steps=16,
            min_chips=2, checkpoint_interval=4,
            trainer_config=trainer_config,
            batch_fn_factory=_batch_fn_factory,
        ),
        JobSpec(
            name="bystander", slice_shape=(2, 2), target_steps=16,
            min_chips=2, checkpoint_interval=4,
            trainer_config=trainer_config,
            batch_fn_factory=_batch_fn_factory,
        ),
    ]
    # A 4x2 pod: admission is name-ordered, so "bystander" lands on columns
    # 0-1 and "wave-victim" on 2-3.  The wave kills two of the victim's
    # chips at tick 6; they heal after 8 s and the victim regrows in place
    # at a checkpoint boundary.
    plan = FaultPlan(
        seed=seed,
        chip_failures=(
            ChipFailure(device=(2, 0), at_step=6),
            ChipFailure(device=(2, 1), at_step=6),
        ),
    )
    config = ClusterConfig(
        mesh_shape=(4, 2), chips_per_host=2, heal_after_s=8.0, seed=seed,
    )
    result = ClusterScheduler(specs, config, plan=plan).run()
    table = Table(
        "Cluster elasticity: chip-death wave with shrink, heal, and regrow "
        "(4x2 pod, 2 chips die at tick 6, heal after 8 s)",
        ["Tenant", "State", "Steps", "Lost steps", "Shrinks", "Regrows",
         "Final replicas", "Goodput", "Solo replay identical"],
    )
    for spec in specs:
        report = result.jobs[spec.name]
        table.add_row(
            spec.name, report.state, report.steps_executed,
            report.lost_steps, report.shrinks, report.regrows,
            report.replicas, f"{report.goodput:.3f}",
            _replay_cell(spec, report, seed),
        )
    return table


def load_sweep(
    tenant_counts: tuple[int, ...] = (4, 8, 16, 32),
    seed: int = 2021,
) -> Table:
    """Goodput/fairness/SLO vs. offered load, accounting-only on a 16x16 pod.

    Each tenant wants a 4x4 slice (16 fit exactly); arrivals stagger two
    ticks apart, priorities cycle 0/1/2.  Below capacity everyone runs
    immediately; past it, admission backoff queues the overflow behind
    completions and, at heavy overload, the retry budget rejects the
    tail.  Fairness is Jain's index over per-tenant goodput.
    """
    table = Table(
        "Cluster offered load: 16x16 pod, 4x4 slices, staggered arrivals "
        "(accounting mode, 60-step jobs, SLO: goodput >= 0.5)",
        ["Tenants", "Admitted", "Completed", "Rejected", "Preemptions",
         "Retries", "Mean goodput", "Fairness (Jain)", "SLO attained",
         "Utilization"],
    )
    for tenants in tenant_counts:
        specs = [
            JobSpec(
                name=f"tenant-{i:02d}", slice_shape=(4, 4), target_steps=60,
                priority=i % 3, arrival_tick=2 * i, checkpoint_interval=10,
                state_bytes=_STATE_BYTES, slo_goodput=0.5,
            )
            for i in range(tenants)
        ]
        config = ClusterConfig(
            mesh_shape=(16, 16),
            restore_bandwidth_bytes_per_s=_RESTORE_BW,
            max_ticks=2_000,
            seed=seed,
        )
        result = ClusterScheduler(specs, config).run()
        admitted = sum(
            1 for j in result.jobs.values() if j.admissions > 0
        )
        retries = sum(j.admission_retries for j in result.jobs.values())
        table.add_row(
            tenants, admitted, result.completed, result.rejected,
            result.preemptions, retries,
            f"{result.mean_goodput:.3f}", f"{result.fairness:.3f}",
            f"{result.slo_attainment:.2f}", f"{result.utilization:.3f}",
        )
    return table


def run() -> list[Table]:
    return [contention_demo(), elastic_demo(), load_sweep()]

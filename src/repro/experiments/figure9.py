"""Figure 9: speedup via model parallelism (SSD, MaskRCNN, Transformer).

Speedups over 1 core for 2/4/8-core model-parallel tiles, computed by
partitioning each model's IR graph with the SPMD partitioner and costing
the result.  The paper's anchor: Transformer reaches ~2.3x on 4 cores;
SSD's curve saturates earlier than MaskRCNN's (300x300 images leave less
spatial work per tile than 800x1333).  A v0.6-features series shows the
gain from the XLA work of Section 4.5.
"""

from __future__ import annotations

import functools

from repro.experiments.report import Figure
from repro.spmd.estimator import model_parallel_speedup
from repro.spmd.modelgraphs import (
    maskrcnn_graph,
    spatial_seeds,
    ssd_graph,
    transformer_block_graph,
    transformer_seeds,
)
from repro.spmd.partitioner import V06_FEATURES, V07_FEATURES

PAPER_TRANSFORMER_SPEEDUP_4CORES = 2.3

#: (label, graph builder, seed fn, core counts shown in the paper).
MODELS = (
    ("ssd", ssd_graph, spatial_seeds, (1, 2, 4, 8)),
    ("maskrcnn", maskrcnn_graph, spatial_seeds, (1, 2, 4, 8)),
    (
        "transformer",
        functools.partial(transformer_block_graph, seq=27),
        transformer_seeds,
        (1, 2, 4),
    ),
)


def run() -> Figure:
    fig = Figure(
        "Figure 9: model-parallelism speedup over 1 core", "cores"
    )
    for label, builder, seeds, cores in MODELS:
        v07 = model_parallel_speedup(builder, seeds, list(cores),
                                     features=V07_FEATURES)
        fig.add_series(
            f"{label}_v0.7", list(cores), [round(v07[k], 2) for k in cores]
        )
        v06 = model_parallel_speedup(builder, seeds, list(cores),
                                     features=V06_FEATURES)
        fig.add_series(
            f"{label}_v0.6", list(cores), [round(v06[k], 2) for k in cores]
        )
    return fig

"""Frontier: searched vs hand-annotated sharding per model x feature set.

For each model graph and model-tile size, compares the step time of

* the all-replicated baseline (no model parallelism inside the tile),
* the paper's hand-written annotations (Section 3.1 / 4.3), and
* the best plan the automatic partitioner search finds,

under both the v0.6 and v0.7 feature sets.  The claim being reproduced:
the search *matches or beats* the hand annotations everywhere — the
mechanical GSPMD-style enumeration recovers (and sometimes improves on)
what the paper's authors derived by hand.  Small executable graphs also
report a bit-exactness verdict for the winning plan.
"""

from __future__ import annotations

import functools

from repro.experiments.report import Table
from repro.spmd import (
    SearchConfig,
    ShardingSpec,
    make_partitioner,
    search_partitioning,
)
from repro.spmd.modelgraphs import (
    resnet_block_graph,
    spatial_seeds,
    ssd_graph,
    transformer_block_graph,
    transformer_seeds,
)

#: (label, graph builder, hand seed fn, tile sizes, bit-exact validation).
MODELS = (
    ("ssd", ssd_graph, spatial_seeds, (2, 4, 8), False),
    (
        "transformer",
        functools.partial(transformer_block_graph, seq=27),
        transformer_seeds,
        (2, 4),
        False,
    ),
    ("resnet_block", resnet_block_graph, spatial_seeds, (2, 4), True),
)


def run(seed: int = 0) -> Table:
    table = Table(
        "Partitioner search frontier: searched vs hand-annotated sharding",
        [
            "model", "features", "cores",
            "replicated_ms", "hand_ms", "searched_ms",
            "speedup_vs_hand", "bit_exact",
        ],
    )
    for label, builder, hand_fn, tile_sizes, validate in MODELS:
        for features in ("v06", "v07"):
            partitioner = make_partitioner(features)
            for k in tile_sizes:
                graph = builder()
                hand = partitioner.partition(
                    graph, ShardingSpec.from_seeds(k, dict(hand_fn(graph, k)))
                )
                result = search_partitioning(
                    graph,
                    SearchConfig(
                        num_shards=k, seed=seed,
                        seed_nodes="all" if validate else "handles",
                        validate=validate,
                    ),
                    partitioner,
                )
                if validate:
                    verdict = (
                        "yes" if result.validations and result.validations[0].ok
                        else "NO"
                    )
                else:
                    verdict = "n/a"
                table.add_row(
                    label,
                    features,
                    k,
                    round(result.baseline.total_seconds * 1e3, 4),
                    round(hand.total_seconds * 1e3, 4),
                    round(result.best.total_seconds * 1e3, 4),
                    round(hand.total_seconds / result.best.total_seconds, 3),
                    verdict,
                )
    return table

"""Figure 11: end-to-end speedup over 16 accelerator chips of their own type.

For each benchmark, the speedup curve of the TPU multipod (16 -> 4096
chips) against the A100 cluster's curve (16 -> its submission scale).  The
paper's claim: the techniques of Sections 3-4 let TPUs sustain higher
speedups at scale than the GPU submissions — the constant-ish 2-D torus
all-reduce beats the hierarchical NVLink+IB reduction as chip counts grow.
"""

from __future__ import annotations

from repro.experiments.gpu import NVIDIA_V07_SCALES, gpu_end_to_end
from repro.experiments.report import Figure
from repro.experiments.scaling import SCALING_CHIPS, sweep

BENCHMARKS = ("resnet50", "bert", "transformer", "ssd")


def run() -> Figure:
    fig = Figure(
        "Figure 11: speedup over 16 chips of own type (modeled)", "chips"
    )
    for name in BENCHMARKS:
        tpu_sweep = sweep(name, "tf", SCALING_CHIPS)
        e2e = tpu_sweep.end_to_end_speedup(16)
        fig.add_series(
            f"tpu_{name}",
            tpu_sweep.chips,
            [round(e2e[c], 2) for c in tpu_sweep.chips],
        )
        max_gpus = NVIDIA_V07_SCALES[name]["a100"]
        gpu_counts = [c for c in SCALING_CHIPS if c <= max_gpus]
        if max_gpus not in gpu_counts:
            gpu_counts.append(max_gpus)
        base = gpu_end_to_end(name, 16, "a100").total_seconds
        fig.add_series(
            f"gpu_a100_{name}",
            gpu_counts,
            [
                round(base / gpu_end_to_end(name, g, "a100").total_seconds, 2)
                for g in gpu_counts
            ],
        )
    return fig

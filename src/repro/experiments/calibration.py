"""Per-benchmark calibration constants (DESIGN.md §5).

Exactly one anchor per benchmark: constants here are chosen so the modeled
Table 1 row at the paper's submission scale lands in range.  Every other
prediction (other chip counts, breakdown fractions, speedup curves,
crossovers) is then *derived*, and EXPERIMENTS.md reports paper-vs-measured
for each.

The achieved MXU efficiencies are physically sensible: BERT's huge dense
matmuls run the MXU hot (~0.58); ResNet at 8 examples/core (~0.20); SSD on
300x300 images at ~0.5 examples/core (~0.10); MaskRCNN with its gathers and
small convolutions (~0.17); DLRM's tiny MLPs (~0.12).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.end_to_end import EndToEndModel
from repro.frameworks.base import GraphProfile
from repro.frameworks.jax import MultiClientJAX
from repro.frameworks.tensorflow import SingleClientTF
from repro.models import (
    bert_large_spec,
    dlrm_spec,
    maskrcnn_spec,
    resnet50_spec,
    ssd_spec,
    transformer_big_spec,
)
from repro.models.costspec import ModelCostSpec


@dataclass(frozen=True)
class Calibration:
    """Tuned constants for one benchmark."""

    mxu_efficiency: float
    step_overhead: float
    eval_overhead_seconds: float
    """Fixed per-eval cost (loop switch + metric path; COCO eval for the
    detection models, AUC for DLRM)."""
    tf_profile: GraphProfile
    jax_profile: GraphProfile
    v06_minutes: float | None = None
    """The MLPerf v0.6 TF submission time, for Table 1's speedup column."""


_SPECS = {
    spec.name: spec
    for spec in (
        resnet50_spec(),
        bert_large_spec(),
        ssd_spec(),
        transformer_big_spec(),
        maskrcnn_spec(),
        dlrm_spec(),
    )
}


CALIBRATIONS: dict[str, Calibration] = {
    "resnet50": Calibration(
        mxu_efficiency=0.20,
        step_overhead=1.0e-4,
        eval_overhead_seconds=0.30,
        tf_profile=GraphProfile("resnet50", 100.0, 0.61),
        jax_profile=GraphProfile("resnet50", 40.0, 0.0),
        v06_minutes=0.48 * 2.67,
    ),
    "bert": Calibration(
        mxu_efficiency=0.60,
        step_overhead=1.0e-4,
        eval_overhead_seconds=0.05,
        tf_profile=GraphProfile("bert", 250.0, 1.38),
        jax_profile=GraphProfile("bert", 96.0, 0.0),
        v06_minutes=None,  # BERT is new in v0.7
    ),
    "ssd": Calibration(
        mxu_efficiency=0.10,
        step_overhead=5.0e-4,
        eval_overhead_seconds=0.40,
        tf_profile=GraphProfile("ssd", 180.0, 0.99),
        jax_profile=GraphProfile("ssd", 34.0, 0.0),
        v06_minutes=0.46 * 2.63,
    ),
    "transformer": Calibration(
        mxu_efficiency=0.30,
        step_overhead=2.0e-4,
        eval_overhead_seconds=0.25,
        tf_profile=GraphProfile("transformer", 200.0, 1.14),
        jax_profile=GraphProfile("transformer", 200.0, 0.0),
        v06_minutes=0.32 * 2.65,
    ),
    "maskrcnn": Calibration(
        mxu_efficiency=0.17,
        step_overhead=1.0e-3,
        eval_overhead_seconds=3.0,
        tf_profile=GraphProfile("maskrcnn", 220.0, 1.2),
        jax_profile=GraphProfile("maskrcnn", 120.0, 0.0),
        v06_minutes=8.1 * 4.4,
    ),
    "dlrm": Calibration(
        mxu_efficiency=0.12,
        step_overhead=8.0e-4,
        eval_overhead_seconds=2.4,
        tf_profile=GraphProfile("dlrm", 120.0, 0.8),
        jax_profile=GraphProfile("dlrm", 60.0, 0.0),
        v06_minutes=None,  # DLRM is new in v0.7
    ),
}


def spec_for(name: str) -> ModelCostSpec:
    """The cost spec of a benchmark by name."""
    try:
        return _SPECS[name]
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; known: {sorted(_SPECS)}") from None


def end_to_end_model(name: str, framework: str = "tf") -> EndToEndModel:
    """A calibrated end-to-end model for one benchmark."""
    spec = spec_for(name)
    cal = CALIBRATIONS[name]
    if framework == "tf":
        fw = SingleClientTF()
        profile = cal.tf_profile
    elif framework == "jax":
        fw = MultiClientJAX()
        profile = cal.jax_profile
    else:
        raise ValueError(f"unknown framework {framework!r}; use 'tf' or 'jax'")
    return EndToEndModel(
        spec,
        mxu_efficiency=cal.mxu_efficiency,
        step_overhead=cal.step_overhead,
        eval_overhead_seconds=cal.eval_overhead_seconds,
        framework=fw,
        graph_profile=profile,
    )

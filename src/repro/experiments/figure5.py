"""Figure 5: ResNet-50 end-to-end and throughput speedup vs chip count.

The paper's observations to reproduce: throughput scales near-ideally with
chips, while end-to-end speedup bends away because (a) batch 64K needs 88
epochs vs 44 at batch 4K and (b) the constant all-reduce term grows
relative to shrinking compute.
"""

from __future__ import annotations

from repro.experiments.report import Figure
from repro.experiments.scaling import SCALING_CHIPS, sweep


def run(chips: tuple[int, ...] = SCALING_CHIPS) -> Figure:
    s = sweep("resnet50", "tf", chips)
    base = chips[0]
    fig = Figure("Figure 5: ResNet-50 speedup vs TPU chips (base=16)", "chips")
    e2e = s.end_to_end_speedup(base)
    thr = s.throughput_speedup(base)
    ideal = {c: c / base for c in s.chips}
    fig.add_series("end_to_end", s.chips, [round(e2e[c], 2) for c in s.chips])
    fig.add_series("throughput", s.chips, [round(thr[c], 2) for c in s.chips])
    fig.add_series("ideal", s.chips, [ideal[c] for c in s.chips])
    return fig

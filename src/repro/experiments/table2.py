"""Table 2: initialization time, single-client TF vs multi-client JAX.

Paper values (seconds): ResNet 498/134 @4096 chips, BERT 1040/190 @4096,
SSD 772 @4096 (TF) and 122 @2048 (JAX), Transformer 868/294 @4096.  The TF
times grow with the worker count (multi-device graph construction); JAX's
stay near-constant (per-host compilation in parallel).
"""

from __future__ import annotations

from repro.experiments.calibration import end_to_end_model, spec_for
from repro.core.planner import plan_parallelism
from repro.experiments.report import Table

#: (benchmark, TF chips, JAX chips) as reported in the paper.
TABLE2_ROWS: tuple[tuple[str, int, int], ...] = (
    ("resnet50", 4096, 4096),
    ("bert", 4096, 4096),
    ("ssd", 4096, 2048),
    ("transformer", 4096, 4096),
)

PAPER_INIT_SECONDS = {
    ("resnet50", "tf"): 498.0,
    ("resnet50", "jax"): 134.0,
    ("bert", "tf"): 1040.0,
    ("bert", "jax"): 190.0,
    ("ssd", "tf"): 772.0,
    ("ssd", "jax"): 122.0,
    ("transformer", "tf"): 868.0,
    ("transformer", "jax"): 294.0,
}


def run() -> Table:
    """Regenerate Table 2 with the framework models."""
    table = Table(
        "Table 2: initialization time (seconds), TF vs JAX (modeled vs paper)",
        ["Benchmark", "TF s", "paper TF", "JAX s", "paper JAX"],
    )
    for name, tf_chips, jax_chips in TABLE2_ROWS:
        spec = spec_for(name)
        tf_run = end_to_end_model(name, "tf").run(
            plan_parallelism(spec, tf_chips).config
        )
        jax_run = end_to_end_model(name, "jax").run(
            plan_parallelism(spec, jax_chips).config
        )
        table.add_row(
            name,
            round(tf_run.init_seconds, 1),
            PAPER_INIT_SECONDS[(name, "tf")],
            round(jax_run.init_seconds, 1),
            PAPER_INIT_SECONDS[(name, "jax")],
        )
    return table

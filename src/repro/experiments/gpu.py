"""GPU comparator end-to-end model for Figures 10-11.

NVIDIA's MLPerf v0.7 submissions ran data parallelism on DGX clusters; we
model them with the same methodology as the TPU runs — the same convergence
tables and per-model efficiencies, the GPU chip specs, and the NCCL-style
hierarchical all-reduce of :class:`repro.hardware.gpu.GpuCluster` — so the
TPU-vs-GPU comparison isolates the *system* differences (interconnect
topology and per-chip throughput), which is what the paper's figures argue
about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.convergence import ConvergenceModel
from repro.core.end_to_end import num_evals_for
from repro.core.planner import PLANNER_RULES
from repro.experiments.calibration import CALIBRATIONS, spec_for
from repro.hardware.gpu import dgx_cluster


@dataclass(frozen=True)
class GpuRunResult:
    """Modeled MLPerf run on a GPU cluster."""

    benchmark: str
    num_gpus: int
    generation: str
    global_batch: int
    steps: int
    step_seconds: float
    eval_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.steps * self.step_seconds + self.eval_seconds

    @property
    def total_minutes(self) -> float:
        return self.total_seconds / 60.0

    @property
    def throughput_examples_per_second(self) -> float:
        return self.global_batch / self.step_seconds


#: Global batches the GPU submissions used where they differ from the
#: per-GPU-cap heuristic (DLRM ran batch 65536 on only 16 GPUs).
GPU_BATCH_OVERRIDES = {"dlrm": 65536}

#: NVIDIA MLPerf v0.7 submission scales (GPUs) per benchmark.
NVIDIA_V07_SCALES = {
    "resnet50": {"a100": 1536, "v100": 1536},
    "bert": {"a100": 2048, "v100": 1536},
    "ssd": {"a100": 1024, "v100": 512},
    "transformer": {"a100": 480, "v100": 480},
    "maskrcnn": {"a100": 256, "v100": 192},
    "dlrm": {"a100": 16, "v100": 16},
}


def gpu_end_to_end(
    benchmark: str,
    num_gpus: int,
    generation: str = "a100",
    *,
    step_overhead: float = 1.0e-3,
) -> GpuRunResult:
    """Model one benchmark on a DGX cluster.

    Uses the benchmark's planner batch rules (per-*chip* caps halved per
    GPU, one GPU ~ one TPU core) and the TPU-calibrated efficiency — GPU
    tensor cores and TPU MXUs achieve comparable utilization on the same
    model, so differences come from peak rate and interconnect.
    """
    spec = spec_for(benchmark)
    cal = CALIBRATIONS[benchmark]
    rules = PLANNER_RULES[benchmark]
    cluster = dgx_cluster(num_gpus, generation)
    if benchmark in GPU_BATCH_OVERRIDES:
        global_batch = GPU_BATCH_OVERRIDES[benchmark]
    else:
        per_gpu_cap = max(1, rules.per_chip_batch_cap // 2)
        global_batch = min(rules.max_global_batch, per_gpu_cap * num_gpus)
    batch_per_gpu = global_batch / num_gpus
    compute = cluster.compute_time(
        spec.flops_per_example * batch_per_gpu, cal.mxu_efficiency
    )
    allreduce = cluster.allreduce_time(spec.gradient_bytes)
    # Optimizer update, HBM-bound, replicated (no WUS in the comparator).
    update = spec.params * spec.optimizer_bytes_per_param / cluster.chip.hbm_bandwidth
    step = compute + allreduce + update + step_overhead
    convergence = ConvergenceModel(spec)
    steps = convergence.steps_to_converge(global_batch)
    num_evals = num_evals_for(spec, convergence, global_batch)
    eval_seconds = num_evals * (cal.eval_overhead_seconds + 0.2)
    return GpuRunResult(
        benchmark=benchmark,
        num_gpus=num_gpus,
        generation=generation,
        global_batch=global_batch,
        steps=steps,
        step_seconds=step,
        eval_seconds=eval_seconds,
    )

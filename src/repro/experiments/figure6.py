"""Figure 6: ResNet-50 per-step compute vs all-reduce time on TPUs.

The paper's observations: per-chip mini-batch shrinks 256 -> 16 as scale
grows 16 -> 4096 chips; compute time falls accordingly while the all-reduce
time stays nearly constant (ring bandwidth terms are scale-free), reaching
22% of device step time at 4096 chips.
"""

from __future__ import annotations

from repro.experiments.report import Figure
from repro.experiments.scaling import SCALING_CHIPS, sweep

PAPER_ALLREDUCE_FRACTION_4096 = 0.22


def run(chips: tuple[int, ...] = SCALING_CHIPS) -> Figure:
    s = sweep("resnet50", "tf", chips)
    fig = Figure(
        "Figure 6: ResNet-50 step breakdown (ms/step on device)", "chips"
    )
    breakdown = s.step_breakdown_ms()
    fig.add_series("compute_ms", s.chips, [round(breakdown[c][0], 3) for c in s.chips])
    fig.add_series("allreduce_ms", s.chips, [round(breakdown[c][1], 3) for c in s.chips])
    fig.add_series(
        "batch_per_chip", s.chips, [s.batch_per_chip()[c] for c in s.chips]
    )
    if 4096 in s.runs:
        fig.add_series(
            "allreduce_fraction_at_4096",
            [4096],
            [round(s.allreduce_fraction(4096), 4)],
        )
    return fig

"""Load-test the simulation service: ok-rate and latency vs concurrency.

Reproduces the Pollux tuning methodology (SNIPPETS.md Snippet 1) against
our own service: submit a fixed burst of N distinct jobs at increasing
bounded concurrency and tabulate the ok-rate and the median latency.
Below the knee every burst completes N/N while the median latency drops
as concurrency rises (queueing delay shrinks); past the knee the service
*sheds* — typed ``overloaded`` / ``rate_limited`` / ``deadline_exceeded``
rejections, never silent loss.  The accounting invariant
``submitted == ok + rejected + failed`` is asserted for every scenario.

The result cache is disabled so every admitted job costs real work.
"""

from __future__ import annotations

import statistics

from repro.experiments.report import Table
from repro.service import (
    ServiceConfig,
    ServiceRejection,
    SimJob,
    SimulationService,
)

#: Jobs per burst.  Distinct specs (chips scan) so caching could never help.
BURST = 32
#: Bounded-concurrency scan below the knee.
CONCURRENCY_SCAN = (1, 2, 4, 8)


def _jobs(prefix: str) -> list[SimJob]:
    # Distinct global batches on a fixed 256-chip slice (every batch is
    # chip-divisible), so no two specs share a content key.
    return [
        SimJob(
            "steptime",
            {"model": "resnet50", "chips": 256,
             "global_batch": 2048 + 256 * i, "tag": prefix},
            name=f"{prefix}-{i}",
        )
        for i in range(BURST)
    ]


def _burst(config: ServiceConfig, jobs: list[SimJob]) -> dict:
    """Submit every job at once, wait for all outcomes, tally by reason."""
    counts = {"ok": 0, "overloaded": 0, "rate_limited": 0,
              "deadline_exceeded": 0, "failed": 0}
    latencies: list[float] = []
    with SimulationService(config) as svc:
        handles = []
        for job in jobs:
            try:
                handles.append(svc.submit(job, client="load"))
            except ServiceRejection as exc:
                counts[exc.reason] += 1
        for handle in handles:
            reason, payload = handle.outcome(timeout=60.0)
            counts[reason] = counts.get(reason, 0) + 1
            if reason == "ok":
                latencies.append(handle.latency_s)
        snapshot = svc.snapshot()
    accounted = sum(counts.values())
    if accounted != len(jobs):
        raise AssertionError(
            f"silent loss: {len(jobs)} submitted, {accounted} accounted "
            f"({counts}, snapshot {snapshot})"
        )
    counts["median_ms"] = (
        statistics.median(latencies) * 1e3 if latencies else float("nan")
    )
    return counts


def run() -> Table:
    table = Table(
        title=f"Service load test: {BURST}-job bursts, typed shedding past the knee",
        headers=["scenario", "c", "queue", "ok", "overl", "rate", "ddl",
                 "failed", "ok-rate", "median ms"],
    )

    # Below the knee: ample queue and rate budget; ok-rate must be N/N
    # and median latency falls as the worker pool widens.
    for c in CONCURRENCY_SCAN:
        cfg = ServiceConfig(
            concurrency=c, queue_depth=BURST, rate_capacity=BURST,
            rate_refill_per_s=BURST, cache_entries=0,
        )
        r = _burst(cfg, _jobs(f"scan-c{c}"))
        table.add_row(
            "scan", c, BURST, r["ok"], r["overloaded"], r["rate_limited"],
            r["deadline_exceeded"], r["failed"], f"{r['ok']}/{BURST}",
            round(r["median_ms"], 3),
        )

    # Past the knee #1: queue depth 8 at c=4 — the burst overflows the
    # bounded queue and the excess is shed with typed `overloaded`.
    cfg = ServiceConfig(
        concurrency=4, queue_depth=8, rate_capacity=BURST,
        rate_refill_per_s=BURST, cache_entries=0,
    )
    r = _burst(cfg, _jobs("overload"))
    table.add_row(
        "overload", 4, 8, r["ok"], r["overloaded"], r["rate_limited"],
        r["deadline_exceeded"], r["failed"], f"{r['ok']}/{BURST}",
        round(r["median_ms"], 3),
    )

    # Past the knee #2: token bucket of 8 — the client outruns its rate
    # budget and the excess is shed with typed `rate_limited`.
    cfg = ServiceConfig(
        concurrency=4, queue_depth=BURST, rate_capacity=8,
        rate_refill_per_s=1.0, cache_entries=0,
    )
    r = _burst(cfg, _jobs("ratelimit"))
    table.add_row(
        "ratelimit", 4, BURST, r["ok"], r["overloaded"], r["rate_limited"],
        r["deadline_exceeded"], r["failed"], f"{r['ok']}/{BURST}",
        round(r["median_ms"], 3),
    )

    # Past the knee #3: a 2 ms deadline at c=1 — jobs age out in the
    # queue and are shed with typed `deadline_exceeded`.
    cfg = ServiceConfig(
        concurrency=1, queue_depth=BURST, rate_capacity=BURST,
        rate_refill_per_s=BURST, cache_entries=0, default_deadline_s=2e-3,
    )
    r = _burst(cfg, _jobs("deadline"))
    table.add_row(
        "deadline", 1, BURST, r["ok"], r["overloaded"], r["rate_limited"],
        r["deadline_exceeded"], r["failed"], f"{r['ok']}/{BURST}",
        round(r["median_ms"], 3),
    )
    return table

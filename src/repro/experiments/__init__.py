"""Reproduction drivers for every table and figure of the paper.

Each module exposes ``run(...)`` returning a structured result with a
``format()`` method; the CLI (``python -m repro.experiments <name>`` or the
``repro-experiments`` entry point) prints them.  EXPERIMENTS.md records
paper-vs-measured for each.

| id        | what                                                    |
|-----------|---------------------------------------------------------|
| table1    | end-to-end minutes, 7 rows (TF + JAX)                   |
| table2    | TF vs JAX initialization time                           |
| figure5   | ResNet-50 end-to-end & throughput speedup vs chips      |
| figure6   | ResNet-50 compute/all-reduce step breakdown             |
| figure7   | BERT speedup vs chips                                   |
| figure8   | BERT compute/all-reduce step breakdown                  |
| figure9   | model-parallel speedup (SSD, MaskRCNN, Transformer)     |
| figure10  | TPU vs V100/A100 end-to-end minutes                     |
| figure11  | speedup over 16 chips of own type, TPU vs GPU           |
| ablations | WUS, 1-D vs 2-D all-reduce, MaskRCNN comm, shuffle,     |
|           | input pipeline, DLRM input, AUC                         |
| availability | goodput vs failure rate x pod size, chaos-run demo   |
| spmd_search | searched vs hand-annotated sharding frontier          |
"""

from repro.experiments.calibration import CALIBRATIONS, Calibration, end_to_end_model
from repro.experiments.report import Table, Figure

__all__ = [
    "CALIBRATIONS",
    "Calibration",
    "end_to_end_model",
    "Table",
    "Figure",
]

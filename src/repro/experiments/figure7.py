"""Figure 7: BERT end-to-end speedup vs chip count (16 -> 4096).

BERT shows the paper's best scaling: LAMB keeps batch-8192 convergence
steady, so the end-to-end curve tracks throughput closely.
"""

from __future__ import annotations

from repro.experiments.report import Figure
from repro.experiments.scaling import SCALING_CHIPS, sweep


def run(chips: tuple[int, ...] = SCALING_CHIPS) -> Figure:
    s = sweep("bert", "tf", chips)
    base = chips[0]
    fig = Figure("Figure 7: BERT speedup vs TPU chips (base=16)", "chips")
    e2e = s.end_to_end_speedup(base)
    thr = s.throughput_speedup(base)
    fig.add_series("end_to_end", s.chips, [round(e2e[c], 2) for c in s.chips])
    fig.add_series("throughput", s.chips, [round(thr[c], 2) for c in s.chips])
    fig.add_series("ideal", s.chips, [c / base for c in s.chips])
    return fig

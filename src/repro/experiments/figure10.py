"""Figure 10: MLPerf v0.7 end-to-end minutes, TPU multipod vs V100/A100.

Bars per benchmark: the TPU-v3 submission configuration vs NVIDIA's V100
and A100 submission scales, all modeled with the same methodology (see
:mod:`repro.experiments.gpu`).  The claim to reproduce is the *ordering*:
at its submission scale the TPU multipod posts the lowest end-to-end times
on the large benchmarks.
"""

from __future__ import annotations

from repro.core.planner import plan_parallelism
from repro.experiments.calibration import end_to_end_model, spec_for
from repro.experiments.gpu import NVIDIA_V07_SCALES, gpu_end_to_end
from repro.experiments.report import Table
from repro.experiments.table1 import TABLE1_ROWS

#: TPU submission scales from Table 1 (best configuration per benchmark).
TPU_SCALES = {name: chips for name, chips, _ in TABLE1_ROWS}


def run() -> Table:
    table = Table(
        "Figure 10: end-to-end minutes, TPU-v3 vs GPU clusters (modeled)",
        ["Benchmark", "TPU chips", "TPU min", "A100 GPUs", "A100 min",
         "V100 GPUs", "V100 min"],
    )
    for name in ("resnet50", "bert", "ssd", "transformer", "maskrcnn", "dlrm"):
        chips = TPU_SCALES[name]
        plan = plan_parallelism(spec_for(name), chips)
        tpu = end_to_end_model(name, "tf").run(plan.config)
        scales = NVIDIA_V07_SCALES[name]
        a100 = gpu_end_to_end(name, scales["a100"], "a100")
        v100 = gpu_end_to_end(name, scales["v100"], "v100")
        table.add_row(
            name,
            chips,
            round(tpu.total_minutes, 3),
            a100.num_gpus,
            round(a100.total_minutes, 3),
            v100.num_gpus,
            round(v100.total_minutes, 3),
        )
    return table

"""CLI: regenerate any table or figure of the paper.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments figure6
    python -m repro.experiments ablations
    python -m repro.experiments all
    repro-experiments --list
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    ablations,
    availability,
    cluster,
    overlap,
    sensitivity,
    service_load,
    spmd_search,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    table1,
    table2,
)

EXPERIMENTS = {
    "table1": table1.run,
    "table2": table2.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "figure9": figure9.run,
    "figure10": figure10.run,
    "figure11": figure11.run,
    "ablations": ablations.run,
    "overlap": overlap.run,
    "sensitivity": sensitivity.run,
    "availability": availability.run,
    "cluster": cluster.run,
    "service_load": service_load.run,
    "spmd_search": spmd_search.run,
}


def _print_result(result, csv_dir: str | None = None, name: str = "") -> None:
    items = result if isinstance(result, list) else [result]
    for i, item in enumerate(items):
        print(item.format())
        print()
        if csv_dir is not None:
            import os

            os.makedirs(csv_dir, exist_ok=True)
            suffix = f"_{i}" if len(items) > 1 else ""
            path = os.path.join(csv_dir, f"{name}{suffix}.csv")
            with open(path, "w") as fh:
                fh.write(item.to_csv())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the TPU multipod paper.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="all",
        help="experiment id (table1, table2, figure5..figure11, ablations, all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--csv", metavar="DIR", default=None,
        help="also write each table/figure as CSV into DIR",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.experiment == "all":
        for name, fn in EXPERIMENTS.items():
            _print_result(fn(), csv_dir=args.csv, name=name)
        return 0
    try:
        fn = EXPERIMENTS[args.experiment]
    except KeyError:
        print(
            f"unknown experiment {args.experiment!r}; choose from "
            f"{', '.join(EXPERIMENTS)} or 'all'",
            file=sys.stderr,
        )
        return 2
    _print_result(fn(), csv_dir=args.csv, name=args.experiment)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Overlap-engine ablation: backprop-overlapped bucketed all-reduces.

Sweeps the bucket-size trade-off of :mod:`repro.core.overlap` on the
paper's BERT configuration across slice sizes:

* **one bucket** costs exactly the serial model's single fused all-reduce
  but nothing is ready before the backward pass ends, so nothing hides —
  overlap-aware step time equals the serial step;
* **more buckets** expose less tail (each collective launches as soon as
  its gradients exist) but pay the per-launch latency ``alpha`` once per
  bucket, so past some count the extra launches dominate — the exposed
  communication curve is U-shaped and the sweep shows both regimes.

``overlap_onoff_ablation`` is the headline on/off comparison at each
slice's best bucket count — the step-time win the overlap engine models.
"""

from __future__ import annotations

from repro.core.step_time import StepTimeModel
from repro.core.strategy import ParallelismConfig
from repro.experiments.calibration import CALIBRATIONS, spec_for
from repro.experiments.report import Table

#: Global batch per slice size: the paper's BERT scaling keeps 4 examples
#: per chip up to the 4096-chip multipod.
_CHIP_SWEEP = (256, 1024, 4096)
_BUCKET_SWEEP = (1, 2, 4, 8, 16, 32, 64)


def _model(chips: int, num_buckets: int, overlap: bool) -> StepTimeModel:
    spec, cal = spec_for("bert"), CALIBRATIONS["bert"]
    config = ParallelismConfig(num_chips=chips, global_batch=4 * chips)
    return StepTimeModel(
        spec,
        config,
        mxu_efficiency=cal.mxu_efficiency,
        step_overhead=cal.step_overhead,
        overlap=overlap,
        overlap_buckets=num_buckets,
    )


def bucket_sweep_ablation() -> Table:
    """Exposed-comm vs bucket count on BERT (chips x buckets)."""
    table = Table(
        "Overlap bucket-size trade-off (BERT, 4 examples/chip)",
        ["Chips", "Buckets", "allreduce ms", "exposed ms", "hidden %",
         "serial step ms", "overlap step ms", "speedup"],
    )
    for chips in _CHIP_SWEEP:
        serial = _model(chips, 1, overlap=False).breakdown()
        for buckets in _BUCKET_SWEEP:
            model = _model(chips, buckets, overlap=True)
            result = model.overlap_result()
            breakdown = model.breakdown()
            table.add_row(
                chips,
                buckets,
                round(breakdown.allreduce * 1e3, 3),
                round(result.exposed_comm_seconds * 1e3, 3),
                round(result.overlap_efficiency * 100, 1),
                round(serial.device_time * 1e3, 3),
                round(breakdown.device_time * 1e3, 3),
                round(serial.device_time / breakdown.device_time, 3),
            )
    return table


def overlap_onoff_ablation() -> Table:
    """Overlap on/off at each slice's best bucket count."""
    table = Table(
        "Overlap engine on/off (BERT, best bucket count per slice)",
        ["Chips", "Overlap", "Buckets", "step ms", "allreduce share %",
         "speedup"],
    )
    for chips in _CHIP_SWEEP:
        serial = _model(chips, 1, overlap=False).breakdown()
        best_buckets = min(
            _BUCKET_SWEEP,
            key=lambda b: _model(chips, b, overlap=True).breakdown().device_time,
        )
        best = _model(chips, best_buckets, overlap=True).breakdown()
        for label, buckets, breakdown in (
            ("off", 1, serial), ("on", best_buckets, best)
        ):
            exposed = (
                breakdown.allreduce
                if breakdown.exposed_allreduce is None
                else breakdown.exposed_allreduce
            )
            table.add_row(
                chips,
                label,
                buckets,
                round(breakdown.device_time * 1e3, 3),
                round(exposed / breakdown.device_time * 100, 1),
                round(serial.device_time / breakdown.device_time, 3),
            )
    return table


def run() -> list[Table]:
    return [bucket_sweep_ablation(), overlap_onoff_ablation()]

"""Sensitivity analysis: do the paper's conclusions survive parameter error?

The reproduction calibrates per-benchmark MXU efficiencies and assumes an
effective ICI link bandwidth.  This experiment perturbs both by 2x in each
direction and checks the *qualitative* conclusions that the figures rest
on — if any flipped under plausible parameter error, the reproduction's
shape claims would be fragile.

Checked conclusions:

1. the 2-D hierarchical all-reduce beats the flat ring at 4096 chips;
2. BERT's all-reduce fraction at 4096 chips exceeds ResNet-50's;
3. end-to-end speedup stays below throughput speedup (the convergence tax);
4. JAX initialization stays below TF initialization at 512 hosts.
"""

from __future__ import annotations

import dataclasses

from repro.comm.allreduce import flat_ring_allreduce, two_phase_allreduce
from repro.core.planner import plan_parallelism
from repro.core.step_time import StepTimeModel
from repro.experiments.calibration import CALIBRATIONS, spec_for
from repro.experiments.report import Table
from repro.hardware.chip import TPU_V3
from repro.hardware.topology import TorusMesh, multipod


def _scaled_multipod(bandwidth_factor: float) -> TorusMesh:
    chip = dataclasses.replace(
        TPU_V3, link_bandwidth=TPU_V3.link_bandwidth * bandwidth_factor
    )
    return multipod(4, chip=chip)


def run() -> Table:
    table = Table(
        "Sensitivity: paper conclusions under 2x parameter perturbations",
        ["Perturbation", "2-D beats flat", "BERT ar% > ResNet ar%",
         "e2e < throughput speedup"],
    )
    for bw_factor in (0.5, 1.0, 2.0):
        for eff_factor in (0.5, 1.0, 2.0):
            mesh = _scaled_multipod(bw_factor)
            # Conclusion 1: schedule ordering.
            flat = flat_ring_allreduce(mesh, 102e6).total
            hier = two_phase_allreduce(mesh, 102e6).total
            c1 = hier < flat
            # Conclusion 2: model-size ordering of comm fractions.
            fracs = {}
            for name in ("resnet50", "bert"):
                spec = spec_for(name)
                cal = CALIBRATIONS[name]
                eff = min(0.95, cal.mxu_efficiency * eff_factor)
                cfg = plan_parallelism(spec, 4096).config
                breakdown = StepTimeModel(
                    spec, cfg, mesh=mesh, mxu_efficiency=eff,
                    step_overhead=cal.step_overhead,
                ).breakdown()
                fracs[name] = breakdown.allreduce_fraction
            c2 = fracs["bert"] > fracs["resnet50"]
            # Conclusion 3: convergence tax direction (efficiency/bandwidth
            # independent: epochs grow with batch) — evaluate via the
            # ResNet table anchors.
            from repro.core.convergence import ConvergenceModel

            conv = ConvergenceModel(spec_for("resnet50"))
            c3 = conv.epochs_to_converge(65536) > conv.epochs_to_converge(4096)
            table.add_row(
                f"bw x{bw_factor}, eff x{eff_factor}",
                "yes" if c1 else "NO",
                "yes" if c2 else "NO",
                "yes" if c3 else "NO",
            )
    return table

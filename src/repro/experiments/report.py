"""Plain-text tables and figures for experiment output."""

from __future__ import annotations

from dataclasses import dataclass, field


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class Table:
    """A titled table of rows, printable as aligned plain text."""

    title: str
    headers: list[str]
    rows: list[tuple] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(tuple(values))

    def column(self, header: str) -> list:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def format(self) -> str:
        cells = [self.headers] + [[_fmt(v) for v in row] for row in self.rows]
        widths = [max(len(row[i]) for row in cells) for i in range(len(self.headers))]
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        for row in cells[1:]:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """The table as CSV (header row first)."""
        import csv
        import io

        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.headers)
        for row in self.rows:
            writer.writerow(row)
        return buf.getvalue()


@dataclass
class Figure:
    """Series data for a figure, printable as a column listing."""

    title: str
    x_label: str
    series: dict[str, tuple[list, list]] = field(default_factory=dict)

    def add_series(self, name: str, xs: list, ys: list) -> None:
        if len(xs) != len(ys):
            raise ValueError("series xs and ys must be equal length")
        self.series[name] = (list(xs), list(ys))

    def format(self) -> str:
        lines = [self.title, "-" * len(self.title)]
        for name, (xs, ys) in self.series.items():
            lines.append(f"[{name}]")
            for x, y in zip(xs, ys):
                lines.append(f"  {self.x_label}={_fmt(x):>8}  {_fmt(y)}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Long-format CSV: series,x,y."""
        import csv
        import io

        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["series", self.x_label, "value"])
        for name, (xs, ys) in self.series.items():
            for x, y in zip(xs, ys):
                writer.writerow([name, x, y])
        return buf.getvalue()

"""Framework runtime models: single-client TF vs multi-client JAX (§2).

The paper contrasts two distributed programming models on identical
hardware:

* **TensorFlow (single-client)** — one Python client builds and optimizes a
  multi-device graph for the *whole* system and distributes compiled
  binaries over RPC; setup cost grows with the number of workers (an
  Amdahl's-law term the paper calls out), and evaluation metrics are
  gathered to the coordinator over host RPCs.
* **JAX (multi-client)** — every host runs the same program and compiles
  its own (deterministically identical) XLA binaries; setup is dominated by
  TPU mesh initialization and per-host compilation, nearly independent of
  system size, and eval metrics reduce on-device.

Table 2 (initialization times) and the eval-metric paths of Section 3.4
come from these two models.
"""

from repro.frameworks.base import FrameworkModel
from repro.frameworks.tensorflow import SingleClientTF
from repro.frameworks.jax import MultiClientJAX

__all__ = ["FrameworkModel", "SingleClientTF", "MultiClientJAX"]

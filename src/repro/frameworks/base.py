"""Common interface of the framework runtime models."""

from __future__ import annotations

import abc
from dataclasses import dataclass


@dataclass(frozen=True)
class GraphProfile:
    """Compilation-relevant size of one benchmark's program.

    ``compile_seconds`` is the time to XLA-compile the per-replica program
    once on one host; ``graph_build_seconds_per_worker`` the single-client
    cost of constructing/optimizing the multi-device graph per attached
    worker (TensorFlow only).
    """

    name: str
    compile_seconds: float
    graph_build_seconds_per_worker: float

    def __post_init__(self) -> None:
        if self.compile_seconds < 0 or self.graph_build_seconds_per_worker < 0:
            raise ValueError("profile times must be non-negative")


class FrameworkModel(abc.ABC):
    """A framework's scaling behaviour on a TPU slice.

    Beyond the Table 2 timing surface, a model also describes its
    *failure domain* — the control-plane facts the
    :mod:`repro.controlplane` topologies consume: whether one host is a
    single point of failure (``coordinator_host``), and what a restart
    after a host loss costs (``reinit_time``, which for a single-client
    runtime re-pays the per-worker graph construction of Table 2).
    """

    name: str

    #: Host index whose death kills the whole job, or ``None`` when no
    #: single host is a SPOF (the multi-client case).
    coordinator_host: int | None = None

    @abc.abstractmethod
    def init_time(self, num_hosts: int, profile: GraphProfile) -> float:
        """Seconds from job launch to the first training step."""

    @abc.abstractmethod
    def eval_metric_time(self, num_hosts: int, metric_bytes: float) -> float:
        """Seconds to produce the global eval metric after an eval pass."""

    def is_fatal_host_failure(self, host: int) -> bool:
        """Whether losing ``host`` kills the job outright (no elastic path)."""
        return self.coordinator_host is not None and host == self.coordinator_host

    def reinit_time(self, num_hosts: int, profile: GraphProfile) -> float:
        """Seconds to re-form the job on ``num_hosts`` survivors.

        Defaults to a full :meth:`init_time` — reforming a single-client
        graph re-pays the linear per-worker term, while the multi-client
        override below is ~constant.
        """
        return self.init_time(num_hosts, profile)

"""Common interface of the framework runtime models."""

from __future__ import annotations

import abc
from dataclasses import dataclass


@dataclass(frozen=True)
class GraphProfile:
    """Compilation-relevant size of one benchmark's program.

    ``compile_seconds`` is the time to XLA-compile the per-replica program
    once on one host; ``graph_build_seconds_per_worker`` the single-client
    cost of constructing/optimizing the multi-device graph per attached
    worker (TensorFlow only).
    """

    name: str
    compile_seconds: float
    graph_build_seconds_per_worker: float

    def __post_init__(self) -> None:
        if self.compile_seconds < 0 or self.graph_build_seconds_per_worker < 0:
            raise ValueError("profile times must be non-negative")


class FrameworkModel(abc.ABC):
    """A framework's scaling behaviour on a TPU slice."""

    name: str

    @abc.abstractmethod
    def init_time(self, num_hosts: int, profile: GraphProfile) -> float:
        """Seconds from job launch to the first training step."""

    @abc.abstractmethod
    def eval_metric_time(self, num_hosts: int, metric_bytes: float) -> float:
        """Seconds to produce the global eval metric after an eval pass."""

"""Single-client (TensorFlow-style) runtime model."""

from __future__ import annotations

from repro.frameworks.base import FrameworkModel, GraphProfile


class SingleClientTF(FrameworkModel):
    """One coordinator builds a multi-device graph for the whole system.

    ``init = mesh_init + compile + graph_build_per_worker * num_workers +
    rpc_distribution``.  The linear term is the Amdahl bottleneck of
    Section 2/Table 2; multithreaded compilation (mentioned in the paper)
    is folded into ``profile.compile_seconds``.
    """

    name = "tf"

    #: The coordinator is host 0 and a single point of failure: every
    #: worker is driven by its session, so its death kills the job
    #: (the Section 2 control-plane contrast with multi-client JAX).
    coordinator_host: int | None = 0

    def __init__(
        self,
        mesh_init_seconds: float = 60.0,
        rpc_seconds_per_host: float = 0.05,
        metric_rpc_seconds_per_host: float = 2.0e-4,
        coordinator_metric_seconds: float = 0.1,
    ) -> None:
        self.mesh_init_seconds = mesh_init_seconds
        # Graph/binary distribution at startup: heavyweight per-host RPCs.
        self.rpc_seconds_per_host = rpc_seconds_per_host
        # Metric gather after an eval: small scalar RPCs, cheap per host.
        self.metric_rpc_seconds_per_host = metric_rpc_seconds_per_host
        self.coordinator_metric_seconds = coordinator_metric_seconds

    def init_time(self, num_hosts: int, profile: GraphProfile) -> float:
        if num_hosts < 1:
            raise ValueError("num_hosts must be >= 1")
        return (
            self.mesh_init_seconds
            + profile.compile_seconds
            + profile.graph_build_seconds_per_worker * num_hosts
            + self.rpc_seconds_per_host * num_hosts
        )

    def eval_metric_time(self, num_hosts: int, metric_bytes: float) -> float:
        """Gather per-host metrics to the coordinator over host RPCs."""
        if num_hosts < 1:
            raise ValueError("num_hosts must be >= 1")
        rpc = self.metric_rpc_seconds_per_host * num_hosts
        return rpc + self.coordinator_metric_seconds

"""Multi-client (JAX-style) runtime model."""

from __future__ import annotations

import math

from repro.frameworks.base import FrameworkModel, GraphProfile


class MultiClientJAX(FrameworkModel):
    """Every host runs the same program and compiles its own binaries.

    ``init = mesh_init(num_hosts) + compile`` — per-host compilation happens
    in parallel on all hosts, so it appears once; only the topological mesh
    initialization retains a weak (logarithmic barrier/consensus) dependence
    on system size.  This reproduces Table 2's near-constant JAX times.
    """

    name = "jax"

    #: No coordinator: every host is a peer client, so no single host
    #: failure is fatal — survivors detect the loss and re-form.
    coordinator_host: int | None = None

    def __init__(
        self,
        mesh_init_base_seconds: float = 40.0,
        mesh_init_seconds_per_log2_host: float = 6.0,
    ) -> None:
        self.mesh_init_base_seconds = mesh_init_base_seconds
        self.mesh_init_seconds_per_log2_host = mesh_init_seconds_per_log2_host

    def reinit_time(self, num_hosts: int, profile: GraphProfile) -> float:
        """Re-forming skips recompilation: survivors reuse their binaries.

        Only the (weakly size-dependent) mesh re-initialization is
        re-paid, so elastic shrink is cheap — the failure-domain twin of
        Table 2's constant-time init.
        """
        if num_hosts < 1:
            raise ValueError("num_hosts must be >= 1")
        return (
            self.mesh_init_base_seconds
            + self.mesh_init_seconds_per_log2_host * math.log2(max(2, num_hosts))
        )

    def init_time(self, num_hosts: int, profile: GraphProfile) -> float:
        if num_hosts < 1:
            raise ValueError("num_hosts must be >= 1")
        mesh = (
            self.mesh_init_base_seconds
            + self.mesh_init_seconds_per_log2_host * math.log2(max(2, num_hosts))
        )
        return mesh + profile.compile_seconds

    def eval_metric_time(self, num_hosts: int, metric_bytes: float) -> float:
        """Metrics reduce on-device: one tiny all-reduce, effectively free."""
        return 0.05

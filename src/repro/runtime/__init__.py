"""Functional execution of collectives and parallel training on numpy.

Everything in this subpackage *actually runs* the paper's distributed
algorithms at laptop scale: each "device" is a numpy buffer, and the
collective routines move chunks between devices step by step exactly as the
ring schedules do on hardware.  Tests compare the results against plain
``np.sum`` ground truth, which is the correctness backbone for the
data-parallel / model-parallel / weight-update-sharding trainers in
:mod:`repro.core`.
"""

from repro.runtime.collectives import (
    ShardedValue,
    padded_chunk_layout,
    ring_reduce_scatter,
    ring_all_gather,
    ring_all_gather_stacked,
    ring_all_reduce,
    ring_all_reduce_stacked,
    two_phase_all_reduce,
    two_phase_all_reduce_stacked,
    reduce_scatter_grid,
    all_gather_grid,
)
from repro.runtime.bucket import BucketSegment, GradientBucket
from repro.runtime.mesh import VirtualMesh
from repro.runtime.stacked import StackedValue

__all__ = [
    "ShardedValue",
    "StackedValue",
    "padded_chunk_layout",
    "ring_reduce_scatter",
    "ring_all_gather",
    "ring_all_gather_stacked",
    "ring_all_reduce",
    "ring_all_reduce_stacked",
    "two_phase_all_reduce",
    "two_phase_all_reduce_stacked",
    "reduce_scatter_grid",
    "all_gather_grid",
    "BucketSegment",
    "GradientBucket",
    "VirtualMesh",
]

"""Numpy-executed ring and 2-D hierarchical collectives.

The algorithms replicate the data motion of the hardware schedules:

* ring reduce-scatter — ``n - 1`` steps; at step ``s`` device ``d`` forwards
  chunk ``(d - s) mod n`` to device ``(d + 1) mod n``, which accumulates it;
* ring all-gather — the same motion without reduction;
* 2-D hierarchical all-reduce — reduce-scatter along Y per mesh column,
  reduce-scatter along X per row, an optional per-shard transform (the
  *sharded weight update* of Section 3.2/3.3), then all-gathers along X and
  Y.

Reductions can run in float64/float32 or emulated bfloat16 (rounding the
partial sum at every hop, as in-network bf16 summation does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.numerics.bfloat16 import bf16_add, round_to_bfloat16

#: Supported accumulation policies.
DTYPE_POLICIES = ("f64", "f32", "bf16")

Reducer = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _reducer_for(policy: str) -> Reducer:
    if policy == "f64":
        return lambda a, b: (a.astype(np.float64) + b.astype(np.float64))
    if policy == "f32":
        return lambda a, b: (a.astype(np.float32) + b.astype(np.float32))
    if policy == "bf16":
        return bf16_add
    raise ValueError(f"unknown dtype policy {policy!r}; choose from {DTYPE_POLICIES}")


def _prepare(policy: str, array: np.ndarray) -> np.ndarray:
    """Quantize an input buffer to the wire format of the policy."""
    if policy == "bf16":
        return round_to_bfloat16(array)
    if policy == "f64":
        return array.astype(np.float64)
    return array.astype(np.float32)


@dataclass
class ShardedValue:
    """Per-device shards of a reduced buffer plus reassembly metadata.

    ``shards[d]`` is the flattened chunk owned by device ``d``; chunk ``d``
    of the padded flat buffer lives on device ``d``.
    """

    shards: list[np.ndarray]
    shape: tuple[int, ...]
    padded_size: int

    @property
    def num_devices(self) -> int:
        return len(self.shards)

    def assemble(self) -> np.ndarray:
        """Concatenate shards and strip padding back to the original shape."""
        flat = np.concatenate(self.shards)
        size = int(np.prod(self.shape)) if self.shape else 1
        return flat[:size].reshape(self.shape)


def _chunked(arrays: Sequence[np.ndarray], n: int) -> tuple[list[list[np.ndarray]], tuple[int, ...], int]:
    """Flatten each device buffer and split into n equal chunks (padded)."""
    if not arrays:
        raise ValueError("need at least one device buffer")
    shape = np.asarray(arrays[0]).shape
    for a in arrays:
        if np.asarray(a).shape != shape:
            raise ValueError("all device buffers must have the same shape")
    size = int(np.prod(shape)) if shape else 1
    padded = ((size + n - 1) // n) * n
    chunks: list[list[np.ndarray]] = []
    for a in arrays:
        flat = np.asarray(a).reshape(-1)
        if padded != size:
            flat = np.concatenate([flat, np.zeros(padded - size, dtype=flat.dtype)])
        chunks.append(np.split(flat, n))
    return chunks, shape, padded


def ring_reduce_scatter(
    arrays: Sequence[np.ndarray], dtype_policy: str = "f32"
) -> ShardedValue:
    """Reduce-scatter over ``n`` device buffers via the ring algorithm.

    Returns a :class:`ShardedValue` where device ``d`` owns the fully
    reduced chunk ``d``.  The accumulation order is the ring order, so
    float32/bf16 results carry the rounding pattern of real hardware rings.
    """
    n = len(arrays)
    reducer = _reducer_for(dtype_policy)
    chunks, shape, padded = _chunked(
        [_prepare(dtype_policy, np.asarray(a)) for a in arrays], n
    )
    if n == 1:
        return ShardedValue([chunks[0][0]], shape, padded)
    for step in range(n - 1):
        updates = {}
        for d in range(n):
            c = (d - step) % n
            dst = (d + 1) % n
            updates[(dst, c)] = reducer(chunks[dst][c], chunks[d][c])
        for (dst, c), v in updates.items():
            chunks[dst][c] = v
    # After n-1 steps device d holds reduced chunk (d + 1) mod n; relabel so
    # shard index == device index (a zero-cost renaming on hardware).
    shards = [chunks[(c - 1) % n][c] for c in range(n)]
    return ShardedValue(shards, shape, padded)


def ring_all_gather(value: ShardedValue) -> list[np.ndarray]:
    """All-gather shards back to a full buffer on every device.

    Runs the ``n - 1``-step ring motion and returns one full array per
    device (all identical).
    """
    n = value.num_devices
    if n == 1:
        return [value.assemble()]
    # have[d][c] is the chunk c as known by device d (None if not yet seen).
    have: list[list[np.ndarray | None]] = [
        [value.shards[c] if c == d else None for c in range(n)] for d in range(n)
    ]
    for step in range(n):
        if step == 0:
            continue
        for d in range(n):
            src = (d - 1) % n
            c = (src - step + 1) % n
            chunk = have[src][c]
            if chunk is None:
                raise AssertionError("ring all-gather schedule bug")
            have[d][c] = chunk
    out = []
    size = int(np.prod(value.shape)) if value.shape else 1
    for d in range(n):
        flat = np.concatenate([have[d][c] for c in range(n)])
        out.append(flat[:size].reshape(value.shape))
    return out


def ring_all_reduce(
    arrays: Sequence[np.ndarray], dtype_policy: str = "f32"
) -> list[np.ndarray]:
    """Ring all-reduce = reduce-scatter + all-gather."""
    return ring_all_gather(ring_reduce_scatter(arrays, dtype_policy))


# --- 2-D hierarchical collective (Section 3.3) -----------------------------


def _grid_shape(grid: Sequence[Sequence[np.ndarray]]) -> tuple[int, int]:
    x = len(grid)
    if x == 0:
        raise ValueError("empty device grid")
    y = len(grid[0])
    for col in grid:
        if len(col) != y:
            raise ValueError("ragged device grid")
    if y == 0:
        raise ValueError("empty device grid column")
    return x, y


def reduce_scatter_grid(
    grid: Sequence[Sequence[np.ndarray]], dtype_policy: str = "f32"
) -> list[list[ShardedValue]]:
    """Phase 1+2 of the 2-D schedule: Y reduce-scatter, then X reduce-scatter.

    ``grid[x][y]`` is the buffer of the chip at mesh coordinate (x, y).
    Returns per-device :class:`ShardedValue` views whose shards are the
    per-chip gradient shards fed to the sharded weight update: device (x, y)
    owns X-chunk ``x`` of Y-chunk ``y``.
    """
    x_size, y_size = _grid_shape(grid)
    # Y phase: one ring per column.
    y_sharded = [
        ring_reduce_scatter([grid[x][y] for y in range(y_size)], dtype_policy)
        for x in range(x_size)
    ]
    # X phase: for each y shard index, a ring across columns.
    out: list[list[ShardedValue]] = [[None] * y_size for _ in range(x_size)]  # type: ignore[list-item]
    for y in range(y_size):
        x_inputs = [y_sharded[x].shards[y] for x in range(x_size)]
        sub = ring_reduce_scatter(x_inputs, dtype_policy)
        for x in range(x_size):
            out[x][y] = ShardedValue(
                shards=[sub.shards[x]],
                shape=sub.shards[x].shape,
                padded_size=sub.shards[x].size,
            )
    return out


def all_gather_grid(
    shards: Sequence[Sequence[np.ndarray]],
    shape: tuple[int, ...],
    dtype_policy: str = "f32",
) -> list[list[np.ndarray]]:
    """Phase 4: all-gather along X then along Y, restoring full buffers.

    ``shards[x][y]`` is device (x, y)'s final shard (X-chunk ``x`` of
    Y-chunk ``y`` of the padded flat buffer); ``shape`` is the original
    (unpadded) buffer shape.
    """
    x_size = len(shards)
    y_size = len(shards[0])
    size = int(np.prod(shape)) if shape else 1
    padded_y = ((size + y_size - 1) // y_size) * y_size
    y_chunk = padded_y // y_size
    padded_x = ((y_chunk + x_size - 1) // x_size) * x_size
    # X all-gather per row-shard index.
    y_chunks: list[list[np.ndarray]] = [[None] * y_size for _ in range(x_size)]  # type: ignore[list-item]
    for y in range(y_size):
        sv = ShardedValue(
            shards=[np.asarray(shards[x][y]).reshape(-1) for x in range(x_size)],
            shape=(y_chunk,),
            padded_size=padded_x,
        )
        gathered = ring_all_gather(sv)
        for x in range(x_size):
            y_chunks[x][y] = gathered[x]
    # Y all-gather per column.
    out: list[list[np.ndarray]] = [[None] * y_size for _ in range(x_size)]  # type: ignore[list-item]
    for x in range(x_size):
        sv = ShardedValue(shards=y_chunks[x], shape=shape, padded_size=padded_y)
        gathered = ring_all_gather(sv)
        for y in range(y_size):
            out[x][y] = gathered[y]
    return out


def two_phase_all_reduce(
    grid: Sequence[Sequence[np.ndarray]],
    dtype_policy: str = "f32",
    shard_transform: Callable[[np.ndarray], np.ndarray] | None = None,
) -> list[list[np.ndarray]]:
    """The full 2-D hierarchical all-reduce, optionally fusing a shard op.

    ``shard_transform`` is applied to each device's reduced gradient shard
    *between* the reduce-scatter and all-gather phases — this is exactly
    where the paper's weight-update sharding computes the optimizer step, so
    passing the update function here reproduces the fused schedule of
    Section 3.3 (the transform must be elementwise/shape-preserving).
    """
    x_size, y_size = _grid_shape(grid)
    shape = np.asarray(grid[0][0]).shape
    reduced = reduce_scatter_grid(grid, dtype_policy)
    final_shards: list[list[np.ndarray]] = [[None] * y_size for _ in range(x_size)]  # type: ignore[list-item]
    for x in range(x_size):
        for y in range(y_size):
            shard = reduced[x][y].shards[0]
            if shard_transform is not None:
                transformed = np.asarray(shard_transform(shard))
                if transformed.shape != shard.shape:
                    raise ValueError("shard_transform must preserve shape")
                shard = transformed
            final_shards[x][y] = shard
    return all_gather_grid(final_shards, shape, dtype_policy)

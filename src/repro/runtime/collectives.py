"""Numpy-executed ring and 2-D hierarchical collectives.

The algorithms replicate the data motion of the hardware schedules:

* ring reduce-scatter — ``n - 1`` steps; at step ``s`` device ``d`` forwards
  chunk ``(d - s) mod n`` to device ``(d + 1) mod n``, which accumulates it;
* ring all-gather — the same motion without reduction;
* 2-D hierarchical all-reduce — reduce-scatter along Y per mesh column,
  reduce-scatter along X per row, an optional per-shard transform (the
  *sharded weight update* of Section 3.2/3.3), then all-gathers along X and
  Y.

Reductions can run in float64/float32 or emulated bfloat16 (rounding the
partial sum at every hop, as in-network bf16 summation does).

Two implementations coexist (DESIGN.md §6):

* the **reference** kernels (``_reference_*``) execute the schedule with
  per-device Python loops, one chunk object at a time — slow but an
  unmistakable transcription of the hardware data motion;
* the **vectorized** kernels (the public functions) reduce into a single
  flat ``(padded,)`` accumulator whose chunk ``c`` is slot ``c``, sweeping
  the devices linearly twice: each ring hop becomes one contiguous
  prefix/suffix block addition straight off the source buffer (see
  :func:`_linear_ring_passes`) — no staging copies, no index gathers, and
  a cache-resident accumulator.  Because every per-element reduction
  happens in the same ring order with the same dtype, the results are
  **bit-identical** to the reference kernels under every dtype policy
  (property-tested in ``tests/test_runtime_collectives.py``).

Padding metadata is cached keyed by ``(n, size)`` and quantization staging
buffers are pooled keyed by shape/dtype, so repeated steps — the trainer
hot loop — pay zero setup and zero large allocations beyond their outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from time import perf_counter as _perf
from typing import Callable, Sequence

import numpy as np

from repro import telemetry as _telemetry
from repro.numerics.bfloat16 import _round_inplace_nonan, bf16_add, round_to_bfloat16

#: Supported accumulation policies.
DTYPE_POLICIES = ("f64", "f32", "bf16")

Reducer = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _reducer_for(policy: str) -> Reducer:
    if policy == "f64":
        return lambda a, b: (a.astype(np.float64) + b.astype(np.float64))
    if policy == "f32":
        return lambda a, b: (a.astype(np.float32) + b.astype(np.float32))
    if policy == "bf16":
        return bf16_add
    raise ValueError(f"unknown dtype policy {policy!r}; choose from {DTYPE_POLICIES}")


def _dtype_for(policy: str) -> np.dtype:
    """Storage dtype of a policy's wire format (bf16 is emulated in f32)."""
    if policy == "f64":
        return np.dtype(np.float64)
    if policy in ("f32", "bf16"):
        return np.dtype(np.float32)
    raise ValueError(f"unknown dtype policy {policy!r}; choose from {DTYPE_POLICIES}")


def _prepare(policy: str, array: np.ndarray) -> np.ndarray:
    """Quantize an input buffer to the wire format of the policy."""
    if policy == "bf16":
        return round_to_bfloat16(array)
    if policy == "f64":
        return array.astype(np.float64)
    return array.astype(np.float32)


# --- cached schedule / padding metadata -------------------------------------


@lru_cache(maxsize=None)
def padded_chunk_layout(n: int, size: int) -> tuple[int, int]:
    """``(padded, chunk)`` for splitting a ``size``-element buffer n ways."""
    padded = ((size + n - 1) // n) * n
    return padded, padded // n


# --- telemetry ---------------------------------------------------------------


def _record_collective(
    op: str, n: int, chunk: int, itemsize: int, policy: str, seconds: float,
    axis: str = "ring", steps: int | None = None,
) -> None:
    """Account one collective launch: bytes on the wire, ring steps, time.

    The byte model is the ring's: ``n - 1`` hops, every device forwarding
    one ``chunk``-element message per hop — ``n * (n - 1) * chunk *
    itemsize`` bytes per phase, the same traffic term the alpha-beta cost
    model charges.  Only called when telemetry is enabled.
    """
    m = _telemetry.metrics
    if steps is None:
        steps = n - 1
    m.counter("collective_bytes", op=op, axis=axis, policy=policy).inc(
        n * (n - 1) * chunk * itemsize
    )
    m.counter("collective_ring_steps", op=op, axis=axis).inc(steps)
    m.counter("collective_launches", op=op, axis=axis).inc()
    m.histogram("collective_seconds", op=op, axis=axis).observe(seconds)


def _padding_cache_collector(m) -> None:
    """Snapshot-time gauges for the padding-layout ``lru_cache``."""
    info = padded_chunk_layout.cache_info()
    m.gauge("padding_layout_cache_hits").set(info.hits)
    m.gauge("padding_layout_cache_misses").set(info.misses)
    m.gauge("padding_layout_cache_size").set(info.currsize)


_telemetry.metrics.register_collector(_padding_cache_collector)


#: Reusable staging buffers keyed by (shape, dtype) — repeated steps of
#: the trainer hot loop reuse one allocation instead of paying a multi-MB
#: mmap + page-fault round trip per collective.  Not thread-safe (nothing in
#: the functional layer is).
_SCRATCH: dict[tuple, np.ndarray] = {}


def _scratch(shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
    key = (shape, np.dtype(dtype).str)
    buf = _SCRATCH.get(key)
    if buf is None:
        if len(_SCRATCH) >= 16:
            _SCRATCH.clear()
        buf = _SCRATCH[key] = np.empty(shape, dtype)
    return buf


@dataclass
class ShardedValue:
    """Per-device shards of a reduced buffer plus reassembly metadata.

    ``shards[d]`` is the flattened chunk owned by device ``d``; chunk ``d``
    of the padded flat buffer lives on device ``d``.
    """

    shards: list[np.ndarray]
    shape: tuple[int, ...]
    padded_size: int

    @property
    def num_devices(self) -> int:
        return len(self.shards)

    def assemble(self) -> np.ndarray:
        """Concatenate shards and strip padding back to the original shape."""
        flat = np.concatenate(self.shards)
        size = int(np.prod(self.shape)) if self.shape else 1
        return flat[:size].reshape(self.shape)


def _check_same_shape(arrays: Sequence[np.ndarray]) -> tuple[int, ...]:
    if not len(arrays):
        raise ValueError("need at least one device buffer")
    shape = np.asarray(arrays[0]).shape
    for a in arrays:
        if np.asarray(a).shape != shape:
            raise ValueError("all device buffers must have the same shape")
    return shape


def _linear_ring_passes(
    acc: np.ndarray,
    srcs,
    size: int,
    chunk: int,
    bf16_round: Callable[[np.ndarray], np.ndarray] | None = None,
) -> np.ndarray:
    """Ring reduce-scatter as two linear sweeps of contiguous block adds.

    ``acc`` is the flat ``(padded,)`` accumulator whose chunk ``c`` is slot
    ``c``; ``srcs[d]`` is device ``d``'s quantized flat buffer (``size``
    elements).  Slot ``c`` must accumulate devices in the cyclic ring order
    ``c, c+1, ..., n-1, 0, ..., c-1`` — which a linear sweep over devices
    realizes exactly: in pass one device ``d`` *initializes* its own slot
    (a copy, so signed zeros and NaN payloads survive bit-exactly) and is
    added to every slot below ``d``; in pass two it is added to every slot
    above ``d``.  Each step is therefore one contiguous prefix/suffix add
    straight off the source buffer (operand order ``contribution + acc``,
    matching ``reducer(chunks[dst][c], chunks[d][c])`` of the reference
    schedule) — no staging copies, no index arrays, and the accumulator
    stays cache-resident.  For bf16 each touched region is re-rounded
    after its add, exactly one rounding per slot per hop.

    Padding slots (``>= size``) are never written and must be pre-zeroed.
    ``bf16_round`` is the per-hop in-place rounding function for the bf16
    policy (:func:`_bf16_round_for` picks the NaN-checked or the faster
    NaN-free variant per collective); ``None`` for f32/f64.
    """
    n = len(srcs)
    for d in range(n):
        lo = d * chunk
        hi = min(lo + chunk, size)
        if hi > lo:
            acc[lo:hi] = srcs[d][lo:hi]
        end = min(lo, size)
        if end > 0:
            np.add(srcs[d][:end], acc[:end], out=acc[:end])
            if bf16_round is not None:
                bf16_round(acc[:end])
    for d in range(n - 1):
        start = min((d + 1) * chunk, size)
        if start < size:
            np.add(srcs[d][start:size], acc[start:size], out=acc[start:size])
            if bf16_round is not None:
                bf16_round(acc[start:size])
    return acc


def _round_checked(seg: np.ndarray) -> np.ndarray:
    return round_to_bfloat16(seg, out=seg)


def _bf16_round_for(staged: np.ndarray) -> Callable[[np.ndarray], np.ndarray]:
    """Pick the per-hop rounding variant for one collective.

    When every staged input is finite, accumulation chains can saturate to
    ±inf but never produce NaN, so the NaN-mask passes of the full rounding
    can be skipped bit-exactly; any NaN/inf input falls back to the checked
    variant.
    """
    finite = np.isfinite(staged, out=_scratch(staged.shape, np.dtype(np.bool_)))
    return _round_inplace_nonan if finite.all() else _round_checked


def _quantized_sources(
    flats, dtype: np.dtype, policy: str
) -> tuple[Sequence[np.ndarray] | np.ndarray, Callable | None]:
    """Per-device flat buffers in the policy's wire format.

    Returns ``(srcs, bf16_round)``.  Buffers already in the wire dtype are
    used as-is (zero copies — the hot path); otherwise the stack is staged
    once through a pooled scratch block.  For bf16 each row gets a fused
    copy+round (bias temporaries stay cache-sized) plus a finiteness check
    while the row is still cache-hot, which selects the per-hop rounding
    variant (see :func:`_bf16_round_for`); ``bf16_round`` is ``None`` for
    the other policies.
    """
    if policy != "bf16":
        if all(f.dtype == dtype for f in flats):
            return flats, None
        staged = _scratch((len(flats), flats[0].size), dtype)
        for d, f in enumerate(flats):
            staged[d] = f
        return staged, None
    staged = _scratch((len(flats), flats[0].size), dtype)
    row_ok = _scratch((flats[0].size,), np.dtype(np.bool_))
    finite = True
    for d, f in enumerate(flats):
        round_to_bfloat16(f, out=staged[d])
        if finite:
            finite = bool(np.isfinite(staged[d], out=row_ok).all())
    return staged, (_round_inplace_nonan if finite else _round_checked)


def _ring_reduce_scatter_impl(
    arrays: Sequence[np.ndarray], dtype_policy: str
) -> tuple[np.ndarray, tuple[int, ...], int]:
    """Shared core: returns ``(shards (n, chunk), shape, padded)``."""
    dtype = _dtype_for(dtype_policy)
    n = len(arrays)
    shape = _check_same_shape(arrays)
    size = int(np.prod(shape)) if shape else 1
    padded, chunk = padded_chunk_layout(n, size)
    flats = [np.asarray(a).reshape(-1) for a in arrays]
    srcs, bf16_round = _quantized_sources(flats, dtype, dtype_policy)
    acc = np.empty(padded, dtype=dtype)
    acc[size:] = 0
    _linear_ring_passes(acc, srcs, size, chunk, bf16_round)
    return acc.reshape(n, chunk), shape, padded


def ring_reduce_scatter(
    arrays: Sequence[np.ndarray], dtype_policy: str = "f32"
) -> ShardedValue:
    """Reduce-scatter over ``n`` device buffers via the ring algorithm.

    Returns a :class:`ShardedValue` where device ``d`` owns the fully
    reduced chunk ``d``.  The accumulation order is the ring order, so
    float32/bf16 results carry the rounding pattern of real hardware rings.
    """
    t0 = _perf()
    with _telemetry.tracer.span("ring_reduce_scatter", category="comm"):
        shards, shape, padded = _ring_reduce_scatter_impl(arrays, dtype_policy)
    if _telemetry.enabled:
        n = len(arrays)
        _record_collective(
            "reduce_scatter", n, padded // n,
            _dtype_for(dtype_policy).itemsize, dtype_policy, _perf() - t0,
        )
    return ShardedValue(list(shards), shape, padded)


def ring_all_gather(value: ShardedValue) -> list[np.ndarray]:
    """All-gather shards back to a full buffer on every device.

    The ring motion moves chunks without arithmetic, so the vectorized
    fast path assembles the full buffer once and materializes one
    independent copy per device — bit-identical to (and assertion-free,
    unlike) the step-by-step :func:`_reference_ring_all_gather`.
    """
    n = value.num_devices
    if n == 1:
        return [value.assemble()]
    t0 = _perf()
    with _telemetry.tracer.span("ring_all_gather", category="comm"):
        size = int(np.prod(value.shape)) if value.shape else 1
        full = np.concatenate(value.shards)[:size]
        out = np.empty((n, size), dtype=full.dtype)
        out[:] = full
    if _telemetry.enabled:
        # The gather is pure data movement; the wire dtype stands in for
        # the policy label (bf16 shards travel as f32, matching the wire).
        policy = {"float64": "f64", "float32": "f32"}.get(
            full.dtype.name, full.dtype.name
        )
        _record_collective(
            "all_gather", n, value.padded_size // n, full.dtype.itemsize,
            policy, _perf() - t0,
        )
    return [out[d].reshape(value.shape) for d in range(n)]


def ring_all_reduce(
    arrays: Sequence[np.ndarray], dtype_policy: str = "f32"
) -> list[np.ndarray]:
    """Ring all-reduce = reduce-scatter + all-gather.

    The reduce-scatter shards land as rows of one contiguous block in chunk
    order, so the gather phase reads the reduced buffer straight off the
    block — no per-shard concatenation.
    """
    t0 = _perf()
    with _telemetry.tracer.span("ring_all_reduce", category="comm"):
        shards, shape, _ = _ring_reduce_scatter_impl(arrays, dtype_policy)
        n = shards.shape[0]
        size = int(np.prod(shape)) if shape else 1
        full = shards.reshape(-1)[:size]
        out = np.empty((n, size), dtype=shards.dtype)
        out[:] = full
    if _telemetry.enabled:
        # Reduce-scatter + all-gather: twice the one-phase ring traffic.
        _record_collective(
            "all_reduce", n, 2 * shards.shape[1],
            _dtype_for(dtype_policy).itemsize, dtype_policy, _perf() - t0,
            steps=2 * (n - 1),
        )
    return [out[d].reshape(shape) for d in range(n)]


# --- 2-D hierarchical collective (Section 3.3) -----------------------------


def _grid_shape(grid: Sequence[Sequence[np.ndarray]]) -> tuple[int, int]:
    x = len(grid)
    if x == 0:
        raise ValueError("empty device grid")
    y = len(grid[0])
    for col in grid:
        if len(col) != y:
            raise ValueError("ragged device grid")
    if y == 0:
        raise ValueError("empty device grid column")
    return x, y


def reduce_scatter_grid(
    grid: Sequence[Sequence[np.ndarray]], dtype_policy: str = "f32"
) -> list[list[ShardedValue]]:
    """Phase 1+2 of the 2-D schedule: Y reduce-scatter, then X reduce-scatter.

    ``grid[x][y]`` is the buffer of the chip at mesh coordinate (x, y).
    Returns per-device :class:`ShardedValue` views whose shards are the
    per-chip gradient shards fed to the sharded weight update: device (x, y)
    owns X-chunk ``x`` of Y-chunk ``y``.

    Both ring phases run batched: the ``x_size`` independent column rings
    (and then the ``y_size`` row rings) execute as one stacked kernel call.
    """
    dtype = _dtype_for(dtype_policy)
    x_size, y_size = _grid_shape(grid)
    arrays = [np.asarray(g) for col in grid for g in col]
    shape = _check_same_shape(arrays)
    size = int(np.prod(shape)) if shape else 1
    flats = [a.reshape(-1) for a in arrays]
    srcs, bf16_round = _quantized_sources(flats, dtype, dtype_policy)
    # Y phase: one ring per mesh column.
    padded_y, y_chunk = padded_chunk_layout(y_size, size)
    t0 = _perf()
    with _telemetry.tracer.span("reduce_scatter_y", category="comm"):
        acc_y = np.empty((x_size, padded_y), dtype=dtype)
        acc_y[:, size:] = 0
        for x in range(x_size):
            _linear_ring_passes(
                acc_y[x],
                [srcs[x * y_size + y] for y in range(y_size)],
                size,
                y_chunk,
                bf16_round,
            )
    if _telemetry.enabled:
        # x_size concurrent column rings of y_size members each.
        _record_collective(
            "reduce_scatter", y_size, x_size * y_chunk, dtype.itemsize,
            dtype_policy, _perf() - t0, axis="y",
        )
    # X phase: for each Y-shard index, a ring across columns.  Sources are
    # the Y accumulators (already quantized, so no re-rounding for bf16):
    # device x of ring y contributes Y-chunk y of mesh column x.  The
    # NaN-free fast path must be re-decided here: finite inputs can
    # saturate to +inf in one column and -inf in another, which meet as
    # NaN when reducing across X.
    if dtype_policy == "bf16":
        bf16_round = _bf16_round_for(acc_y)
    acc_y3 = acc_y.reshape(x_size, y_size, y_chunk)
    padded_x, x_chunk = padded_chunk_layout(x_size, y_chunk)
    t0 = _perf()
    with _telemetry.tracer.span("reduce_scatter_x", category="comm"):
        x_shards = np.empty((y_size, padded_x), dtype=dtype)
        x_shards[:, y_chunk:] = 0
        for y in range(y_size):
            _linear_ring_passes(
                x_shards[y],
                [acc_y3[x, y] for x in range(x_size)],
                y_chunk,
                x_chunk,
                bf16_round,
            )
    if _telemetry.enabled:
        # y_size concurrent row rings over the already-1/y payload.
        _record_collective(
            "reduce_scatter", x_size, y_size * x_chunk, dtype.itemsize,
            dtype_policy, _perf() - t0, axis="x",
        )
    shards3 = x_shards.reshape(y_size, x_size, x_chunk)
    out: list[list[ShardedValue]] = [[None] * y_size for _ in range(x_size)]  # type: ignore[list-item]
    for x in range(x_size):
        for y in range(y_size):
            shard = shards3[y, x]
            out[x][y] = ShardedValue(
                shards=[shard], shape=shard.shape, padded_size=shard.size
            )
    return out


def all_gather_grid(
    shards: Sequence[Sequence[np.ndarray]],
    shape: tuple[int, ...],
    dtype_policy: str = "f32",
) -> list[list[np.ndarray]]:
    """Phase 4: all-gather along X then along Y, restoring full buffers.

    ``shards[x][y]`` is device (x, y)'s final shard (X-chunk ``x`` of
    Y-chunk ``y`` of the padded flat buffer); ``shape`` is the original
    (unpadded) buffer shape.  Pure data movement: the full buffer is
    assembled once and every device receives an independent copy.
    """
    _dtype_for(dtype_policy)
    x_size = len(shards)
    y_size = len(shards[0])
    size = int(np.prod(shape)) if shape else 1
    padded_y, y_chunk = padded_chunk_layout(y_size, size)
    padded_x, x_chunk = padded_chunk_layout(x_size, y_chunk)
    first = np.asarray(shards[0][0])
    t0 = _perf()
    with _telemetry.tracer.span("all_gather_grid", category="comm"):
        # Assemble: X-gather concatenates x shards (strip to y_chunk), Y-gather
        # concatenates the y chunks (strip to size).
        assembled = np.empty((y_size, x_size, x_chunk), dtype=first.dtype)
        for x in range(x_size):
            for y in range(y_size):
                assembled[y, x] = np.asarray(shards[x][y]).reshape(-1)
        full = assembled.reshape(y_size, padded_x)[:, :y_chunk].reshape(-1)[:size]
        n = x_size * y_size
        stacked = np.empty((n, size), dtype=full.dtype)
        stacked[:] = full
    if _telemetry.enabled:
        dt = _perf() - t0
        m = _telemetry.metrics
        itemsize = first.dtype.itemsize
        m.counter("collective_bytes", op="all_gather", axis="x", policy=dtype_policy).inc(
            x_size * (x_size - 1) * y_size * x_chunk * itemsize
        )
        m.counter("collective_bytes", op="all_gather", axis="y", policy=dtype_policy).inc(
            y_size * (y_size - 1) * x_size * y_chunk * itemsize
        )
        m.counter("collective_ring_steps", op="all_gather", axis="xy").inc(
            (x_size - 1) + (y_size - 1)
        )
        m.counter("collective_launches", op="all_gather", axis="xy").inc()
        m.histogram("collective_seconds", op="all_gather", axis="xy").observe(dt)
    out: list[list[np.ndarray]] = [[None] * y_size for _ in range(x_size)]  # type: ignore[list-item]
    for x in range(x_size):
        for y in range(y_size):
            out[x][y] = stacked[x * y_size + y].reshape(shape)
    return out


def two_phase_all_reduce(
    grid: Sequence[Sequence[np.ndarray]],
    dtype_policy: str = "f32",
    shard_transform: Callable[[np.ndarray], np.ndarray] | None = None,
) -> list[list[np.ndarray]]:
    """The full 2-D hierarchical all-reduce, optionally fusing a shard op.

    ``shard_transform`` is applied to each device's reduced gradient shard
    *between* the reduce-scatter and all-gather phases — this is exactly
    where the paper's weight-update sharding computes the optimizer step, so
    passing the update function here reproduces the fused schedule of
    Section 3.3 (the transform must be elementwise/shape-preserving).
    """
    x_size, y_size = _grid_shape(grid)
    shape = np.asarray(grid[0][0]).shape
    with _telemetry.tracer.span("two_phase_all_reduce", category="comm"):
        reduced = reduce_scatter_grid(grid, dtype_policy)
        final_shards: list[list[np.ndarray]] = [[None] * y_size for _ in range(x_size)]  # type: ignore[list-item]
        with _telemetry.tracer.span("shard_transform", category="update"):
            for x in range(x_size):
                for y in range(y_size):
                    shard = reduced[x][y].shards[0]
                    if shard_transform is not None:
                        transformed = np.asarray(shard_transform(shard))
                        if transformed.shape != shard.shape:
                            raise ValueError("shard_transform must preserve shape")
                        shard = transformed
                    final_shards[x][y] = shard
        out = all_gather_grid(final_shards, shape, dtype_policy)
    if _telemetry.enabled:
        _telemetry.metrics.counter(
            "collective_launches", op="two_phase_all_reduce", axis="xy"
        ).inc()
    return out


# --- reference implementations (retained for bit-identity cross-checks) ----


def _reference_chunked(
    arrays: Sequence[np.ndarray], n: int
) -> tuple[list[list[np.ndarray]], tuple[int, ...], int]:
    """Flatten each device buffer and split into n equal chunks (padded)."""
    shape = _check_same_shape(arrays)
    size = int(np.prod(shape)) if shape else 1
    padded = ((size + n - 1) // n) * n
    chunks: list[list[np.ndarray]] = []
    for a in arrays:
        flat = np.asarray(a).reshape(-1)
        if padded != size:
            flat = np.concatenate([flat, np.zeros(padded - size, dtype=flat.dtype)])
        chunks.append(np.split(flat, n))
    return chunks, shape, padded


def _reference_ring_reduce_scatter(
    arrays: Sequence[np.ndarray], dtype_policy: str = "f32"
) -> ShardedValue:
    """Per-device-loop reduce-scatter: the schedule transcribed literally."""
    n = len(arrays)
    reducer = _reducer_for(dtype_policy)
    chunks, shape, padded = _reference_chunked(
        [_prepare(dtype_policy, np.asarray(a)) for a in arrays], n
    )
    if n == 1:
        return ShardedValue([chunks[0][0]], shape, padded)
    for step in range(n - 1):
        updates = {}
        for d in range(n):
            c = (d - step) % n
            dst = (d + 1) % n
            updates[(dst, c)] = reducer(chunks[dst][c], chunks[d][c])
        for (dst, c), v in updates.items():
            chunks[dst][c] = v
    shards = [chunks[(c - 1) % n][c] for c in range(n)]
    return ShardedValue(shards, shape, padded)


def _reference_ring_all_gather(value: ShardedValue) -> list[np.ndarray]:
    """Step-by-step ring all-gather.

    Tracks only the single chunk each device receives per step (``carry``)
    instead of the full O(n²) per-device ``have`` table of earlier
    revisions: at step ``s`` device ``d`` receives its predecessor's carry,
    which is reduced chunk ``(d - s) mod n``.
    """
    n = value.num_devices
    if n == 1:
        return [value.assemble()]
    received: list[list[np.ndarray]] = [[None] * n for _ in range(n)]  # type: ignore[list-item]
    carry = list(value.shards)
    for d in range(n):
        received[d][d] = value.shards[d]
    for step in range(1, n):
        carry = [carry[(d - 1) % n] for d in range(n)]
        for d in range(n):
            received[d][(d - step) % n] = carry[d]
    out = []
    size = int(np.prod(value.shape)) if value.shape else 1
    for d in range(n):
        flat = np.concatenate(received[d])
        out.append(flat[:size].reshape(value.shape))
    return out


def _reference_ring_all_reduce(
    arrays: Sequence[np.ndarray], dtype_policy: str = "f32"
) -> list[np.ndarray]:
    return _reference_ring_all_gather(
        _reference_ring_reduce_scatter(arrays, dtype_policy)
    )


def _reference_reduce_scatter_grid(
    grid: Sequence[Sequence[np.ndarray]], dtype_policy: str = "f32"
) -> list[list[ShardedValue]]:
    """Per-ring-loop 2-D reduce-scatter (phases 1+2)."""
    x_size, y_size = _grid_shape(grid)
    y_sharded = [
        _reference_ring_reduce_scatter(
            [grid[x][y] for y in range(y_size)], dtype_policy
        )
        for x in range(x_size)
    ]
    out: list[list[ShardedValue]] = [[None] * y_size for _ in range(x_size)]  # type: ignore[list-item]
    for y in range(y_size):
        x_inputs = [y_sharded[x].shards[y] for x in range(x_size)]
        sub = _reference_ring_reduce_scatter(x_inputs, dtype_policy)
        for x in range(x_size):
            out[x][y] = ShardedValue(
                shards=[sub.shards[x]],
                shape=sub.shards[x].shape,
                padded_size=sub.shards[x].size,
            )
    return out


def _reference_all_gather_grid(
    shards: Sequence[Sequence[np.ndarray]],
    shape: tuple[int, ...],
    dtype_policy: str = "f32",
) -> list[list[np.ndarray]]:
    """Per-ring-loop 2-D all-gather (phase 4)."""
    x_size = len(shards)
    y_size = len(shards[0])
    size = int(np.prod(shape)) if shape else 1
    padded_y = ((size + y_size - 1) // y_size) * y_size
    y_chunk = padded_y // y_size
    padded_x = ((y_chunk + x_size - 1) // x_size) * x_size
    y_chunks: list[list[np.ndarray]] = [[None] * y_size for _ in range(x_size)]  # type: ignore[list-item]
    for y in range(y_size):
        sv = ShardedValue(
            shards=[np.asarray(shards[x][y]).reshape(-1) for x in range(x_size)],
            shape=(y_chunk,),
            padded_size=padded_x,
        )
        gathered = _reference_ring_all_gather(sv)
        for x in range(x_size):
            y_chunks[x][y] = gathered[x]
    out: list[list[np.ndarray]] = [[None] * y_size for _ in range(x_size)]  # type: ignore[list-item]
    for x in range(x_size):
        sv = ShardedValue(shards=y_chunks[x], shape=shape, padded_size=padded_y)
        gathered = _reference_ring_all_gather(sv)
        for y in range(y_size):
            out[x][y] = gathered[y]
    return out


def _reference_two_phase_all_reduce(
    grid: Sequence[Sequence[np.ndarray]],
    dtype_policy: str = "f32",
    shard_transform: Callable[[np.ndarray], np.ndarray] | None = None,
) -> list[list[np.ndarray]]:
    x_size, y_size = _grid_shape(grid)
    shape = np.asarray(grid[0][0]).shape
    reduced = _reference_reduce_scatter_grid(grid, dtype_policy)
    final_shards: list[list[np.ndarray]] = [[None] * y_size for _ in range(x_size)]  # type: ignore[list-item]
    for x in range(x_size):
        for y in range(y_size):
            shard = reduced[x][y].shards[0]
            if shard_transform is not None:
                transformed = np.asarray(shard_transform(shard))
                if transformed.shape != shard.shape:
                    raise ValueError("shard_transform must preserve shape")
                shard = transformed
            final_shards[x][y] = shard
    return _reference_all_gather_grid(final_shards, shape, dtype_policy)

"""Numpy-executed ring and 2-D hierarchical collectives.

The algorithms replicate the data motion of the hardware schedules:

* ring reduce-scatter — ``n - 1`` steps; at step ``s`` device ``d`` forwards
  chunk ``(d - s) mod n`` to device ``(d + 1) mod n``, which accumulates it;
* ring all-gather — the same motion without reduction;
* 2-D hierarchical all-reduce — reduce-scatter along Y per mesh column,
  reduce-scatter along X per row, an optional per-shard transform (the
  *sharded weight update* of Section 3.2/3.3), then all-gathers along X and
  Y.

Reductions can run in float64/float32 or emulated bfloat16 (rounding the
partial sum at every hop, as in-network bf16 summation does).

Two implementations coexist (DESIGN.md §6):

* the **reference** kernels (``_reference_*``) execute the schedule with
  per-device Python loops, one chunk object at a time — slow but an
  unmistakable transcription of the hardware data motion;
* the **vectorized** kernels (the public functions) reduce into a single
  flat ``(padded,)`` accumulator whose chunk ``c`` is slot ``c``, sweeping
  the devices linearly twice: each ring hop becomes one contiguous
  prefix/suffix block addition straight off the source buffer (see
  :func:`_linear_ring_passes`) — no staging copies, no index gathers, and
  a cache-resident accumulator.  Because every per-element reduction
  happens in the same ring order with the same dtype, the results are
  **bit-identical** to the reference kernels under every dtype policy
  (property-tested in ``tests/test_runtime_collectives.py``).

Every public collective also has a **device-major** entry point
(DESIGN.md §12): inputs may arrive as one stacked ``(n_devices, *shape)``
block (or :class:`~repro.runtime.stacked.StackedValue`) instead of a list
of per-device arrays, and the ``*_stacked`` variants return a *replicated*
``StackedValue`` — one physical result buffer lazily viewed by every
device — instead of materializing ``n`` identical copies.  The grid
collectives batch their independent column/row rings into single stacked
kernel calls (:func:`_linear_ring_passes_batched`), so a 64x64-grid phase
is ``O(ring_steps)`` numpy operations rather than ``O(x * y *
ring_steps)`` Python iterations.  This is what pushes the runtime from
~256 to 4096 real devices.

Padding metadata is cached keyed by ``(n, size)`` and quantization staging
buffers are pooled keyed by shape/dtype — both behind *bounded* LRUs so a
workload sweeping many distinct shapes cannot grow them without limit —
and repeated steps (the trainer hot loop) pay zero setup and zero large
allocations beyond their outputs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from functools import lru_cache
from time import perf_counter as _perf
from typing import Callable, Sequence

import numpy as np

from repro import telemetry as _telemetry
from repro.numerics.bfloat16 import _round_inplace_nonan, bf16_add, round_to_bfloat16
from repro.runtime.stacked import StackedValue

#: Supported accumulation policies.
DTYPE_POLICIES = ("f64", "f32", "bf16")

Reducer = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _reducer_for(policy: str) -> Reducer:
    if policy == "f64":
        return lambda a, b: (a.astype(np.float64) + b.astype(np.float64))
    if policy == "f32":
        return lambda a, b: (a.astype(np.float32) + b.astype(np.float32))
    if policy == "bf16":
        return bf16_add
    raise ValueError(f"unknown dtype policy {policy!r}; choose from {DTYPE_POLICIES}")


def _dtype_for(policy: str) -> np.dtype:
    """Storage dtype of a policy's wire format (bf16 is emulated in f32)."""
    if policy == "f64":
        return np.dtype(np.float64)
    if policy in ("f32", "bf16"):
        return np.dtype(np.float32)
    raise ValueError(f"unknown dtype policy {policy!r}; choose from {DTYPE_POLICIES}")


def _prepare(policy: str, array: np.ndarray) -> np.ndarray:
    """Quantize an input buffer to the wire format of the policy."""
    if policy == "bf16":
        return round_to_bfloat16(array)
    if policy == "f64":
        return array.astype(np.float64)
    return array.astype(np.float32)


# --- cached schedule / padding metadata -------------------------------------


@lru_cache(maxsize=1024)
def padded_chunk_layout(n: int, size: int) -> tuple[int, int]:
    """``(padded, chunk)`` for splitting a ``size``-element buffer n ways.

    Bounded LRU: a sweep over many distinct ``(n, size)`` pairs (shape
    searches, hypothesis runs) evicts the oldest layouts instead of growing
    without limit; the hot-loop pairs stay resident.
    """
    padded = ((size + n - 1) // n) * n
    return padded, padded // n


# --- telemetry ---------------------------------------------------------------


def _record_collective(
    op: str, n: int, chunk: int, itemsize: int, policy: str, seconds: float,
    axis: str = "ring", steps: int | None = None,
) -> None:
    """Account one collective launch: bytes on the wire, ring steps, time.

    The byte model is the ring's: ``n - 1`` hops, every device forwarding
    one ``chunk``-element message per hop — ``n * (n - 1) * chunk *
    itemsize`` bytes per phase, the same traffic term the alpha-beta cost
    model charges.  Only called when telemetry is enabled.
    """
    m = _telemetry.metrics
    if steps is None:
        steps = n - 1
    m.counter("collective_bytes", op=op, axis=axis, policy=policy).inc(
        n * (n - 1) * chunk * itemsize
    )
    m.counter("collective_ring_steps", op=op, axis=axis).inc(steps)
    m.counter("collective_launches", op=op, axis=axis).inc()
    m.histogram("collective_seconds", op=op, axis=axis).observe(seconds)


class _LRUBufferPool:
    """Bounded LRU of reusable staging buffers keyed by (shape, dtype).

    The old pool cleared itself wholesale past a size threshold, throwing
    away the hot-loop buffers along with the stale ones; this one evicts
    only least-recently-used entries, and its hit/miss/eviction counts are
    exact (exposed as ``scratch_pool_cache_*`` gauges at snapshot time).
    Not thread-safe (nothing in the functional layer is).
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._buffers: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._buffers)

    def get(self, shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        key = (shape, np.dtype(dtype).str)
        buf = self._buffers.get(key)
        if buf is not None:
            self._buffers.move_to_end(key)
            self.hits += 1
            return buf
        self.misses += 1
        while len(self._buffers) >= self.maxsize:
            self._buffers.popitem(last=False)
            self.evictions += 1
        buf = self._buffers[key] = np.empty(shape, dtype)
        return buf

    def clear(self) -> None:
        self._buffers.clear()


_SCRATCH = _LRUBufferPool(maxsize=32)


def _scratch(shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
    return _SCRATCH.get(shape, dtype)


def _cache_collector(m) -> None:
    """Snapshot-time gauges for the padding-layout and scratch-pool caches."""
    info = padded_chunk_layout.cache_info()
    m.gauge("padding_layout_cache_hits").set(info.hits)
    m.gauge("padding_layout_cache_misses").set(info.misses)
    m.gauge("padding_layout_cache_size").set(info.currsize)
    m.gauge("scratch_pool_cache_hits").set(_SCRATCH.hits)
    m.gauge("scratch_pool_cache_misses").set(_SCRATCH.misses)
    m.gauge("scratch_pool_cache_evictions").set(_SCRATCH.evictions)
    m.gauge("scratch_pool_cache_size").set(len(_SCRATCH))


_telemetry.metrics.register_collector(_cache_collector)


@dataclass
class ShardedValue:
    """Per-device shards of a reduced buffer plus reassembly metadata.

    ``shards[d]`` is the flattened chunk owned by device ``d``; chunk ``d``
    of the padded flat buffer lives on device ``d``.  When the shards are
    rows of one contiguous ``(n, chunk)`` device-major allocation (the
    vectorized kernels always produce this), ``block`` is that backing
    array and the gather/assembly paths read the reduced buffer straight
    off it with zero concatenation.
    """

    shards: list[np.ndarray]
    shape: tuple[int, ...]
    padded_size: int
    block: np.ndarray | None = field(default=None, repr=False, compare=False)

    @property
    def num_devices(self) -> int:
        return len(self.shards)

    def assemble(self) -> np.ndarray:
        """Concatenate shards and strip padding back to the original shape."""
        size = int(np.prod(self.shape)) if self.shape else 1
        if self.block is not None:
            # Copy: assemble() has always returned freshly owned memory.
            flat = self.block.reshape(-1)[:size].copy()
        else:
            flat = np.concatenate(self.shards)
        return flat[:size].reshape(self.shape)


def _check_same_shape(arrays: Sequence[np.ndarray]) -> tuple[int, ...]:
    if not len(arrays):
        raise ValueError("need at least one device buffer")
    shape = np.asarray(arrays[0]).shape
    for a in arrays:
        if np.asarray(a).shape != shape:
            raise ValueError("all device buffers must have the same shape")
    return shape


def _as_device_block(
    arrays,
) -> tuple[np.ndarray | None, Sequence[np.ndarray], int, tuple[int, ...]]:
    """Normalize any device-input form to ``(block, flats, n, shape)``.

    Accepts a :class:`StackedValue`, a device-major ``(n, *shape)``
    ndarray, or the legacy sequence of per-device arrays.  ``flats`` are
    the per-device flat rows (zero-copy views where possible); ``block``
    is the contiguous ``(n, flat_size)`` backing array when one exists
    (``None`` for plain lists and for replicated values, whose logical
    rows are broadcasts of one physical row).
    """
    if isinstance(arrays, StackedValue):
        n = arrays.num_devices
        shape = tuple(arrays.shape)
        flat2 = arrays.block.reshape(arrays.block.shape[0], -1)
        if arrays.replicated:
            return None, [flat2[0]] * n, n, shape
        block = flat2 if flat2.flags.c_contiguous else None
        return block, list(flat2), n, shape
    if isinstance(arrays, np.ndarray) and arrays.ndim >= 2:
        n = arrays.shape[0]
        shape = tuple(arrays.shape[1:])
        flat2 = arrays.reshape(n, -1)
        block = flat2 if flat2.flags.c_contiguous else None
        return block, list(flat2), n, shape
    shape = _check_same_shape(arrays)
    flats = [np.asarray(a).reshape(-1) for a in arrays]
    return None, flats, len(flats), tuple(shape)


def _linear_ring_passes(
    acc: np.ndarray,
    srcs,
    size: int,
    chunk: int,
    bf16_round: Callable[[np.ndarray], np.ndarray] | None = None,
) -> np.ndarray:
    """Ring reduce-scatter as two linear sweeps of contiguous block adds.

    ``acc`` is the flat ``(padded,)`` accumulator whose chunk ``c`` is slot
    ``c``; ``srcs[d]`` is device ``d``'s quantized flat buffer (``size``
    elements).  Slot ``c`` must accumulate devices in the cyclic ring order
    ``c, c+1, ..., n-1, 0, ..., c-1`` — which a linear sweep over devices
    realizes exactly: in pass one device ``d`` *initializes* its own slot
    (a copy, so signed zeros and NaN payloads survive bit-exactly) and is
    added to every slot below ``d``; in pass two it is added to every slot
    above ``d``.  Each step is therefore one contiguous prefix/suffix add
    straight off the source buffer (operand order ``contribution + acc``,
    matching ``reducer(chunks[dst][c], chunks[d][c])`` of the reference
    schedule) — no staging copies, no index arrays, and the accumulator
    stays cache-resident.  For bf16 each touched region is re-rounded
    after its add, exactly one rounding per slot per hop.

    Padding slots (``>= size``) are never written and must be pre-zeroed.
    ``bf16_round`` is the per-hop in-place rounding function for the bf16
    policy (:func:`_bf16_round_for` picks the NaN-checked or the faster
    NaN-free variant per collective); ``None`` for f32/f64.
    """
    n = len(srcs)
    for d in range(n):
        lo = d * chunk
        hi = min(lo + chunk, size)
        if hi > lo:
            acc[lo:hi] = srcs[d][lo:hi]
        end = min(lo, size)
        if end > 0:
            np.add(srcs[d][:end], acc[:end], out=acc[:end])
            if bf16_round is not None:
                bf16_round(acc[:end])
    for d in range(n - 1):
        start = min((d + 1) * chunk, size)
        if start < size:
            np.add(srcs[d][start:size], acc[start:size], out=acc[start:size])
            if bf16_round is not None:
                bf16_round(acc[start:size])
    return acc


def _linear_ring_passes_batched(
    acc2: np.ndarray,
    srcs3: np.ndarray,
    size: int,
    chunk: int,
    bf16_round: Callable[[np.ndarray], np.ndarray] | None = None,
) -> np.ndarray:
    """``B`` independent ring reduce-scatters as one batched kernel.

    ``acc2`` is ``(B, padded)`` — row ``b`` is the flat accumulator of ring
    ``b`` — and ``srcs3`` is ``(B, n, size)``: ``srcs3[b, d]`` is ring
    ``b``'s device ``d`` (any strided view works, e.g. the transposed Y
    accumulators feeding the X phase of the 2-D schedule).  Each batch row
    executes the *identical* operation sequence of
    :func:`_linear_ring_passes` — the rings are data-independent and every
    add/round is elementwise, so batching them into 2-D operations is
    bit-exact — but a grid phase costs ``O(ring_steps)`` numpy calls
    instead of ``O(B * ring_steps)``, which is what makes 64x64-grid
    (4096-device) collectives executable.

    Padding columns (``>= size``) are never written and must be pre-zeroed.
    """
    n = srcs3.shape[1]
    for d in range(n):
        lo = d * chunk
        hi = min(lo + chunk, size)
        if hi > lo:
            acc2[:, lo:hi] = srcs3[:, d, lo:hi]
        end = min(lo, size)
        if end > 0:
            np.add(srcs3[:, d, :end], acc2[:, :end], out=acc2[:, :end])
            if bf16_round is not None:
                bf16_round(acc2[:, :end])
    for d in range(n - 1):
        start = min((d + 1) * chunk, size)
        if start < size:
            np.add(srcs3[:, d, start:size], acc2[:, start:size], out=acc2[:, start:size])
            if bf16_round is not None:
                bf16_round(acc2[:, start:size])
    return acc2


def _round_checked(seg: np.ndarray) -> np.ndarray:
    return round_to_bfloat16(seg, out=seg)


def _bf16_round_for(staged: np.ndarray) -> Callable[[np.ndarray], np.ndarray]:
    """Pick the per-hop rounding variant for one collective.

    When every staged input is finite, accumulation chains can saturate to
    ±inf but never produce NaN, so the NaN-mask passes of the full rounding
    can be skipped bit-exactly; any NaN/inf input falls back to the checked
    variant.
    """
    finite = np.isfinite(staged, out=_scratch(staged.shape, np.dtype(np.bool_)))
    return _round_inplace_nonan if finite.all() else _round_checked


def _quantized_sources(
    flats, dtype: np.dtype, policy: str, block: np.ndarray | None = None
) -> tuple[Sequence[np.ndarray] | np.ndarray, Callable | None]:
    """Per-device flat buffers in the policy's wire format.

    Returns ``(srcs, bf16_round)``.  Buffers already in the wire dtype are
    used as-is (zero copies — the hot path); otherwise the stack is staged
    once through a pooled scratch block.  For bf16 each row gets a fused
    copy+round (bias temporaries stay cache-sized) plus a finiteness check
    while the row is still cache-hot, which selects the per-hop rounding
    variant (see :func:`_bf16_round_for`); ``bf16_round`` is ``None`` for
    the other policies.

    When ``block`` is the contiguous ``(n, size)`` backing array of
    ``flats`` (the device-major fast path), staging and rounding run as
    single whole-block operations instead of per-row loops — elementwise
    identical, but ``O(1)`` dispatches for a 4096-row stack.
    """
    if policy != "bf16":
        if all(f.dtype == dtype for f in flats):
            return flats, None
        staged = _scratch((len(flats), flats[0].size), dtype)
        if block is not None:
            staged[...] = block
        else:
            for d, f in enumerate(flats):
                staged[d] = f
        return staged, None
    staged = _scratch((len(flats), flats[0].size), dtype)
    if block is not None:
        round_to_bfloat16(block, out=staged)
        finite = bool(
            np.isfinite(staged, out=_scratch(staged.shape, np.dtype(np.bool_))).all()
        )
        return staged, (_round_inplace_nonan if finite else _round_checked)
    row_ok = _scratch((flats[0].size,), np.dtype(np.bool_))
    finite = True
    for d, f in enumerate(flats):
        round_to_bfloat16(f, out=staged[d])
        if finite:
            finite = bool(np.isfinite(staged[d], out=row_ok).all())
    return staged, (_round_inplace_nonan if finite else _round_checked)


def _ring_reduce_scatter_impl(
    arrays, dtype_policy: str
) -> tuple[np.ndarray, tuple[int, ...], int]:
    """Shared core: returns ``(shards (n, chunk), shape, padded)``.

    ``arrays`` may be a legacy per-device sequence, a device-major
    ``(n, *shape)`` ndarray, or a :class:`StackedValue` — the contiguous
    block forms take the whole-stack quantization fast path.
    """
    dtype = _dtype_for(dtype_policy)
    block, flats, n, shape = _as_device_block(arrays)
    size = int(np.prod(shape)) if shape else 1
    padded, chunk = padded_chunk_layout(n, size)
    srcs, bf16_round = _quantized_sources(flats, dtype, dtype_policy, block)
    acc = np.empty(padded, dtype=dtype)
    acc[size:] = 0
    _linear_ring_passes(acc, srcs, size, chunk, bf16_round)
    return acc.reshape(n, chunk), shape, padded


def ring_reduce_scatter(arrays, dtype_policy: str = "f32") -> ShardedValue:
    """Reduce-scatter over ``n`` device buffers via the ring algorithm.

    ``arrays`` may be a per-device sequence, a device-major ``(n, *shape)``
    block, or a :class:`StackedValue`.  Returns a :class:`ShardedValue`
    where device ``d`` owns the fully reduced chunk ``d``.  The
    accumulation order is the ring order, so float32/bf16 results carry
    the rounding pattern of real hardware rings.
    """
    t0 = _perf()
    with _telemetry.tracer.span("ring_reduce_scatter", category="comm"):
        shards, shape, padded = _ring_reduce_scatter_impl(arrays, dtype_policy)
    n = shards.shape[0]
    if _telemetry.enabled:
        _record_collective(
            "reduce_scatter", n, padded // n,
            _dtype_for(dtype_policy).itemsize, dtype_policy, _perf() - t0,
        )
    return ShardedValue(list(shards), shape, padded, block=shards)


def ring_all_gather(value: ShardedValue) -> list[np.ndarray]:
    """All-gather shards back to a full buffer on every device.

    The ring motion moves chunks without arithmetic, so the vectorized
    fast path assembles the full buffer once and materializes one
    independent copy per device — bit-identical to (and assertion-free,
    unlike) the step-by-step :func:`_reference_ring_all_gather`.  For the
    lazy zero-materialization variant see :func:`ring_all_gather_stacked`.
    """
    n = value.num_devices
    if n == 1:
        return [value.assemble()]
    t0 = _perf()
    with _telemetry.tracer.span("ring_all_gather", category="comm"):
        size = int(np.prod(value.shape)) if value.shape else 1
        if value.block is not None:
            full = value.block.reshape(-1)[:size]
        else:
            full = np.concatenate(value.shards)[:size]
        out = np.empty((n, size), dtype=full.dtype)
        out[:] = full
    if _telemetry.enabled:
        # The gather is pure data movement; the wire dtype stands in for
        # the policy label (bf16 shards travel as f32, matching the wire).
        policy = {"float64": "f64", "float32": "f32"}.get(
            full.dtype.name, full.dtype.name
        )
        _record_collective(
            "all_gather", n, value.padded_size // n, full.dtype.itemsize,
            policy, _perf() - t0,
        )
    return [out[d].reshape(value.shape) for d in range(n)]


def ring_all_gather_stacked(value: ShardedValue) -> StackedValue:
    """All-gather as a lazily replicated :class:`StackedValue`.

    Bit-identical data motion to :func:`ring_all_gather`, but the result
    is *one* physical buffer viewed by every device instead of ``n``
    materialized copies — the dominant cost of the per-device gather at
    large ``n`` (a 256-device gather of a 64 Ki-element buffer spends
    ~85 % of its time on the copies).  Callers that need per-device
    ownership materialize explicitly (``.materialized()``).
    """
    n = value.num_devices
    size = int(np.prod(value.shape)) if value.shape else 1
    t0 = _perf()
    with _telemetry.tracer.span("ring_all_gather", category="comm"):
        if value.block is not None:
            full = value.block.reshape(-1)[:size]
        else:
            full = np.concatenate(value.shards)[:size]
        result = StackedValue.replicate(full.reshape(value.shape), n)
    if _telemetry.enabled and n > 1:
        policy = {"float64": "f64", "float32": "f32"}.get(
            full.dtype.name, full.dtype.name
        )
        _record_collective(
            "all_gather", n, value.padded_size // n, full.dtype.itemsize,
            policy, _perf() - t0,
        )
    return result


def ring_all_reduce(arrays, dtype_policy: str = "f32") -> list[np.ndarray]:
    """Ring all-reduce = reduce-scatter + all-gather.

    The reduce-scatter shards land as rows of one contiguous block in chunk
    order, so the gather phase reads the reduced buffer straight off the
    block — no per-shard concatenation.  ``arrays`` may be a per-device
    sequence, a device-major block, or a :class:`StackedValue`; for the
    zero-materialization result see :func:`ring_all_reduce_stacked`.
    """
    t0 = _perf()
    with _telemetry.tracer.span("ring_all_reduce", category="comm"):
        shards, shape, _ = _ring_reduce_scatter_impl(arrays, dtype_policy)
        n = shards.shape[0]
        size = int(np.prod(shape)) if shape else 1
        full = shards.reshape(-1)[:size]
        out = np.empty((n, size), dtype=shards.dtype)
        out[:] = full
    if _telemetry.enabled:
        # Reduce-scatter + all-gather: twice the one-phase ring traffic.
        _record_collective(
            "all_reduce", n, 2 * shards.shape[1],
            _dtype_for(dtype_policy).itemsize, dtype_policy, _perf() - t0,
            steps=2 * (n - 1),
        )
    return [out[d].reshape(shape) for d in range(n)]


def ring_all_reduce_stacked(arrays, dtype_policy: str = "f32") -> StackedValue:
    """Device-major ring all-reduce returning a replicated result.

    The reduce phase is the exact :func:`_linear_ring_passes` sequence of
    the list API (bit-identical under every dtype policy); the gather
    phase returns the reduced buffer as one replicated
    :class:`StackedValue` instead of ``n`` per-device copies.  This is the
    hot path the trainers use: stacked gradients in, one shared reduced
    buffer out.
    """
    t0 = _perf()
    with _telemetry.tracer.span("ring_all_reduce", category="comm"):
        shards, shape, _ = _ring_reduce_scatter_impl(arrays, dtype_policy)
        n = shards.shape[0]
        size = int(np.prod(shape)) if shape else 1
        full = shards.reshape(-1)[:size]
        result = StackedValue.replicate(full.reshape(shape), n)
    if _telemetry.enabled:
        _record_collective(
            "all_reduce", n, 2 * shards.shape[1],
            _dtype_for(dtype_policy).itemsize, dtype_policy, _perf() - t0,
            steps=2 * (n - 1),
        )
    return result


# --- 2-D hierarchical collective (Section 3.3) -----------------------------


def _grid_shape(grid: Sequence[Sequence[np.ndarray]]) -> tuple[int, int]:
    x = len(grid)
    if x == 0:
        raise ValueError("empty device grid")
    y = len(grid[0])
    for col in grid:
        if len(col) != y:
            raise ValueError("ragged device grid")
    if y == 0:
        raise ValueError("empty device grid column")
    return x, y


def _quantized_grid_block(
    flats, dtype: np.dtype, policy: str, block: np.ndarray | None = None
) -> tuple[np.ndarray, Callable | None]:
    """Like :func:`_quantized_sources` but always yields a real 2-D block.

    The batched grid kernels index sources as one ``(n, size)`` array, so
    list inputs that are already in the wire dtype (which the plain ring
    keeps as zero-copy views) are staged through the scratch pool here —
    one bit-preserving copy that buys ``O(ring_steps)`` instead of
    ``O(n * ring_steps)`` kernel dispatches.
    """
    srcs, bf16_round = _quantized_sources(flats, dtype, policy, block)
    if isinstance(srcs, np.ndarray):
        return srcs, bf16_round
    if block is not None and block.dtype == dtype:
        return block, bf16_round
    staged = _scratch((len(flats), flats[0].size), dtype)
    for d, f in enumerate(srcs):
        staged[d] = f
    return staged, bf16_round


def _reduce_scatter_grid_core(
    flats,
    block: np.ndarray | None,
    x_size: int,
    y_size: int,
    shape: tuple[int, ...],
    dtype_policy: str,
) -> tuple[np.ndarray, int, int, int]:
    """Batched phases 1+2 of the 2-D schedule.

    Sources are in x-major device order (``flats[x * y_size + y]`` is mesh
    coordinate ``(x, y)``).  Returns ``(shards3, size, y_chunk, x_chunk)``
    where ``shards3`` is the freshly allocated ``(y_size, x_size,
    x_chunk)`` shard block: ``shards3[y, x]`` is device (x, y)'s fully
    reduced shard (X-chunk ``x`` of Y-chunk ``y``).

    Both ring phases run batched: the ``x_size`` independent column rings
    execute as *one* stacked kernel call
    (:func:`_linear_ring_passes_batched`), then the ``y_size`` row rings
    as another, reading the Y accumulators through a transposed zero-copy
    view.  Each batch row replays the exact scalar-kernel op sequence, so
    results stay bit-identical to the per-ring references.
    """
    dtype = _dtype_for(dtype_policy)
    size = int(np.prod(shape)) if shape else 1
    srcs2, bf16_round = _quantized_grid_block(flats, dtype, dtype_policy, block)
    srcs3 = srcs2.reshape(x_size, y_size, size)
    # Y phase: one ring per mesh column, all columns batched.
    padded_y, y_chunk = padded_chunk_layout(y_size, size)
    t0 = _perf()
    with _telemetry.tracer.span("reduce_scatter_y", category="comm"):
        acc_y = np.empty((x_size, padded_y), dtype=dtype)
        acc_y[:, size:] = 0
        _linear_ring_passes_batched(acc_y, srcs3, size, y_chunk, bf16_round)
    if _telemetry.enabled:
        # x_size concurrent column rings of y_size members each.
        _record_collective(
            "reduce_scatter", y_size, x_size * y_chunk, dtype.itemsize,
            dtype_policy, _perf() - t0, axis="y",
        )
    # X phase: for each Y-shard index, a ring across columns.  Sources are
    # the Y accumulators (already quantized, so no re-rounding for bf16):
    # device x of ring y contributes Y-chunk y of mesh column x — exactly
    # the transpose of the Y accumulator block, taken as a strided view.
    # The NaN-free fast path must be re-decided here: finite inputs can
    # saturate to +inf in one column and -inf in another, which meet as
    # NaN when reducing across X.
    if dtype_policy == "bf16":
        bf16_round = _bf16_round_for(acc_y)
    acc_y3 = acc_y.reshape(x_size, y_size, y_chunk)
    padded_x, x_chunk = padded_chunk_layout(x_size, y_chunk)
    t0 = _perf()
    with _telemetry.tracer.span("reduce_scatter_x", category="comm"):
        x_shards = np.empty((y_size, padded_x), dtype=dtype)
        x_shards[:, y_chunk:] = 0
        _linear_ring_passes_batched(
            x_shards, acc_y3.transpose(1, 0, 2), y_chunk, x_chunk, bf16_round
        )
    if _telemetry.enabled:
        # y_size concurrent row rings over the already-1/y payload.
        _record_collective(
            "reduce_scatter", x_size, y_size * x_chunk, dtype.itemsize,
            dtype_policy, _perf() - t0, axis="x",
        )
    return x_shards.reshape(y_size, x_size, x_chunk), size, y_chunk, x_chunk


def reduce_scatter_grid(
    grid: Sequence[Sequence[np.ndarray]], dtype_policy: str = "f32"
) -> list[list[ShardedValue]]:
    """Phase 1+2 of the 2-D schedule: Y reduce-scatter, then X reduce-scatter.

    ``grid[x][y]`` is the buffer of the chip at mesh coordinate (x, y).
    Returns per-device :class:`ShardedValue` views whose shards are the
    per-chip gradient shards fed to the sharded weight update: device (x, y)
    owns X-chunk ``x`` of Y-chunk ``y``.

    Both ring phases run batched: the ``x_size`` independent column rings
    (and then the ``y_size`` row rings) execute as one stacked kernel call.
    """
    x_size, y_size = _grid_shape(grid)
    arrays = [np.asarray(g) for col in grid for g in col]
    shape = _check_same_shape(arrays)
    flats = [a.reshape(-1) for a in arrays]
    shards3, _, _, _ = _reduce_scatter_grid_core(
        flats, None, x_size, y_size, tuple(shape), dtype_policy
    )
    out: list[list[ShardedValue]] = [[None] * y_size for _ in range(x_size)]  # type: ignore[list-item]
    for x in range(x_size):
        for y in range(y_size):
            shard = shards3[y, x]
            out[x][y] = ShardedValue(
                shards=[shard], shape=shard.shape, padded_size=shard.size
            )
    return out


def all_gather_grid(
    shards: Sequence[Sequence[np.ndarray]],
    shape: tuple[int, ...],
    dtype_policy: str = "f32",
) -> list[list[np.ndarray]]:
    """Phase 4: all-gather along X then along Y, restoring full buffers.

    ``shards[x][y]`` is device (x, y)'s final shard (X-chunk ``x`` of
    Y-chunk ``y`` of the padded flat buffer); ``shape`` is the original
    (unpadded) buffer shape.  Pure data movement: the full buffer is
    assembled once and every device receives an independent copy.
    """
    _dtype_for(dtype_policy)
    x_size = len(shards)
    y_size = len(shards[0])
    size = int(np.prod(shape)) if shape else 1
    padded_y, y_chunk = padded_chunk_layout(y_size, size)
    padded_x, x_chunk = padded_chunk_layout(x_size, y_chunk)
    first = np.asarray(shards[0][0])
    t0 = _perf()
    with _telemetry.tracer.span("all_gather_grid", category="comm"):
        # Assemble: X-gather concatenates x shards (strip to y_chunk), Y-gather
        # concatenates the y chunks (strip to size).
        assembled = np.empty((y_size, x_size, x_chunk), dtype=first.dtype)
        for x in range(x_size):
            for y in range(y_size):
                assembled[y, x] = np.asarray(shards[x][y]).reshape(-1)
        full = assembled.reshape(y_size, padded_x)[:, :y_chunk].reshape(-1)[:size]
        n = x_size * y_size
        stacked = np.empty((n, size), dtype=full.dtype)
        stacked[:] = full
    if _telemetry.enabled:
        dt = _perf() - t0
        m = _telemetry.metrics
        itemsize = first.dtype.itemsize
        m.counter("collective_bytes", op="all_gather", axis="x", policy=dtype_policy).inc(
            x_size * (x_size - 1) * y_size * x_chunk * itemsize
        )
        m.counter("collective_bytes", op="all_gather", axis="y", policy=dtype_policy).inc(
            y_size * (y_size - 1) * x_size * y_chunk * itemsize
        )
        m.counter("collective_ring_steps", op="all_gather", axis="xy").inc(
            (x_size - 1) + (y_size - 1)
        )
        m.counter("collective_launches", op="all_gather", axis="xy").inc()
        m.histogram("collective_seconds", op="all_gather", axis="xy").observe(dt)
    out: list[list[np.ndarray]] = [[None] * y_size for _ in range(x_size)]  # type: ignore[list-item]
    for x in range(x_size):
        for y in range(y_size):
            out[x][y] = stacked[x * y_size + y].reshape(shape)
    return out


def two_phase_all_reduce(
    grid: Sequence[Sequence[np.ndarray]],
    dtype_policy: str = "f32",
    shard_transform: Callable[[np.ndarray], np.ndarray] | None = None,
) -> list[list[np.ndarray]]:
    """The full 2-D hierarchical all-reduce, optionally fusing a shard op.

    ``shard_transform`` is applied to each device's reduced gradient shard
    *between* the reduce-scatter and all-gather phases — this is exactly
    where the paper's weight-update sharding computes the optimizer step, so
    passing the update function here reproduces the fused schedule of
    Section 3.3 (the transform must be elementwise/shape-preserving).
    """
    x_size, y_size = _grid_shape(grid)
    shape = np.asarray(grid[0][0]).shape
    with _telemetry.tracer.span("two_phase_all_reduce", category="comm"):
        reduced = reduce_scatter_grid(grid, dtype_policy)
        final_shards: list[list[np.ndarray]] = [[None] * y_size for _ in range(x_size)]  # type: ignore[list-item]
        with _telemetry.tracer.span("shard_transform", category="update"):
            for x in range(x_size):
                for y in range(y_size):
                    shard = reduced[x][y].shards[0]
                    if shard_transform is not None:
                        transformed = np.asarray(shard_transform(shard))
                        if transformed.shape != shard.shape:
                            raise ValueError("shard_transform must preserve shape")
                        shard = transformed
                    final_shards[x][y] = shard
        out = all_gather_grid(final_shards, shape, dtype_policy)
    if _telemetry.enabled:
        _telemetry.metrics.counter(
            "collective_launches", op="two_phase_all_reduce", axis="xy"
        ).inc()
    return out


def two_phase_all_reduce_stacked(
    arrays,
    grid_shape: tuple[int, int],
    dtype_policy: str = "f32",
    shard_transform: Callable[[np.ndarray], np.ndarray] | None = None,
) -> StackedValue:
    """Device-major 2-D hierarchical all-reduce with a replicated result.

    ``arrays`` is a device-major ``(x * y, *shape)`` block (or
    :class:`StackedValue`, or a flat per-device sequence) in x-major order;
    ``grid_shape`` is the mesh extent.  Both ring phases run as batched
    stacked kernels, ``shard_transform`` (elementwise/shape-preserving,
    exactly as for :func:`two_phase_all_reduce`) is applied *once* to the
    whole ``(y, x, x_chunk)`` shard block between the phases — elementwise
    transforms make that bit-identical to the per-shard loop — and the
    gather phase returns one replicated :class:`StackedValue` instead of
    ``x * y`` materialized copies.
    """
    x_size, y_size = grid_shape
    if x_size < 1 or y_size < 1:
        raise ValueError("grid_shape dims must be >= 1")
    block, flats, n, shape = _as_device_block(arrays)
    if n != x_size * y_size:
        raise ValueError(
            f"{n} device buffers do not fill a {x_size}x{y_size} grid"
        )
    t0 = _perf()
    with _telemetry.tracer.span("two_phase_all_reduce", category="comm"):
        shards3, size, y_chunk, x_chunk = _reduce_scatter_grid_core(
            flats, block, x_size, y_size, shape, dtype_policy
        )
        if shard_transform is not None:
            with _telemetry.tracer.span("shard_transform", category="update"):
                transformed = np.asarray(shard_transform(shards3))
                if transformed.shape != shards3.shape:
                    raise ValueError("shard_transform must preserve shape")
                shards3 = transformed
        with _telemetry.tracer.span("all_gather_grid", category="comm"):
            padded_x = x_size * x_chunk
            full = (
                shards3.reshape(y_size, padded_x)[:, :y_chunk].reshape(-1)[:size]
            )
            if np.shares_memory(full, shards3):
                # Zero-copy assembly aliases the shard block (or whatever a
                # user transform returned); the replicated result must own
                # its memory.
                full = full.copy()
            result = StackedValue.replicate(full.reshape(shape), n)
    if _telemetry.enabled:
        dt = _perf() - t0
        m = _telemetry.metrics
        itemsize = shards3.dtype.itemsize
        m.counter(
            "collective_bytes", op="all_gather", axis="x", policy=dtype_policy
        ).inc(x_size * (x_size - 1) * y_size * x_chunk * itemsize)
        m.counter(
            "collective_bytes", op="all_gather", axis="y", policy=dtype_policy
        ).inc(y_size * (y_size - 1) * x_size * y_chunk * itemsize)
        m.counter("collective_ring_steps", op="all_gather", axis="xy").inc(
            (x_size - 1) + (y_size - 1)
        )
        m.counter("collective_launches", op="all_gather", axis="xy").inc()
        m.histogram("collective_seconds", op="all_gather", axis="xy").observe(dt)
        m.counter(
            "collective_launches", op="two_phase_all_reduce", axis="xy"
        ).inc()
    return result


# --- reference implementations (retained for bit-identity cross-checks) ----


def _reference_chunked(
    arrays: Sequence[np.ndarray], n: int
) -> tuple[list[list[np.ndarray]], tuple[int, ...], int]:
    """Flatten each device buffer and split into n equal chunks (padded)."""
    shape = _check_same_shape(arrays)
    size = int(np.prod(shape)) if shape else 1
    padded = ((size + n - 1) // n) * n
    chunks: list[list[np.ndarray]] = []
    for a in arrays:
        flat = np.asarray(a).reshape(-1)
        if padded != size:
            flat = np.concatenate([flat, np.zeros(padded - size, dtype=flat.dtype)])
        chunks.append(np.split(flat, n))
    return chunks, shape, padded


def _reference_ring_reduce_scatter(
    arrays: Sequence[np.ndarray], dtype_policy: str = "f32"
) -> ShardedValue:
    """Per-device-loop reduce-scatter: the schedule transcribed literally."""
    n = len(arrays)
    reducer = _reducer_for(dtype_policy)
    chunks, shape, padded = _reference_chunked(
        [_prepare(dtype_policy, np.asarray(a)) for a in arrays], n
    )
    if n == 1:
        return ShardedValue([chunks[0][0]], shape, padded)
    for step in range(n - 1):
        updates = {}
        for d in range(n):
            c = (d - step) % n
            dst = (d + 1) % n
            updates[(dst, c)] = reducer(chunks[dst][c], chunks[d][c])
        for (dst, c), v in updates.items():
            chunks[dst][c] = v
    shards = [chunks[(c - 1) % n][c] for c in range(n)]
    return ShardedValue(shards, shape, padded)


def _reference_ring_all_gather(value: ShardedValue) -> list[np.ndarray]:
    """Step-by-step ring all-gather.

    Tracks only the single chunk each device receives per step (``carry``)
    instead of the full O(n²) per-device ``have`` table of earlier
    revisions: at step ``s`` device ``d`` receives its predecessor's carry,
    which is reduced chunk ``(d - s) mod n``.
    """
    n = value.num_devices
    if n == 1:
        return [value.assemble()]
    received: list[list[np.ndarray]] = [[None] * n for _ in range(n)]  # type: ignore[list-item]
    carry = list(value.shards)
    for d in range(n):
        received[d][d] = value.shards[d]
    for step in range(1, n):
        carry = [carry[(d - 1) % n] for d in range(n)]
        for d in range(n):
            received[d][(d - step) % n] = carry[d]
    out = []
    size = int(np.prod(value.shape)) if value.shape else 1
    for d in range(n):
        flat = np.concatenate(received[d])
        out.append(flat[:size].reshape(value.shape))
    return out


def _reference_ring_all_reduce(
    arrays: Sequence[np.ndarray], dtype_policy: str = "f32"
) -> list[np.ndarray]:
    return _reference_ring_all_gather(
        _reference_ring_reduce_scatter(arrays, dtype_policy)
    )


def _reference_reduce_scatter_grid(
    grid: Sequence[Sequence[np.ndarray]], dtype_policy: str = "f32"
) -> list[list[ShardedValue]]:
    """Per-ring-loop 2-D reduce-scatter (phases 1+2)."""
    x_size, y_size = _grid_shape(grid)
    y_sharded = [
        _reference_ring_reduce_scatter(
            [grid[x][y] for y in range(y_size)], dtype_policy
        )
        for x in range(x_size)
    ]
    out: list[list[ShardedValue]] = [[None] * y_size for _ in range(x_size)]  # type: ignore[list-item]
    for y in range(y_size):
        x_inputs = [y_sharded[x].shards[y] for x in range(x_size)]
        sub = _reference_ring_reduce_scatter(x_inputs, dtype_policy)
        for x in range(x_size):
            out[x][y] = ShardedValue(
                shards=[sub.shards[x]],
                shape=sub.shards[x].shape,
                padded_size=sub.shards[x].size,
            )
    return out


def _reference_all_gather_grid(
    shards: Sequence[Sequence[np.ndarray]],
    shape: tuple[int, ...],
    dtype_policy: str = "f32",
) -> list[list[np.ndarray]]:
    """Per-ring-loop 2-D all-gather (phase 4)."""
    x_size = len(shards)
    y_size = len(shards[0])
    size = int(np.prod(shape)) if shape else 1
    padded_y = ((size + y_size - 1) // y_size) * y_size
    y_chunk = padded_y // y_size
    padded_x = ((y_chunk + x_size - 1) // x_size) * x_size
    y_chunks: list[list[np.ndarray]] = [[None] * y_size for _ in range(x_size)]  # type: ignore[list-item]
    for y in range(y_size):
        sv = ShardedValue(
            shards=[np.asarray(shards[x][y]).reshape(-1) for x in range(x_size)],
            shape=(y_chunk,),
            padded_size=padded_x,
        )
        gathered = _reference_ring_all_gather(sv)
        for x in range(x_size):
            y_chunks[x][y] = gathered[x]
    out: list[list[np.ndarray]] = [[None] * y_size for _ in range(x_size)]  # type: ignore[list-item]
    for x in range(x_size):
        sv = ShardedValue(shards=y_chunks[x], shape=shape, padded_size=padded_y)
        gathered = _reference_ring_all_gather(sv)
        for y in range(y_size):
            out[x][y] = gathered[y]
    return out


def _reference_two_phase_all_reduce(
    grid: Sequence[Sequence[np.ndarray]],
    dtype_policy: str = "f32",
    shard_transform: Callable[[np.ndarray], np.ndarray] | None = None,
) -> list[list[np.ndarray]]:
    x_size, y_size = _grid_shape(grid)
    shape = np.asarray(grid[0][0]).shape
    reduced = _reference_reduce_scatter_grid(grid, dtype_policy)
    final_shards: list[list[np.ndarray]] = [[None] * y_size for _ in range(x_size)]  # type: ignore[list-item]
    for x in range(x_size):
        for y in range(y_size):
            shard = reduced[x][y].shards[0]
            if shard_transform is not None:
                transformed = np.asarray(shard_transform(shard))
                if transformed.shape != shard.shape:
                    raise ValueError("shard_transform must preserve shape")
                shard = transformed
            final_shards[x][y] = shard
    return _reference_all_gather_grid(final_shards, shape, dtype_policy)

"""Fused multi-tensor gradient buckets.

Real large-scale training does not issue one all-reduce per parameter: the
gradients of the whole model are flattened into one (or a few) contiguous
buffers and reduced with a single fused collective per step, as in the
weight-update-sharding design of Xu et al. (2020) and GSPMD.  This module
provides that abstraction for the functional layer:

* :class:`GradientBucket` records the offset map of a named parameter tree
  (name -> slice of one flat buffer) and converts trees to/from fused flat
  buffers — ``unflatten`` returns zero-copy reshaped views;
* :meth:`GradientBucket.all_reduce` runs a *single* ring or 2-D
  hierarchical collective over the fused per-device buffers;
* :meth:`GradientBucket.segments` maps a device's reduce-scatter shard back
  to the per-parameter segments it covers — what the sharded optimizer
  update needs to apply per-layer math (trust ratios, weight decay
  skipping) to a fused shard.

The trainers in :mod:`repro.core` and :class:`repro.runtime.mesh.VirtualMesh`
route their gradient collectives through buckets, turning O(num_params)
collective launches per step into one.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter as _perf
from typing import Mapping, Sequence

import numpy as np

from repro import telemetry as _telemetry
from repro.runtime.collectives import (
    padded_chunk_layout,
    ring_all_reduce,
    ring_all_reduce_stacked,
    two_phase_all_reduce,
    two_phase_all_reduce_stacked,
)
from repro.runtime.stacked import StackedValue


@dataclass(frozen=True)
class BucketSegment:
    """The part of one parameter that falls inside a flat-buffer window.

    ``bucket_slice`` addresses the segment in full-bucket coordinates,
    ``local_slice`` in window (shard) coordinates, and ``tensor_slice`` in
    the parameter's own flattened coordinates.
    """

    name: str
    bucket_slice: slice
    local_slice: slice
    tensor_slice: slice

    @property
    def size(self) -> int:
        return self.bucket_slice.stop - self.bucket_slice.start


class GradientBucket:
    """Offset map for fusing a named tensor tree into one flat buffer."""

    def __init__(
        self,
        template: Mapping[str, np.ndarray],
        dtype: np.dtype | type | None = None,
    ) -> None:
        if not template:
            raise ValueError("bucket template must contain at least one tensor")
        self.names: tuple[str, ...] = tuple(template)
        self.shapes: dict[str, tuple[int, ...]] = {}
        self.offsets: dict[str, int] = {}
        offset = 0
        for name in self.names:
            arr = np.asarray(template[name])
            self.shapes[name] = arr.shape
            self.offsets[name] = offset
            offset += arr.size if arr.shape else 1
        self.size = offset
        self.dtype = np.dtype(
            dtype
            if dtype is not None
            else np.result_type(*(np.asarray(template[n]).dtype for n in self.names))
        )
        self._segment_cache: dict[tuple[int, int], tuple[BucketSegment, ...]] = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GradientBucket({len(self.names)} tensors, {self.size} elems, "
            f"{self.dtype})"
        )

    def slice_of(self, name: str) -> slice:
        """Position of one tensor inside the flat buffer."""
        offset = self.offsets[name]
        size = int(np.prod(self.shapes[name])) if self.shapes[name] else 1
        return slice(offset, offset + size)

    def flatten(
        self, tree: Mapping[str, np.ndarray], out: np.ndarray | None = None
    ) -> np.ndarray:
        """Pack a tree into one contiguous flat buffer (allocated if needed)."""
        t0 = _perf()
        if out is None:
            out = np.empty(self.size, dtype=self.dtype)
        elif out.shape != (self.size,):
            raise ValueError(f"out must have shape ({self.size},)")
        for name in self.names:
            out[self.slice_of(name)] = np.asarray(tree[name]).reshape(-1)
        if _telemetry.enabled:
            m = _telemetry.metrics
            m.counter("bucket_flatten_seconds").inc(_perf() - t0)
            m.counter("bucket_flatten_bytes").inc(self.size * self.dtype.itemsize)
            m.counter("bucket_flatten_calls").inc()
        return out

    def unflatten(self, flat: np.ndarray) -> dict[str, np.ndarray]:
        """Split a flat buffer back into named tensors (zero-copy views)."""
        t0 = _perf()
        flat = np.asarray(flat).reshape(-1)
        if flat.size < self.size:
            raise ValueError(
                f"buffer has {flat.size} elements; bucket needs {self.size}"
            )
        tree = {
            name: flat[self.slice_of(name)].reshape(self.shapes[name])
            for name in self.names
        }
        if _telemetry.enabled:
            m = _telemetry.metrics
            m.counter("bucket_unflatten_seconds").inc(_perf() - t0)
            m.counter("bucket_unflatten_calls").inc()
        return tree

    def segments(self, start: int, stop: int) -> tuple[BucketSegment, ...]:
        """Per-tensor segments overlapping the window ``[start, stop)``.

        Cached per window — the sharded update asks for the same n windows
        every step.  Windows extending past ``self.size`` (ring padding)
        simply yield no segments there.
        """
        key = (start, stop)
        cached = self._segment_cache.get(key)
        if cached is not None:
            if _telemetry.enabled:
                _telemetry.metrics.counter("bucket_segment_cache_hits").inc()
            return cached
        if _telemetry.enabled:
            _telemetry.metrics.counter("bucket_segment_cache_misses").inc()
        segs = []
        for name in self.names:
            tensor = self.slice_of(name)
            lo = max(start, tensor.start)
            hi = min(stop, tensor.stop)
            if lo < hi:
                segs.append(
                    BucketSegment(
                        name=name,
                        bucket_slice=slice(lo, hi),
                        local_slice=slice(lo - start, hi - start),
                        tensor_slice=slice(lo - tensor.start, hi - tensor.start),
                    )
                )
        result = tuple(segs)
        self._segment_cache[key] = result
        return result

    def shard_segments(self, num_devices: int) -> tuple[tuple[BucketSegment, ...], ...]:
        """Segments of every device's reduce-scatter shard, in device order."""
        _, chunk = padded_chunk_layout(num_devices, self.size)
        return tuple(
            self.segments(d * chunk, (d + 1) * chunk) for d in range(num_devices)
        )

    # --- fused collectives ---------------------------------------------------

    def all_reduce(
        self,
        trees: Sequence[Mapping[str, np.ndarray]],
        dtype_policy: str = "f32",
        grid_shape: tuple[int, int] | None = None,
        shard_transform=None,
    ) -> list[dict[str, np.ndarray]]:
        """One fused collective over per-device trees; unflattened results.

        ``grid_shape=(x, y)`` with both dims > 1 selects the 2-D
        hierarchical schedule (devices in x-major order); otherwise a flat
        ring.  ``shard_transform`` is the fused shard hook of
        :func:`repro.runtime.collectives.two_phase_all_reduce` and operates
        on fused flat shards (it must be elementwise).
        """
        with _telemetry.tracer.span("bucket_all_reduce", category="comm"):
            return self._all_reduce(trees, dtype_policy, grid_shape, shard_transform)

    def _all_reduce(
        self,
        trees: Sequence[Mapping[str, np.ndarray]],
        dtype_policy: str,
        grid_shape: tuple[int, int] | None,
        shard_transform,
    ) -> list[dict[str, np.ndarray]]:
        buffers = [self.flatten(t) for t in trees]
        if grid_shape is not None:
            x_size, y_size = grid_shape
            if x_size * y_size != len(buffers):
                raise ValueError("grid_shape does not match number of devices")
            grid = [
                [buffers[x * y_size + y] for y in range(y_size)]
                for x in range(x_size)
            ]
            reduced = two_phase_all_reduce(
                grid, dtype_policy, shard_transform=shard_transform
            )
            flat_results = [reduced[x][y] for x in range(x_size) for y in range(y_size)]
        else:
            if shard_transform is not None:
                raise ValueError("shard_transform requires the hierarchical schedule")
            flat_results = ring_all_reduce(buffers, dtype_policy)
        return [self.unflatten(r) for r in flat_results]

    def all_reduce_stacked(
        self,
        block: np.ndarray | StackedValue,
        dtype_policy: str = "f32",
        grid_shape: tuple[int, int] | None = None,
        shard_transform=None,
    ) -> StackedValue:
        """Device-major fused collective: one stacked block in, one out.

        ``block`` is the ``(n, self.size)`` device-major stack of fused
        flat buffers (x-major device order when ``grid_shape`` is given).
        Returns the reduced fused buffer as a lazily *replicated*
        :class:`StackedValue` — same ring arithmetic as
        :meth:`all_reduce`, without materializing per-device result
        copies.  Unflatten a device's view (zero-copy, read-only) with
        :meth:`unflatten` when named tensors are needed.
        """
        with _telemetry.tracer.span("bucket_all_reduce", category="comm"):
            n = (
                block.num_devices
                if isinstance(block, StackedValue)
                else block.shape[0]
            )
            if grid_shape is not None:
                x_size, y_size = grid_shape
                if x_size * y_size != n:
                    raise ValueError("grid_shape does not match number of devices")
                return two_phase_all_reduce_stacked(
                    block, grid_shape, dtype_policy,
                    shard_transform=shard_transform,
                )
            if shard_transform is not None:
                raise ValueError("shard_transform requires the hierarchical schedule")
            return ring_all_reduce_stacked(block, dtype_policy)


class BucketPlan:
    """Partition a parameter tree into backprop-ordered gradient buckets.

    Backprop produces gradients from the last declared tensor back to the
    first, so buckets are *contiguous runs of whole tensors* taken in
    reverse template order: bucket 0 holds the deepest tensors and is the
    first whose collective could launch mid-backward.  The greedy split
    balances element counts, but a tensor is never divided across buckets
    — per-layer optimizer math (LAMB/LARS trust ratios) stays inside one
    bucket, and the per-bucket collective arithmetic is exactly a fused
    :class:`GradientBucket` over that sub-tree.

    Within each bucket, names keep template order; with ``num_buckets=1``
    the single bucket therefore has the identical layout (names, offsets,
    dtype) of a plain ``GradientBucket`` over the full tree, which is what
    keeps the default path bit-identical to the unbucketed trainers.

    ``num_buckets`` is clamped to the number of tensors.
    """

    def __init__(
        self,
        template: Mapping[str, np.ndarray],
        num_buckets: int = 1,
        dtype: np.dtype | type | None = None,
    ) -> None:
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        if not template:
            raise ValueError("bucket plan template must contain at least one tensor")
        names = list(template)
        sizes = {
            name: max(int(np.asarray(template[name]).size), 1) for name in names
        }
        total = sum(sizes.values())
        rev = names[::-1]  # backward production order
        count = min(num_buckets, len(names))
        buckets: list[GradientBucket] = []
        idx = 0
        remaining = total
        for b in range(count):
            buckets_left = count - b
            target = remaining / buckets_left
            take: list[str] = []
            acc = 0
            while idx < len(rev):
                # Leave at least one tensor for each bucket after this one.
                if take and len(rev) - idx <= buckets_left - 1:
                    break
                take.append(rev[idx])
                acc += sizes[rev[idx]]
                idx += 1
                if b < count - 1 and acc >= target:
                    break
            remaining -= acc
            members = set(take)
            ordered = [n for n in names if n in members]
            buckets.append(
                GradientBucket({n: template[n] for n in ordered}, dtype=dtype)
            )
        self.buckets: tuple[GradientBucket, ...] = tuple(buckets)
        self.num_buckets = len(self.buckets)
        self.size = total
        #: Cumulative element fraction produced once bucket ``i`` is complete
        #: (launch order) — the ready-time proxy for the overlap engine.
        cum = 0
        fractions = []
        for bucket in self.buckets:
            cum += bucket.size
            fractions.append(cum / total)
        self.ready_fractions: tuple[float, ...] = tuple(fractions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BucketPlan({self.num_buckets} buckets, {self.size} elems: "
            f"{[b.size for b in self.buckets]})"
        )

"""A virtual device mesh holding per-device numpy state.

:class:`VirtualMesh` is the functional twin of the hardware topology: a
logical ``x_size x y_size`` grid of devices, each with named buffers, plus
convenience methods that run the runtime collectives over a named buffer.
The trainers in :mod:`repro.core` use it as their execution substrate.

Collectives are routed through :class:`repro.runtime.bucket.GradientBucket`:
``all_reduce`` accepts either one buffer name or a sequence of names, and a
sequence is *fused* — all named buffers travel in a single collective, the
way real trainers bucket their gradients.

Storage is hybrid (DESIGN.md §12): buffers placed with per-device ``put``
live in per-device dicts, while ``put_stacked`` (and the results of a
healthy ``all_reduce``) store one device-major
:class:`~repro.runtime.stacked.StackedValue` per name — ``get`` serves
zero-copy per-device views of it, and any per-device *write* (``put``,
``apply_inplace``, ``restore_device``) first *demotes* the stacked value
back to per-device rows so fault injection, degraded rings, and checkpoint
assembly see exactly the legacy semantics.
"""

from __future__ import annotations

import logging
from typing import Callable, Iterator, Sequence

import numpy as np

from repro import telemetry as _telemetry
from repro.resilience.faults import DeviceLostError
from repro.runtime.bucket import GradientBucket
from repro.runtime.stacked import StackedValue

logger = logging.getLogger("repro.runtime")


class VirtualMesh:
    """A logical 2-D grid of numpy 'devices'.

    Parameters
    ----------
    x_size, y_size:
        Logical mesh extent.  For pure data parallelism a 1-D mesh
        (``y_size=1``) is fine; the 2-D hierarchical collective needs both
        dimensions > 1 to exercise both phases.
    """

    def __init__(self, x_size: int, y_size: int = 1) -> None:
        if x_size < 1 or y_size < 1:
            raise ValueError("mesh dims must be >= 1")
        self.x_size = x_size
        self.y_size = y_size
        self._buffers: dict[str, dict[tuple[int, int], np.ndarray]] = {}
        #: Device-major storage: one StackedValue per name (DESIGN.md §12).
        self._stacked: dict[str, StackedValue] = {}
        self._buckets: dict[tuple, GradientBucket] = {}
        self._dead: set[tuple[int, int]] = set()

    @property
    def num_devices(self) -> int:
        return self.x_size * self.y_size

    def devices(self) -> Iterator[tuple[int, int]]:
        for x in range(self.x_size):
            for y in range(self.y_size):
                yield (x, y)

    # --- fault injection ------------------------------------------------------

    @property
    def num_alive(self) -> int:
        return self.num_devices - len(self._dead)

    @property
    def dead_devices(self) -> frozenset[tuple[int, int]]:
        return frozenset(self._dead)

    def alive_devices(self) -> Iterator[tuple[int, int]]:
        """Devices still healthy, in device (x-major) order."""
        for d in self.devices():
            if d not in self._dead:
                yield d

    def fail_device(self, device: tuple[int, int]) -> None:
        """Kill one device: its buffers become unreachable.

        The buffers are intentionally *not* freed — nothing holds state the
        survivors can read, which is exactly the recovery problem weight-
        update sharding creates (a lost shard exists nowhere else).
        """
        self._check_device(device, require_alive=False)
        if device in self._dead:
            return
        self._dead.add(device)
        logger.warning(
            "mesh %dx%d: device %s failed (%d/%d alive)",
            self.x_size, self.y_size, device, self.num_alive, self.num_devices,
        )
        if _telemetry.enabled:
            _telemetry.metrics.counter("mesh_device_failures").inc()
        _telemetry.flight_recorder.record(
            "fault", "mesh_device_failed",
            device=list(device), alive=self.num_alive,
        )

    def restore_device(self, device: tuple[int, int]) -> None:
        """Bring a device back (elastic re-expansion after repair).

        Its pre-failure buffers are dropped — a repaired device re-joins
        empty and must be re-populated (normally from a checkpoint).
        Stacked values are demoted first so the drop can be per-device.
        """
        self._check_device(device, require_alive=False)
        if device not in self._dead:
            return
        self._dead.discard(device)
        _telemetry.flight_recorder.record(
            "fault", "mesh_device_restored",
            device=list(device), alive=self.num_alive,
        )
        for name in list(self._stacked):
            self._demote(name)
        for per_device in self._buffers.values():
            per_device.pop(device, None)
        logger.info("mesh %dx%d: device %s restored", self.x_size, self.y_size, device)

    # --- buffer management ---------------------------------------------------

    def _device_index(self, device: tuple[int, int]) -> int:
        """Position of a device in x-major (stacked row) order."""
        return device[0] * self.y_size + device[1]

    def _demote(self, name: str) -> None:
        """Turn stacked storage back into per-device dict rows.

        Replicated values pay their deferred broadcast copy here; distinct
        values just hand out their row views.  Rows are stored for *every*
        device (dead ones included) — matching ``fail_device``'s "buffers
        are not freed" semantics, so a later ``restore_device`` can drop
        exactly the restored device's stale row.
        """
        value = self._stacked.pop(name).materialized()
        slot = self._buffers.setdefault(name, {})
        for i, d in enumerate(self.devices()):
            slot[d] = value.block[i]

    def put(self, name: str, device: tuple[int, int], array: np.ndarray) -> None:
        """Place a buffer on one device.

        ``array`` is coerced to a base-class ``np.ndarray`` (``np.asarray``
        copies only when it must), so ``ndarray`` subclasses store their
        plain view rather than leaking subclass behavior into collectives.
        A per-device write to a stacked name demotes it first.
        """
        self._check_device(device)
        if name in self._stacked:
            self._demote(name)
        array = np.asarray(array)
        self._buffers.setdefault(name, {})[device] = array
        if _telemetry.enabled:
            _telemetry.metrics.counter("mesh_put_bytes", device=device).inc(
                array.nbytes
            )

    def put_stacked(self, name: str, value: StackedValue | np.ndarray) -> None:
        """Place a device-major value covering the whole mesh at once.

        ``value`` is a :class:`StackedValue` (or a ``(num_devices,
        *shape)`` ndarray) whose rows are the per-device buffers in
        x-major order.  One dict entry replaces ``num_devices`` per-device
        puts; ``get`` serves zero-copy row views of it.
        """
        if not isinstance(value, StackedValue):
            value = StackedValue(np.asarray(value), self.num_devices)
        if value.num_devices != self.num_devices:
            raise ValueError(
                f"stacked value covers {value.num_devices} devices; "
                f"mesh has {self.num_devices}"
            )
        self._buffers.pop(name, None)
        self._stacked[name] = value
        if _telemetry.enabled:
            _telemetry.metrics.counter("mesh_put_bytes", device="stacked").inc(
                value.block.nbytes
            )

    def put_replicated(self, name: str, array: np.ndarray) -> None:
        """Place identical, independent copies of a buffer on every device.

        The replicas are rows of one block allocation: a single fill
        replaces the per-device copy + dict churn of a ``put`` loop while
        each device still owns a distinct memory region.  Dead devices are
        skipped — replication targets the surviving fleet.
        """
        arr = np.asarray(array)
        block = np.empty((self.num_alive,) + arr.shape, dtype=arr.dtype)
        block[...] = arr
        slot = self._buffers.setdefault(name, {})
        for i, d in enumerate(self.alive_devices()):
            slot[d] = block[i]
        if _telemetry.enabled:
            _telemetry.metrics.counter("mesh_put_bytes", device="replicated").inc(
                block.nbytes
            )

    def get(self, name: str, device: tuple[int, int]) -> np.ndarray:
        self._check_device(device)
        stacked = self._stacked.get(name)
        if stacked is not None:
            buf = stacked.device_view(self._device_index(device))
        else:
            try:
                buf = self._buffers[name][device]
            except KeyError:
                raise KeyError(
                    f"buffer {name!r} not present on device {device}"
                ) from None
        if _telemetry.enabled:
            _telemetry.metrics.counter("mesh_get_bytes", device=device).inc(
                buf.nbytes
            )
        return buf

    def get_stacked(self, name: str) -> StackedValue:
        """The named value, device-major.

        Zero-copy when the name is stored stacked; otherwise the
        per-device buffers are packed into a fresh block (every device
        must hold the buffer and be alive).
        """
        value = self._stacked.get(name)
        if value is not None:
            if _telemetry.enabled:
                _telemetry.metrics.counter("mesh_get_bytes", device="stacked").inc(
                    value.block.nbytes
                )
            return value
        return StackedValue.stack([self.get(name, d) for d in self.devices()])

    def get_all(self, name: str) -> list[np.ndarray]:
        """Buffers of every device, in device order."""
        return [self.get(name, d) for d in self.devices()]

    def grid(self, name: str) -> list[list[np.ndarray]]:
        """Buffers as a [x][y] grid (for the 2-D collective)."""
        return [
            [self.get(name, (x, y)) for y in range(self.y_size)]
            for x in range(self.x_size)
        ]

    def has(self, name: str) -> bool:
        return name in self._buffers or name in self._stacked

    def apply(self, name: str, fn: Callable[[np.ndarray], np.ndarray]) -> None:
        """Apply a function to the named buffer on every surviving device."""
        for d in self.alive_devices():
            self.put(name, d, fn(self.get(name, d)))

    def apply_inplace(self, name: str, fn: Callable[[np.ndarray], None]) -> None:
        """Apply a *mutating* function to the named buffer on every device.

        ``fn`` must update its argument in place (its return value is
        ignored); no copies are made and no dict entries are rewritten.
        Stacked names are demoted first: replicated rows alias one memory
        region, and a per-device mutation needs per-device ownership.
        """
        if name in self._stacked:
            self._demote(name)
        try:
            per_device = self._buffers[name]
        except KeyError:
            raise KeyError(f"buffer {name!r} not present on mesh") from None
        for device, buf in per_device.items():
            if device not in self._dead:
                fn(buf)

    def _check_device(self, device: tuple[int, int], require_alive: bool = True) -> None:
        x, y = device
        if not (0 <= x < self.x_size and 0 <= y < self.y_size):
            raise ValueError(
                f"device {device} outside mesh {self.x_size}x{self.y_size}"
            )
        if require_alive and device in self._dead:
            raise DeviceLostError(device)

    # --- collectives ----------------------------------------------------------

    def _bucket_for(self, names: tuple[str, ...]) -> GradientBucket:
        template_device = next(self.alive_devices(), None)
        if template_device is None:
            raise DeviceLostError(sorted(self._dead), "every mesh device is dead")
        template = {nm: self.get(nm, template_device) for nm in names}
        key = tuple(
            (nm, template[nm].shape, template[nm].dtype.str) for nm in names
        )
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = GradientBucket(template)
            logger.debug(
                "mesh %dx%d: new fused bucket for %d tensor(s), %d elems",
                self.x_size, self.y_size, len(names), bucket.size,
            )
        return bucket

    def all_reduce(
        self,
        name: str | Sequence[str],
        dtype_policy: str = "f32",
        hierarchical: bool | None = None,
        shard_transform: Callable[[np.ndarray], np.ndarray] | None = None,
        on_fault: str = "raise",
    ) -> None:
        """All-reduce named buffer(s) in place across every surviving device.

        ``name`` may be a single buffer name or a sequence of names; a
        sequence is fused into one bucketed collective (one launch for the
        whole set, as bucketed gradient summation does).  ``hierarchical``
        selects the 2-D schedule (default when both mesh dims exceed 1).
        ``shard_transform`` is the fused sharded-update hook of
        :func:`repro.runtime.collectives.two_phase_all_reduce`, applied to
        fused flat shards, and is only valid with the hierarchical schedule.

        ``on_fault`` controls the semantics on a mesh with holes:
        ``"raise"`` (default) raises :class:`DeviceLostError` naming the
        dead devices — the lockstep behavior of a synchronous fleet;
        ``"heal"`` runs a degraded collective over the survivors only (the
        2-D grid schedule needs a full grid, so healing falls back to a
        flat ring over the survivors, the way Figure 4's hop rings route
        around planned holes).  Dead devices' buffers do not contribute and
        are not updated.
        """
        if on_fault not in ("raise", "heal"):
            raise ValueError(f"on_fault must be 'raise' or 'heal', got {on_fault!r}")
        names = (name,) if isinstance(name, str) else tuple(name)
        degraded = bool(self._dead)
        if degraded:
            if on_fault == "raise":
                err = DeviceLostError(
                    sorted(self._dead),
                    f"all_reduce on mesh with dead device(s) "
                    f"{sorted(self._dead)}; pass on_fault='heal' to degrade",
                )
                _telemetry.on_terminal_failure(err, origin="mesh.all_reduce")
                raise err
            if self.num_alive < 1:
                raise DeviceLostError(sorted(self._dead), "every mesh device is dead")
        if hierarchical is None:
            hierarchical = self.x_size > 1 and self.y_size > 1 and not degraded
        elif hierarchical and degraded:
            # The 2-D schedule addresses a full x*y grid; holes break it.
            logger.info(
                "mesh %dx%d: %d hole(s) — degrading 2-D schedule to survivor ring",
                self.x_size, self.y_size, len(self._dead),
            )
            hierarchical = False
        if not hierarchical and shard_transform is not None:
            raise ValueError("shard_transform requires the hierarchical schedule")
        participants = list(self.alive_devices())
        with _telemetry.tracer.span("mesh_all_reduce", category="comm"):
            bucket = self._bucket_for(names)
            if not degraded:
                # Device-major fast path (DESIGN.md §12): gather the fused
                # buffers of the full mesh into one (n, bucket.size) block,
                # run the stacked collective, and store each name's result
                # as a lazily replicated StackedValue — no per-device
                # result copies and no dict churn.
                n = len(participants)
                block = np.empty((n, bucket.size), dtype=bucket.dtype)
                for i, d in enumerate(participants):
                    bucket.flatten(
                        {nm: self.get(nm, d) for nm in names}, out=block[i]
                    )
                reduced = bucket.all_reduce_stacked(
                    block,
                    dtype_policy,
                    grid_shape=(self.x_size, self.y_size)
                    if hierarchical
                    else None,
                    shard_transform=shard_transform,
                )
                flat = reduced.block[0]
                for nm in names:
                    part = flat[bucket.slice_of(nm)].reshape(bucket.shapes[nm])
                    self._buffers.pop(nm, None)
                    self._stacked[nm] = StackedValue.replicate(part, n)
            else:
                trees = [
                    {nm: self.get(nm, d) for nm in names} for d in participants
                ]
                reduced = bucket.all_reduce(
                    trees,
                    dtype_policy,
                    grid_shape=None,
                    shard_transform=shard_transform,
                )
                for tree, d in zip(reduced, participants):
                    for nm in names:
                        self.put(nm, d, tree[nm])
        if _telemetry.enabled:
            _telemetry.metrics.counter(
                "mesh_allreduce_launches",
                schedule="2d" if hierarchical else "ring",
            ).inc()
            if degraded:
                _telemetry.metrics.counter("mesh_degraded_collectives").inc()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VirtualMesh({self.x_size}x{self.y_size}, "
            f"buffers={sorted(set(self._buffers) | set(self._stacked))})"
        )

"""A virtual device mesh holding per-device numpy state.

:class:`VirtualMesh` is the functional twin of the hardware topology: a
logical ``x_size x y_size`` grid of devices, each with named buffers, plus
convenience methods that run the runtime collectives over a named buffer.
The trainers in :mod:`repro.core` use it as their execution substrate.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.runtime.collectives import (
    ring_all_reduce,
    two_phase_all_reduce,
)


class VirtualMesh:
    """A logical 2-D grid of numpy 'devices'.

    Parameters
    ----------
    x_size, y_size:
        Logical mesh extent.  For pure data parallelism a 1-D mesh
        (``y_size=1``) is fine; the 2-D hierarchical collective needs both
        dimensions > 1 to exercise both phases.
    """

    def __init__(self, x_size: int, y_size: int = 1) -> None:
        if x_size < 1 or y_size < 1:
            raise ValueError("mesh dims must be >= 1")
        self.x_size = x_size
        self.y_size = y_size
        self._buffers: dict[str, dict[tuple[int, int], np.ndarray]] = {}

    @property
    def num_devices(self) -> int:
        return self.x_size * self.y_size

    def devices(self) -> Iterator[tuple[int, int]]:
        for x in range(self.x_size):
            for y in range(self.y_size):
                yield (x, y)

    # --- buffer management ---------------------------------------------------

    def put(self, name: str, device: tuple[int, int], array: np.ndarray) -> None:
        """Place a buffer on one device."""
        self._check_device(device)
        self._buffers.setdefault(name, {})[device] = np.asarray(array)

    def put_replicated(self, name: str, array: np.ndarray) -> None:
        """Place identical copies of a buffer on every device."""
        for d in self.devices():
            self.put(name, d, np.array(array, copy=True))

    def get(self, name: str, device: tuple[int, int]) -> np.ndarray:
        self._check_device(device)
        try:
            return self._buffers[name][device]
        except KeyError:
            raise KeyError(f"buffer {name!r} not present on device {device}") from None

    def get_all(self, name: str) -> list[np.ndarray]:
        """Buffers of every device, in device order."""
        return [self.get(name, d) for d in self.devices()]

    def grid(self, name: str) -> list[list[np.ndarray]]:
        """Buffers as a [x][y] grid (for the 2-D collective)."""
        return [
            [self.get(name, (x, y)) for y in range(self.y_size)]
            for x in range(self.x_size)
        ]

    def has(self, name: str) -> bool:
        return name in self._buffers

    def apply(self, name: str, fn: Callable[[np.ndarray], np.ndarray]) -> None:
        """Apply a function to the named buffer on every device."""
        for d in self.devices():
            self.put(name, d, fn(self.get(name, d)))

    def _check_device(self, device: tuple[int, int]) -> None:
        x, y = device
        if not (0 <= x < self.x_size and 0 <= y < self.y_size):
            raise ValueError(
                f"device {device} outside mesh {self.x_size}x{self.y_size}"
            )

    # --- collectives ----------------------------------------------------------

    def all_reduce(
        self,
        name: str,
        dtype_policy: str = "f32",
        hierarchical: bool | None = None,
        shard_transform: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> None:
        """All-reduce a named buffer in place across every device.

        ``hierarchical`` selects the 2-D schedule (default when both mesh
        dims exceed 1).  ``shard_transform`` is the fused sharded-update hook
        of :func:`repro.runtime.collectives.two_phase_all_reduce` and is only
        valid with the hierarchical schedule.
        """
        if hierarchical is None:
            hierarchical = self.x_size > 1 and self.y_size > 1
        if hierarchical:
            result = two_phase_all_reduce(
                self.grid(name), dtype_policy, shard_transform=shard_transform
            )
            for x in range(self.x_size):
                for y in range(self.y_size):
                    self.put(name, (x, y), result[x][y])
        else:
            if shard_transform is not None:
                raise ValueError(
                    "shard_transform requires the hierarchical schedule"
                )
            result_flat = ring_all_reduce(self.get_all(name), dtype_policy)
            for arr, d in zip(result_flat, self.devices()):
                self.put(name, d, arr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VirtualMesh({self.x_size}x{self.y_size}, "
            f"buffers={sorted(self._buffers)})"
        )

"""Device-major stacked mesh values.

A :class:`StackedValue` stores one named mesh value for *all* devices as a
single ``(num_devices, *shape)`` ndarray — the device axis comes first, so
a collective over the whole fleet is one vectorized numpy operation instead
of ``num_devices`` per-device dispatches.  This is the storage layout that
lets the real-numpy runtime execute 4096-device collectives: Mesh-TF and
GSPMD get their scale from exactly this one-op-over-all-devices (SPMD)
execution model.

Two physical layouts share the type:

* **distinct** (``replicated=False``) — ``block[d]`` is device ``d``'s
  buffer; rows are independent memory regions (views of one allocation);
* **replicated** (``replicated=True``) — ``block`` has one physical row
  logically shared by every device.  This is the natural result of an
  all-gather/all-reduce: instead of materializing ``n`` identical copies
  (the dominant cost of the old per-device path), every device's "buffer"
  is a read-only view of the same memory.  Writers must materialize first
  (:meth:`materialized`), which is what :class:`~repro.runtime.mesh.
  VirtualMesh` does lazily on the first per-device write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np


@dataclass
class StackedValue:
    """One mesh value for every device, stored device-major.

    ``block`` is ``(num_devices, *shape)`` when ``replicated`` is False and
    ``(1, *shape)`` when True (one physical row shared by all devices).
    """

    block: np.ndarray
    num_devices: int
    replicated: bool = False

    def __post_init__(self) -> None:
        self.block = np.asarray(self.block)
        if self.num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if self.block.ndim < 1:
            raise ValueError("block must have a leading device axis")
        rows = self.block.shape[0]
        if self.replicated:
            if rows != 1:
                raise ValueError("replicated block must have exactly one row")
        elif rows != self.num_devices:
            raise ValueError(
                f"block has {rows} rows for {self.num_devices} devices"
            )

    @property
    def shape(self) -> tuple[int, ...]:
        """Per-device buffer shape (without the device axis)."""
        return self.block.shape[1:]

    @property
    def dtype(self) -> np.dtype:
        return self.block.dtype

    def device_view(self, index: int) -> np.ndarray:
        """Device ``index``'s buffer as a zero-copy view.

        Replicated rows alias one memory region, so their views are
        returned read-only — an accidental in-place write would silently
        mutate every device at once.  Distinct rows are writable.
        """
        if not 0 <= index < self.num_devices:
            raise IndexError(
                f"device index {index} out of range for {self.num_devices}"
            )
        if self.replicated:
            view = self.block[0].view()
            view.flags.writeable = False
            return view
        return self.block[index]

    def rows(self) -> Iterator[np.ndarray]:
        """Per-device views in device order."""
        return (self.device_view(d) for d in range(self.num_devices))

    def to_list(self) -> list[np.ndarray]:
        """Per-device views as a list (the legacy per-device interface)."""
        return list(self.rows())

    def materialized(self) -> "StackedValue":
        """A value whose rows are independent writable memory regions.

        Distinct values are returned as-is (their rows already are); a
        replicated value pays one broadcast copy into a fresh
        ``(num_devices, *shape)`` block — the cost the lazy layout defers
        until someone actually needs per-device ownership.
        """
        if not self.replicated:
            return self
        full = np.empty(
            (self.num_devices,) + self.shape, dtype=self.block.dtype
        )
        full[...] = self.block[0]
        return StackedValue(full, self.num_devices)

    @classmethod
    def stack(cls, arrays: Sequence[np.ndarray]) -> "StackedValue":
        """Pack per-device buffers into one device-major block (one copy)."""
        if not len(arrays):
            raise ValueError("need at least one device buffer")
        return cls(np.stack([np.asarray(a) for a in arrays]), len(arrays))

    @classmethod
    def replicate(cls, array: np.ndarray, num_devices: int) -> "StackedValue":
        """Wrap one buffer as the shared replica of ``num_devices`` devices.

        Zero-copy: the value views ``array``'s memory.  Callers that need
        isolation from later writes to ``array`` should pass a copy.
        """
        arr = np.asarray(array)
        return cls(arr[None, ...], num_devices, replicated=True)

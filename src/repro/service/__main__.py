"""Service chaos smoke: mixed burst, one poison, one crash, then resume.

``python -m repro.service`` drives an in-process service through the
full robustness story and exits non-zero if any claim fails, so CI can
gate on it:

* a mixed burst larger than the bounded queue — every overflow is shed
  with a *typed* ``overloaded`` rejection, and the accounting invariant
  ``submitted == ok + rejected + failed`` holds (no silent loss);
* one worker-crash injection — the job retries on the shared policy and
  completes;
* one poisoned job — its retry budget exhausts, the client sees a typed
  ``JobFailed``, and a flight-recorder postmortem bundle is dumped;
* a journaled sweep killed halfway — the rerun resumes with zero
  recomputation and returns payloads bit-identical to an uninterrupted
  run on a fresh service.
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro import telemetry
from repro.service import (
    JobFailed,
    ServiceConfig,
    ServiceRejection,
    SimJob,
    SimulationService,
    SweepInterrupted,
    run_sweep,
)


def _mixed_burst() -> list[SimJob]:
    # Poison and the crash target lead the burst so they are admitted
    # before the bounded queue fills; the tail overflows and is shed.
    jobs: list[SimJob] = [
        SimJob("steptime", {"chips": 64}, name="poison"),
        SimJob("chaos",
               {"steps": 10, "expected_chip_failures": 1.0, "seed": 7},
               name="burst-chaos"),
    ]
    jobs.extend(
        SimJob("steptime", {"chips": 256, "global_batch": 1024 + 256 * i},
               name=f"burst-{i}")
        for i in range(12)
    )
    return jobs


def run_smoke() -> int:
    failures: list[str] = []
    telemetry.reset()

    # --- mixed burst: typed shedding, crash retry, poison postmortem ------
    config = ServiceConfig(
        concurrency=2, queue_depth=4, rate_capacity=64, rate_refill_per_s=64,
        cache_entries=0, breaker_threshold=5,
        poisoned=("poison",), crashes=(("burst-0", 1),),
    )
    counts = {"ok": 0, "overloaded": 0, "failed": 0}
    crash_attempts = 0
    with SimulationService(config) as svc:
        handles = []
        for job in _mixed_burst():
            try:
                handles.append(svc.submit(job, client="smoke"))
            except ServiceRejection as exc:
                counts[exc.reason] = counts.get(exc.reason, 0) + 1
        for handle in handles:
            reason, _ = handle.outcome(timeout=60.0)
            counts[reason] = counts.get(reason, 0) + 1
            if handle.job.name == "burst-0":
                crash_attempts = handle.attempts
        snapshot = svc.snapshot()

    submitted = len(_mixed_burst())
    accounted = sum(counts.values())
    print(f"service smoke: burst of {submitted}: {counts}")
    if accounted != submitted:
        failures.append(
            f"silent loss: {submitted} submitted, {accounted} accounted"
        )
    if counts.get("overloaded", 0) < 1:
        failures.append("the overflow past queue depth must shed as typed "
                        "`overloaded`")
    if counts.get("failed", 0) != 1:
        failures.append("exactly the poisoned job must fail terminally")
    if snapshot["worker_crashes"] < 1:
        failures.append("the injected worker crash must be recorded")
    if crash_attempts < 2:
        failures.append(
            f"the crashed job must have retried (attempts={crash_attempts})"
        )
    postmortem = telemetry.flight_recorder.last_postmortem
    if postmortem is None:
        failures.append("the poisoned job must dump a postmortem bundle")
    else:
        print(f"  postmortem bundle: {postmortem.get('reason', '?')}")

    # --- kill-and-resume sweep: zero recompute, bit-identical -------------
    jobs = [
        SimJob("steptime", {"chips": 256, "global_batch": 4096 + 512 * i})
        for i in range(6)
    ]
    sweep_cfg = ServiceConfig(concurrency=2, queue_depth=16, cache_entries=0)
    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "sweep.jsonl")
        with SimulationService(sweep_cfg) as svc:
            try:
                run_sweep(svc, jobs, journal, interrupt_after=3)
                failures.append("interrupt_after must raise SweepInterrupted")
            except SweepInterrupted as exc:
                print(f"  sweep killed: {exc}")
        with SimulationService(sweep_cfg) as svc:
            resumed = run_sweep(svc, jobs, journal)
        with SimulationService(sweep_cfg) as svc:
            uninterrupted = run_sweep(
                svc, jobs, os.path.join(tmp, "fresh.jsonl")
            )
    print(
        f"  resume: {resumed.executed} executed, {resumed.reused} reused"
    )
    if resumed.reused != 3 or resumed.executed != len(jobs) - 3:
        failures.append(
            f"resume must reuse exactly the journaled prefix "
            f"(reused={resumed.reused}, executed={resumed.executed})"
        )
    if resumed.payloads != uninterrupted.payloads:
        failures.append("resumed payloads must be bit-identical to an "
                        "uninterrupted run")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("service smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(run_smoke())

"""Job specs, canonical content keys, and the typed rejection taxonomy.

A :class:`SimJob` names one what-if query against the simulation stack —
a :class:`~repro.core.step_time.StepTimeModel` evaluation, an
accounting-mode :func:`~repro.resilience.chaos.run_chaos` run, a
multi-tenant :mod:`repro.cluster` scenario.  Two properties make it a
*service* spec rather than a function call:

* **Canonical identity.**  :func:`canonical_spec` reduces a job to a
  deterministic JSON form (sorted keys, simulation-relevant fields only —
  the client name and deadline do not change the answer) and
  :attr:`SimJob.content_key` is its SHA-256.  Identical configs hash
  identically, which is what the content-addressed result cache and the
  sweep journal key on.
* **Typed outcomes.**  When the service sheds load it raises one of the
  :class:`ServiceRejection` subclasses — :class:`Overloaded` (queue
  depth / circuit breaker), :class:`RateLimited` (per-client token
  bucket), :class:`DeadlineExceeded` (the job aged out before or during
  execution) — and :class:`JobFailed` when a job exhausted its retry
  budget against crashing workers.  Clients never see a silent drop or a
  bare ``Exception``: every submitted job either returns a payload or
  raises exactly one of these.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

#: Job classes the service knows how to execute (see ``executors.py``).
JOB_KINDS = ("steptime", "chaos", "cluster")


class ServiceError(RuntimeError):
    """Base class of every error the service layer raises."""


class ServiceRejection(ServiceError):
    """A typed load-shedding rejection: the job was *not* silently dropped.

    ``reason`` is the stable machine-readable tag (``"overloaded"``,
    ``"rate_limited"``, ``"deadline_exceeded"``) used by telemetry labels
    and the load-test tables.
    """

    reason = "rejected"


class Overloaded(ServiceRejection):
    """Queue depth exhausted (or circuit open with no degraded mode)."""

    reason = "overloaded"


class RateLimited(ServiceRejection):
    """The client's token bucket is empty; retry after the refill."""

    reason = "rate_limited"


class DeadlineExceeded(ServiceRejection):
    """The job's deadline passed while queued or executing."""

    reason = "deadline_exceeded"


class JobFailed(ServiceError):
    """The job exhausted its retry budget against worker crashes.

    Terminal: by the time a client sees this, a flight-recorder
    postmortem bundle has been dumped with the attempts' timeline.
    """

    def __init__(self, job: "SimJob", attempts: int, cause: str = "") -> None:
        self.job = job
        self.attempts = attempts
        self.cause = cause
        super().__init__(
            f"job {job.name!r} failed after {attempts} attempt(s)"
            + (f": {cause}" if cause else "")
        )


class WorkerCrashError(ServiceError):
    """One worker attempt died mid-job (injected by the crash plan)."""

    def __init__(self, worker: int, job: str, attempt: int) -> None:
        self.worker = worker
        self.job = job
        self.attempt = attempt
        super().__init__(
            f"worker {worker} crashed executing {job!r} (attempt {attempt})"
        )


def _canonical_value(value):
    """JSON-stable form: tuples become lists, dicts sort, floats stay floats."""
    if isinstance(value, dict):
        return {str(k): _canonical_value(value[k]) for k in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_canonical_value(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"job params must be JSON scalars/lists/dicts, got {type(value).__name__}"
    )


def canonical_spec(kind: str, params: dict) -> str:
    """The canonical JSON of a job's simulation-relevant fields.

    Sorted keys, no whitespace variance, tuples and lists identified —
    two specs that mean the same simulation serialize identically, so
    their SHA-256 content keys collide on purpose.
    """
    return json.dumps(
        {"kind": kind, "params": _canonical_value(params)},
        sort_keys=True,
        separators=(",", ":"),
    )


def content_key(kind: str, params: dict) -> str:
    """SHA-256 hex digest of :func:`canonical_spec` — the cache/journal key."""
    return hashlib.sha256(canonical_spec(kind, params).encode()).hexdigest()


@dataclass(frozen=True)
class SimJob:
    """One what-if query: a job class plus its JSON-ready parameters.

    ``name`` is the client-facing label (telemetry, logs, crash plans);
    it does **not** enter the content key — two differently-named
    submissions of the same simulation share a cache entry.
    ``deadline_s`` is a wall-clock budget from submission; ``None`` means
    the job never ages out.  ``degradable`` marks job classes that have
    an accounting-only fallback the circuit breaker can route to.
    """

    kind: str
    params: dict = field(default_factory=dict)
    name: str = ""
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r}; choose from {JOB_KINDS}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be > 0")
        # Validate canonicalizability eagerly: a spec that cannot hash
        # cannot be queued, cached, or journaled.
        canonical_spec(self.kind, self.params)

    @property
    def content_key(self) -> str:
        return content_key(self.kind, self.params)

    @property
    def label(self) -> str:
        return self.name or f"{self.kind}:{self.content_key[:12]}"

    def canonical(self) -> str:
        return canonical_spec(self.kind, self.params)

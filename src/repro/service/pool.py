"""Worker pool plumbing: job handles, crash injection, worker threads.

The pool is the part of the service that actually runs jobs: a bounded
``queue.Queue`` feeds ``concurrency`` daemon threads, each executing one
job at a time through a callback supplied by the
:class:`~repro.service.service.SimulationService` (which owns retries,
breakers, and the cache — the pool only owns threads and the queue).

Crash injection (:class:`CrashPlan`) makes the service itself
chaos-testable: whether worker ``w``'s attempt ``k`` at job ``j`` dies
is a pure function of ``(seed, job label, attempt)`` through the same
:func:`~repro.cluster.jobs.derive_subseed` splitting rule the cluster
scheduler uses for its retry jitter — a seeded run replays the exact
same crashes regardless of thread scheduling, which is what lets tests
pin "this job crashes twice, then succeeds" behavior.
"""

from __future__ import annotations

import logging
import queue as _queue
import threading
import time

from repro.cluster.jobs import derive_subseed
from repro.service.spec import ServiceError, ServiceRejection, SimJob

logger = logging.getLogger("repro.service")

#: Sentinel that tells a worker thread to exit.
_STOP = object()


class JobHandle:
    """The client's view of one accepted job: block on it, get the outcome.

    Exactly one of ``payload`` / ``error`` is set when done.  ``result()``
    returns the payload or raises the typed error; ``outcome()`` is the
    non-raising form the load tests tabulate (``("ok", payload)`` or
    ``(reason, None)``).
    """

    def __init__(self, job: SimJob, client: str, submitted_at: float) -> None:
        self.job = job
        self.client = client
        self.submitted_at = submitted_at
        self.latency_s: float | None = None
        self.cached = False
        self.degraded = False
        self.attempts = 0
        self._done = threading.Event()
        self._payload: dict | None = None
        self._error: ServiceError | None = None

    def done(self) -> bool:
        return self._done.is_set()

    def _resolve(self, payload: dict | None, error: ServiceError | None) -> None:
        self._payload = payload
        self._error = error
        self._done.set()

    def result(self, timeout: float | None = 30.0) -> dict:
        """The payload, or the typed rejection/failure, within ``timeout``."""
        if not self._done.wait(timeout):
            raise TimeoutError(f"job {self.job.label!r} still pending")
        if self._error is not None:
            raise self._error
        assert self._payload is not None
        return self._payload

    def outcome(self, timeout: float | None = 30.0) -> tuple[str, dict | None]:
        """``("ok", payload)``, ``(rejection reason, None)``, or ``("failed", None)``."""
        try:
            return "ok", self.result(timeout)
        except ServiceRejection as exc:
            return exc.reason, None
        except ServiceError:
            return "failed", None


class CrashPlan:
    """Seed-deterministic worker-crash schedule.

    ``crash_rate`` is the per-attempt crash probability, decided by
    hashing ``(seed, "service-crash", label, attempt)`` — independent of
    which worker thread picked the job up and of wall-clock timing.
    ``poisoned`` labels crash on *every* attempt (the retry budget
    exhausts and the job fails terminally, postmortem included);
    ``crashes`` pins explicit ``(label, attempt)`` pairs for targeted
    tests.
    """

    def __init__(
        self,
        seed: int = 0,
        crash_rate: float = 0.0,
        poisoned: tuple[str, ...] = (),
        crashes: tuple[tuple[str, int], ...] = (),
    ) -> None:
        if not 0.0 <= crash_rate < 1.0:
            raise ValueError("crash_rate must be in [0, 1)")
        self.seed = seed
        self.crash_rate = crash_rate
        self.poisoned = frozenset(poisoned)
        self.crashes = frozenset(crashes)

    def should_crash(self, label: str, attempt: int) -> bool:
        if label in self.poisoned or (label, attempt) in self.crashes:
            return True
        if self.crash_rate == 0.0:
            return False
        word = derive_subseed(self.seed, "service-crash", label, attempt)
        return word / 2**32 < self.crash_rate

    @property
    def active(self) -> bool:
        return bool(self.crash_rate or self.poisoned or self.crashes)


class WorkerPool:
    """Bounded queue + ``concurrency`` daemon threads running ``execute_fn``.

    ``execute_fn(handle, worker_index)`` must resolve the handle (it owns
    retries and error taxonomy); a worker that sees an unexpected escape
    from ``execute_fn`` resolves the handle itself rather than dying —
    one bad job must never take a worker slot out of service.
    """

    def __init__(
        self,
        concurrency: int,
        queue_depth: int,
        execute_fn,
        name: str = "repro-service",
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.concurrency = concurrency
        self.queue: _queue.Queue = _queue.Queue(maxsize=queue_depth)
        self._execute_fn = execute_fn
        self._threads = [
            threading.Thread(
                target=self._worker_loop, args=(i,),
                name=f"{name}-worker-{i}", daemon=True,
            )
            for i in range(concurrency)
        ]
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for t in self._threads:
            t.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Drain-stop: workers finish queued jobs, then exit on the sentinel."""
        if not self._started:
            return
        for _ in self._threads:
            self.queue.put(_STOP)
        deadline = time.monotonic() + timeout
        for t in self._threads:
            t.join(max(0.0, deadline - time.monotonic()))
        self._started = False

    def try_enqueue(self, handle: JobHandle) -> bool:
        """Non-blocking put; ``False`` means the queue is at depth."""
        try:
            self.queue.put_nowait(handle)
            return True
        except _queue.Full:
            return False

    @property
    def depth(self) -> int:
        return self.queue.qsize()

    def _worker_loop(self, index: int) -> None:
        while True:
            item = self.queue.get()
            if item is _STOP:
                return
            try:
                self._execute_fn(item, index)
            except Exception as exc:  # noqa: BLE001 — worker must survive
                logger.exception(
                    "worker %d: execute_fn escaped on %s", index, item.job.label
                )
                if not item.done():
                    item._resolve(
                        None,
                        ServiceError(f"internal service error: {exc!r}"),
                    )

"""What-if executors: the pure functions behind each service job class.

Every executor maps a canonicalized parameter dict to a JSON-ready
result payload, deterministically — same spec, bit-identical payload —
which is what makes the content-addressed cache and the sweep journal
sound.  Executors never touch service state; crashes, retries, and
deadlines live in the worker pool.

Job classes:

``steptime``
    Evaluate a :class:`~repro.core.step_time.StepTimeModel` for one
    calibrated model on one slice: the per-phase breakdown, the step
    time, and (with ``overlap``) the exposed-communication tail.
``chaos``
    A :func:`~repro.resilience.chaos.run_chaos` run under a sampled
    :class:`~repro.resilience.faults.FaultPlan`.  Full mode does real
    numerics on a small WUS trainer; **degraded mode** (what the circuit
    breaker falls back to under overload) reuses the same plan and
    config in accounting-only mode — goodput numbers still flow, the
    numerics are skipped.  Degraded payloads are tagged
    ``"mode": "accounting"`` and are never cached.
``cluster``
    A multi-tenant :mod:`repro.cluster` scenario: the adapter
    (:func:`to_cluster_spec`) turns each admitted tenant dict into a
    cluster :class:`~repro.cluster.jobs.JobSpec`, so the PR-8 scheduler
    consumes jobs straight from the PR-9 service queue.
"""

from __future__ import annotations

import logging

from repro.service.spec import SimJob

logger = logging.getLogger("repro.service")

#: Job classes with an accounting-only fallback the breaker can route to.
DEGRADABLE_KINDS = frozenset({"chaos"})


# --- steptime ----------------------------------------------------------------


def execute_steptime(params: dict) -> dict:
    """One step-time query: ``{model, chips, global_batch, overlap, buckets}``."""
    from repro.core.step_time import StepTimeModel
    from repro.core.strategy import ParallelismConfig
    from repro.experiments.calibration import spec_for

    model_name = params.get("model", "resnet50")
    chips = int(params.get("chips", 256))
    global_batch = int(params.get("global_batch", 8192))
    overlap = bool(params.get("overlap", False))
    buckets = int(params.get("buckets", 1))
    model = StepTimeModel(
        spec_for(model_name),
        ParallelismConfig(num_chips=chips, global_batch=global_batch),
        overlap=overlap,
        overlap_buckets=buckets,
    )
    b = model.breakdown()
    return {
        "model": model_name,
        "chips": chips,
        "global_batch": global_batch,
        "compute_s": b.compute,
        "allreduce_s": b.allreduce,
        "exposed_allreduce_s": b.exposed_allreduce,
        "mp_comm_s": b.mp_comm,
        "weight_update_s": b.weight_update,
        "infeed_s": b.infeed,
        "device_time_s": b.device_time,
        "step_time_s": model.step_time(),
    }


# --- chaos -------------------------------------------------------------------


def _chaos_plan_and_config(params: dict):
    from repro.resilience.chaos import ChaosConfig
    from repro.resilience.faults import FaultPlan

    mesh_shape = tuple(params.get("mesh_shape", (2, 2)))
    steps = int(params.get("steps", 50))
    plan = FaultPlan.sample(
        seed=int(params.get("seed", 0)),
        mesh_shape=mesh_shape,
        steps=steps,
        expected_chip_failures=float(params.get("expected_chip_failures", 0.0)),
        expected_stragglers=float(params.get("expected_stragglers", 0.0)),
        expected_preemptions=float(params.get("expected_preemptions", 0.0)),
    )
    config = ChaosConfig(
        mesh_shape=mesh_shape,
        target_steps=steps,
        checkpoint_interval=int(params.get("checkpoint_interval", 5)),
        chips_per_host=int(params.get("chips_per_host", 2)),
    )
    return plan, config


def execute_chaos(params: dict, degraded: bool = False) -> dict:
    """A chaos run; ``degraded`` swaps real numerics for pure accounting.

    Full mode trains a small WUS MLP through the plan (final loss and a
    loss curve land in the payload); degraded mode runs the identical
    plan/config with ``trainer_factory=None`` over ``state_bytes`` of
    checkpoint payload — the graceful fallback the circuit breaker
    routes chaos jobs to while open.
    """
    import numpy as np

    from repro.resilience.chaos import run_chaos

    plan, config = _chaos_plan_and_config(params)
    if degraded:
        report = run_chaos(
            plan, config, state_bytes=int(params.get("state_bytes", int(1e9)))
        )
        payload = {"mode": "accounting", "losses": []}
    else:
        from repro.core.trainer import TrainerConfig
        from repro.models.mlp import MLP
        from repro.optim.sgd import SGDMomentum

        trainer_config = TrainerConfig(
            model=MLP([8, 16, 4]),
            optimizer=SGDMomentum(learning_rate=0.05),
            strategy="wus",
            seed=int(params.get("seed", 0)),
        )

        def batch_fn(step: int):
            rng = np.random.default_rng((int(params.get("seed", 0)), step))
            # 12 samples: divisible by every survivor count of a 2x2 mesh.
            return rng.standard_normal((12, 8)), rng.integers(0, 4, size=12)

        report = run_chaos(
            plan, config, trainer_config=trainer_config, batch_fn=batch_fn
        )
        payload = {
            "mode": "full",
            "losses": [float(v) for v in report.losses],
        }
    payload.update(report.accounting_dict())
    payload["device_failures"] = report.device_failures
    payload["survivors"] = report.survivors
    payload["fault_events"] = plan.num_events
    return payload


# --- cluster (the PR-8 adapter) ----------------------------------------------


def _checkpoint_policy(raw: dict | None):
    """Build a per-tenant ``CheckpointPolicy`` from a JSON description."""
    if not raw:
        return None
    from repro.controlplane.checkpointing import (
        RiskAdaptive,
        StepInterval,
        WallClockInterval,
    )

    kind = raw.get("policy", "risk_adaptive")
    if kind == "risk_adaptive":
        return RiskAdaptive(
            hazard_per_second=float(raw["hazard_per_second"]),
            checkpoint_seconds=float(raw["checkpoint_seconds"]),
        )
    if kind == "wall_clock":
        return WallClockInterval(float(raw["every_seconds"]))
    if kind == "step":
        return StepInterval(int(raw["every_steps"]))
    raise ValueError(
        f"unknown checkpoint policy {kind!r}; choose from "
        "risk_adaptive, wall_clock, step"
    )


def to_cluster_spec(tenant: dict):
    """Adapt one admitted service tenant dict into a cluster ``JobSpec``.

    This is the bridge between the two layers: the service admits a
    ``cluster`` job whose params carry plain-JSON tenant descriptions,
    and the scheduler consumes real :class:`~repro.cluster.jobs.JobSpec`
    objects.  Only accounting-mode fields cross the boundary (a JSON job
    spec cannot carry a live model object).  A tenant may opt into a
    per-tenant checkpoint policy with
    ``{"checkpoint_policy": {"policy": "risk_adaptive",
    "hazard_per_second": h, "checkpoint_seconds": c}}`` (also
    ``"wall_clock"``/``every_seconds`` and ``"step"``/``every_steps``).
    """
    from repro.cluster import JobSpec

    return JobSpec(
        checkpoint_policy=_checkpoint_policy(tenant.get("checkpoint_policy")),
        name=str(tenant["name"]),
        slice_shape=tuple(tenant.get("slice_shape", (2, 2))),
        target_steps=int(tenant.get("target_steps", 20)),
        priority=int(tenant.get("priority", 0)),
        arrival_tick=int(tenant.get("arrival_tick", 0)),
        min_chips=int(tenant.get("min_chips", 1)),
        checkpoint_interval=int(tenant.get("checkpoint_interval", 5)),
        state_bytes=int(tenant.get("state_bytes", 0)),
        slo_goodput=float(tenant.get("slo_goodput", 0.0)),
    )


def execute_cluster(params: dict) -> dict:
    """Run a multi-tenant cluster scenario fed from the service queue."""
    from repro.cluster import ClusterConfig, run_cluster
    from repro.resilience.faults import FaultPlan

    tenants = params.get("tenants", ())
    if not tenants:
        raise ValueError("cluster job needs at least one tenant")
    specs = [to_cluster_spec(t) for t in tenants]
    mesh_shape = tuple(params.get("mesh_shape", (4, 4)))
    config = ClusterConfig(
        mesh_shape=mesh_shape,
        chips_per_host=int(params.get("chips_per_host", 8)),
        max_ticks=int(params.get("max_ticks", 2000)),
        seed=int(params.get("seed", 0)),
    )
    plan = FaultPlan.sample(
        seed=int(params.get("seed", 0)),
        mesh_shape=mesh_shape,
        steps=int(params.get("max_ticks", 2000)),
        expected_chip_failures=float(params.get("expected_chip_failures", 0.0)),
    )
    result = run_cluster(specs, config, plan=plan)
    return {
        "ticks": result.ticks,
        "completed": result.completed,
        "rejected": result.rejected,
        "preemptions": result.preemptions,
        "utilization": result.utilization,
        "fairness": result.fairness,
        "slo_attainment": result.slo_attainment,
        "tenants": {
            name: report.accounting_dict()
            for name, report in sorted(result.jobs.items())
        },
    }


# --- dispatch ----------------------------------------------------------------

_EXECUTORS = {
    "steptime": lambda params, degraded: execute_steptime(params),
    "chaos": execute_chaos,
    "cluster": lambda params, degraded: execute_cluster(params),
}


def execute(job: SimJob, degraded: bool = False) -> dict:
    """Run one job to a JSON-ready payload (pure; raises on bad specs)."""
    return _EXECUTORS[job.kind](job.params, degraded)

"""Resumable sweeps: a journaled map of jobs -> payloads, crash-safe.

A sweep is a batch of :class:`~repro.service.spec.SimJob` queries (a
scaling curve, a fault-rate grid) run through the service.  The
:class:`SweepJournal` applies the ``TrainerCheckpoint`` idiom at sweep
level: every completed job is appended to a JSON-lines journal *before*
the sweep moves on, so a sweep killed halfway resumes with **zero
recomputation** — completed entries are served from the journal, and
only the remaining tail executes.

Bit-identity is part of the contract: a resumed sweep returns payloads
bit-identical to an uninterrupted run.  Both paths round-trip every
payload through canonical JSON (Python's float repr round-trips
exactly), so "came from the journal" and "came from a worker" are
indistinguishable to the caller — the property test pins this for
interrupts at every index.

The journal is keyed by content key (the SHA-256 of the canonical spec,
same as the result cache), and its header pins the sweep identity — a
journal from a *different* job set refuses to resume rather than
silently serving wrong answers.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro import telemetry as _telemetry
from repro.service.spec import ServiceError, ServiceRejection, SimJob

logger = logging.getLogger("repro.service")

#: How many times the sweep retries a typed rejection before giving up.
#: A sweep is a batch client: when the front door says RateLimited or
#: Overloaded it backs off and resubmits instead of failing the sweep.
_SUBMIT_RETRIES = 2000
_SUBMIT_BACKOFF_S = 5e-3


class SweepInterrupted(ServiceError):
    """The sweep was killed mid-run (injected via ``interrupt_after``).

    The journal already holds everything completed so far; re-running
    the same sweep against the same journal resumes past it.
    """

    def __init__(self, completed: int, total: int) -> None:
        self.completed = completed
        self.total = total
        super().__init__(f"sweep interrupted after {completed}/{total} jobs")


def sweep_id(jobs: Sequence[SimJob]) -> str:
    """Identity of a job set: SHA-256 over the ordered content keys."""
    digest = hashlib.sha256()
    for job in jobs:
        digest.update(job.content_key.encode())
        digest.update(b"\n")
    return digest.hexdigest()


class SweepJournal:
    """Append-only JSON-lines journal of ``content_key -> payload``.

    Line 1 is a header pinning the sweep id; each subsequent line is one
    completed job.  Appends flush + fsync before returning, so a job is
    either durably journaled or will re-run — never half-recorded (a
    torn trailing line from a mid-write kill is detected and ignored).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    def load(self, expected_sweep_id: str) -> dict[str, dict]:
        """Completed entries, or ``{}`` for a fresh journal.

        Raises :class:`ServiceError` if the journal belongs to a
        different job set — resuming someone else's sweep would serve
        wrong answers with confidence.
        """
        if not self.path.exists():
            return {}
        entries: dict[str, dict] = {}
        with self.path.open("r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"sweep journal {self.path} has a corrupt header"
            ) from exc
        if header.get("sweep_id") != expected_sweep_id:
            raise ServiceError(
                f"journal {self.path} belongs to sweep "
                f"{header.get('sweep_id', '?')[:12]}..., not "
                f"{expected_sweep_id[:12]}...; refusing to resume"
            )
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Torn tail from a kill mid-write: everything before it
                # is durable, the torn job simply re-runs.
                logger.warning(
                    "sweep journal %s: ignoring torn trailing line", self.path
                )
                break
            entries[record["key"]] = record["payload"]
        return entries

    def start(self, sid: str, total: int) -> None:
        """Write the header for a fresh journal (no-op if it exists)."""
        if self.path.exists() and self.path.stat().st_size > 0:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("w", encoding="utf-8") as fh:
            fh.write(
                json.dumps({"sweep_id": sid, "jobs": total}, sort_keys=True)
                + "\n"
            )
            fh.flush()
            os.fsync(fh.fileno())

    def append(self, key: str, label: str, payload: dict) -> None:
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(
                json.dumps(
                    {"key": key, "label": label, "payload": payload},
                    sort_keys=True,
                )
                + "\n"
            )
            fh.flush()
            os.fsync(fh.fileno())


@dataclass
class SweepResult:
    """Outcome of one (possibly resumed) sweep, payloads in job order."""

    payloads: list[dict] = field(default_factory=list)
    executed: int = 0
    reused: int = 0

    @property
    def total(self) -> int:
        return self.executed + self.reused


def run_sweep(
    service,
    jobs: Sequence[SimJob],
    journal_path: str | os.PathLike,
    *,
    client: str = "sweep",
    interrupt_after: int | None = None,
) -> SweepResult:
    """Run ``jobs`` through ``service``, journaling each completion.

    Already-journaled jobs are reused without recomputation.  Typed
    rejections (rate limit, overload) back off and resubmit — a sweep is
    a polite batch client, not a burst.  ``interrupt_after=n`` raises
    :class:`SweepInterrupted` after ``n`` fresh executions, simulating a
    kill for the resume tests.
    """
    jobs = list(jobs)
    sid = sweep_id(jobs)
    journal = SweepJournal(journal_path)
    done = journal.load(sid)
    journal.start(sid, len(jobs))

    result = SweepResult()
    for job in jobs:
        key = job.content_key
        if key in done:
            result.reused += 1
            if _telemetry.enabled:
                _telemetry.metrics.counter(
                    "service_sweep_jobs", source="journal"
                ).inc()
            result.payloads.append(done[key])
            continue
        payload = _submit_with_backoff(service, job, client)
        # Round-trip through canonical JSON so a fresh payload is
        # bit-identical to the journaled form a resume would return.
        payload = json.loads(json.dumps(payload, sort_keys=True))
        journal.append(key, job.label, payload)
        done[key] = payload
        result.payloads.append(payload)
        result.executed += 1
        if _telemetry.enabled:
            _telemetry.metrics.counter(
                "service_sweep_jobs", source="executed"
            ).inc()
        if interrupt_after is not None and result.executed >= interrupt_after:
            raise SweepInterrupted(result.executed, len(jobs))
    logger.info(
        "sweep %s...: %d executed, %d reused from journal",
        sid[:12], result.executed, result.reused,
    )
    return result


def _submit_with_backoff(service, job: SimJob, client: str) -> dict:
    for _ in range(_SUBMIT_RETRIES):
        try:
            handle = service.submit(job, client=client)
        except ServiceRejection:
            service._sleep(_SUBMIT_BACKOFF_S)
            continue
        return handle.result()
    raise ServiceError(
        f"sweep could not admit {job.label!r} after {_SUBMIT_RETRIES} tries"
    )

"""``repro-service``: submit jobs, run sweeps, load-test the service.

Usage::

    repro-service submit --kind steptime --params '{"chips": 256}'
    repro-service submit --kind chaos --params '{"steps": 50}' --deadline 5
    repro-service sweep --jobs jobs.json --journal sweep.jsonl
    repro-service load
    repro-service smoke

``submit`` runs one job through an in-process service and prints the
JSON payload; ``sweep`` runs a job file (a JSON list of
``{"kind": ..., "params": ..., "name": ...}``) against a journal —
rerunning after a kill resumes with zero recomputation; ``load`` prints
the ok-rate/latency table of :mod:`repro.experiments.service_load`;
``smoke`` runs the chaos self-test of :mod:`repro.service.__main__`.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.service.service import ServiceConfig, SimulationService
from repro.service.spec import ServiceError, SimJob


def _service_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--concurrency", type=int, default=4, help="worker pool size"
    )
    parser.add_argument(
        "--queue-depth", type=int, default=64, help="bounded queue depth"
    )
    parser.add_argument(
        "--cache", type=int, default=256,
        help="result cache entries (0 disables)",
    )
    parser.add_argument(
        "--crash-rate", type=float, default=0.0,
        help="injected per-attempt worker crash probability",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="crash/retry plan seed"
    )


def _config(args: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        concurrency=args.concurrency,
        queue_depth=args.queue_depth,
        cache_entries=args.cache,
        crash_rate=args.crash_rate,
        seed=args.seed,
    )


def cmd_submit(args: argparse.Namespace) -> int:
    try:
        params = json.loads(args.params)
    except json.JSONDecodeError as exc:
        print(f"error: --params is not valid JSON: {exc}", file=sys.stderr)
        return 2
    try:
        job = SimJob(
            args.kind, params, name=args.name, deadline_s=args.deadline
        )
    except (ValueError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with SimulationService(_config(args)) as svc:
        try:
            handle = svc.submit(job)
            payload = handle.result(timeout=args.timeout)
        except ServiceError as exc:
            reason = getattr(exc, "reason", "failed")
            print(f"rejected ({reason}): {exc}", file=sys.stderr)
            return 1
        print(json.dumps(payload, indent=2, sort_keys=True))
        if args.stats:
            print(json.dumps(svc.snapshot(), indent=2, sort_keys=True),
                  file=sys.stderr)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.service.sweep import SweepInterrupted, run_sweep

    try:
        with open(args.jobs, encoding="utf-8") as fh:
            raw = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read job file {args.jobs!r}: {exc}",
              file=sys.stderr)
        return 2
    if not isinstance(raw, list) or not raw:
        print("error: job file must be a non-empty JSON list", file=sys.stderr)
        return 2
    try:
        jobs = [
            SimJob(
                entry["kind"], entry.get("params", {}),
                name=entry.get("name", ""),
            )
            for entry in raw
        ]
    except (KeyError, TypeError, ValueError) as exc:
        print(f"error: bad job entry: {exc}", file=sys.stderr)
        return 2
    with SimulationService(_config(args)) as svc:
        try:
            result = run_sweep(
                svc, jobs, args.journal,
                interrupt_after=args.interrupt_after,
            )
        except SweepInterrupted as exc:
            print(f"{exc}; journal {args.journal} holds the completed prefix")
            return 3
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    print(
        f"sweep complete: {result.executed} executed, "
        f"{result.reused} reused from journal ({args.journal})"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(result.payloads, fh, indent=2, sort_keys=True)
        print(f"payloads written to {args.out}")
    return 0


def cmd_load(args: argparse.Namespace) -> int:
    from repro.experiments import service_load

    print(service_load.run().format())
    return 0


def cmd_smoke(args: argparse.Namespace) -> int:
    from repro.service.__main__ import run_smoke

    return run_smoke()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Simulation-as-a-service: submit what-if jobs, run "
        "resumable sweeps, load-test the shedding behavior.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_submit = sub.add_parser("submit", help="run one job, print the payload")
    p_submit.add_argument(
        "--kind", required=True, help="job class (steptime, chaos, cluster)"
    )
    p_submit.add_argument(
        "--params", default="{}", help="job parameters as a JSON object"
    )
    p_submit.add_argument("--name", default="", help="client-facing job name")
    p_submit.add_argument(
        "--deadline", type=float, default=None,
        help="deadline in seconds from submission",
    )
    p_submit.add_argument(
        "--timeout", type=float, default=300.0, help="client wait timeout"
    )
    p_submit.add_argument(
        "--stats", action="store_true", help="print service stats to stderr"
    )
    _service_args(p_submit)
    p_submit.set_defaults(fn=cmd_submit)

    p_sweep = sub.add_parser(
        "sweep", help="run a job file against a resumable journal"
    )
    p_sweep.add_argument("--jobs", required=True, help="JSON list of jobs")
    p_sweep.add_argument(
        "--journal", required=True, help="JSON-lines journal path"
    )
    p_sweep.add_argument(
        "--out", default=None, help="write the ordered payloads here as JSON"
    )
    p_sweep.add_argument(
        "--interrupt-after", type=int, default=None,
        help="simulate a kill after N fresh executions (exit 3)",
    )
    _service_args(p_sweep)
    p_sweep.set_defaults(fn=cmd_sweep)

    p_load = sub.add_parser(
        "load", help="print the ok-rate / median-latency load table"
    )
    p_load.set_defaults(fn=cmd_load)

    p_smoke = sub.add_parser(
        "smoke", help="run the chaos self-test (same as python -m repro.service)"
    )
    p_smoke.set_defaults(fn=cmd_smoke)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Content-addressed result cache: identical configs never re-simulate.

Keys are the SHA-256 of the canonicalized job spec
(:func:`~repro.service.spec.content_key`), so the cache is immune to
parameter-dict ordering, tuple-vs-list spelling, and job naming — if two
submissions mean the same simulation, the second one is a hit.  Values
are the JSON-ready result payloads the executors produce; a hit returns
a **deep copy** so no client can mutate another client's answer (the
bit-identity of hit payloads is pinned by test).

Eviction is LRU with a bounded entry count (the payloads are small
dicts, so entries — not bytes — are the sane unit), mirroring the
``_LRUBufferPool`` idiom of :mod:`repro.runtime.collectives`.  Hits,
misses, and evictions land on ``service_cache_*`` counters.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict

from repro import telemetry as _telemetry


class ResultCache:
    """Bounded LRU of ``content_key -> result payload``."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> dict | None:
        """The cached payload (deep-copied) or ``None`` on miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                hit = False
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                hit = True
                result = copy.deepcopy(entry)
        if _telemetry.enabled:
            name = "service_cache_hits" if hit else "service_cache_misses"
            _telemetry.metrics.counter(name).inc()
        return result if hit else None

    def put(self, key: str, payload: dict) -> None:
        """Insert (or refresh) a payload, evicting the LRU entry if full."""
        evicted = 0
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = copy.deepcopy(payload)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted and _telemetry.enabled:
            _telemetry.metrics.counter("service_cache_evictions").inc(evicted)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

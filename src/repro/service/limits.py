"""Admission control primitives: token buckets and circuit breakers.

Both objects run against an injectable monotonic ``clock`` so tests can
drive them deterministically (a frozen clock advances exactly when the
test says so); production uses :func:`time.monotonic`.

* :class:`TokenBucket` — per-client rate limiting at the front door.  A
  client starts with ``capacity`` tokens and regains ``refill_per_s``
  continuously; a submission costs one token, and an empty bucket is a
  :class:`~repro.service.spec.RateLimited` rejection, not a queue entry.
  Bursts up to ``capacity`` pass; sustained traffic is clamped to the
  refill rate — the Snippet 1 "rate limit errors imply concurrency
  should be reduced" failure mode becomes a *typed* signal instead.
* :class:`CircuitBreaker` — per-job-class failure isolation behind the
  queue.  ``failure_threshold`` consecutive worker failures trip it open
  for ``cooldown_s``; while open, degradable job classes fall back to
  their accounting-only executor and the rest shed with
  :class:`~repro.service.spec.Overloaded`.  After the cool-down the
  breaker goes **half-open**: one probe job runs in full mode, and its
  outcome closes or re-opens the circuit — recovery never needs a
  restart.
"""

from __future__ import annotations

import threading
import time

#: Breaker states (plain strings so telemetry/tests stay readable).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class TokenBucket:
    """Classic token bucket: ``capacity`` burst, ``refill_per_s`` sustained.

    Thread-safe; ``try_acquire`` never blocks (the service sheds instead
    of queueing rate-limited work — unbounded queueing is exactly what
    this layer exists to prevent).
    """

    def __init__(
        self,
        capacity: float,
        refill_per_s: float,
        clock=time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if refill_per_s < 0:
            raise ValueError("refill_per_s must be >= 0")
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock
        self._tokens = float(capacity)
        self._last = clock()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self.capacity, self._tokens + elapsed * self.refill_per_s)

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; ``False`` means rate-limited."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def tokens(self) -> float:
        """Current token count (after refill) — for tests and stats."""
        with self._lock:
            self._refill_locked()
            return self._tokens


class CircuitBreaker:
    """Consecutive-failure circuit breaker for one job class.

    State machine::

        CLOSED --(threshold consecutive failures)--> OPEN
        OPEN   --(cooldown elapsed, next allow())--> HALF_OPEN (one probe)
        HALF_OPEN --(probe success)--> CLOSED
        HALF_OPEN --(probe failure)--> OPEN (cooldown restarts)

    ``allow()`` answers "may the next job of this class run in full
    mode?" — ``False`` while open (the caller degrades or sheds) and for
    every job but the single probe while half-open.  Success/failure
    reports come from the worker after each completed attempt sequence.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.trips = 0
        self.recoveries = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._state = HALF_OPEN
            self._probe_in_flight = False

    def allow(self) -> bool:
        """May the next job run full-mode?  Claims the probe when half-open."""
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == HALF_OPEN:
                self.recoveries += 1
            self._state = CLOSED
            self._probe_in_flight = False
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self._maybe_half_open_locked()
            self._consecutive_failures += 1
            if self._state == HALF_OPEN or (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                self._probe_in_flight = False
                self.trips += 1

"""Simulation-as-a-service: the fault-tolerant async front door.

:class:`SimulationService` serves what-if queries (step-time models,
chaos runs, cluster scenarios — see :mod:`repro.service.executors`)
under production traffic and stays correct when clients misbehave and
workers die:

* **Bounded concurrency.**  A fixed worker pool executes at most
  ``concurrency`` jobs at once; everything else waits in a queue of at
  most ``queue_depth`` — never an unbounded backlog.
* **Backpressure, typed.**  A full queue rejects with
  :class:`~repro.service.spec.Overloaded`; a client that outruns its
  token bucket gets :class:`~repro.service.spec.RateLimited`; a job
  that ages past its deadline (queued or just-finished) gets
  :class:`~repro.service.spec.DeadlineExceeded`.  Every submission is
  accounted: ``submitted == completed + typed rejections + failures``
  is an invariant the tests pin.
* **Crash tolerance.**  Worker crashes (injected seed-deterministically
  by :class:`~repro.service.pool.CrashPlan`) retry on the shared
  :class:`~repro.resilience.faults.RetryPolicy` — exponential backoff,
  deterministic per-job jitter.  Exhausted budgets raise
  :class:`~repro.service.spec.JobFailed` and dump a flight-recorder
  postmortem bundle, exactly like a terminal chip death would.
* **Circuit breaking.**  Per-job-class breakers trip after consecutive
  failures; while open, chaos jobs degrade to accounting-only mode and
  non-degradable classes shed with ``Overloaded``.  After the cool-down
  a single half-open probe recovers the class without a restart.
* **Content-addressed caching.**  Results are cached by the SHA-256 of
  the canonicalized spec; identical configs never re-simulate, and a
  hit returns a bit-identical payload without consuming a worker slot.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field

from repro import telemetry as _telemetry
from repro.cluster.jobs import derive_subseed
from repro.resilience.faults import RetryPolicy
from repro.service.cache import ResultCache
from repro.service.executors import DEGRADABLE_KINDS, execute
from repro.service.limits import CircuitBreaker, TokenBucket
from repro.service.pool import CrashPlan, JobHandle, WorkerPool
from repro.service.spec import (
    DeadlineExceeded,
    JobFailed,
    Overloaded,
    RateLimited,
    ServiceError,
    SimJob,
    WorkerCrashError,
)

logger = logging.getLogger("repro.service")

#: Default worker retry budget: no detection timeout (a crash is loud),
#: 3 attempts backing off from 2 ms with 25% deterministic jitter.
DEFAULT_SERVICE_RETRY = RetryPolicy(
    timeout_s=0.0,
    max_attempts=3,
    backoff_s=2e-3,
    backoff_factor=2.0,
    jitter_frac=0.25,
)


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the job layer: concurrency, shedding, retries, cache.

    ``rate_capacity`` / ``rate_refill_per_s`` configure each client's
    token bucket (burst / sustained).  ``cache_entries=0`` disables the
    result cache (the load experiment does this so every request costs
    real work).  ``crash_rate`` / ``poisoned`` / ``crashes`` feed the
    seed-deterministic :class:`~repro.service.pool.CrashPlan`.
    """

    concurrency: int = 4
    queue_depth: int = 64
    rate_capacity: float = 64.0
    rate_refill_per_s: float = 64.0
    retry_policy: RetryPolicy = DEFAULT_SERVICE_RETRY
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 0.25
    cache_entries: int = 256
    default_deadline_s: float | None = None
    seed: int = 0
    crash_rate: float = 0.0
    poisoned: tuple[str, ...] = ()
    crashes: tuple[tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.rate_capacity < 1:
            raise ValueError("rate_capacity must be >= 1")
        if self.rate_refill_per_s < 0:
            raise ValueError("rate_refill_per_s must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_s < 0:
            raise ValueError("breaker_cooldown_s must be >= 0")
        if self.cache_entries < 0:
            raise ValueError("cache_entries must be >= 0")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be > 0")


@dataclass
class ServiceStats:
    """Monotonic service-lifetime totals (mirrored on ``service_*`` counters)."""

    submitted: int = 0
    completed: int = 0
    cache_hits: int = 0
    degraded: int = 0
    retries: int = 0
    worker_crashes: int = 0
    failed: int = 0
    rejected: dict[str, int] = field(default_factory=dict)

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    def accounted(self) -> bool:
        """No silent loss: every submission completed, failed, or rejected.

        (Holds once every outstanding handle resolved.)
        """
        return self.submitted == self.completed + self.failed + self.rejected_total


class SimulationService:
    """The async job layer over the simulation stack.  See module docstring.

    ``clock`` must be monotonic (deadlines, latencies, breaker cool-downs
    run on it); ``sleep`` is only used for retry backoff.  Both are
    injectable so tests can freeze time.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self._clock = clock
        self._sleep = sleep
        self.stats = ServiceStats()
        self.cache = (
            ResultCache(self.config.cache_entries)
            if self.config.cache_entries > 0
            else None
        )
        self.crash_plan = CrashPlan(
            seed=self.config.seed,
            crash_rate=self.config.crash_rate,
            poisoned=self.config.poisoned,
            crashes=self.config.crashes,
        )
        self.breakers: dict[str, CircuitBreaker] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self.pool = WorkerPool(
            self.config.concurrency, self.config.queue_depth, self._execute
        )
        self._started = False

    # --- lifecycle -----------------------------------------------------------

    def start(self) -> "SimulationService":
        self.pool.start()
        self._started = True
        logger.info(
            "service started: %d workers, queue depth %d, cache %s",
            self.config.concurrency, self.config.queue_depth,
            "off" if self.cache is None else self.cache.max_entries,
        )
        return self

    def stop(self) -> None:
        self.pool.stop()
        self._started = False

    def __enter__(self) -> "SimulationService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # --- submission (the front door) ----------------------------------------

    def breaker(self, kind: str) -> CircuitBreaker:
        with self._lock:
            br = self.breakers.get(kind)
            if br is None:
                br = self.breakers[kind] = CircuitBreaker(
                    self.config.breaker_threshold,
                    self.config.breaker_cooldown_s,
                    clock=self._clock,
                )
            return br

    def _bucket(self, client: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = TokenBucket(
                    self.config.rate_capacity,
                    self.config.rate_refill_per_s,
                    clock=self._clock,
                )
            return bucket

    def _reject(self, handle: JobHandle, exc: ServiceError, where: str) -> None:
        reason = getattr(exc, "reason", "failed")
        with self._lock:
            self.stats.rejected[reason] = self.stats.rejected.get(reason, 0) + 1
        if _telemetry.enabled:
            _telemetry.metrics.counter("service_rejected", reason=reason).inc()
        _telemetry.flight_recorder.record(
            "service", "rejected",
            job=handle.job.label, client=handle.client,
            reason=reason, where=where,
        )
        handle._resolve(None, exc)

    def submit(
        self,
        job: SimJob,
        client: str = "default",
        deadline_s: float | None = None,
    ) -> JobHandle:
        """Admit one job, or raise a typed rejection synchronously.

        Admission order: per-client token bucket (``RateLimited``), then
        the content-addressed cache (a hit resolves immediately without
        touching the queue), then queue depth (``Overloaded``).  The
        returned handle resolves to a payload or to a typed error.
        """
        if not self._started:
            raise ServiceError("service is not started")
        now = self._clock()
        if deadline_s is None:
            deadline_s = (
                job.deadline_s
                if job.deadline_s is not None
                else self.config.default_deadline_s
            )
        if deadline_s is not None and deadline_s != job.deadline_s:
            job = SimJob(
                kind=job.kind, params=job.params, name=job.name,
                deadline_s=deadline_s,
            )
        handle = JobHandle(job, client, now)
        with self._lock:
            self.stats.submitted += 1
        if _telemetry.enabled:
            _telemetry.metrics.counter("service_submitted", kind=job.kind).inc()

        if not self._bucket(client).try_acquire():
            exc = RateLimited(
                f"client {client!r} exceeded its rate limit "
                f"({self.config.rate_refill_per_s}/s sustained)"
            )
            self._reject(handle, exc, where="submit")
            raise exc

        if self.cache is not None:
            cached = self.cache.get(job.content_key)
            if cached is not None:
                handle.cached = True
                handle.latency_s = self._clock() - now
                with self._lock:
                    self.stats.completed += 1
                    self.stats.cache_hits += 1
                if _telemetry.enabled:
                    _telemetry.metrics.counter(
                        "service_completed", kind=job.kind
                    ).inc()
                handle._resolve(cached, None)
                return handle

        if not self.pool.try_enqueue(handle):
            exc = Overloaded(
                f"queue at depth {self.config.queue_depth}; shedding"
            )
            self._reject(handle, exc, where="submit")
            raise exc
        return handle

    # --- execution (worker side) --------------------------------------------

    def _expired(self, handle: JobHandle) -> bool:
        deadline = handle.job.deadline_s
        return (
            deadline is not None
            and self._clock() - handle.submitted_at > deadline
        )

    def _execute(self, handle: JobHandle, worker: int) -> None:
        job = handle.job
        if self._expired(handle):
            self._reject(
                handle,
                DeadlineExceeded(
                    f"job {job.label!r} aged out in queue "
                    f"(deadline {job.deadline_s}s)"
                ),
                where="dequeue",
            )
            return

        breaker = self.breaker(job.kind)
        degraded = False
        if not breaker.allow():
            if job.kind in DEGRADABLE_KINDS:
                degraded = True
                with self._lock:
                    self.stats.degraded += 1
                if _telemetry.enabled:
                    _telemetry.metrics.counter(
                        "service_degraded_runs", kind=job.kind
                    ).inc()
            else:
                self._reject(
                    handle,
                    Overloaded(
                        f"circuit open for job class {job.kind!r}; shedding"
                    ),
                    where="breaker",
                )
                return
        handle.degraded = degraded

        policy = self.config.retry_policy
        retry_key = derive_subseed(self.config.seed, "service-retry", job.label)
        payload: dict | None = None
        error: ServiceError | None = None
        trips_before = breaker.trips
        for attempt in range(1, policy.max_attempts + 1):
            handle.attempts = attempt
            if self.crash_plan.should_crash(job.label, attempt):
                with self._lock:
                    self.stats.worker_crashes += 1
                if _telemetry.enabled:
                    _telemetry.metrics.counter("service_worker_crashes").inc()
                _telemetry.flight_recorder.record(
                    "service", "worker_crash",
                    job=job.label, worker=worker, attempt=attempt,
                )
                crash = WorkerCrashError(worker, job.label, attempt)
                logger.warning("%s", crash)
                if attempt >= policy.max_attempts:
                    error = JobFailed(job, attempt, cause=str(crash))
                    break
                with self._lock:
                    self.stats.retries += 1
                if _telemetry.enabled:
                    _telemetry.metrics.counter("service_retries").inc()
                self._sleep(policy.delay_after(attempt, key=retry_key))
                continue
            try:
                payload = execute(job, degraded=degraded)
            except Exception as exc:  # noqa: BLE001 — poisoned spec, no retry
                # Execution is deterministic: the same spec fails the same
                # way every time, so retrying burns budget for nothing.
                error = JobFailed(
                    job, attempt, cause=f"{type(exc).__name__}: {exc}"
                )
            break

        if error is not None:
            if not degraded:
                breaker.record_failure()
                if breaker.trips > trips_before:
                    if _telemetry.enabled:
                        _telemetry.metrics.counter(
                            "service_breaker_trips", kind=job.kind
                        ).inc()
                    _telemetry.flight_recorder.record(
                        "service", "breaker_trip",
                        kind=job.kind, after_attempts=handle.attempts,
                    )
                    logger.warning(
                        "circuit for %r tripped open after %d consecutive "
                        "failures", job.kind, breaker.failure_threshold,
                    )
            with self._lock:
                self.stats.failed += 1
            if _telemetry.enabled:
                _telemetry.metrics.counter(
                    "service_job_failures", kind=job.kind
                ).inc()
            # Terminal: dump the preceding timeline exactly as a chip death
            # would, then hand the typed failure to the client.
            _telemetry.on_terminal_failure(
                error, origin="service.job_failed", job=job.label,
                attempts=handle.attempts,
            )
            handle._resolve(None, error)
            return

        assert payload is not None
        if not degraded:
            recoveries_before = breaker.recoveries
            breaker.record_success()
            if breaker.recoveries > recoveries_before:
                if _telemetry.enabled:
                    _telemetry.metrics.counter(
                        "service_breaker_recoveries", kind=job.kind
                    ).inc()
                logger.info("circuit for %r closed after probe", job.kind)

        if self._expired(handle):
            self._reject(
                handle,
                DeadlineExceeded(
                    f"job {job.label!r} finished after its deadline "
                    f"({job.deadline_s}s); result discarded"
                ),
                where="post_execute",
            )
            return

        if self.cache is not None and not degraded:
            self.cache.put(job.content_key, payload)
        handle.latency_s = self._clock() - handle.submitted_at
        with self._lock:
            self.stats.completed += 1
        if _telemetry.enabled:
            _telemetry.metrics.counter("service_completed", kind=job.kind).inc()
            _telemetry.metrics.histogram("service_latency_seconds").observe(
                handle.latency_s
            )
        handle._resolve(payload, None)

    # --- introspection -------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready stats: totals, per-reason rejections, breakers, cache."""
        with self._lock:
            stats = {
                "submitted": self.stats.submitted,
                "completed": self.stats.completed,
                "cache_hits": self.stats.cache_hits,
                "degraded": self.stats.degraded,
                "retries": self.stats.retries,
                "worker_crashes": self.stats.worker_crashes,
                "failed": self.stats.failed,
                "rejected": dict(self.stats.rejected),
            }
        stats["queue_depth"] = self.pool.depth
        stats["breakers"] = {
            kind: br.state for kind, br in sorted(self.breakers.items())
        }
        if self.cache is not None:
            stats["cache"] = self.cache.stats()
        return stats

"""Simulation-as-a-service: fault-tolerant async job layer.

Public surface of the PR-9 service stack:

* :class:`SimulationService` / :class:`ServiceConfig` — the job layer
  itself: bounded worker pool, per-client token buckets, per-class
  circuit breakers, content-addressed result cache, typed shedding.
* :class:`SimJob` and the rejection taxonomy (:class:`Overloaded`,
  :class:`RateLimited`, :class:`DeadlineExceeded`, :class:`JobFailed`).
* :func:`run_sweep` / :class:`SweepJournal` — journaled, resumable
  sweeps with zero recomputation after a kill.

See ``DESIGN.md`` §14 for the architecture rationale.
"""

from repro.service.cache import ResultCache
from repro.service.limits import CircuitBreaker, TokenBucket
from repro.service.pool import CrashPlan, JobHandle, WorkerPool
from repro.service.service import ServiceConfig, ServiceStats, SimulationService
from repro.service.spec import (
    JOB_KINDS,
    DeadlineExceeded,
    JobFailed,
    Overloaded,
    RateLimited,
    ServiceError,
    ServiceRejection,
    SimJob,
    WorkerCrashError,
    canonical_spec,
    content_key,
)
from repro.service.sweep import (
    SweepInterrupted,
    SweepJournal,
    SweepResult,
    run_sweep,
    sweep_id,
)

__all__ = [
    "JOB_KINDS",
    "CircuitBreaker",
    "CrashPlan",
    "DeadlineExceeded",
    "JobFailed",
    "JobHandle",
    "Overloaded",
    "RateLimited",
    "ResultCache",
    "ServiceConfig",
    "ServiceError",
    "ServiceRejection",
    "ServiceStats",
    "SimJob",
    "SimulationService",
    "SweepInterrupted",
    "SweepJournal",
    "SweepResult",
    "TokenBucket",
    "WorkerCrashError",
    "WorkerPool",
    "canonical_spec",
    "content_key",
    "run_sweep",
    "sweep_id",
]

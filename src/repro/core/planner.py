"""Automatic parallelism planning, reproducing the paper's per-model choices.

Summary (Section 6): data parallelism carried BERT and ResNet-50 to 4096
chips; model parallelism carried SSD, MaskRCNN and Transformer to the
largest scales; DLRM stayed on a slice.  The planner encodes the two
constraints that force those choices:

* the **largest converging global batch** (65536 for ResNet/DLRM, ~8192 for
  BERT under LAMB, 4096 for SSD, 256 for MaskRCNN, 2048 for Transformer);
* a **per-chip batch cap** from memory/efficiency at small scale.

When a slice has more cores than the batch has examples, the surplus
concurrency must come from model parallelism: ``mp_cores = cores / batch``
(capped by each model's partitioning limit).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.strategy import ParallelismConfig
from repro.models.costspec import ModelCostSpec


@dataclass(frozen=True)
class PlannerRules:
    """Batch and model-parallelism envelope for one benchmark."""

    max_global_batch: int
    per_chip_batch_cap: int
    max_mp_cores: int = 1
    spatial: bool = False


#: Envelopes reconstructed from Sections 4-5 and Figures 6/8.
PLANNER_RULES: dict[str, PlannerRules] = {
    "resnet50": PlannerRules(max_global_batch=65536, per_chip_batch_cap=256),
    "bert": PlannerRules(max_global_batch=8192, per_chip_batch_cap=48),
    "transformer": PlannerRules(
        max_global_batch=2048, per_chip_batch_cap=2048, max_mp_cores=4
    ),
    "ssd": PlannerRules(
        max_global_batch=4096, per_chip_batch_cap=32, max_mp_cores=8, spatial=True
    ),
    "maskrcnn": PlannerRules(
        max_global_batch=256, per_chip_batch_cap=4, max_mp_cores=8, spatial=True
    ),
    "dlrm": PlannerRules(max_global_batch=65536, per_chip_batch_cap=2048),
}


#: models whose IR graph the sharding search can explore (mp candidates).
_SEARCHABLE_GRAPHS = ("ssd", "maskrcnn", "transformer")


@dataclass(frozen=True)
class PlanChoice:
    """A planned layout plus the reasoning, for reports.

    ``partition_plan`` is the search-found
    :class:`repro.spmd.plan.PartitionPlan` when the planner ran with
    ``search_sharding=True`` on a model-parallel layout (None otherwise).
    """

    config: ParallelismConfig
    rationale: str
    partition_plan: object | None = None


def _search_model_sharding(name: str, mp_cores: int, seed: int):
    """Search the model's IR graph for an mp_cores-way sharding."""
    # Imported lazily: repro.spmd pulls in the runtime mesh, which the
    # analytic planner otherwise never needs.
    from repro.spmd import SearchConfig, make_partitioner, search_partitioning
    from repro.spmd.modelgraphs import (
        maskrcnn_graph,
        ssd_graph,
        transformer_block_graph,
    )

    builders = {
        "ssd": ssd_graph,
        "maskrcnn": maskrcnn_graph,
        "transformer": transformer_block_graph,
    }
    graph = builders[name]()
    result = search_partitioning(
        graph,
        SearchConfig(num_shards=mp_cores, seed=seed, seed_nodes="handles"),
        make_partitioner("v07"),
    )
    return result.best


def plan_parallelism(
    spec: ModelCostSpec,
    num_chips: int,
    *,
    search_sharding: bool = False,
    search_seed: int = 0,
) -> PlanChoice:
    """Choose batch size and model parallelism for a benchmark on a slice.

    With ``search_sharding=True``, model-parallel layouts for models with
    an IR graph are backed by the automatic partitioner search instead of
    the hand annotations; the winning plan rides along on the choice.
    """
    if num_chips < 1:
        raise ValueError("num_chips must be >= 1")
    try:
        rules = PLANNER_RULES[spec.name]
    except KeyError:
        raise KeyError(
            f"no planner rules for {spec.name!r}; known: {sorted(PLANNER_RULES)}"
        ) from None
    cores = num_chips * 2
    global_batch = min(rules.max_global_batch, rules.per_chip_batch_cap * num_chips)
    if cores > global_batch:
        # More cores than examples: concurrency must come from model
        # parallelism (Section 3.1).
        needed = cores // global_batch
        mp_cores = min(rules.max_mp_cores, needed)
        if needed > rules.max_mp_cores:
            rationale = (
                f"batch {global_batch} < {cores} cores and model parallelism "
                f"caps at {rules.max_mp_cores} cores; slice is oversized for "
                f"{spec.name} (the paper stops {spec.name} below this scale)"
            )
        else:
            kind = "spatial" if rules.spatial else "feature"
            rationale = (
                f"batch capped at {global_batch}: {kind} model parallelism "
                f"over {mp_cores} cores supplies the remaining concurrency"
            )
        # Keep replicas integral.
        while cores % mp_cores != 0:
            mp_cores -= 1
    else:
        mp_cores = 1
        if global_batch < rules.max_global_batch:
            rationale = (
                f"data parallelism, batch {global_batch} "
                f"({rules.per_chip_batch_cap}/chip cap at this scale)"
            )
        else:
            rationale = (
                f"data parallelism at the largest converging batch "
                f"{global_batch}"
            )
    partition_plan = None
    sharding_source = "annotated"
    if search_sharding and mp_cores > 1 and spec.name in _SEARCHABLE_GRAPHS:
        partition_plan = _search_model_sharding(spec.name, mp_cores, search_seed)
        sharding_source = "searched"
        rationale += (
            f"; sharding searched: {len(partition_plan.spec.assignments)} "
            f"annotations, est {partition_plan.total_seconds * 1e3:.3f} ms/tile-step"
        )
    config = ParallelismConfig(
        num_chips=num_chips,
        global_batch=global_batch,
        mp_cores=mp_cores,
        spatial_partitioning=rules.spatial and mp_cores > 1,
        sharding_source=sharding_source,
    )
    return PlanChoice(
        config=config, rationale=rationale, partition_plan=partition_plan
    )

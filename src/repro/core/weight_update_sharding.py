"""Weight-update sharding (Xu et al. 2020; Section 3.2 of the paper).

In plain data parallelism every replica applies the full optimizer update —
for LAMB on BERT that was measured at ~18% of the step on 512 chips.  WUS
replaces it with:

1. a **reduce-scatter** of the gradients (instead of a full all-reduce),
   leaving each device one shard of the summed gradients;
2. a shard-local optimizer update, with the per-layer *trust-ratio norms*
   of LARS/LAMB computed by summing shard-partial squared norms across
   devices (a tiny scalar all-reduce per layer);
3. an **all-gather** that broadcasts the updated weight shards.

Optimizer slot variables (momenta) only ever exist in sharded form, which
also divides their HBM footprint by the replica count.

The functions here execute this on real numpy buffers; the equivalence
tests check that WUS training matches replicated-update training exactly
(same collective ordering, float64).
"""

from __future__ import annotations

from time import perf_counter as _perf

import numpy as np

from repro import telemetry as _telemetry
from repro.core.trainer import StepResult, _warn_direct_construction
from repro.optim.base import Optimizer, OptimizerState, Params
from repro.resilience.checkpoint import (
    TrainerCheckpoint,
    record_checkpoint_metrics,
    unshard_state_segments,
    unshard_states,
)
from repro.runtime.bucket import BucketPlan, GradientBucket
from repro.runtime.collectives import (
    ShardedValue,
    padded_chunk_layout,
    ring_all_gather_stacked,
    ring_reduce_scatter,
)
from repro.core.data_parallel import (
    DataParallelTrainer,
    _copy_params,
    _copy_state,
)


def _chunk(flat: np.ndarray, num_devices: int) -> list[np.ndarray]:
    """Split a flattened array into device chunks (zero-padded)."""
    size = flat.size
    padded = ((size + num_devices - 1) // num_devices) * num_devices
    if padded != size:
        flat = np.concatenate([flat, np.zeros(padded - size, dtype=flat.dtype)])
    return np.split(flat, num_devices)


def shard_states(
    state: OptimizerState, num_devices: int
) -> list[OptimizerState]:
    """Split every optimizer slot into per-device shards.

    Returns one state dict per device; device ``d`` holds chunk ``d`` of
    each flattened slot (matching the reduce-scatter chunk assignment).
    """
    if num_devices < 1:
        raise ValueError("num_devices must be >= 1")
    per_device: list[OptimizerState] = [dict() for _ in range(num_devices)]
    for name, slots in state.items():
        chunked = {
            slot: _chunk(arr.reshape(-1), num_devices) for slot, arr in slots.items()
        }
        for d in range(num_devices):
            per_device[d][name] = {slot: chunked[slot][d] for slot in chunked}
    return per_device


def sharded_update(
    params: Params,
    per_device_grads: list[dict[str, np.ndarray]],
    optimizer: Optimizer,
    sharded_state: list[OptimizerState],
    step: int,
    dtype_policy: str = "f64",
) -> tuple[Params, list[OptimizerState]]:
    """One weight-update-sharded optimizer step.

    ``params`` are the (replicated) weights; ``per_device_grads[d]`` the raw
    gradients computed by replica ``d`` (already scaled so their *sum* is
    the desired global gradient); ``sharded_state[d]`` each device's slot
    shards.  Returns the new replicated params and new sharded states.
    """
    n = len(per_device_grads)
    if n < 1:
        raise ValueError("need at least one device")
    if len(sharded_state) != n:
        raise ValueError("sharded_state must have one entry per device")
    new_params: Params = {}
    new_states: list[OptimizerState] = [dict() for _ in range(n)]
    for name, param in params.items():
        flat_param_chunks = _chunk(param.reshape(-1).astype(np.float64), n)
        # 1. reduce-scatter the gradient: device d ends with summed chunk d.
        sharded = ring_reduce_scatter(
            [g[name] for g in per_device_grads], dtype_policy
        )
        grad_shards = sharded.shards
        # 2a. shard-local partial norms + scalar all-reduce (a plain sum —
        #     the payload is a handful of floats per layer).
        partials = [
            optimizer.norm_stats(
                name,
                flat_param_chunks[d],
                grad_shards[d].astype(np.float64),
                sharded_state[d][name],
                step,
            )
            for d in range(n)
        ]
        stats: dict[str, float] = {}
        for partial in partials:
            for key, value in partial.items():
                stats[key] = stats.get(key, 0.0) + value
        # 2b. shard-local elementwise update.
        new_chunks = []
        for d in range(n):
            new_chunk, new_slot = optimizer.apply(
                name,
                flat_param_chunks[d],
                grad_shards[d].astype(np.float64),
                sharded_state[d][name],
                step,
                stats,
            )
            new_chunks.append(np.asarray(new_chunk, dtype=np.float64))
            new_states[d][name] = new_slot
        # 3. all-gather the updated weight shards; the result is lazily
        #    replicated (one physical buffer) and the cast below copies it
        #    into the independently owned replica the trainer keeps.
        gathered = ring_all_gather_stacked(
            ShardedValue(
                shards=new_chunks,
                shape=param.shape,
                padded_size=sum(c.size for c in new_chunks),
            )
        )
        new_params[name] = gathered.device_view(0).astype(param.dtype)
    return new_params, new_states


def shard_state_segments(
    state: OptimizerState, bucket: GradientBucket, num_devices: int
) -> list[OptimizerState]:
    """Shard optimizer slots along the *fused* bucket layout.

    Device ``d`` holds, for every parameter overlapping its fused
    reduce-scatter window, the slot values of exactly that segment —
    zero-copy views into the replicated slots (segments of distinct devices
    are disjoint, so no aliasing between devices).
    """
    if num_devices < 1:
        raise ValueError("num_devices must be >= 1")
    per_device: list[OptimizerState] = [dict() for _ in range(num_devices)]
    for d, segs in enumerate(bucket.shard_segments(num_devices)):
        for seg in segs:
            slots = state[seg.name]
            per_device[d][seg.name] = {
                slot: arr.reshape(-1)[seg.tensor_slice] for slot, arr in slots.items()
            }
    return per_device


def bucketed_sharded_update(
    params: Params,
    per_device_grads: list[dict[str, np.ndarray]],
    optimizer: Optimizer,
    sharded_state: list[OptimizerState],
    step: int,
    bucket: GradientBucket,
    dtype_policy: str = "f64",
) -> tuple[Params, list[OptimizerState]]:
    """One weight-update-sharded step with *fused* gradient buckets.

    Same math as :func:`sharded_update` but the whole model travels in a
    single pair of collectives: every device's gradients are flattened into
    one bucket buffer, ONE reduce-scatter leaves each device a contiguous
    window of the fused buffer (generally spanning several parameters), the
    per-layer trust-ratio norms are accumulated per *segment*, and ONE
    all-gather broadcasts the updated fused weights.  ``sharded_state`` must
    come from :func:`shard_state_segments` with the same bucket; the bucket
    should be float64 so the update math matches the unfused path.
    """
    n = len(per_device_grads)
    if n < 1:
        raise ValueError("need at least one device")
    if len(sharded_state) != n:
        raise ValueError("sharded_state must have one entry per device")
    flat_params = bucket.flatten(params)
    # 1. ONE fused reduce-scatter over the whole model's gradients, fed as
    #    a single device-major (n, bucket.size) stack so quantization and
    #    the ring sweeps run whole-block.
    grad_block = np.empty((n, bucket.size), dtype=bucket.dtype)
    for d, g in enumerate(per_device_grads):
        bucket.flatten(g, out=grad_block[d])
    sharded = ring_reduce_scatter(grad_block, dtype_policy)
    grad_shards = sharded.shards
    windows = bucket.shard_segments(n)
    with _telemetry.tracer.span("sharded_update", category="update"):
        # 2a. per-segment partial norms, summed per layer across devices (the
        #     tiny scalar all-reduce of the unfused path, now over segments).
        stats: dict[str, dict[str, float]] = {name: {} for name in bucket.names}
        for d in range(n):
            for seg in windows[d]:
                partial = optimizer.norm_stats(
                    seg.name,
                    flat_params[seg.bucket_slice],
                    grad_shards[d][seg.local_slice].astype(np.float64),
                    sharded_state[d][seg.name],
                    step,
                )
                acc = stats[seg.name]
                for key, value in partial.items():
                    acc[key] = acc.get(key, 0.0) + value
        # 2b. segment-local elementwise update into per-device chunk buffers.
        _, chunk = padded_chunk_layout(n, bucket.size)
        new_chunks = [np.zeros(chunk, dtype=np.float64) for _ in range(n)]
        new_states: list[OptimizerState] = [dict() for _ in range(n)]
        for d in range(n):
            for seg in windows[d]:
                new_vals, new_slot = optimizer.apply(
                    seg.name,
                    flat_params[seg.bucket_slice],
                    grad_shards[d][seg.local_slice].astype(np.float64),
                    sharded_state[d][seg.name],
                    step,
                    stats[seg.name],
                )
                new_chunks[d][seg.local_slice] = np.asarray(new_vals, dtype=np.float64)
                new_states[d][seg.name] = new_slot
    # 3. ONE fused all-gather of the updated weight shards (lazily
    #    replicated; the per-param astype below copies out of it).
    gathered = ring_all_gather_stacked(
        ShardedValue(
            shards=new_chunks, shape=(bucket.size,), padded_size=n * chunk
        )
    )
    new_flat = gathered.device_view(0)
    new_params = {
        name: new_flat[bucket.slice_of(name)]
        .reshape(bucket.shapes[name])
        .astype(params[name].dtype)
        for name in bucket.names
    }
    return new_params, new_states


class WeightUpdateShardedTrainer(DataParallelTrainer):
    """Data-parallel trainer with the sharded optimizer update.

    Same training semantics as :class:`DataParallelTrainer`; the difference
    is purely in how the update executes — which is the paper's point: WUS
    is a systems optimization that must not change the math.

    ``fused=True`` (the default) runs the bucketed variant: one
    reduce-scatter + one all-gather for the whole model instead of one pair
    per parameter, with optimizer slots sharded along the fused layout.

    ``num_buckets > 1`` (fused only) splits the model into backprop-ordered
    buckets, each with its own reduce-scatter -> sharded update ->
    all-gather pipeline stage; ``overlap=True`` models those stages
    launching behind the backward pass.  As in
    :class:`~repro.core.data_parallel.DataParallelTrainer`, overlap mode
    changes only the modeled timeline, never the arithmetic.
    """

    def __init__(
        self,
        model,
        optimizer: Optimizer,
        num_replicas: int,
        grad_dtype_policy: str = "f64",
        fused: bool = True,
        num_buckets: int = 1,
        overlap: bool = False,
    ) -> None:
        if not fused and num_buckets > 1:
            raise ValueError("unfused WUS does not support multiple buckets")
        super().__init__(
            model, optimizer, dp_x=num_replicas, dp_y=1,
            grad_dtype_policy=grad_dtype_policy,
            num_buckets=num_buckets, overlap=overlap,
        )
        _warn_direct_construction(self, WeightUpdateShardedTrainer)
        self.fused = fused
        self.sharded_state: list[OptimizerState] | None = None
        self._bucket_states: list[list[OptimizerState]] | None = None

    def init(self, rng: np.random.Generator) -> None:
        super().init(rng)
        assert self.state is not None
        if self.fused:
            self._init_fused_shards(self.state)
        else:
            self.sharded_state = shard_states(self.state, self.num_replicas)
            self._bucket_states = None
        self.state = None  # slots only exist sharded from here on

    def _init_fused_shards(self, full_state: OptimizerState) -> None:
        """(Re)shard the replicated slots along the bucketed fused layout."""
        assert self.params is not None
        self._plan = BucketPlan(self.params, self.num_buckets, dtype=np.float64)
        self._bucket = (
            self._plan.buckets[0] if self._plan.num_buckets == 1 else None
        )
        self._bucket_states = [
            shard_state_segments(full_state, bucket, self.num_replicas)
            for bucket in self._plan.buckets
        ]
        # Back-compat alias: with one bucket this is the old fused layout.
        self.sharded_state = (
            self._bucket_states[0] if self._plan.num_buckets == 1 else None
        )

    def step(self, x: np.ndarray, labels: np.ndarray) -> StepResult:
        if self.params is None or (
            self.sharded_state is None and self._bucket_states is None
        ):
            raise RuntimeError("call init() before step()")
        t0 = _perf()
        tracer = _telemetry.tracer
        with tracer.span("train_step", category="step", actor="trainer"):
            with tracer.span("split", category="input", actor="trainer"):
                xs, ys = self._split(x, labels)
            t_split = _perf()
            losses = []
            grads = []
            n = self.num_replicas
            with tracer.span("forward_backward", category="compute", actor="trainer"):
                for xi, yi in zip(xs, ys):
                    loss_i, g_i = self.model.loss_and_grad(self.params, xi, yi)
                    losses.append(loss_i)
                    # Pre-scale so the reduce-scatter sum is the global mean.
                    grads.append({k: v / n for k, v in g_i.items()})
            t_fb = _perf()
            # The fused reduce-scatter -> sharded update -> all-gather; the
            # comm and update phases emit their own nested spans.
            launches: list[tuple[float, float]] = []
            with tracer.span("wus_update", category="update", actor="trainer"):
                if self.fused:
                    assert self._plan is not None
                    assert self._bucket_states is not None
                    for i, bucket in enumerate(self._plan.buckets):
                        b0 = _perf()
                        # flatten() only reads the bucket's own names, so the
                        # full trees pass through unchanged.
                        new_params, self._bucket_states[i] = bucketed_sharded_update(
                            self.params,
                            grads,
                            self.optimizer,
                            self._bucket_states[i],
                            self.step_index,
                            bucket,
                            self.grad_dtype_policy,
                        )
                        self.params = {**self.params, **new_params}
                        launches.append(
                            (bucket.size * bucket.dtype.itemsize, _perf() - b0)
                        )
                    if self._plan.num_buckets == 1:
                        self.sharded_state = self._bucket_states[0]
                else:
                    assert self.sharded_state is not None
                    b0 = _perf()
                    self.params, self.sharded_state = sharded_update(
                        self.params,
                        grads,
                        self.optimizer,
                        self.sharded_state,
                        self.step_index,
                        self.grad_dtype_policy,
                    )
                    payload = sum(
                        np.asarray(p).size * 8.0 for p in self.params.values()
                    )
                    launches.append((payload, _perf() - b0))
            t_update = _perf()
            self._last_launches = launches
            if self.overlap:
                # Each bucket's modeled occupancy is its whole pipeline stage
                # (reduce-scatter + sharded update + all-gather): that is
                # what serializes on the reduce network under WUS.
                with tracer.span("overlap_model", category="overlap", actor="trainer"):
                    self.last_overlap = self._model_overlap(t_fb - t_split)
        result = StepResult(
            float(np.mean(losses)),
            phase_seconds={
                "split": t_split - t0,
                "forward_backward": t_fb - t_split,
                "wus_update": t_update - t_fb,
            },
            bytes_moved=sum(nbytes for nbytes, _ in launches),
            step_index=self.step_index,
        )
        self.step_index += 1
        self._record_step(_perf() - t0, result)
        return result

    def save_checkpoint(self) -> TrainerCheckpoint:
        """Snapshot with the sharded optimizer state **reassembled**.

        The slots only exist sharded (that is WUS's memory saving), but a
        checkpoint must be shape-independent: each slot is gathered from
        its per-device shards into the full replicated tensor, so the
        snapshot can restore onto any replica count.  Reassembly is pure
        data movement — no arithmetic — so a same-shape round trip is
        bit-exact.
        """
        if self.params is None or (
            self.sharded_state is None and self._bucket_states is None
        ):
            raise RuntimeError("call init() before save_checkpoint()")
        if self.fused:
            assert self._plan is not None
            assert self._bucket_states is not None
            merged: OptimizerState = {}
            for bucket, states in zip(self._plan.buckets, self._bucket_states):
                merged.update(unshard_state_segments(states, bucket))
            # Buckets cover the tree in reverse order; restore template order.
            full = {name: merged[name] for name in self.params}
        else:
            assert self.sharded_state is not None
            full = unshard_states(self.sharded_state, self.params)
        ckpt = TrainerCheckpoint(
            step_index=self.step_index,
            params=_copy_params(self.params),
            opt_state=full,
            trainer=type(self).__name__,
        )
        record_checkpoint_metrics(ckpt, type(self).__name__)
        return ckpt

    def restore_checkpoint(self, ckpt: TrainerCheckpoint) -> None:
        """Restore by **resharding** the full state onto this trainer's mesh.

        GSPMD-style resharding in miniature: the checkpoint holds assembled
        tensors; the restore re-runs the same segment/chunk sharding that
        ``init`` performs, but over the checkpointed values and this
        trainer's (possibly different) ``num_replicas``.  A checkpoint
        taken on n devices therefore restores onto the n-1 survivors — or
        any other shape — with identical training semantics.
        """
        self.params = _copy_params(ckpt.params)
        self.step_index = ckpt.step_index
        full = _copy_state(ckpt.opt_state)
        if self.fused:
            self._init_fused_shards(full)
        else:
            self._bucket = None
            self._plan = None
            self._bucket_states = None
            self.sharded_state = shard_states(full, self.num_replicas)
        self._last_launches = []
        self.last_overlap = None
        self.state = None  # slots only exist sharded, as after init()

"""Unified trainer construction and step results.

One way to build and drive every functional trainer:

* :class:`TrainerConfig` — declarative description of a training setup
  (model, optimizer, strategy, replica mesh, bucket/overlap options);
* :func:`make_trainer` — factory dispatching to
  :class:`~repro.core.data_parallel.SingleDeviceTrainer` /
  :class:`~repro.core.data_parallel.DataParallelTrainer` /
  :class:`~repro.core.weight_update_sharding.WeightUpdateShardedTrainer` /
  :class:`~repro.core.model_parallel.HybridParallelTrainer`;
* :class:`Trainer` — the protocol every trainer satisfies
  (``init`` / ``step`` / ``train``);
* :class:`StepResult` — the single step return type: a ``float`` subclass
  (so ``losses.append(trainer.step(...))`` keeps working everywhere the
  loss used to be a bare float) carrying per-phase seconds and bytes
  moved, consumed by telemetry and the chaos harness.

The legacy constructors keep working but emit a ``DeprecationWarning``
when called directly; :func:`make_trainer` is the supported surface.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Any, Mapping, Protocol, runtime_checkable

import numpy as np

#: Strategies :func:`make_trainer` understands.
STRATEGIES = ("single", "data_parallel", "wus", "hybrid")

# Set while make_trainer runs so the deprecated constructors stay silent on
# the supported path (single-threaded; the factory body does no user code).
_IN_FACTORY = False


def _warn_direct_construction(obj: object, cls: type) -> None:
    """Deprecation for direct trainer construction outside the factory.

    Fires only when ``cls`` is the *concrete* class being built, so a
    subclass chain warns once, with the right name.
    """
    if _IN_FACTORY or type(obj) is not cls:
        return
    warnings.warn(
        f"constructing {cls.__name__} directly is deprecated; use "
        f"repro.core.make_trainer(TrainerConfig(...)) instead",
        DeprecationWarning,
        stacklevel=3,
    )


class StepResult(float):
    """Loss of one step, with its timing and traffic accounting attached.

    Subclasses ``float`` (the value *is* the loss) so existing call sites
    that treat ``trainer.step(...)`` as a number — appending to loss
    lists, formatting, comparing — are untouched.  ``phase_seconds`` maps
    phase name (``split`` / ``forward_backward`` / ``collective`` /
    ``update`` ...) to measured wall seconds; ``bytes_moved`` is the fused
    per-replica payload handed to the step's gradient collectives.
    """

    __slots__ = ("phase_seconds", "bytes_moved", "step_index")

    phase_seconds: dict[str, float]
    bytes_moved: float
    step_index: int

    def __new__(
        cls,
        loss: float,
        phase_seconds: Mapping[str, float] | None = None,
        bytes_moved: float = 0.0,
        step_index: int = 0,
    ) -> "StepResult":
        obj = super().__new__(cls, loss)
        obj.phase_seconds = dict(phase_seconds or {})
        obj.bytes_moved = float(bytes_moved)
        obj.step_index = int(step_index)
        return obj

    @property
    def loss(self) -> float:
        return float(self)

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StepResult(loss={float(self)!r}, step_index={self.step_index}, "
            f"phases={sorted(self.phase_seconds)})"
        )


@runtime_checkable
class Trainer(Protocol):
    """What every functional trainer exposes."""

    step_index: int

    def init(self, rng: np.random.Generator) -> None: ...

    def step(self, x: np.ndarray, labels: np.ndarray) -> StepResult: ...

    def train(self, batches, steps: int) -> Any: ...


@dataclass(frozen=True)
class TrainerConfig:
    """Declarative trainer setup for :func:`make_trainer`.

    ``mesh_shape`` is the logical ``(x, y)`` replica grid; its product is
    the replica count (``wus``/``hybrid`` flatten it).  ``num_buckets``
    and ``overlap`` select the bucketed-overlap execution mode of the
    data-parallel trainers — overlap only changes the modeled timeline and
    telemetry, never the arithmetic.  ``seed`` makes the factory return an
    *initialized* trainer (what the chaos harness requires).
    """

    model: Any
    optimizer: Any
    strategy: str = "data_parallel"
    mesh_shape: tuple[int, int] = (1, 1)
    grad_dtype_policy: str = "f64"
    num_buckets: int = 1
    overlap: bool = False
    fused: bool = True
    mp_size: int = 1
    guard: Any = None
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; choose from {STRATEGIES}"
            )
        x, y = self.mesh_shape
        if x < 1 or y < 1:
            raise ValueError("mesh_shape dims must be >= 1")
        if self.num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        if self.mp_size < 1:
            raise ValueError("mp_size must be >= 1")
        if self.strategy == "single" and self.num_replicas != 1:
            raise ValueError("strategy 'single' requires a 1x1 mesh_shape")
        if (self.overlap or self.num_buckets > 1) and self.strategy not in (
            "data_parallel", "wus"
        ):
            raise ValueError(
                "bucketed overlap is only supported by the 'data_parallel' "
                "and 'wus' strategies"
            )
        if self.strategy == "wus" and not self.fused and self.num_buckets > 1:
            raise ValueError("unfused WUS does not support multiple buckets")

    @property
    def num_replicas(self) -> int:
        return self.mesh_shape[0] * self.mesh_shape[1]

    def with_(self, **changes) -> "TrainerConfig":
        """A modified copy (sweep/chaos helper)."""
        return replace(self, **changes)


def make_trainer(config: TrainerConfig) -> Trainer:
    """Build (and, with ``seed``, initialize) the trainer a config describes."""
    # Imports are deferred: the trainer modules import StepResult from here.
    from repro.core.data_parallel import DataParallelTrainer, SingleDeviceTrainer
    from repro.core.model_parallel import HybridParallelTrainer
    from repro.core.weight_update_sharding import WeightUpdateShardedTrainer

    global _IN_FACTORY
    _IN_FACTORY = True
    try:
        if config.strategy == "single":
            trainer: Trainer = SingleDeviceTrainer(config.model, config.optimizer)
        elif config.strategy == "data_parallel":
            trainer = DataParallelTrainer(
                config.model,
                config.optimizer,
                dp_x=config.mesh_shape[0],
                dp_y=config.mesh_shape[1],
                grad_dtype_policy=config.grad_dtype_policy,
                guard=config.guard,
                num_buckets=config.num_buckets,
                overlap=config.overlap,
            )
        elif config.strategy == "wus":
            trainer = WeightUpdateShardedTrainer(
                config.model,
                config.optimizer,
                num_replicas=config.num_replicas,
                grad_dtype_policy=config.grad_dtype_policy,
                fused=config.fused,
                num_buckets=config.num_buckets,
                overlap=config.overlap,
            )
        else:  # hybrid
            trainer = HybridParallelTrainer(
                config.model,
                config.optimizer,
                dp_size=config.num_replicas,
                mp_size=config.mp_size,
                grad_dtype_policy=config.grad_dtype_policy,
            )
    finally:
        _IN_FACTORY = False
    if config.seed is not None:
        trainer.init(np.random.default_rng(config.seed))
    return trainer

"""Per-core HBM footprint model.

The paper's per-chip batch caps (256/chip for ResNet, 48 for BERT, ...)
and its structural choices (weight-update sharding keeps optimizer slots
*sharded*; DLRM must partition its embedding tables) are memory facts.
This model accounts the resident bytes of one core under a parallelism
config:

* weights and gradients (divided by the model-parallel tile);
* optimizer slot variables — divided by the replica count when
  weight-update sharding is on (slots only ever exist sharded, §3.2);
* activations, proportional to the per-core batch.

and checks them against the chip's per-core HBM budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.strategy import ParallelismConfig
from repro.hardware.chip import ChipSpec, TPU_V3
from repro.models.costspec import ModelCostSpec

#: Slot bytes per parameter by optimizer family (fp32 slots).
OPTIMIZER_SLOT_BYTES: dict[str, float] = {
    "sgd": 4.0,    # momentum
    "lars": 4.0,   # momentum
    "lamb": 8.0,   # m + v
    "adam": 8.0,   # m + v
}

#: Rough resident activation bytes per example (bf16, with the
#: rematerialization typical of these models).
ACTIVATION_BYTES_PER_EXAMPLE: dict[str, float] = {
    "resnet50": 30e6,
    "bert": 100e6,
    "transformer": 5e6,
    "ssd": 20e6,
    "maskrcnn": 300e6,
    "dlrm": 2e4,
}

#: Fraction of HBM available to the model (the rest holds compiled
#: programs, infeed buffers, and the runtime).
USABLE_HBM_FRACTION = 0.9


@dataclass(frozen=True)
class MemoryFootprint:
    """Resident bytes on one core."""

    weights: float
    gradients: float
    optimizer_slots: float
    activations: float

    @property
    def total(self) -> float:
        return self.weights + self.gradients + self.optimizer_slots + self.activations


class MemoryModel:
    """HBM accounting for one benchmark under a parallelism config."""

    def __init__(
        self,
        spec: ModelCostSpec,
        config: ParallelismConfig,
        chip: ChipSpec = TPU_V3,
    ) -> None:
        self.spec = spec
        self.config = config
        self.chip = chip

    @property
    def per_core_budget(self) -> float:
        return self.chip.hbm_bytes / self.chip.cores * USABLE_HBM_FRACTION

    def footprint(self) -> MemoryFootprint:
        spec, cfg = self.spec, self.config
        params_per_core = spec.params / cfg.mp_cores
        weights = params_per_core * spec.weight_dtype_bytes
        gradients = params_per_core * spec.weight_dtype_bytes
        slot_bytes = OPTIMIZER_SLOT_BYTES.get(spec.optimizer, 8.0)
        slots = params_per_core * slot_bytes
        if cfg.use_weight_update_sharding:
            slots /= cfg.num_replicas
        act_per_example = ACTIVATION_BYTES_PER_EXAMPLE.get(spec.name, 10e6)
        activations = cfg.batch_per_core * act_per_example
        return MemoryFootprint(
            weights=weights,
            gradients=gradients,
            optimizer_slots=slots,
            activations=activations,
        )

    def fits(self) -> bool:
        return self.footprint().total <= self.per_core_budget

    def headroom_bytes(self) -> float:
        """Budget minus footprint (negative when over)."""
        return self.per_core_budget - self.footprint().total

    def max_batch_per_core(self) -> float:
        """Largest per-core batch the activation budget allows."""
        fixed = self.footprint()
        static = fixed.weights + fixed.gradients + fixed.optimizer_slots
        act = ACTIVATION_BYTES_PER_EXAMPLE.get(self.spec.name, 10e6)
        return max(0.0, (self.per_core_budget - static) / act)

"""Distributed batch normalization (Section 4.2).

Plain data-parallel batch norm computes statistics over each replica's
micro-batch; at 16 examples/chip the statistics get noisy and ResNet-50's
convergence degrades.  The paper (following the MLPerf reference practice)
uses *distributed* batch norm: replicas all-reduce their batch moments over
a normalization **group** before normalizing, trading a small collective
for large-batch-equivalent statistics.

Everything here executes functionally on numpy shards, with the moments
moved by the real ring collective; the tests check that a full-mesh group
is bit-equivalent to single-device batch norm over the concatenated batch,
and that group size interpolates between local and global statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.collectives import ring_all_reduce


@dataclass(frozen=True)
class BatchNormResult:
    """Per-replica normalized activations plus the group moments used."""

    outputs: list[np.ndarray]
    group_mean: list[np.ndarray]
    group_var: list[np.ndarray]


def local_batch_norm(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Batch norm over one replica's [batch, features] activations."""
    if x.ndim != 2:
        raise ValueError("expected [batch, features] activations")
    mean = x.mean(axis=0)
    var = x.var(axis=0)
    return gamma * (x - mean) / np.sqrt(var + eps) + beta


def distributed_batch_norm(
    shards: list[np.ndarray],
    gamma: np.ndarray,
    beta: np.ndarray,
    *,
    group_size: int | None = None,
    eps: float = 1e-5,
) -> BatchNormResult:
    """Batch norm with moments all-reduced over groups of replicas.

    ``shards[i]`` is replica ``i``'s micro-batch activations
    ([batch, features], equal sizes).  ``group_size`` divides the replica
    count; ``None`` means one global group (full-batch statistics).  The
    group reduction moves ``(sum, sum_sq, count)`` — the associative
    moments — over a real ring all-reduce.
    """
    n = len(shards)
    if n == 0:
        raise ValueError("need at least one replica")
    feat = shards[0].shape[1]
    for s in shards:
        if s.ndim != 2 or s.shape != shards[0].shape:
            raise ValueError("all shards must share one [batch, features] shape")
    if group_size is None:
        group_size = n
    if group_size < 1 or n % group_size != 0:
        raise ValueError(f"group_size {group_size} must divide {n} replicas")

    outputs: list[np.ndarray] = [None] * n  # type: ignore[list-item]
    means: list[np.ndarray] = [None] * n  # type: ignore[list-item]
    variances: list[np.ndarray] = [None] * n  # type: ignore[list-item]
    for g0 in range(0, n, group_size):
        group = list(range(g0, g0 + group_size))
        # Each member contributes (sum, sum of squares, count).
        moments = [
            np.concatenate([
                shards[i].sum(axis=0),
                (shards[i] ** 2).sum(axis=0),
                [float(shards[i].shape[0])],
            ])
            for i in group
        ]
        reduced = ring_all_reduce(moments, "f64")
        for idx, i in enumerate(group):
            total = reduced[idx]
            s, ss, count = total[:feat], total[feat:2 * feat], total[-1]
            mean = s / count
            var = ss / count - mean**2
            outputs[i] = gamma * (shards[i] - mean) / np.sqrt(var + eps) + beta
            means[i] = mean
            variances[i] = var
    return BatchNormResult(outputs=outputs, group_mean=means, group_var=variances)


def batch_norm_group_cost(
    num_features: int,
    group_size: int,
    link_bandwidth: float,
    link_latency: float,
) -> float:
    """Per-layer time of the distributed-BN moment all-reduce.

    The payload is tiny (2 x features + 1 floats), so this is latency-bound
    — which is why the technique is nearly free on the TPU network.
    """
    if group_size <= 1:
        return 0.0
    payload = (2 * num_features + 1) * 4.0
    frac = (group_size - 1) / group_size
    return 2.0 * (frac * payload / link_bandwidth + (group_size - 1) * link_latency)

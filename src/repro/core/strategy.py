"""Parallelism configuration for the analytic scaling models."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ParallelismConfig:
    """How a benchmark is laid out on a TPU slice.

    Attributes
    ----------
    num_chips:
        Slice size in chips (each TPU-v3 chip has 2 cores).
    global_batch:
        Examples per training step across the whole slice.
    mp_cores:
        Model-parallel group size in *cores* (1 = pure data parallelism;
        SSD/MaskRCNN use up to 8, Transformer up to 4 — Section 3.1).
    use_weight_update_sharding:
        Section 3.2's distributed optimizer update.
    use_2d_allreduce:
        The hierarchical gradient summation of Section 3.3 (vs. a flat
        single ring, kept for ablation).
    spatial_partitioning:
        Whether model parallelism shards the spatial dims (SSD/MaskRCNN)
        rather than feature dims (Transformer).
    sharding_source:
        Where the model-parallel sharding comes from: ``"annotated"`` (the
        paper's hand-written annotations) or ``"searched"`` (found by
        :func:`repro.spmd.search.search_partitioning`).
    """

    num_chips: int
    global_batch: int
    mp_cores: int = 1
    use_weight_update_sharding: bool = True
    use_2d_allreduce: bool = True
    spatial_partitioning: bool = False
    sharding_source: str = "annotated"

    def __post_init__(self) -> None:
        if self.sharding_source not in ("annotated", "searched"):
            raise ValueError(
                f"sharding_source must be 'annotated' or 'searched', "
                f"got {self.sharding_source!r}"
            )
        if self.num_chips < 1:
            raise ValueError("num_chips must be >= 1")
        if self.global_batch < 1:
            raise ValueError("global_batch must be >= 1")
        if self.mp_cores < 1:
            raise ValueError("mp_cores must be >= 1")
        # An oversized group is the more fundamental mistake — report it
        # before any divisibility complaint about the same value.
        if self.mp_cores > self.num_cores:
            raise ValueError(
                f"mp_cores exceeds total cores "
                f"({self.mp_cores} > {self.num_cores})"
            )
        if self.num_cores % self.mp_cores != 0:
            raise ValueError(
                f"{self.num_cores} cores not divisible by mp_cores={self.mp_cores}"
            )

    @property
    def num_cores(self) -> int:
        return self.num_chips * 2

    @property
    def mp_chips(self) -> int:
        """Chips spanned by one model-parallel group (2 cores per chip)."""
        return max(1, self.mp_cores // 2)

    @property
    def num_replicas(self) -> int:
        """Data-parallel replica count."""
        return self.num_cores // self.mp_cores

    @property
    def batch_per_replica(self) -> float:
        return self.global_batch / self.num_replicas

    @property
    def batch_per_core(self) -> float:
        return self.global_batch / self.num_cores

    def with_(self, **changes) -> "ParallelismConfig":
        """A modified copy (ablation helper)."""
        return replace(self, **changes)

"""Synchronous data-parallel training on the functional virtual mesh.

Each replica computes gradients on its micro-batch; gradients are *actually*
summed with the ring or 2-D hierarchical collective from
:mod:`repro.runtime.collectives`; every replica then applies an identical
optimizer update.  The invariant (checked by the tests): with a loss that is
a mean over examples, data-parallel training is numerically equivalent to
single-device training on the concatenated batch, up to summation order.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter as _perf

import numpy as np

from repro import telemetry as _telemetry
from repro.core.overlap import OverlapResult, measured_overlap
from repro.core.trainer import StepResult, _warn_direct_construction
from repro.models.mlp import MLP
from repro.optim.base import Optimizer, OptimizerState, Params
from repro.resilience.checkpoint import TrainerCheckpoint, record_checkpoint_metrics
from repro.runtime.bucket import BucketPlan, GradientBucket


def _copy_params(params: Params) -> Params:
    return {name: np.asarray(arr).copy() for name, arr in params.items()}


def _copy_state(state: OptimizerState) -> OptimizerState:
    return {
        name: {slot: np.asarray(arr).copy() for slot, arr in slots.items()}
        for name, slots in state.items()
    }


@dataclass
class TrainLog:
    """Per-step records from a training run."""

    losses: list[float]

    @property
    def last_loss(self) -> float:
        if not self.losses:
            raise ValueError("no steps recorded")
        return self.losses[-1]


class SingleDeviceTrainer:
    """Reference trainer: full batch on one device."""

    def __init__(self, model: MLP, optimizer: Optimizer) -> None:
        _warn_direct_construction(self, SingleDeviceTrainer)
        self.model = model
        self.optimizer = optimizer
        self.params: Params | None = None
        self.state: OptimizerState | None = None
        self.step_index = 0

    def init(self, rng: np.random.Generator) -> None:
        self.params = self.model.init_params(rng)
        self.state = self.optimizer.init_state(self.params)
        self.step_index = 0

    def step(self, x: np.ndarray, labels: np.ndarray) -> StepResult:
        if self.params is None or self.state is None:
            raise RuntimeError("call init() before step()")
        t0 = _perf()
        loss, grads = self.model.loss_and_grad(self.params, x, labels)
        t_fb = _perf()
        self.params, self.state = self.optimizer.update(
            self.params, dict(grads), self.state, self.step_index
        )
        t_up = _perf()
        result = StepResult(
            loss,
            phase_seconds={
                "forward_backward": t_fb - t0, "update": t_up - t_fb,
            },
            step_index=self.step_index,
        )
        self.step_index += 1
        return result

    def train(self, batches, steps: int) -> TrainLog:
        losses = []
        for _ in range(steps):
            x, labels = next(batches)
            losses.append(self.step(x, labels))
        return TrainLog(losses)

    def save_checkpoint(self) -> TrainerCheckpoint:
        """Snapshot params + optimizer state (deep copies) at this step."""
        if self.params is None or self.state is None:
            raise RuntimeError("call init() before save_checkpoint()")
        ckpt = TrainerCheckpoint(
            step_index=self.step_index,
            params=_copy_params(self.params),
            opt_state=_copy_state(self.state),
            trainer=type(self).__name__,
        )
        record_checkpoint_metrics(ckpt, type(self).__name__)
        return ckpt

    def restore_checkpoint(self, ckpt: TrainerCheckpoint) -> None:
        """Resume from a snapshot; bit-identical to never interrupting."""
        self.params = _copy_params(ckpt.params)
        self.state = _copy_state(ckpt.opt_state)
        self.step_index = ckpt.step_index


class DataParallelTrainer:
    """Data parallelism over a logical ``dp_x x dp_y`` replica mesh.

    The global batch is split evenly over replicas.  Gradient summation uses
    the 2-D hierarchical schedule when both mesh dims exceed 1 (mirroring
    the multipod), else a flat ring.  ``grad_dtype_policy`` selects the wire
    numeric format (``"bf16"`` reproduces the paper's low-precision gradient
    summation).

    ``num_buckets`` splits the fused gradient buffer into backprop-ordered
    buckets (one collective each); ``overlap=True`` additionally models the
    backprop-overlapped launch of those collectives (bucket ``i`` issued as
    soon as its last gradient is produced) and emits ``overlap_*``
    telemetry.  Overlap never changes the arithmetic: the collectives run
    with the same buffers in the same order either way, so overlap mode is
    bit-identical to eager mode at the same bucket count.
    """

    def __init__(
        self,
        model: MLP,
        optimizer: Optimizer,
        dp_x: int,
        dp_y: int = 1,
        grad_dtype_policy: str = "f64",
        guard: object | None = None,
        num_buckets: int = 1,
        overlap: bool = False,
    ) -> None:
        _warn_direct_construction(self, DataParallelTrainer)
        if dp_x < 1 or dp_y < 1:
            raise ValueError("replica mesh dims must be >= 1")
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        self.model = model
        self.optimizer = optimizer
        self.dp_x = dp_x
        self.dp_y = dp_y
        self.grad_dtype_policy = grad_dtype_policy
        #: Optional :class:`repro.controlplane.guard.ConsistencyGuard` (or
        #: anything with ``scan_tree``): the reduced mean gradients are
        #: scanned for NaN/Inf *after* the collective — the earliest point
        #: where one replica's non-finite value has poisoned all of them.
        self.guard = guard
        self.num_buckets = num_buckets
        self.overlap = overlap
        self.params: Params | None = None
        self.state: OptimizerState | None = None
        self.step_index = 0
        self._bucket: GradientBucket | None = None
        self._plan: BucketPlan | None = None
        #: Persistent device-major gradient stacks, one per bucket index:
        #: the (n, bucket.size) block the replicas flatten into each step.
        self._grad_blocks: dict[int, np.ndarray] = {}
        self._last_launches: list[tuple[float, float]] = []
        #: Overlap timeline of the most recent step (``overlap=True`` only).
        self.last_overlap: OverlapResult | None = None

    @property
    def num_replicas(self) -> int:
        return self.dp_x * self.dp_y

    def init(self, rng: np.random.Generator) -> None:
        # All replicas start from identical weights (broadcast at setup).
        self.params = self.model.init_params(rng)
        self.state = self.optimizer.init_state(self.params)
        self.step_index = 0
        self._bucket = None
        self._plan = None
        self._grad_blocks = {}
        self.last_overlap = None

    def _collective_plan(self, template: dict) -> BucketPlan:
        """The (cached) bucket partition for this model's gradient tree."""
        if self._plan is None:
            self._plan = BucketPlan(template, self.num_buckets)
            # Back-compat alias: the single-bucket plan *is* the old fused
            # bucket (identical layout), so keep exposing it.
            self._bucket = (
                self._plan.buckets[0] if self._plan.num_buckets == 1 else None
            )
        return self._plan

    def _split(self, x: np.ndarray, labels: np.ndarray):
        n = self.num_replicas
        if x.shape[0] % n != 0:
            raise ValueError(
                f"global batch {x.shape[0]} not divisible by {n} replicas"
            )
        return np.split(x, n), np.split(labels, n)

    def _summed_mean_grads(self, per_replica_grads: list[dict]) -> dict:
        """Fused collectives over the bucketed gradient tensors.

        Each replica's gradients are packed into one contiguous buffer per
        bucket (layout cached across steps) and scaled by ``1/n`` so the
        collective yields the mean over the global batch; a ring or 2-D
        hierarchical all-reduce per bucket then moves the gradients, and
        the result is unpacked into zero-copy per-parameter views.  With
        the default single bucket this is exactly one collective for the
        whole model.  Per-bucket ``(payload_bytes, wall_seconds)`` launch
        records land in ``self._last_launches`` for the overlap model.
        """
        n = self.num_replicas
        plan = self._collective_plan(per_replica_grads[0])
        mean: dict = {}
        launches: list[tuple[float, float]] = []
        for bi, bucket in enumerate(plan.buckets):
            t0 = _perf()
            block = self._grad_blocks.get(bi)
            if block is None or block.shape != (n, bucket.size):
                block = self._grad_blocks[bi] = np.empty(
                    (n, bucket.size), dtype=bucket.dtype
                )
            for i, g in enumerate(per_replica_grads):
                bucket.flatten(g, out=block[i])
            # Replicas contribute grad/n so the collective yields the mean
            # over the global batch (each replica loss is a micro-batch
            # mean).  One whole-stack scale — elementwise identical to the
            # old per-replica loop.
            block /= n
            reduced = bucket.all_reduce_stacked(
                block,
                self.grad_dtype_policy,
                grid_shape=(self.dp_x, self.dp_y)
                if self.dp_x > 1 and self.dp_y > 1
                else None,
            )
            # The replicated result's physical row is freshly owned by the
            # collective, so the optimizer may update through these views.
            mean.update(bucket.unflatten(reduced.block[0]))
            launches.append(
                (bucket.size * bucket.dtype.itemsize, _perf() - t0)
            )
        self._last_launches = launches
        return mean

    def _model_overlap(self, fb_seconds: float) -> OverlapResult | None:
        """Model the backprop-overlapped timeline of the measured step.

        Bucket ready times come from the plan's cumulative element
        fractions laid along the measured backward window; collective
        occupancies are the measured per-bucket wall seconds.  Pure
        modeling — no gradients are touched.
        """
        plan, launches = self._plan, self._last_launches
        if plan is None or not launches or self.num_replicas == 1:
            return None
        result = measured_overlap(
            forward_backward_seconds=fb_seconds,
            bucket_ready_fractions=plan.ready_fractions,
            bucket_comm_s=[seconds for _, seconds in launches],
            bucket_bytes=[nbytes for nbytes, _ in launches],
        )
        if _telemetry.enabled:
            m = _telemetry.metrics
            trainer = type(self).__name__
            m.counter("overlap_steps", trainer=trainer).inc()
            m.counter("overlap_comm_seconds", trainer=trainer).inc(
                result.comm_seconds
            )
            m.counter("overlap_exposed_seconds", trainer=trainer).inc(
                result.exposed_comm_seconds
            )
            m.counter("overlap_hidden_seconds", trainer=trainer).inc(
                result.hidden_comm_seconds
            )
            m.gauge("overlap_efficiency", trainer=trainer).set(
                result.overlap_efficiency
            )
            m.gauge("overlap_buckets", trainer=trainer).set(result.num_buckets)
        return result

    def step(self, x: np.ndarray, labels: np.ndarray) -> StepResult:
        """One synchronous data-parallel step on the global batch.

        Telemetry: the step emits a ``train_step`` span (category
        ``"step"``) enclosing the four phase spans of the paper's step
        breakdown — ``split``/``forward_backward``/``collective``/
        ``update`` — plus a ``step_seconds`` histogram labeled by trainer.
        With ``overlap=True`` the backprop-overlapped timeline of the same
        step is modeled (``overlap_model`` span, ``overlap_*`` counters)
        without changing any arithmetic.
        """
        if self.params is None or self.state is None:
            raise RuntimeError("call init() before step()")
        t0 = _perf()
        tracer = _telemetry.tracer
        with tracer.span("train_step", category="step", actor="trainer"):
            with tracer.span("split", category="input", actor="trainer"):
                xs, ys = self._split(x, labels)
            t_split = _perf()
            losses = []
            grads = []
            with tracer.span("forward_backward", category="compute", actor="trainer"):
                for xi, yi in zip(xs, ys):
                    loss_i, g_i = self.model.loss_and_grad(self.params, xi, yi)
                    losses.append(loss_i)
                    grads.append(dict(g_i))
            t_fb = _perf()
            with tracer.span("collective", category="comm", actor="trainer"):
                mean_grads = self._summed_mean_grads(grads)
            t_comm = _perf()
            if self.guard is not None:
                self.guard.scan_tree(
                    mean_grads, kind="gradient", step=self.step_index
                )
            with tracer.span("update", category="update", actor="trainer"):
                self.params, self.state = self.optimizer.update(
                    self.params, mean_grads, self.state, self.step_index
                )
            t_update = _perf()
            if self.overlap:
                with tracer.span("overlap_model", category="overlap", actor="trainer"):
                    self.last_overlap = self._model_overlap(t_fb - t_split)
        result = StepResult(
            float(np.mean(losses)),
            phase_seconds={
                "split": t_split - t0,
                "forward_backward": t_fb - t_split,
                "collective": t_comm - t_fb,
                "update": t_update - t_comm,
            },
            bytes_moved=sum(nbytes for nbytes, _ in self._last_launches),
            step_index=self.step_index,
        )
        self.step_index += 1
        self._record_step(_perf() - t0, result)
        return result

    def _record_step(self, seconds: float, result: StepResult | None = None) -> None:
        if not _telemetry.enabled:
            return
        m = _telemetry.metrics
        trainer = type(self).__name__
        m.histogram("step_seconds", trainer=trainer).observe(seconds)
        m.counter("train_steps", trainer=trainer).inc()
        if result is not None:
            for phase, phase_seconds in result.phase_seconds.items():
                m.counter(
                    "step_phase_seconds", trainer=trainer, phase=phase
                ).inc(phase_seconds)
            _telemetry.flight_recorder.on_step(result, trainer=trainer)

    def train(self, batches, steps: int) -> TrainLog:
        losses = []
        for _ in range(steps):
            x, labels = next(batches)
            losses.append(self.step(x, labels))
        return TrainLog(losses)

    def save_checkpoint(self) -> TrainerCheckpoint:
        """Snapshot the replicated params + optimizer state (deep copies)."""
        if self.params is None or self.state is None:
            raise RuntimeError("call init() before save_checkpoint()")
        ckpt = TrainerCheckpoint(
            step_index=self.step_index,
            params=_copy_params(self.params),
            opt_state=_copy_state(self.state),
            trainer=type(self).__name__,
        )
        record_checkpoint_metrics(ckpt, type(self).__name__)
        return ckpt

    def restore_checkpoint(self, ckpt: TrainerCheckpoint) -> None:
        """Resume from a snapshot, on this trainer's replica mesh.

        The restoring trainer's ``dp_x x dp_y`` may differ from the
        producer's (elastic restore onto the surviving mesh): params and
        optimizer state are replicated, so only the gradient-bucket layout
        cache needs resetting.  Resuming is bit-identical to an
        uninterrupted run *of this mesh shape* fed the same data.
        """
        self.params = _copy_params(ckpt.params)
        self.state = _copy_state(ckpt.opt_state)
        self.step_index = ckpt.step_index
        self._bucket = None
        self._plan = None
        self._last_launches = []

"""Synchronous data-parallel training on the functional virtual mesh.

Each replica computes gradients on its micro-batch; gradients are *actually*
summed with the ring or 2-D hierarchical collective from
:mod:`repro.runtime.collectives`; every replica then applies an identical
optimizer update.  The invariant (checked by the tests): with a loss that is
a mean over examples, data-parallel training is numerically equivalent to
single-device training on the concatenated batch, up to summation order.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter as _perf

import numpy as np

from repro import telemetry as _telemetry
from repro.models.mlp import MLP
from repro.optim.base import Optimizer, OptimizerState, Params
from repro.resilience.checkpoint import TrainerCheckpoint, record_checkpoint_metrics
from repro.runtime.bucket import GradientBucket
from repro.runtime.collectives import ring_all_reduce, two_phase_all_reduce


def _copy_params(params: Params) -> Params:
    return {name: np.asarray(arr).copy() for name, arr in params.items()}


def _copy_state(state: OptimizerState) -> OptimizerState:
    return {
        name: {slot: np.asarray(arr).copy() for slot, arr in slots.items()}
        for name, slots in state.items()
    }


@dataclass
class TrainLog:
    """Per-step records from a training run."""

    losses: list[float]

    @property
    def last_loss(self) -> float:
        if not self.losses:
            raise ValueError("no steps recorded")
        return self.losses[-1]


class SingleDeviceTrainer:
    """Reference trainer: full batch on one device."""

    def __init__(self, model: MLP, optimizer: Optimizer) -> None:
        self.model = model
        self.optimizer = optimizer
        self.params: Params | None = None
        self.state: OptimizerState | None = None
        self.step_index = 0

    def init(self, rng: np.random.Generator) -> None:
        self.params = self.model.init_params(rng)
        self.state = self.optimizer.init_state(self.params)
        self.step_index = 0

    def step(self, x: np.ndarray, labels: np.ndarray) -> float:
        if self.params is None or self.state is None:
            raise RuntimeError("call init() before step()")
        loss, grads = self.model.loss_and_grad(self.params, x, labels)
        self.params, self.state = self.optimizer.update(
            self.params, dict(grads), self.state, self.step_index
        )
        self.step_index += 1
        return loss

    def train(self, batches, steps: int) -> TrainLog:
        losses = []
        for _ in range(steps):
            x, labels = next(batches)
            losses.append(self.step(x, labels))
        return TrainLog(losses)

    def save_checkpoint(self) -> TrainerCheckpoint:
        """Snapshot params + optimizer state (deep copies) at this step."""
        if self.params is None or self.state is None:
            raise RuntimeError("call init() before save_checkpoint()")
        ckpt = TrainerCheckpoint(
            step_index=self.step_index,
            params=_copy_params(self.params),
            opt_state=_copy_state(self.state),
            trainer=type(self).__name__,
        )
        record_checkpoint_metrics(ckpt, type(self).__name__)
        return ckpt

    def restore_checkpoint(self, ckpt: TrainerCheckpoint) -> None:
        """Resume from a snapshot; bit-identical to never interrupting."""
        self.params = _copy_params(ckpt.params)
        self.state = _copy_state(ckpt.opt_state)
        self.step_index = ckpt.step_index


class DataParallelTrainer:
    """Data parallelism over a logical ``dp_x x dp_y`` replica mesh.

    The global batch is split evenly over replicas.  Gradient summation uses
    the 2-D hierarchical schedule when both mesh dims exceed 1 (mirroring
    the multipod), else a flat ring.  ``grad_dtype_policy`` selects the wire
    numeric format (``"bf16"`` reproduces the paper's low-precision gradient
    summation).
    """

    def __init__(
        self,
        model: MLP,
        optimizer: Optimizer,
        dp_x: int,
        dp_y: int = 1,
        grad_dtype_policy: str = "f64",
        guard: object | None = None,
    ) -> None:
        if dp_x < 1 or dp_y < 1:
            raise ValueError("replica mesh dims must be >= 1")
        self.model = model
        self.optimizer = optimizer
        self.dp_x = dp_x
        self.dp_y = dp_y
        self.grad_dtype_policy = grad_dtype_policy
        #: Optional :class:`repro.controlplane.guard.ConsistencyGuard` (or
        #: anything with ``scan_tree``): the reduced mean gradients are
        #: scanned for NaN/Inf *after* the collective — the earliest point
        #: where one replica's non-finite value has poisoned all of them.
        self.guard = guard
        self.params: Params | None = None
        self.state: OptimizerState | None = None
        self.step_index = 0
        self._bucket: GradientBucket | None = None

    @property
    def num_replicas(self) -> int:
        return self.dp_x * self.dp_y

    def init(self, rng: np.random.Generator) -> None:
        # All replicas start from identical weights (broadcast at setup).
        self.params = self.model.init_params(rng)
        self.state = self.optimizer.init_state(self.params)
        self.step_index = 0
        self._bucket = None

    def _split(self, x: np.ndarray, labels: np.ndarray):
        n = self.num_replicas
        if x.shape[0] % n != 0:
            raise ValueError(
                f"global batch {x.shape[0]} not divisible by {n} replicas"
            )
        return np.split(x, n), np.split(labels, n)

    def _summed_mean_grads(self, per_replica_grads: list[dict]) -> dict:
        """One fused collective over all gradient tensors at once.

        Each replica's gradients are packed into a single contiguous bucket
        buffer (layout cached across steps) and scaled by ``1/n`` so the
        collective yields the mean over the global batch; a single ring or
        2-D hierarchical all-reduce then moves the whole model's gradients,
        and the result is unpacked into zero-copy per-parameter views.
        """
        n = self.num_replicas
        bucket = self._bucket
        if bucket is None:
            bucket = self._bucket = GradientBucket(per_replica_grads[0])
        buffers = [bucket.flatten(g) for g in per_replica_grads]
        for buf in buffers:
            # Replicas contribute grad/n so the collective yields the mean
            # over the global batch (each replica loss is a micro-batch mean).
            buf /= n
        if self.dp_x > 1 and self.dp_y > 1:
            grid = [
                [buffers[x * self.dp_y + y] for y in range(self.dp_y)]
                for x in range(self.dp_x)
            ]
            reduced = two_phase_all_reduce(grid, self.grad_dtype_policy)
            flat = reduced[0][0]
        else:
            flat = ring_all_reduce(buffers, self.grad_dtype_policy)[0]
        return bucket.unflatten(flat)

    def step(self, x: np.ndarray, labels: np.ndarray) -> float:
        """One synchronous data-parallel step on the global batch.

        Telemetry: the step emits a ``train_step`` span (category
        ``"step"``) enclosing the four phase spans of the paper's step
        breakdown — ``split``/``forward_backward``/``collective``/
        ``update`` — plus a ``step_seconds`` histogram labeled by trainer.
        """
        if self.params is None or self.state is None:
            raise RuntimeError("call init() before step()")
        t0 = _perf()
        tracer = _telemetry.tracer
        with tracer.span("train_step", category="step", actor="trainer"):
            with tracer.span("split", category="input", actor="trainer"):
                xs, ys = self._split(x, labels)
            losses = []
            grads = []
            with tracer.span("forward_backward", category="compute", actor="trainer"):
                for xi, yi in zip(xs, ys):
                    loss_i, g_i = self.model.loss_and_grad(self.params, xi, yi)
                    losses.append(loss_i)
                    grads.append(dict(g_i))
            with tracer.span("collective", category="comm", actor="trainer"):
                mean_grads = self._summed_mean_grads(grads)
            if self.guard is not None:
                self.guard.scan_tree(
                    mean_grads, kind="gradient", step=self.step_index
                )
            with tracer.span("update", category="update", actor="trainer"):
                self.params, self.state = self.optimizer.update(
                    self.params, mean_grads, self.state, self.step_index
                )
        self.step_index += 1
        self._record_step(_perf() - t0)
        return float(np.mean(losses))

    def _record_step(self, seconds: float) -> None:
        if not _telemetry.enabled:
            return
        m = _telemetry.metrics
        trainer = type(self).__name__
        m.histogram("step_seconds", trainer=trainer).observe(seconds)
        m.counter("train_steps", trainer=trainer).inc()

    def train(self, batches, steps: int) -> TrainLog:
        losses = []
        for _ in range(steps):
            x, labels = next(batches)
            losses.append(self.step(x, labels))
        return TrainLog(losses)

    def save_checkpoint(self) -> TrainerCheckpoint:
        """Snapshot the replicated params + optimizer state (deep copies)."""
        if self.params is None or self.state is None:
            raise RuntimeError("call init() before save_checkpoint()")
        ckpt = TrainerCheckpoint(
            step_index=self.step_index,
            params=_copy_params(self.params),
            opt_state=_copy_state(self.state),
            trainer=type(self).__name__,
        )
        record_checkpoint_metrics(ckpt, type(self).__name__)
        return ckpt

    def restore_checkpoint(self, ckpt: TrainerCheckpoint) -> None:
        """Resume from a snapshot, on this trainer's replica mesh.

        The restoring trainer's ``dp_x x dp_y`` may differ from the
        producer's (elastic restore onto the surviving mesh): params and
        optimizer state are replicated, so only the gradient-bucket layout
        cache needs resetting.  Resuming is bit-identical to an
        uninterrupted run *of this mesh shape* fed the same data.
        """
        self.params = _copy_params(ckpt.params)
        self.state = _copy_state(ckpt.opt_state)
        self.step_index = ckpt.step_index
        self._bucket = None

"""Feature-dimension model parallelism (Section 3.1) and hybrid training.

Where data parallelism runs out (fixed global batch, Transformer/SSD), the
paper shards the *feature* dimensions of dense layers over a tile of
X-adjacent cores, in the style of Shazeer et al.'s Mesh-TensorFlow, via
SPMD annotations.  For an MLP pair of layers this is the classic pattern:

* layer ``2i``   — weights split by **output** features (column sharding);
  each core computes its slice of the hidden activation locally;
* layer ``2i+1`` — weights split by **input** features (row sharding); each
  core computes a *partial* product, and an **all-reduce over the model
  group** restores the replicated activation ("black rings" of Figure 4).

The backward pass mirrors this with an all-reduce of the input-activation
gradient.  Weight gradients stay shard-local; with data parallelism on
top, each shard's gradients are summed across replicas on the *peer rings*
that hop over model-parallel neighbors (Figure 4, dotted blue) — which is
exactly what :class:`HybridParallelTrainer` executes.
"""

from __future__ import annotations

from time import perf_counter as _perf

import numpy as np

from repro.core.trainer import StepResult, _warn_direct_construction
from repro.models.layers import (
    dense_backward,
    relu,
    relu_backward,
    softmax_cross_entropy,
)
from repro.models.mlp import MLP
from repro.optim.base import Optimizer, Params
from repro.runtime.collectives import ring_all_reduce


class FeatureShardedMLP:
    """An MLP with feature-sharded weights over ``mp_size`` model cores.

    Layers are sharded in column/row pairs; a trailing unpaired layer stays
    replicated.  Sharded parameter dicts use the same names as the wrapped
    :class:`~repro.models.mlp.MLP`, holding each device's shard.
    """

    def __init__(self, mlp: MLP, mp_size: int) -> None:
        if mp_size < 1:
            raise ValueError("mp_size must be >= 1")
        self.mlp = mlp
        self.mp_size = mp_size
        self.num_layers = mlp.num_layers
        self.num_pairs = self.num_layers // 2
        for pair in range(self.num_pairs):
            hidden = mlp.layer_sizes[2 * pair + 1]
            if hidden % mp_size != 0:
                raise ValueError(
                    f"hidden size {hidden} of layer {2 * pair} not divisible "
                    f"by mp_size {mp_size}"
                )

    # --- sharding of parameter dicts -------------------------------------

    def _kind(self, layer: int) -> str:
        """'col', 'row', or 'replicated' for a layer index."""
        if layer < 2 * self.num_pairs:
            return "col" if layer % 2 == 0 else "row"
        return "replicated"

    def shard_params(self, params: Params) -> list[Params]:
        """Split full parameters into one shard dict per model core."""
        out: list[Params] = [dict() for _ in range(self.mp_size)]
        for layer in range(self.num_layers):
            w, b = params[f"w{layer}"], params[f"b{layer}"]
            kind = self._kind(layer)
            if kind == "col":
                w_shards = np.split(w, self.mp_size, axis=1)
                b_shards = np.split(b, self.mp_size)
            elif kind == "row":
                w_shards = np.split(w, self.mp_size, axis=0)
                b_shards = [b.copy() for _ in range(self.mp_size)]
            else:
                w_shards = [w.copy() for _ in range(self.mp_size)]
                b_shards = [b.copy() for _ in range(self.mp_size)]
            for k in range(self.mp_size):
                out[k][f"w{layer}"] = w_shards[k]
                out[k][f"b{layer}"] = b_shards[k]
        return out

    def gather_params(self, shards: list[Params]) -> Params:
        """Reassemble full parameters from per-core shards."""
        if len(shards) != self.mp_size:
            raise ValueError("wrong number of shards")
        full: Params = {}
        for layer in range(self.num_layers):
            kind = self._kind(layer)
            ws = [s[f"w{layer}"] for s in shards]
            bs = [s[f"b{layer}"] for s in shards]
            if kind == "col":
                full[f"w{layer}"] = np.concatenate(ws, axis=1)
                full[f"b{layer}"] = np.concatenate(bs)
            elif kind == "row":
                full[f"w{layer}"] = np.concatenate(ws, axis=0)
                full[f"b{layer}"] = bs[0]
            else:
                full[f"w{layer}"] = ws[0]
                full[f"b{layer}"] = bs[0]
        return full

    # --- sharded execution -------------------------------------------------

    def forward(
        self, shards: list[Params], x: np.ndarray, dtype_policy: str = "f64"
    ) -> np.ndarray:
        """Logits via sharded execution (returns the replicated result)."""
        logits, _ = self._forward_with_cache(shards, x, dtype_policy)
        return logits

    def _forward_with_cache(self, shards, x, dtype_policy):
        m = self.mp_size
        h = x.astype(self.mlp.dtype)
        cache: list[dict] = []
        layer = 0
        for _ in range(self.num_pairs):
            entry: dict = {"h_in": h}
            z1 = [h @ shards[k][f"w{layer}"] + shards[k][f"b{layer}"] for k in range(m)]
            a1 = [relu(z) for z in z1]
            entry["z1"], entry["a1"] = z1, a1
            partials = [a1[k] @ shards[k][f"w{layer + 1}"] for k in range(m)]
            # Forward all-reduce over the model group (black ring).
            z2 = ring_all_reduce(partials, dtype_policy)[0] + shards[0][f"b{layer + 1}"]
            entry["z2"] = z2
            is_last = layer + 1 == self.num_layers - 1
            h = z2 if is_last else relu(z2)
            cache.append(entry)
            layer += 2
        if layer < self.num_layers:  # trailing replicated layer
            entry = {"h_in": h}
            h = h @ shards[0][f"w{layer}"] + shards[0][f"b{layer}"]
            cache.append(entry)
        return h, cache

    def loss_and_grad(
        self,
        shards: list[Params],
        x: np.ndarray,
        labels: np.ndarray,
        dtype_policy: str = "f64",
    ) -> tuple[float, list[dict[str, np.ndarray]]]:
        """Loss and per-core sharded gradients for one micro-batch."""
        m = self.mp_size
        logits, cache = self._forward_with_cache(shards, x, dtype_policy)
        loss, dy = softmax_cross_entropy(logits, labels)
        grads: list[dict[str, np.ndarray]] = [dict() for _ in range(m)]
        layer = self.num_layers - 1
        if self.num_layers % 2 == 1:  # trailing replicated layer
            entry = cache[-1]
            dx, dw, db = dense_backward(entry["h_in"], shards[0][f"w{layer}"], dy)
            for k in range(m):
                grads[k][f"w{layer}"] = dw
                grads[k][f"b{layer}"] = db
            dy = dx
            layer -= 1
        for pair in reversed(range(self.num_pairs)):
            entry = cache[pair]
            l1, l2 = 2 * pair, 2 * pair + 1
            is_last = l2 == self.num_layers - 1
            dz2 = dy if is_last else relu_backward(entry["z2"], dy)
            db2 = dz2.sum(axis=0)
            dh_partials = []
            for k in range(m):
                a1_k = entry["a1"][k]
                dw2_k = a1_k.T @ dz2
                da1_k = dz2 @ shards[k][f"w{l2}"].T
                dz1_k = relu_backward(entry["z1"][k], da1_k)
                dw1_k = entry["h_in"].T @ dz1_k
                db1_k = dz1_k.sum(axis=0)
                grads[k][f"w{l2}"] = dw2_k
                grads[k][f"b{l2}"] = db2
                grads[k][f"w{l1}"] = dw1_k
                grads[k][f"b{l1}"] = db1_k
                dh_partials.append(dz1_k @ shards[k][f"w{l1}"].T)
            # Backward all-reduce over the model group.
            dy = ring_all_reduce(dh_partials, dtype_policy)[0]
        return loss, grads


class HybridParallelTrainer:
    """Data x model parallelism on a ``dp x mp`` logical device grid.

    Device ``(d, k)`` holds model shard ``k`` and processes replica ``d``'s
    micro-batch.  Per step:

    1. each replica row runs the sharded forward/backward (all-reduces
       inside the model group);
    2. each weight shard's gradients are summed across replicas — the peer
       reduction of Figure 4 — with a real ring collective;
    3. the optimizer updates each shard, combining shard-partial norms
       across the model group for LARS/LAMB trust ratios.
    """

    def __init__(
        self,
        model: MLP,
        optimizer: Optimizer,
        dp_size: int,
        mp_size: int,
        grad_dtype_policy: str = "f64",
    ) -> None:
        if dp_size < 1:
            raise ValueError("dp_size must be >= 1")
        _warn_direct_construction(self, HybridParallelTrainer)
        self.model = model
        self.optimizer = optimizer
        self.dp_size = dp_size
        self.mp = FeatureShardedMLP(model, mp_size)
        self.grad_dtype_policy = grad_dtype_policy
        self.shards: list[Params] | None = None  # one per model core
        self.shard_states: list[dict] | None = None
        self.step_index = 0

    @property
    def mp_size(self) -> int:
        return self.mp.mp_size

    @property
    def num_devices(self) -> int:
        return self.dp_size * self.mp_size

    def init(self, rng: np.random.Generator) -> None:
        full = self.model.init_params(rng)
        self.shards = self.mp.shard_params(full)
        self.shard_states = [self.optimizer.init_state(s) for s in self.shards]
        self.step_index = 0

    def full_params(self) -> Params:
        if self.shards is None:
            raise RuntimeError("call init() first")
        return self.mp.gather_params(self.shards)

    def step(self, x: np.ndarray, labels: np.ndarray) -> StepResult:
        if self.shards is None or self.shard_states is None:
            raise RuntimeError("call init() before step()")
        dp = self.dp_size
        if x.shape[0] % dp != 0:
            raise ValueError(f"global batch {x.shape[0]} not divisible by {dp}")
        t0 = _perf()
        xs, ys = np.split(x, dp), np.split(labels, dp)
        losses = []
        replica_grads: list[list[dict]] = []  # [replica][model core]
        for xi, yi in zip(xs, ys):
            loss_i, g_i = self.mp.loss_and_grad(
                self.shards, xi, yi, self.grad_dtype_policy
            )
            losses.append(loss_i)
            replica_grads.append(g_i)
        t_fb = _perf()
        # Peer reduction across replicas for every shard tensor.
        reduced: list[dict[str, np.ndarray]] = [dict() for _ in range(self.mp_size)]
        bytes_moved = 0.0
        for k in range(self.mp_size):
            for name in replica_grads[0][k]:
                contribs = [replica_grads[d][k][name] / dp for d in range(dp)]
                reduced[k][name] = ring_all_reduce(contribs, self.grad_dtype_policy)[0]
                bytes_moved += float(reduced[k][name].nbytes)
        t_comm = _perf()
        self._sharded_optimizer_step(reduced)
        t_update = _perf()
        result = StepResult(
            float(np.mean(losses)),
            phase_seconds={
                "forward_backward": t_fb - t0,
                "collective": t_comm - t_fb,
                "update": t_update - t_comm,
            },
            bytes_moved=bytes_moved,
            step_index=self.step_index,
        )
        self.step_index += 1
        return result

    def _sharded_optimizer_step(self, grads: list[dict[str, np.ndarray]]) -> None:
        """Update each shard, reducing norm partials across the model group."""
        assert self.shards is not None and self.shard_states is not None
        m = self.mp_size
        for name in self.shards[0]:
            kind = self.mp._kind(int(name[1:]))
            replicated = kind == "replicated" or (kind == "row" and name.startswith("b"))
            # Partial norm stats per shard; for replicated tensors every core
            # holds the full tensor, so core 0's stats are already global.
            if replicated:
                stats = self.optimizer.norm_stats(
                    name, self.shards[0][name], grads[0][name],
                    self.shard_states[0][name], self.step_index,
                )
            else:
                stats = {}
                for k in range(m):
                    partial = self.optimizer.norm_stats(
                        name, self.shards[k][name], grads[k][name],
                        self.shard_states[k][name], self.step_index,
                    )
                    for key, value in partial.items():
                        stats[key] = stats.get(key, 0.0) + value
            for k in range(m):
                new_p, new_s = self.optimizer.apply(
                    name, self.shards[k][name], grads[k][name],
                    self.shard_states[k][name], self.step_index, stats,
                )
                self.shards[k][name] = new_p
                self.shard_states[k][name] = new_s

    def train(self, batches, steps: int):
        losses = []
        for _ in range(steps):
            x, labels = next(batches)
            losses.append(self.step(x, labels))
        return losses

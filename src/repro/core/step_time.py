"""Per-step time model: compute, communication, update, and infeed.

The model composes the hardware, communication, and model-cost layers:

* **compute** — per-replica example FLOPs over the model-parallel tile at a
  calibrated MXU efficiency, degraded by tile load imbalance and the
  unpartitionable fraction when spatially partitioned;
* **model-parallel communication** — halo exchanges (spatial) or activation
  all-reduces (feature sharding) on the short X rings;
* **gradient summation** — the 2-D hierarchical all-reduce of Section 3.3
  (or the flat-ring baseline for ablations), with bf16 payloads where the
  paper uses them;
* **weight update** — vector-unit time for the optimizer, divided by the
  replica count when weight-update sharding is on (Section 3.2);
* **infeed** — host input-pipeline throughput; the step can not run faster
  than hosts can feed it (Section 3.5).

Figures 6 and 8 are exactly the ``compute`` vs ``allreduce`` terms of this
model as functions of chip count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.comm.allreduce import (
    allreduce_launch_params,
    gradient_allreduce,
    model_parallel_allreduce,
)
from repro.comm.halo import halo_exchange_time, load_imbalance, spatial_shard_shape
from repro.core.overlap import (
    OverlapResult,
    analytic_overlap,
    layer_backward_fractions,
)
from repro.hardware.topology import TorusMesh, slice_for_chips
from repro.models.costspec import ModelCostSpec
from repro.core.strategy import ParallelismConfig


@dataclass(frozen=True)
class StepTimeBreakdown:
    """Seconds per training step, by component.

    ``exposed_allreduce`` is set when the model ran with the overlap engine:
    it is the part of ``allreduce`` that sticks out past the backward pass
    and is the only all-reduce share the device critical path then charges.
    ``None`` means the serial schedule (every collective after compute).
    """

    compute: float
    allreduce: float
    mp_comm: float
    weight_update: float
    infeed: float
    embedding: float = 0.0
    exposed_allreduce: float | None = None

    @property
    def device_time(self) -> float:
        """Device critical path: serial sum, or overlap-aware when modeled."""
        allreduce = (
            self.allreduce
            if self.exposed_allreduce is None
            else self.exposed_allreduce
        )
        return (
            self.compute
            + allreduce
            + self.mp_comm
            + self.weight_update
            + self.embedding
        )

    @property
    def total(self) -> float:
        """Step latency: device path, unless the host pipeline is the wall."""
        return max(self.device_time, self.infeed)

    @property
    def allreduce_fraction(self) -> float:
        """Share of device step time spent in gradient all-reduce."""
        device = self.device_time
        return self.allreduce / device if device > 0 else 0.0


class StepTimeModel:
    """Step-time estimator for one benchmark on one slice.

    ``overlap=True`` replaces the serial compute-then-all-reduce schedule
    with the overlap engine of :mod:`repro.core.overlap`: the gradient
    stream is split into ``overlap_buckets`` equal-byte collectives
    launched behind the backward pass, and only the **exposed** tail is
    charged to the device critical path.  ``overlap_buckets=1`` keeps the
    collective cost identical to the serial model (one launch, same
    payload) — with nothing ready before compute ends, the step time then
    matches the serial schedule exactly.
    """

    def __init__(
        self,
        spec: ModelCostSpec,
        config: ParallelismConfig,
        *,
        mesh: TorusMesh | None = None,
        mxu_efficiency: float = 0.45,
        step_overhead: float = 1.0e-4,
        input_bandwidth_per_host: float | None = None,
        overlap: bool = False,
        overlap_buckets: int = 1,
    ) -> None:
        if not 0.0 < mxu_efficiency <= 1.0:
            raise ValueError("mxu_efficiency must be in (0, 1]")
        if overlap_buckets < 1:
            raise ValueError("overlap_buckets must be >= 1")
        self.overlap = overlap
        self.overlap_buckets = overlap_buckets
        self.spec = spec
        self.config = config
        self.mesh = mesh if mesh is not None else slice_for_chips(config.num_chips)
        if self.mesh.num_chips != config.num_chips:
            raise ValueError(
                f"mesh has {self.mesh.num_chips} chips, config expects "
                f"{config.num_chips}"
            )
        self.mxu_efficiency = mxu_efficiency
        self.step_overhead = step_overhead
        self.input_bandwidth_per_host = input_bandwidth_per_host

    # --- components ---------------------------------------------------------

    def compute_time(self) -> float:
        """MXU time per step on the critical core."""
        cfg, spec, chip = self.config, self.spec, self.mesh.chip
        per_replica_flops = spec.flops_per_example * cfg.batch_per_replica
        core_flops = chip.per_core_matmul_flops * self.mxu_efficiency
        if cfg.mp_cores == 1:
            return per_replica_flops / core_flops + self.step_overhead
        if cfg.spatial_partitioning:
            # Partitionable FLOPs split over tiles with imbalance; the rest
            # (unsupported ops before the paper's XLA work) stays serial.
            part, imbalance = self._spatial_split(cfg.mp_cores)
            serial = 1.0 - part
            parallel_share = part * imbalance / cfg.mp_cores
            return per_replica_flops * (serial + parallel_share) / core_flops + self.step_overhead
        # Feature sharding splits dense work evenly.
        return per_replica_flops / (cfg.mp_cores * core_flops) + self.step_overhead

    def _spatial_split(self, k: int) -> tuple[float, float]:
        """(partitionable flops fraction, max/mean tile imbalance) at k tiles."""
        part = 0.0
        weighted_imbalance = 0.0
        for layer in self.spec.layers:
            if not layer.spatially_partitionable:
                continue
            if layer.height >= k:
                shards = spatial_shard_shape(layer.height, layer.width, layer.channels, k)
                imb = load_imbalance(shards)
            else:
                # Cannot split this few rows over k tiles: only height tiles
                # get work, the others idle -> imbalance factor k/height.
                imb = k / layer.height
            part += layer.flops_fraction
            weighted_imbalance += layer.flops_fraction * imb
        if part == 0.0:
            return 0.0, 1.0
        return part, weighted_imbalance / part

    def mp_comm_time(self) -> float:
        """Model-parallel communication: halo exchange or activation rings."""
        cfg, spec = self.config, self.spec
        if cfg.mp_cores == 1:
            return 0.0
        if cfg.spatial_partitioning:
            total = 0.0
            per_tile_batch = cfg.batch_per_replica
            for layer in spec.layers:
                if not layer.spatially_partitionable or layer.halo_rows == 0:
                    continue
                # Forward + backward exchange per spatial stage.
                per_image = halo_exchange_time(
                    self.mesh,
                    width=layer.width,
                    channels=layer.channels,
                    halo_rows=layer.halo_rows,
                    dtype_bytes=layer.activation_dtype_bytes,
                    num_partitions=cfg.mp_cores,
                )
                total += 2.0 * per_image * max(per_tile_batch, 1.0)
            return total
        payload = (
            spec.activation_allreduce_bytes_per_example * cfg.batch_per_replica
        )
        return model_parallel_allreduce(self.mesh, cfg.mp_chips, payload)

    def allreduce_time(self) -> float:
        """Cross-replica gradient summation (Section 3.3)."""
        cfg, spec = self.config, self.spec
        if cfg.num_replicas == 1:
            return 0.0
        payload = spec.gradient_bytes / cfg.mp_cores
        return gradient_allreduce(
            self.mesh,
            payload,
            mp_size=cfg.mp_chips if cfg.mp_chips > 1 else 1,
            use_2d=cfg.use_2d_allreduce,
        ).total

    def _launch_params(self) -> tuple[float, float]:
        """Affine (alpha, bytes/s) of one fused all-reduce on this layout."""
        cfg = self.config
        return allreduce_launch_params(
            self.mesh,
            mp_size=cfg.mp_chips if cfg.mp_chips > 1 else 1,
            use_2d=cfg.use_2d_allreduce,
        )

    def bucketed_allreduce_time(self, num_buckets: int | None = None) -> float:
        """Gradient summation cost when split into ``num_buckets`` launches.

        One bucket is *exactly* :meth:`allreduce_time` (same single launch);
        ``k`` buckets pay the per-launch latency ``alpha`` ``k`` times over
        the same total bytes.
        """
        if num_buckets is None:
            num_buckets = self.overlap_buckets
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        cfg, spec = self.config, self.spec
        if cfg.num_replicas == 1:
            return 0.0
        if num_buckets == 1:
            return self.allreduce_time()
        alpha, bw = self._launch_params()
        payload = spec.gradient_bytes / cfg.mp_cores
        slope = payload / bw if math.isfinite(bw) else 0.0
        return num_buckets * alpha + slope

    def overlap_result(self, num_buckets: int | None = None) -> OverlapResult:
        """Run the overlap engine for this model/slice at a bucket count."""
        if num_buckets is None:
            num_buckets = self.overlap_buckets
        cfg, spec = self.config, self.spec
        alpha, bw = self._launch_params()
        payload = spec.gradient_bytes / cfg.mp_cores
        if cfg.num_replicas == 1:
            payload, alpha, bw = 0.0, 0.0, math.inf
        return analytic_overlap(
            fractions=layer_backward_fractions(spec),
            compute_seconds=self.compute_time(),
            grad_bytes=payload,
            num_buckets=num_buckets,
            comm_alpha=alpha,
            comm_bytes_per_second=bw,
        )

    def weight_update_time(self) -> float:
        """Optimizer update time — HBM-bound (Section 3.2).

        The update streams the weights, gradients and slot variables
        through HBM; weight-update sharding divides the per-core traffic by
        the replica count.
        """
        cfg, spec, chip = self.config, self.spec, self.mesh.chip
        params_per_core = spec.params / cfg.mp_cores
        if cfg.use_weight_update_sharding:
            params_per_core /= cfg.num_replicas
        traffic = params_per_core * spec.optimizer_bytes_per_param
        return traffic / (chip.hbm_bandwidth / chip.cores)

    def embedding_time(self) -> float:
        """HBM-bound embedding traffic (DLRM)."""
        cfg, spec, chip = self.config, self.spec, self.mesh.chip
        if spec.embedding_hbm_bytes_per_example == 0:
            return 0.0
        per_core_examples = cfg.batch_per_core
        return (
            per_core_examples * spec.embedding_hbm_bytes_per_example
            / (chip.hbm_bandwidth / chip.cores)
        )

    def infeed_time(self) -> float:
        """Host-side time to feed one step's examples (per host)."""
        cfg, spec = self.config, self.spec
        host = self.mesh.host
        if spec.host_input_bytes_per_example == 0:
            return 0.0
        examples_per_host = cfg.global_batch / self.mesh.num_hosts
        bw = (
            self.input_bandwidth_per_host
            if self.input_bandwidth_per_host is not None
            else host.pcie_bandwidth
        )
        return examples_per_host * spec.host_input_bytes_per_example / bw

    def breakdown(self) -> StepTimeBreakdown:
        """Full per-step breakdown (overlap-aware when ``overlap=True``)."""
        exposed: float | None = None
        allreduce = self.bucketed_allreduce_time(self.overlap_buckets)
        if self.overlap and self.config.num_replicas > 1:
            exposed = self.overlap_result().exposed_comm_seconds
        return StepTimeBreakdown(
            compute=self.compute_time(),
            allreduce=allreduce,
            mp_comm=self.mp_comm_time(),
            weight_update=self.weight_update_time(),
            infeed=self.infeed_time(),
            embedding=self.embedding_time(),
            exposed_allreduce=exposed,
        )

    def step_time(self) -> float:
        return self.breakdown().total

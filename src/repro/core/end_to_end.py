"""End-to-end MLPerf time model: train loop + periodic evaluation.

MLPerf wall-clock starts after initialization (Table 2 reports init
separately), so ``total = steps x step_time + evals x (eval pass + metric
path)``.  The eval pass runs distributed on the same slice; the metric path
differs by framework (Section 3.4): TF gathers per-host metrics to the
coordinator, JAX all-reduces on device.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.convergence import ConvergenceModel
from repro.core.step_time import StepTimeBreakdown, StepTimeModel
from repro.core.strategy import ParallelismConfig
from repro.frameworks.base import FrameworkModel, GraphProfile
from repro.frameworks.jax import MultiClientJAX
from repro.hardware.topology import TorusMesh, slice_for_chips
from repro.models.costspec import ModelCostSpec

#: How often each benchmark evaluates (MLPerf rules): epochs between evals,
#: except BERT which evaluates every N training samples.
EVAL_INTERVAL_EPOCHS: dict[str, float] = {
    "resnet50": 4.0,
    "ssd": 5.0,
    "maskrcnn": 1.0,
    "transformer": 1.0,
    "dlrm": 0.05,  # 20 evals over the run
}
BERT_EVAL_INTERVAL_SAMPLES = 500_000


def num_evals_for(spec: ModelCostSpec, convergence: ConvergenceModel,
                  global_batch: int) -> int:
    """Evaluation count for a run, per the MLPerf cadence rules."""
    if spec.name == "bert":
        samples = convergence.samples_to_converge(global_batch)
        return max(1, math.ceil(samples / BERT_EVAL_INTERVAL_SAMPLES))
    epochs = convergence.epochs_to_converge(global_batch)
    interval = EVAL_INTERVAL_EPOCHS[spec.name]
    return max(1, math.ceil(epochs / interval))


@dataclass(frozen=True)
class EndToEndResult:
    """The modeled MLPerf run."""

    benchmark: str
    num_chips: int
    framework: str
    config: ParallelismConfig
    steps: int
    step: StepTimeBreakdown
    num_evals: int
    eval_seconds: float
    init_seconds: float

    @property
    def train_seconds(self) -> float:
        return self.steps * self.step.total

    @property
    def total_seconds(self) -> float:
        """MLPerf end-to-end (excludes init, as the paper's Table 1 does)."""
        return self.train_seconds + self.eval_seconds

    @property
    def total_minutes(self) -> float:
        return self.total_seconds / 60.0

    @property
    def throughput_examples_per_second(self) -> float:
        return self.config.global_batch / self.step.total


class EndToEndModel:
    """Composes convergence, step-time, and framework models for one run."""

    def __init__(
        self,
        spec: ModelCostSpec,
        *,
        mxu_efficiency: float = 0.45,
        step_overhead: float = 1.0e-4,
        eval_efficiency_factor: float = 0.5,
        eval_overhead_seconds: float = 0.2,
        framework: FrameworkModel | None = None,
        graph_profile: GraphProfile | None = None,
    ) -> None:
        self.spec = spec
        self.convergence = ConvergenceModel(spec)
        self.mxu_efficiency = mxu_efficiency
        self.step_overhead = step_overhead
        self.eval_efficiency_factor = eval_efficiency_factor
        self.eval_overhead_seconds = eval_overhead_seconds
        self.framework = framework if framework is not None else MultiClientJAX()
        self.graph_profile = graph_profile or GraphProfile(spec.name, 60.0, 0.5)

    def _num_evals(self, global_batch: int) -> int:
        return num_evals_for(self.spec, self.convergence, global_batch)

    def _eval_pass_seconds(self, mesh: TorusMesh) -> float:
        """One distributed eval pass: forward-only FLOPs over the slice."""
        forward_flops = self.spec.flops_per_example / 3.0
        cluster = (
            mesh.num_chips
            * mesh.chip.peak_matmul_flops
            * self.mxu_efficiency
            * self.eval_efficiency_factor
        )
        return self.spec.eval_examples * forward_flops / cluster

    def run(
        self,
        config: ParallelismConfig,
        mesh: TorusMesh | None = None,
    ) -> EndToEndResult:
        """Model a full MLPerf run under a parallelism config."""
        mesh = mesh if mesh is not None else slice_for_chips(config.num_chips)
        step_model = StepTimeModel(
            self.spec,
            config,
            mesh=mesh,
            mxu_efficiency=self.mxu_efficiency,
            step_overhead=self.step_overhead,
        )
        breakdown = step_model.breakdown()
        steps = self.convergence.steps_to_converge(config.global_batch)
        num_evals = self._num_evals(config.global_batch)
        per_eval = (
            self._eval_pass_seconds(mesh)
            + self.eval_overhead_seconds
            + self.framework.eval_metric_time(mesh.num_hosts, metric_bytes=8.0)
        )
        init = self.framework.init_time(mesh.num_hosts, self.graph_profile)
        return EndToEndResult(
            benchmark=self.spec.name,
            num_chips=config.num_chips,
            framework=self.framework.name,
            config=config,
            steps=steps,
            step=breakdown,
            num_evals=num_evals,
            eval_seconds=num_evals * per_eval,
            init_seconds=init,
        )

"""Convergence models: steps/epochs to the MLPerf quality target vs. batch.

Large-batch training needs more epochs past a critical batch size (Shallue
et al. 2018); the paper quantifies this for ResNet-50 — 44 epochs at batch
4K, 88 epochs at batch 64K (Section 5) — and relies on LAMB for BERT and a
fixed batch-2048 budget for Transformer.  We encode per-benchmark tables at
published batch sizes and log-interpolate between them; everything
downstream (end-to-end time, Figures 5/7 end-to-end speedups bending away
from the throughput curve) derives from these tables.
"""

from __future__ import annotations

import math

from repro.models.costspec import ModelCostSpec

#: Per-benchmark (global batch -> epochs to target).  ResNet anchors are
#: from the paper; others follow the public MLPerf v0.6/v0.7 submissions.
EPOCH_TABLES: dict[str, dict[int, float]] = {
    "resnet50": {
        256: 42.0,
        4096: 44.0,   # paper, Section 5
        8192: 47.0,
        16384: 52.0,
        32768: 64.0,
        65536: 88.0,  # paper, Section 5
    },
    "ssd": {
        1024: 49.0,
        2048: 54.0,   # MLPerf v0.6 submission batch
        4096: 64.0,   # v0.7 batch with retuned hyperparameters
    },
    "maskrcnn": {
        128: 24.0,    # v0.6 batch
        256: 26.0,    # v0.7 batch
    },
    "transformer": {
        2048: 3.0,    # fixed batch; epoch budget from WMT convergence
    },
    "dlrm": {
        65536: 0.95,  # converges in under one pass of Criteo-TB
    },
}

#: BERT convergence is step-based (the benchmark region is a fixed slice of
#: pre-training): global batch -> training samples (sequences) to target,
#: growing past the LAMB-friendly region.
BERT_SAMPLES_TABLE: dict[int, float] = {
    256: 3.0e6,
    1024: 3.2e6,
    4096: 4.0e6,
    8192: 5.0e6,
    16384: 7.2e6,
    32768: 11.0e6,
}


def _log_interpolate(table: dict[int, float], batch: int) -> float:
    """Piecewise log-linear interpolation, clamped at the table edges."""
    if not table:
        raise ValueError("empty convergence table")
    keys = sorted(table)
    if batch <= keys[0]:
        return table[keys[0]]
    if batch >= keys[-1]:
        return table[keys[-1]]
    for lo, hi in zip(keys, keys[1:]):
        if lo <= batch <= hi:
            frac = (math.log(batch) - math.log(lo)) / (math.log(hi) - math.log(lo))
            return table[lo] * (1 - frac) + table[hi] * frac
    raise AssertionError("unreachable")


class ConvergenceModel:
    """Steps/epochs to the quality target for one benchmark."""

    def __init__(self, spec: ModelCostSpec) -> None:
        self.spec = spec
        if spec.name != "bert" and spec.name not in EPOCH_TABLES:
            raise ValueError(f"no convergence table for {spec.name!r}")

    def epochs_to_converge(self, global_batch: int) -> float:
        if global_batch < 1:
            raise ValueError("global_batch must be >= 1")
        if self.spec.name == "bert":
            samples = _log_interpolate(BERT_SAMPLES_TABLE, global_batch)
            return samples / self.spec.dataset_examples
        return _log_interpolate(EPOCH_TABLES[self.spec.name], global_batch)

    def samples_to_converge(self, global_batch: int) -> float:
        if self.spec.name == "bert":
            return _log_interpolate(BERT_SAMPLES_TABLE, global_batch)
        return self.epochs_to_converge(global_batch) * self.spec.dataset_examples

    def steps_to_converge(self, global_batch: int) -> int:
        return max(1, math.ceil(self.samples_to_converge(global_batch) / global_batch))

"""Train/eval tight-loop simulation (Sections 3.4 and 4.6).

The paper's benchmarks run training and evaluation in a tight loop on the
accelerators; two host interactions can poison it:

* the input pipeline failing to keep the prefetch buffer ahead of the
  device (Section 3.5), and
* per-eval-step host round trips — DLRM's inference step is so short that
  transferring predictions to the host each step is "an unacceptable
  overhead", fixed by accumulating multiple eval steps on device and
  transferring once (Section 4.6).

:func:`simulate_train_eval_loop` runs the loop on the discrete-event
simulator with a host producer, a bounded prefetch buffer, and an eval
schedule, emitting a :class:`~repro.sim.trace.Trace` for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import Simulator
from repro.sim.resources import Store
from repro.sim.trace import Trace


@dataclass(frozen=True)
class LoopResult:
    """Timing summary of a simulated train/eval loop."""

    total_seconds: float
    train_seconds: float
    eval_seconds: float
    host_sync_seconds: float
    stall_seconds: float
    trace: Trace

    @property
    def eval_overhead_fraction(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return (self.eval_seconds + self.host_sync_seconds) / self.total_seconds


def simulate_train_eval_loop(
    *,
    train_steps: int,
    device_step_seconds: float,
    infeed_seconds_per_batch: float,
    eval_interval_steps: int,
    eval_steps_per_pass: int,
    eval_step_seconds: float,
    host_roundtrip_seconds: float,
    accumulate_eval_on_device: bool = True,
    prefetch_batches: int = 4,
) -> LoopResult:
    """Simulate ``train_steps`` of training with periodic eval passes.

    ``accumulate_eval_on_device`` selects between one host round trip per
    eval *pass* (the paper's optimization) and one per eval *step* (the
    naive implementation).
    """
    if train_steps < 1 or eval_interval_steps < 1 or eval_steps_per_pass < 0:
        raise ValueError("step counts must be positive")
    if min(device_step_seconds, eval_step_seconds) <= 0:
        raise ValueError("step durations must be positive")
    sim = Simulator()
    trace = Trace()
    buffer = Store(sim, capacity=max(1, prefetch_batches))
    totals = {"train": 0.0, "eval": 0.0, "host": 0.0, "stall": 0.0, "end": 0.0}

    def host():
        for i in range(train_steps):
            start = sim.now
            yield sim.timeout(infeed_seconds_per_batch)
            trace.record("host", f"batch{i}", start, sim.now - start, "infeed")
            yield buffer.put(i)

    def device():
        for step in range(train_steps):
            wait_start = sim.now
            yield buffer.get()
            totals["stall"] += sim.now - wait_start
            start = sim.now
            yield sim.timeout(device_step_seconds)
            totals["train"] += sim.now - start
            trace.record("device", f"train{step}", start, sim.now - start, "train")
            if (step + 1) % eval_interval_steps == 0 and eval_steps_per_pass:
                yield from _eval_pass(step)
        totals["end"] = sim.now

    def _eval_pass(step):
        for es in range(eval_steps_per_pass):
            start = sim.now
            yield sim.timeout(eval_step_seconds)
            totals["eval"] += sim.now - start
            trace.record("device", f"eval{step}.{es}", start, sim.now - start, "eval")
            if not accumulate_eval_on_device:
                start = sim.now
                yield sim.timeout(host_roundtrip_seconds)
                totals["host"] += sim.now - start
                trace.record("device", "host_sync", start, sim.now - start, "host")
        if accumulate_eval_on_device:
            start = sim.now
            yield sim.timeout(host_roundtrip_seconds)
            totals["host"] += sim.now - start
            trace.record("device", "host_sync", start, sim.now - start, "host")

    sim.process(host(), name="host")
    sim.process(device(), name="device")
    sim.run()
    return LoopResult(
        total_seconds=totals["end"],
        train_seconds=totals["train"],
        eval_seconds=totals["eval"],
        host_sync_seconds=totals["host"],
        stall_seconds=totals["stall"],
        trace=trace,
    )


def dlrm_eval_accumulation_ablation(
    *,
    train_steps: int = 400,
    eval_interval_steps: int = 100,
    eval_steps_per_pass: int = 40,
    device_step_seconds: float = 1.4e-3,
    eval_step_seconds: float = 5.0e-4,
    host_roundtrip_seconds: float = 2.0e-3,
) -> tuple[LoopResult, LoopResult]:
    """The Section 4.6 claim: accumulate eval steps on device.

    Returns ``(per_step_transfer, accumulated)`` loop results with DLRM-like
    timings (ms-scale steps, PCIe+gather round trips larger than an eval
    step).
    """
    common = dict(
        train_steps=train_steps,
        device_step_seconds=device_step_seconds,
        infeed_seconds_per_batch=device_step_seconds * 0.5,
        eval_interval_steps=eval_interval_steps,
        eval_steps_per_pass=eval_steps_per_pass,
        eval_step_seconds=eval_step_seconds,
        host_roundtrip_seconds=host_roundtrip_seconds,
    )
    naive = simulate_train_eval_loop(accumulate_eval_on_device=False, **common)
    optimized = simulate_train_eval_loop(accumulate_eval_on_device=True, **common)
    return naive, optimized

"""The paper's contribution: scalability techniques and scaling models.

Functional layer (actually trains numpy models, used by the equivalence
tests and examples):

* :mod:`repro.core.data_parallel` — synchronous data-parallel training with
  ring / 2-D hierarchical gradient summation.
* :mod:`repro.core.weight_update_sharding` — Section 3.2: reduce-scatter
  gradients, shard the optimizer update (with distributed trust-ratio
  norms for LARS/LAMB), all-gather updated weights.
* :mod:`repro.core.model_parallel` — Section 3.1's feature-dimension
  sharding (Mesh-TensorFlow style) and hybrid data x model parallelism with
  peer gradient reduction (Figure 4).
* :mod:`repro.core.trainer` — the unified construction surface:
  :class:`TrainerConfig` + :func:`make_trainer` build any of the above,
  and every ``step`` returns a :class:`StepResult`.

Analytic layer (regenerates the paper's evaluation):

* :mod:`repro.core.strategy` — parallelism configuration.
* :mod:`repro.core.step_time` — per-step compute/communication/update model.
* :mod:`repro.core.overlap` — backprop-overlapped bucketed gradient
  collectives: overlap-aware step time, exposed-comm accounting, and the
  bucket-size trade-off.
* :mod:`repro.core.convergence` — steps-to-accuracy vs. batch size.
* :mod:`repro.core.end_to_end` — MLPerf end-to-end time (init + train +
  eval) model.
* :mod:`repro.core.planner` — picks the best parallelism for a model on a
  slice, reproducing the paper's per-benchmark choices.
"""

from repro.core.trainer import (
    STRATEGIES,
    StepResult,
    Trainer,
    TrainerConfig,
    make_trainer,
)
from repro.core.overlap import (
    OverlapResult,
    analytic_overlap,
    measured_overlap,
    simulate_overlap_schedule,
)
from repro.core.data_parallel import (
    SingleDeviceTrainer,
    DataParallelTrainer,
)
from repro.core.weight_update_sharding import (
    shard_states,
    sharded_update,
    WeightUpdateShardedTrainer,
)
from repro.core.model_parallel import (
    FeatureShardedMLP,
    HybridParallelTrainer,
)
from repro.core.strategy import ParallelismConfig
from repro.core.step_time import StepTimeBreakdown, StepTimeModel
from repro.core.convergence import ConvergenceModel, EPOCH_TABLES
from repro.core.end_to_end import EndToEndModel, EndToEndResult
from repro.core.planner import plan_parallelism, PlanChoice
from repro.core.batchnorm import (
    local_batch_norm,
    distributed_batch_norm,
    batch_norm_group_cost,
)
from repro.core.memory import MemoryModel, MemoryFootprint
from repro.core.loop import (
    LoopResult,
    simulate_train_eval_loop,
    dlrm_eval_accumulation_ablation,
)

__all__ = [
    "STRATEGIES",
    "StepResult",
    "Trainer",
    "TrainerConfig",
    "make_trainer",
    "OverlapResult",
    "analytic_overlap",
    "measured_overlap",
    "simulate_overlap_schedule",
    "SingleDeviceTrainer",
    "DataParallelTrainer",
    "shard_states",
    "sharded_update",
    "WeightUpdateShardedTrainer",
    "FeatureShardedMLP",
    "HybridParallelTrainer",
    "ParallelismConfig",
    "StepTimeBreakdown",
    "StepTimeModel",
    "ConvergenceModel",
    "EPOCH_TABLES",
    "EndToEndModel",
    "EndToEndResult",
    "plan_parallelism",
    "PlanChoice",
    "local_batch_norm",
    "distributed_batch_norm",
    "batch_norm_group_cost",
    "MemoryModel",
    "MemoryFootprint",
    "LoopResult",
    "simulate_train_eval_loop",
    "dlrm_eval_accumulation_ablation",
]

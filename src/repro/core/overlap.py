"""Backprop-overlapped bucketed gradient collectives (the overlap engine).

The paper's multipod step time is dominated by the 2-D hierarchical
gradient summation (Section 3.3); at 4096 chips the standard way to keep
scaling is to hide that communication behind the backward pass, as in
Horovod's tensor fusion and PyTorch DDP's gradient buckets.  This module
models that schedule:

* the backward pass is a timeline of per-layer slices (derived from each
  model's cost spec — FLOPs fractions stand in for both backward time and
  gradient bytes produced, a documented proxy);
* gradients are grouped into buckets; each bucket's collective launches
  as soon as its last gradient is produced;
* all collectives share one serialized reduce network, modeled as a
  :class:`~repro.sim.resources.Channel` with FIFO admission, so a bucket
  whose predecessor is still on the wire queues behind it.

The output is :class:`OverlapResult`: overlap-aware step time, the
**exposed** communication (the tail that sticks out past the end of
backprop), and the overlap efficiency.  Two invariants hold by
construction and are pinned by the tests:

* ``step_seconds <= serial_step_seconds`` — a FIFO link that starts each
  transfer no later than "after backprop finishes" can never finish
  later than the serial schedule;
* equality holds exactly when there is nothing to hide: communication is
  zero, or every bucket only becomes ready at the very end of the
  backward pass (the single-bucket case).

The engine only models *time*; the arithmetic of the functional trainers
is untouched by ``overlap=True`` (same collectives, same order), which is
why overlap mode is bit-identical to eager mode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.sim.engine import Simulator
from repro.sim.resources import Channel
from repro.sim.trace import Trace

#: Share of forward+backward compute spent in the backward pass.  The
#: backward pass does roughly twice the forward work (grad wrt activations
#: and wrt weights), hence 2/3 of the fused forward_backward time.
DEFAULT_BACKWARD_FRACTION = 2.0 / 3.0

#: Backward-timeline granularity when a model spec carries no per-layer
#: profile: the pass is split into this many equal slices.
DEFAULT_SEGMENTS = 8


@dataclass(frozen=True)
class OverlapResult:
    """Timing of one backprop-overlapped step.

    ``bucket_ready_s[i]`` is when bucket ``i``'s last gradient is produced
    (launch order — bucket 0 holds the deepest layers and is ready first);
    ``bucket_comm_s[i]`` its collective's occupancy on the reduce network.
    ``exposed_comm_seconds`` is the communication tail past the end of
    compute — the only part of the all-reduce a serial model should still
    charge the step for.
    """

    num_buckets: int
    compute_seconds: float
    comm_seconds: float
    step_seconds: float
    exposed_comm_seconds: float
    bucket_bytes: tuple[float, ...]
    bucket_ready_s: tuple[float, ...]
    bucket_comm_s: tuple[float, ...]
    trace: Trace

    @property
    def hidden_comm_seconds(self) -> float:
        """Communication overlapped with (hidden behind) the backward pass."""
        return self.comm_seconds - self.exposed_comm_seconds

    @property
    def serial_step_seconds(self) -> float:
        """The no-overlap schedule: compute, then every collective in turn."""
        return self.compute_seconds + self.comm_seconds

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of communication hidden; 1.0 when there is none to hide."""
        if self.comm_seconds <= 0.0:
            return 1.0
        return self.hidden_comm_seconds / self.comm_seconds

    @property
    def speedup_vs_serial(self) -> float:
        if self.step_seconds <= 0.0:
            return 1.0
        return self.serial_step_seconds / self.step_seconds


def simulate_overlap_schedule(
    bucket_ready_s: Sequence[float],
    bucket_comm_s: Sequence[float],
    compute_end_s: float,
    *,
    bucket_bytes: Sequence[float] | None = None,
) -> OverlapResult:
    """Run the bucket collectives against the backward timeline on the DES.

    Each bucket launches at its ready time onto a single serialized
    reduce-network :class:`Channel` (unit bandwidth, so a transfer of
    ``t`` occupies exactly the modeled collective seconds ``t``); FIFO
    admission makes a late bucket queue behind an earlier long one.  Ready
    times later than ``compute_end_s`` are clamped to it — a gradient
    cannot appear after the backward pass that produces it has ended.
    """
    if len(bucket_ready_s) != len(bucket_comm_s):
        raise ValueError("ready and comm lists must have equal length")
    if compute_end_s < 0.0:
        raise ValueError("compute_end_s must be non-negative")
    ready = [min(max(0.0, r), compute_end_s) for r in bucket_ready_s]
    comm = [float(c) for c in bucket_comm_s]
    if any(c < 0.0 for c in comm):
        raise ValueError("bucket comm times must be non-negative")
    nbytes = (
        tuple(float(b) for b in bucket_bytes)
        if bucket_bytes is not None
        else tuple(0.0 for _ in comm)
    )
    if len(nbytes) != len(comm):
        raise ValueError("bucket_bytes must match the bucket count")

    sim = Simulator()
    trace = Trace()
    trace.record("mxu", "forward_backward", 0.0, compute_end_s, "compute")
    link = Channel(
        sim, bandwidth=1.0, name="reduce_network", trace=trace, actor="ici"
    )
    finish = [0.0] * len(comm)

    def bucket_process(i: int):
        if ready[i] > 0.0:
            yield sim.timeout(ready[i])
        if comm[i] > 0.0:
            yield from link.transfer(comm[i], label=f"bucket{i}")
        finish[i] = sim.now

    for i in range(len(comm)):
        sim.process(bucket_process(i), name=f"bucket{i}")
    sim.run()

    comm_total = sum(comm)
    comm_end = max(finish, default=0.0)
    step = max(compute_end_s, comm_end)
    # The tail cannot logically exceed the total wire time; the upper clamp
    # only absorbs float round-off from summing simulated event times.
    exposed = min(max(0.0, comm_end - compute_end_s), comm_total)
    return OverlapResult(
        num_buckets=len(comm),
        compute_seconds=compute_end_s,
        comm_seconds=comm_total,
        step_seconds=step,
        exposed_comm_seconds=exposed,
        bucket_bytes=nbytes,
        bucket_ready_s=tuple(ready),
        bucket_comm_s=tuple(comm),
        trace=trace,
    )


def layer_backward_fractions(spec) -> tuple[float, ...]:
    """Backward-order slice fractions of a model's backward pass.

    Uses the cost spec's per-layer FLOPs profile, reversed (backprop visits
    the last layer first) and normalized; FLOPs share is the proxy for both
    a slice's backward *time* and its share of produced gradient *bytes*
    (the specs carry no per-layer parameter counts).  Specs without a layer
    profile fall back to :data:`DEFAULT_SEGMENTS` uniform slices.
    """
    layers = getattr(spec, "layers", ())
    fractions = [layer.flops_fraction for layer in layers if layer.flops_fraction > 0]
    if not fractions:
        return tuple(1.0 / DEFAULT_SEGMENTS for _ in range(DEFAULT_SEGMENTS))
    total = sum(fractions)
    return tuple(f / total for f in reversed(fractions))


def bucket_ready_times(
    fractions: Sequence[float],
    backward_seconds: float,
    head_seconds: float,
    num_buckets: int,
) -> list[float]:
    """Ready time of each equal-byte bucket along the backward timeline.

    Gradient bytes are produced proportionally to the slice fractions; the
    cumulative byte curve is piecewise linear in time, and bucket ``k`` is
    ready when the cumulative share reaches ``(k + 1) / num_buckets``.
    ``head_seconds`` (the forward pass) offsets the whole timeline.
    """
    if num_buckets < 1:
        raise ValueError("num_buckets must be >= 1")
    total = sum(fractions)
    if total <= 0.0:
        raise ValueError("fractions must sum to a positive value")
    ready = []
    targets = [(k + 1) / num_buckets for k in range(num_buckets)]
    cum_frac = 0.0
    cum_time = 0.0
    t_idx = 0
    for frac in fractions:
        slice_time = backward_seconds * (frac / total)
        while t_idx < num_buckets and targets[t_idx] <= cum_frac + frac / total + 1e-15:
            # Linear interpolation inside this slice.
            within = targets[t_idx] - cum_frac
            share = min(1.0, within / (frac / total)) if frac > 0 else 1.0
            ready.append(head_seconds + cum_time + share * slice_time)
            t_idx += 1
        cum_frac += frac / total
        cum_time += slice_time
    while t_idx < num_buckets:  # float-roundoff stragglers land at the end
        ready.append(head_seconds + backward_seconds)
        t_idx += 1
    return ready


def analytic_overlap(
    *,
    fractions: Sequence[float],
    compute_seconds: float,
    grad_bytes: float,
    num_buckets: int,
    comm_alpha: float,
    comm_bytes_per_second: float,
    backward_fraction: float = DEFAULT_BACKWARD_FRACTION,
) -> OverlapResult:
    """Overlap-aware step time from the alpha-beta collective model.

    ``comm_alpha`` is the fixed per-launch cost of one fused all-reduce
    (latency chains of every ring phase); ``comm_bytes_per_second`` its
    inverse slope — both from
    :func:`repro.comm.allreduce.allreduce_launch_params`, so a single
    bucket costs *exactly* what the unbucketed cost model charges.  The
    gradient stream is split into ``num_buckets`` equal-byte windows: more
    buckets expose less tail but pay ``alpha`` once per launch — the
    bucket-size trade-off curve.
    """
    if num_buckets < 1:
        raise ValueError("num_buckets must be >= 1")
    if not 0.0 < backward_fraction <= 1.0:
        raise ValueError("backward_fraction must be in (0, 1]")
    if grad_bytes < 0.0:
        raise ValueError("grad_bytes must be non-negative")
    backward = compute_seconds * backward_fraction
    head = compute_seconds - backward
    per_bucket_bytes = grad_bytes / num_buckets
    comm = [
        comm_alpha + (per_bucket_bytes / comm_bytes_per_second
                      if math.isfinite(comm_bytes_per_second) else 0.0)
        for _ in range(num_buckets)
    ]
    ready = bucket_ready_times(fractions, backward, head, num_buckets)
    result = simulate_overlap_schedule(
        ready, comm, compute_seconds,
        bucket_bytes=[per_bucket_bytes] * num_buckets,
    )
    # Annotate the compute timeline with the per-layer backward slices so the
    # merged chrome trace shows what each collective overlapped with.
    total = sum(fractions)
    t = head
    for i, frac in enumerate(fractions):
        dur = backward * (frac / total)
        result.trace.record("mxu", f"backward_slice{i}", t, dur, "compute")
        t += dur
    return result


def measured_overlap(
    *,
    forward_backward_seconds: float,
    bucket_ready_fractions: Sequence[float],
    bucket_comm_s: Sequence[float],
    bucket_bytes: Sequence[float] | None = None,
    backward_fraction: float = DEFAULT_BACKWARD_FRACTION,
) -> OverlapResult:
    """Overlap timeline for a *measured* functional-trainer step.

    The trainers execute eagerly (gradients first, then collectives) but
    model what the concurrent schedule would have cost:
    ``bucket_ready_fractions[i]`` is the cumulative share of gradient
    elements produced once bucket ``i`` is complete (element count stands
    in for backward time), and ``bucket_comm_s`` the measured wall seconds
    of each bucket's collective.
    """
    fb = forward_backward_seconds
    backward = fb * backward_fraction
    head = fb - backward
    ready = [head + backward * f for f in bucket_ready_fractions]
    return simulate_overlap_schedule(
        ready, bucket_comm_s, fb, bucket_bytes=bucket_bytes
    )

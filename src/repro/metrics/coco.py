"""COCO-eval scheduling: coordinator vs round-robin workers (§4.4).

COCO mAP evaluation is a CPU-heavy job (tens of seconds).  TF SSD brings
all predictions to the coordinator, which runs *every* eval — they queue up
behind each other.  JAX has no coordinator, so eval ``i`` runs on worker
``i mod num_workers``: consecutive evals overlap on different hosts.  This
module computes both schedules' completion times.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CocoEvalSchedule:
    """Completion times of each eval relative to its trigger time."""

    label: str
    trigger_times: tuple[float, ...]
    completion_times: tuple[float, ...]

    @property
    def latencies(self) -> tuple[float, ...]:
        return tuple(
            c - t for c, t in zip(self.completion_times, self.trigger_times)
        )

    @property
    def max_latency(self) -> float:
        return max(self.latencies)

    @property
    def final_completion(self) -> float:
        return max(self.completion_times)


def _validate(trigger_times: list[float], eval_seconds: float) -> None:
    if eval_seconds <= 0:
        raise ValueError("eval_seconds must be positive")
    if sorted(trigger_times) != list(trigger_times):
        raise ValueError("trigger_times must be sorted")
    if not trigger_times:
        raise ValueError("need at least one eval")


def coordinator_eval_schedule(
    trigger_times: list[float], eval_seconds: float
) -> CocoEvalSchedule:
    """All evals queue on the single coordinator host (TF path)."""
    _validate(trigger_times, eval_seconds)
    completions = []
    free_at = 0.0
    for t in trigger_times:
        start = max(t, free_at)
        free_at = start + eval_seconds
        completions.append(free_at)
    return CocoEvalSchedule("coordinator", tuple(trigger_times), tuple(completions))


def round_robin_eval_schedule(
    trigger_times: list[float], eval_seconds: float, num_workers: int
) -> CocoEvalSchedule:
    """Eval i runs on worker ``i mod num_workers`` (JAX path)."""
    _validate(trigger_times, eval_seconds)
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    free_at = [0.0] * num_workers
    completions = []
    for i, t in enumerate(trigger_times):
        w = i % num_workers
        start = max(t, free_at[w])
        free_at[w] = start + eval_seconds
        completions.append(free_at[w])
    return CocoEvalSchedule("round_robin", tuple(trigger_times), tuple(completions))

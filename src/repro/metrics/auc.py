"""ROC-AUC implementations (§4.6).

The DLRM eval metric is AUC over 89M predictions.  The paper replaced
60-second library calls with a 2-second custom implementation built on
multithreaded sorting and loop fusion; the numpy equivalent here is
:func:`auc_sorted` — one sort plus fused vector ops.  :func:`auc_naive` is
the O(n^2) pairwise definition (the correctness oracle), and
:func:`auc_binned` the histogram approximation big eval systems sometimes
accept.
"""

from __future__ import annotations

import numpy as np


def _validate(scores: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    if scores.shape != labels.shape or scores.ndim != 1:
        raise ValueError("scores and labels must be equal-length 1-D arrays")
    if not np.isin(labels, (0, 1)).all():
        raise ValueError("labels must be binary (0/1)")
    pos = int(labels.sum())
    if pos == 0 or pos == len(labels):
        raise ValueError("AUC undefined with a single class")
    return scores, labels.astype(bool)


def auc_naive(scores: np.ndarray, labels: np.ndarray) -> float:
    """The pairwise definition: P(score_pos > score_neg) + 0.5 ties.

    Quadratic — usable only on small arrays; the tests use it as ground
    truth for :func:`auc_sorted`.
    """
    scores, labels = _validate(scores, labels)
    pos = scores[labels]
    neg = scores[~labels]
    wins = 0.0
    for p in pos:
        wins += np.sum(p > neg) + 0.5 * np.sum(p == neg)
    return float(wins / (len(pos) * len(neg)))


def auc_sorted(scores: np.ndarray, labels: np.ndarray) -> float:
    """Sort-based AUC (Mann-Whitney U), exact including ties.

    One argsort + fused vector arithmetic — the numpy analogue of the
    paper's multithreaded-sort C++ implementation.
    """
    scores, labels = _validate(scores, labels)
    order = np.argsort(scores, kind="mergesort")
    sorted_scores = scores[order]
    sorted_labels = labels[order]
    # Midranks (average rank within tied groups), fully vectorized: assign
    # each element its tie-group id, then the group's mean 1-based rank.
    n = len(scores)
    group = np.concatenate([[0], np.cumsum(np.diff(sorted_scores) != 0)])
    counts = np.bincount(group)
    ends = np.cumsum(counts)          # 1-based last rank of each group
    starts = ends - counts + 1        # 1-based first rank of each group
    midranks = 0.5 * (starts + ends)
    ranks = midranks[group]
    n_pos = int(sorted_labels.sum())
    n_neg = n - n_pos
    rank_sum_pos = float(ranks[sorted_labels].sum())
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def auc_binned(
    scores: np.ndarray, labels: np.ndarray, num_bins: int = 10_000
) -> float:
    """Histogram-approximate AUC: O(n) with bounded bin error.

    Bins scores, accumulates per-bin positive/negative counts, and applies
    the midrank formula on bins.  Error is bounded by within-bin ordering.
    """
    scores, labels = _validate(scores, labels)
    if num_bins < 2:
        raise ValueError("num_bins must be >= 2")
    lo, hi = float(scores.min()), float(scores.max())
    if hi == lo:
        return 0.5
    idx = np.minimum(((scores - lo) / (hi - lo) * num_bins).astype(np.int64),
                     num_bins - 1)
    pos_hist = np.bincount(idx[labels], minlength=num_bins).astype(np.float64)
    neg_hist = np.bincount(idx[~labels], minlength=num_bins).astype(np.float64)
    neg_below = np.concatenate([[0.0], np.cumsum(neg_hist)[:-1]])
    wins = float(np.sum(pos_hist * (neg_below + 0.5 * neg_hist)))
    return wins / (pos_hist.sum() * neg_hist.sum())


def synthetic_pctr(
    rng: np.random.Generator, n: int, auc_target: float = 0.80
) -> tuple[np.ndarray, np.ndarray]:
    """A synthetic pCTR score/label set with roughly the requested AUC.

    Positives draw scores from a shifted normal; the shift controls the
    separability (and therefore the AUC).
    """
    if n < 4:
        raise ValueError("need at least 4 samples")
    if not 0.5 < auc_target < 1.0:
        raise ValueError("auc_target must be in (0.5, 1)")
    from scipy.special import ndtri  # inverse normal CDF

    shift = float(ndtri(auc_target)) * np.sqrt(2.0)
    labels = (rng.random(n) < 0.25).astype(np.int8)  # ~25% CTR-ish positives
    # Guarantee both classes exist.
    labels[0], labels[1] = 0, 1
    scores = rng.standard_normal(n) + shift * labels
    return scores, labels

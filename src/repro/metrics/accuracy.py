"""Distributed evaluation metrics (§3.4).

When the eval batch (replicas x per-core batch) exceeds the eval set, the
dataset is **padded with dummy examples** that must not count.  The metric
itself is then computed two ways, matching the paper's frameworks:

* **JAX path** — each device reduces its own (correct, valid) counts and a
  global all-reduce (run here with the *real* functional collective)
  produces the metric on every device;
* **TF path** — per-host counts are gathered to the coordinator, which
  divides.  Numerically identical; the difference is where the reduction
  happens (host RPCs vs the TPU network), which the framework models cost.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.collectives import ring_all_reduce


def pad_eval_dataset(
    examples: np.ndarray, labels: np.ndarray, total_size: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pad an eval set to ``total_size`` with dummy rows and a valid mask."""
    n = examples.shape[0]
    if labels.shape[0] != n:
        raise ValueError("examples and labels disagree on size")
    if total_size < n:
        raise ValueError(f"total_size {total_size} < dataset size {n}")
    pad = total_size - n
    if pad == 0:
        return examples, labels, np.ones(n, dtype=bool)
    ex_pad = np.concatenate([examples, np.zeros((pad,) + examples.shape[1:], examples.dtype)])
    lb_pad = np.concatenate([labels, np.zeros(pad, labels.dtype)])
    mask = np.concatenate([np.ones(n, dtype=bool), np.zeros(pad, dtype=bool)])
    return ex_pad, lb_pad, mask


def _shard_counts(
    predictions: list[np.ndarray],
    labels: list[np.ndarray],
    masks: list[np.ndarray],
) -> list[np.ndarray]:
    counts = []
    for pred, lab, mask in zip(predictions, labels, masks):
        if not (pred.shape == lab.shape == mask.shape):
            raise ValueError("shard shapes disagree")
        correct = float(np.sum((pred == lab) & mask))
        valid = float(np.sum(mask))
        counts.append(np.array([correct, valid], dtype=np.float64))
    return counts


def distributed_top1_accuracy(
    predictions: list[np.ndarray],
    labels: list[np.ndarray],
    masks: list[np.ndarray],
) -> float:
    """JAX-style: all-reduce (correct, valid) counts across devices."""
    counts = _shard_counts(predictions, labels, masks)
    reduced = ring_all_reduce(counts, "f64")[0]
    if reduced[1] == 0:
        raise ValueError("no valid eval examples")
    return float(reduced[0] / reduced[1])


def coordinator_top1_accuracy(
    predictions: list[np.ndarray],
    labels: list[np.ndarray],
    masks: list[np.ndarray],
) -> float:
    """TF-style: gather per-device counts to the coordinator, then divide."""
    counts = _shard_counts(predictions, labels, masks)
    gathered = np.stack(counts)  # the host RPC gather
    correct, valid = gathered.sum(axis=0)
    if valid == 0:
        raise ValueError("no valid eval examples")
    return float(correct / valid)

"""Evaluation metrics: distributed accuracy, fast AUC, COCO-eval scheduling."""

from repro.metrics.accuracy import (
    distributed_top1_accuracy,
    coordinator_top1_accuracy,
    pad_eval_dataset,
)
from repro.metrics.auc import auc_naive, auc_sorted, auc_binned
from repro.metrics.coco import (
    CocoEvalSchedule,
    coordinator_eval_schedule,
    round_robin_eval_schedule,
)

__all__ = [
    "distributed_top1_accuracy",
    "coordinator_top1_accuracy",
    "pad_eval_dataset",
    "auc_naive",
    "auc_sorted",
    "auc_binned",
    "CocoEvalSchedule",
    "coordinator_eval_schedule",
    "round_robin_eval_schedule",
]

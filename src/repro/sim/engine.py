"""Core discrete-event loop: events, processes, and the simulator clock.

The design follows SimPy's proven architecture — an event heap ordered by
(time, priority, sequence), generator-based processes that yield events —
but is deliberately small: only the features the repro needs (timeouts,
process joins, AllOf/AnyOf, resources, stores) are implemented, with
deterministic FIFO ordering everywhere so simulations are reproducible.
"""

from __future__ import annotations

import heapq
import logging
from typing import Any, Callable, Generator, Iterable

logger = logging.getLogger("repro.sim")

#: Yield type of a simulation process.
ProcessGenerator = Generator["Event", Any, Any]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation API (e.g. re-triggering events)."""


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* with a value (or an exception); callbacks added
    before triggering run when the event fires, in FIFO order.

    A failed event is *defused* once its exception is delivered somewhere
    that can handle it (thrown into a waiting process, or absorbed into a
    failing AllOf/AnyOf).  Failed events that are still undefused when
    processed re-raise from :meth:`Simulator.run` — a process crash cannot
    be silently swallowed just because nobody joined on it.
    """

    __slots__ = (
        "sim", "callbacks", "_value", "_exception", "_triggered", "_processed",
        "_defused",
    )

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._exception: BaseException | None = None
        self._triggered = False
        self._processed = False
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully; schedules callbacks at `now`."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception (delivered into waiters)."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._triggered = True
        self._exception = exception
        self.sim._schedule(self, delay=0.0)
        return self


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim._schedule(self, delay=delay)


class Process(Event):
    """A running generator; also an event that fires when it returns."""

    __slots__ = ("generator", "name", "_target")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = "") -> None:
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = None
        # Bootstrap: resume the generator at the current time.
        init = Timeout(sim, 0.0)
        init.callbacks.append(self._resume)

    def _resume(self, event: Event) -> None:
        self._target = None
        try:
            if event._exception is not None:
                # The exception is delivered into this generator; whether it
                # handles or re-raises, the source event is accounted for.
                event._defused = True
                next_event = self.generator.throw(event._exception)
            else:
                next_event = self.generator.send(event._value)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        except Exception as exc:
            # The process crashed: fail its event so joiners receive the
            # exception.  If nobody joins, Simulator.run() re-raises it.
            if not self._triggered:
                self.fail(exc)
            return
        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {next_event!r}, expected an Event"
            )
        if next_event is self:
            raise SimulationError(f"process {self.name!r} waited on itself")
        self._target = next_event
        if next_event._processed:
            # Already fired and processed: resume immediately at `now`.
            resume = Timeout(self.sim, 0.0, value=next_event._value)
            resume._exception = next_event._exception
            resume.callbacks.append(self._resume)
        else:
            next_event.callbacks.append(self._resume)


class AllOf(Event):
    """Fires when all child events have fired; value is a list of values."""

    __slots__ = ("_pending", "_events")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.succeed([])
            return
        for ev in self._events:
            if ev._processed:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            # A late child failure after this condition already triggered is
            # NOT absorbed: it stays undefused and surfaces from run().
            return
        if event._exception is not None:
            event._defused = True  # the condition now carries the failure
            self.fail(event._exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([ev._value for ev in self._events])


class AnyOf(Event):
    """Fires when the first child event fires; value is that event's value."""

    __slots__ = ("_events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf needs at least one event")
        for ev in self._events:
            if ev._processed:
                self._on_child(ev)
                break
            ev.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            # Late losers of the race are not absorbed; a failing one stays
            # undefused and surfaces from run().
            return
        if event._exception is not None:
            event._defused = True  # the condition now carries the failure
            self.fail(event._exception)
        else:
            self.succeed(event._value)


class Simulator:
    """The event loop: a clock plus a heap of scheduled events."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def _schedule(self, event: Event, delay: float) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))

    # --- public API ---------------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event (trigger it with ``succeed``/``fail``)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a generator as a concurrent process."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def run(self, until: float | None = None) -> float:
        """Process events until the heap is empty (or the time horizon).

        Returns the final simulation time.  Exceptions raised inside
        processes propagate to the caller unless some process handles them:
        a failed event that no callback *defused* (threw into a waiting
        generator or absorbed into a failing condition) re-raises here,
        with the failing process named — a crash in a process nobody joins
        on must not be silently swallowed.
        """
        while self._heap:
            t, _, event = self._heap[0]
            if until is not None and t > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = t
            callbacks, event.callbacks = event.callbacks, []
            event._processed = True
            for cb in callbacks:
                cb(event)
            if event._exception is not None and not event._defused:
                # Nobody handled the failure: surface the error.
                exc = event._exception
                if isinstance(event, Process):
                    where = f"unhandled failure in process {event.name!r} at t={t:g}"
                else:
                    where = f"unhandled failure in {type(event).__name__} at t={t:g}"
                logger.error("%s: %r", where, exc)
                if hasattr(exc, "add_note"):  # py3.11+
                    exc.add_note(where)
                # Deferred import: repro.sim must stay importable standalone.
                from repro.telemetry import on_terminal_failure

                on_terminal_failure(exc, origin="sim.run", sim_time=t)
                raise exc
        if until is not None and until > self._now:
            self._now = until
        return self._now

"""Discrete-event simulation engine.

A small, dependency-free process-based simulator (in the style of SimPy)
used to model host input pipelines, link-level collective schedules, and
train/eval loops.  Processes are Python generators that yield events:

>>> from repro.sim import Simulator
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name):
...     yield sim.timeout(1.0)
...     log.append((sim.now, name))
>>> _ = sim.process(worker(sim, "a"))
>>> _ = sim.process(worker(sim, "b"))
>>> sim.run()
>>> log
[(1.0, 'a'), (1.0, 'b')]
"""

from repro.sim.engine import (
    Event,
    Process,
    Simulator,
    SimulationError,
    Timeout,
    AllOf,
    AnyOf,
)
from repro.sim.resources import Resource, Store, Channel
from repro.sim.trace import Trace, TraceEvent

__all__ = [
    "Event",
    "Process",
    "Simulator",
    "SimulationError",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Resource",
    "Store",
    "Channel",
    "Trace",
    "TraceEvent",
]

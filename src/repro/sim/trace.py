"""Execution traces: per-actor timelines shared by simulator and telemetry.

The same :class:`TraceEvent` schema carries *simulated* spans (emitted by
the discrete-event engine, ``source=""``/``"sim"``) and *measured* spans
(emitted by :class:`repro.telemetry.tracer.Tracer`, ``source="measured"``).
:meth:`Trace.merge` combines traces from different sources and
:meth:`Trace.to_chrome_trace` exports them to ``chrome://tracing`` JSON
with one process lane (``pid``) per source, so predicted and observed
timelines sit side by side in the viewer.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class TraceEvent:
    """One timed span on some actor's timeline.

    ``source`` tags where the event came from (e.g. ``"sim"`` vs
    ``"measured"``); events from different sources export to distinct
    Chrome-trace process lanes.
    """

    actor: str
    name: str
    start: float
    duration: float
    category: str = ""
    source: str = ""

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class Trace:
    """A collection of trace events with summary utilities."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(
        self,
        actor: str,
        name: str,
        start: float,
        duration: float,
        category: str = "",
        source: str = "",
    ) -> None:
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.events.append(TraceEvent(actor, name, start, duration, category, source))

    def merge(self, other: "Trace", source: str | None = None) -> "Trace":
        """Append another trace's events (in place) and return ``self``.

        ``source`` re-tags the incoming events, which is how a simulated
        and a measured trace get distinct Chrome-trace ``pid`` lanes::

            merged = Trace()
            merged.merge(sim_trace, source="sim")
            merged.merge(tracer.trace, source="measured")
        """
        if source is None:
            self.events.extend(other.events)
        else:
            self.events.extend(replace(e, source=source) for e in other.events)
        return self

    def busy_time(self, actor: str) -> float:
        """Busy seconds on one actor, counting overlapping spans **once**.

        Concurrent spans on the same actor (e.g. a parent span enclosing
        its children, or simultaneous channel transfers) are merged into
        disjoint intervals before summing, so the result never exceeds the
        trace span — a plain sum of durations would over-count overlap.
        """
        intervals = sorted(
            (e.start, e.end) for e in self.events if e.actor == actor
        )
        busy = 0.0
        cur_start: float | None = None
        cur_end = 0.0
        for start, end in intervals:
            if cur_start is None or start > cur_end:
                if cur_start is not None:
                    busy += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        if cur_start is not None:
            busy += cur_end - cur_start
        return busy

    def span(self) -> tuple[float, float]:
        """(earliest start, latest end) over all events."""
        if not self.events:
            return (0.0, 0.0)
        return (
            min(e.start for e in self.events),
            max(e.end for e in self.events),
        )

    def utilization(self, actor: str) -> float:
        """Busy fraction of the actor over the whole trace span."""
        start, end = self.span()
        total = end - start
        if total <= 0:
            return 0.0
        return self.busy_time(actor) / total

    def by_category(self) -> dict[str, float]:
        """Total time per category, summed over actors."""
        out: dict[str, float] = defaultdict(float)
        for e in self.events:
            out[e.category] += e.duration
        return dict(out)

    def actors(self) -> list[str]:
        return sorted({e.actor for e in self.events})

    def sources(self) -> list[str]:
        """Distinct event sources, unnamed (``""``) first, then sorted."""
        named = sorted({e.source for e in self.events if e.source})
        has_default = any(not e.source for e in self.events)
        return ([""] if has_default else []) + named

    def to_chrome_trace(self) -> list[dict]:
        """Events in Chrome ``chrome://tracing`` JSON format (microseconds).

        Each distinct event ``source`` gets its own ``pid`` (named via
        ``process_name`` metadata events), so merged simulated/measured
        traces render as separate process lanes; ``args`` carries the
        actor and category of every span.
        """
        sources = self.sources()
        pid_of = {src: i for i, src in enumerate(sources)}
        out: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": src or "trace"},
            }
            for src, pid in pid_of.items()
        ]
        for e in sorted(self.events, key=lambda e: e.start):
            out.append(
                {
                    "name": e.name,
                    "cat": e.category or "default",
                    "ph": "X",
                    "ts": e.start * 1e6,
                    "dur": e.duration * 1e6,
                    "pid": pid_of[e.source],
                    "tid": e.actor,
                    "args": {"actor": e.actor, "category": e.category},
                }
            )
        return out

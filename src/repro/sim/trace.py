"""Execution traces for simulations: per-actor timelines and summaries."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEvent:
    """One timed span on some actor's timeline."""

    actor: str
    name: str
    start: float
    duration: float
    category: str = ""

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class Trace:
    """A collection of trace events with summary utilities."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(
        self,
        actor: str,
        name: str,
        start: float,
        duration: float,
        category: str = "",
    ) -> None:
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.events.append(TraceEvent(actor, name, start, duration, category))

    def busy_time(self, actor: str) -> float:
        """Total busy seconds recorded on one actor (spans may not overlap)."""
        return sum(e.duration for e in self.events if e.actor == actor)

    def span(self) -> tuple[float, float]:
        """(earliest start, latest end) over all events."""
        if not self.events:
            return (0.0, 0.0)
        return (
            min(e.start for e in self.events),
            max(e.end for e in self.events),
        )

    def utilization(self, actor: str) -> float:
        """Busy fraction of the actor over the whole trace span."""
        start, end = self.span()
        total = end - start
        if total <= 0:
            return 0.0
        return self.busy_time(actor) / total

    def by_category(self) -> dict[str, float]:
        """Total time per category, summed over actors."""
        out: dict[str, float] = defaultdict(float)
        for e in self.events:
            out[e.category] += e.duration
        return dict(out)

    def actors(self) -> list[str]:
        return sorted({e.actor for e in self.events})

    def to_chrome_trace(self) -> list[dict]:
        """Events in Chrome ``chrome://tracing`` JSON format (microseconds)."""
        out = []
        for i, e in enumerate(sorted(self.events, key=lambda e: e.start)):
            out.append(
                {
                    "name": e.name,
                    "cat": e.category or "default",
                    "ph": "X",
                    "ts": e.start * 1e6,
                    "dur": e.duration * 1e6,
                    "pid": 0,
                    "tid": e.actor,
                    "args": {},
                }
            )
        return out

"""Shared resources for simulation processes: servers, queues, and links.

* :class:`Resource` — a counted server with FIFO admission (e.g. CPU cores
  of an input-pipeline host).
* :class:`Store` — a bounded producer/consumer queue (e.g. the prefetch
  buffer of Section 3.5).
* :class:`Channel` — a point-to-point link that serializes transfers at a
  fixed bandwidth with a per-message latency; the building block for
  link-level collective schedules.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.trace import Trace


class Resource:
    """A server pool with ``capacity`` concurrent slots and a FIFO queue.

    Usage inside a process::

        req = resource.acquire()
        yield req
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """An event that fires when a slot is granted to the caller."""
        ev = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return a slot; hands it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without matching acquire()")
        if self._waiters:
            # Slot moves directly to the next waiter; occupancy unchanged.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1

    def use(self, duration: float):
        """Process helper: acquire, hold for ``duration``, release."""
        req = self.acquire()
        yield req
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()


class Store:
    """A bounded FIFO queue of items with blocking put/get."""

    def __init__(self, sim: Simulator, capacity: float = float("inf")) -> None:
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def level(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """An event that fires once the item is in the store."""
        ev = self.sim.event()
        if self._getters:
            # Hand the item straight to a waiting consumer.
            self._getters.popleft().succeed(item)
            ev.succeed()
        elif len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """An event that fires with the oldest item as its value."""
        ev = self.sim.event()
        if self._items:
            item = self._items.popleft()
            if self._putters:
                put_ev, pending = self._putters.popleft()
                self._items.append(pending)
                put_ev.succeed()
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev


class Channel:
    """A directed link moving messages at ``bandwidth`` bytes/s.

    Transfers are serialized (the link is a single server); each transfer
    occupies the link for ``latency + nbytes / bandwidth`` seconds.  This is
    the standard alpha-beta link model used by the collective schedules.

    Pass ``trace=`` to record every transfer's occupancy window as a
    :class:`~repro.sim.trace.TraceEvent` (actor ``actor`` or the channel
    name), which is how the overlap engine exposes its modeled collective
    timeline to the chrome-trace report.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        latency: float = 0.0,
        name: str = "",
        trace: Trace | None = None,
        actor: str = "",
    ) -> None:
        if bandwidth <= 0:
            raise SimulationError("bandwidth must be positive")
        if latency < 0:
            raise SimulationError("latency must be non-negative")
        self.sim = sim
        self.bandwidth = bandwidth
        self.latency = latency
        self.name = name
        self.trace = trace
        self.actor = actor or name or "channel"
        self._server = Resource(sim, capacity=1)
        self.bytes_moved = 0.0
        self.busy_time = 0.0

    def transfer_time(self, nbytes: float, factor: float = 1.0) -> float:
        """Occupancy time of one transfer.

        ``factor`` scales the effective bandwidth (a degraded link runs at
        ``factor * bandwidth``); it must be positive — a fully down link is
        modeled by the retry logic of the fault-aware schedules, not here.
        """
        if factor <= 0:
            raise SimulationError("bandwidth factor must be positive")
        return self.latency + nbytes / (self.bandwidth * factor)

    def transfer(self, nbytes: float, factor: float = 1.0, label: str = ""):
        """Process helper: move ``nbytes`` over the link (FIFO-serialized)."""
        if nbytes < 0:
            raise SimulationError("transfer size must be non-negative")
        duration = self.transfer_time(nbytes, factor)
        req = self._server.acquire()
        yield req
        try:
            start = self.sim.now
            yield self.sim.timeout(duration)
            self.bytes_moved += nbytes
            self.busy_time += duration
            if self.trace is not None:
                self.trace.record(
                    self.actor, label or "transfer", start, duration, "comm"
                )
        finally:
            self._server.release()

    @property
    def queue_length(self) -> int:
        return self._server.queue_length

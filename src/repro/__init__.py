"""Reproduction of *Exploring the Limits of Concurrency in ML Training on
Google TPUs* (Kumar et al., MLSys 2021).

The package provides four layers:

``repro.hardware`` / ``repro.sim`` / ``repro.comm``
    A parameterized model of the TPU-v3 Multipod (a 128x32 2-D mesh of chips
    with torus wrap links on the Y edges and cross-pod optical links along X),
    a discrete-event simulator, and collective-communication algorithms with
    alpha-beta cost models validated against the simulator.

``repro.runtime`` / ``repro.spmd`` / ``repro.optim``
    A functional "virtual mesh" that executes the paper's collective and
    parallelism algorithms for real on numpy shards, an SPMD partitioner in
    the style of XLA's (spatial partitioning with halo exchange, feature
    sharding, weight-update sharding), and the LARS/LAMB large-batch
    optimizers.

``repro.core``
    The paper's contribution: parallelism strategies, the step-time and
    end-to-end-time models, convergence (steps-to-accuracy) models, and an
    automatic parallelism planner.

``repro.models`` / ``repro.frameworks`` / ``repro.input_pipeline`` /
``repro.metrics`` / ``repro.experiments``
    MLPerf v0.7 model cost specs, single-client (TF-like) vs. multi-client
    (JAX-like) framework models, host input-pipeline simulation, evaluation
    metrics, and the drivers that regenerate every table and figure of the
    paper's evaluation section.
"""

import logging

from repro._version import __version__

# Library logging convention: every package logs under the "repro." prefix
# (e.g. "repro.telemetry", "repro.runtime"); applications opt in with
# logging.basicConfig().  CLI entry points (the repro-experiments /
# repro-telemetry report output) write to stdout deliberately.
logging.getLogger("repro").addHandler(logging.NullHandler())

__all__ = ["__version__"]

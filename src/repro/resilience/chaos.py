"""Elastic chaos harness: train through an injected fault plan.

The harness drives a trainer step-by-step against a :class:`FaultPlan`,
modelling the recovery loop of a synchronous TPU fleet:

* every ``checkpoint_interval`` steps the trainer snapshots its full state
  (plus an initial snapshot at step 0, before any work);
* when the plan kills a chip mid-step, the partial step is wasted, the
  fleet burns a detection timeout, reloads the last checkpoint, and —
  this is the *elastic* part — resumes on the **survivors**: the trainer
  is rebuilt for the smaller replica count and the checkpoint is
  resharded onto it;
* stragglers inflate the modeled step time (synchronous SPMD runs at the
  speed of the slowest chip) without changing the math.

Because a restore replays from the last checkpoint with the same data
order, the final parameters are **bit-identical** to an uninterrupted run
on the surviving mesh shape restored from the same snapshot — the chaos
tests pin this.

Goodput here is the paper-style availability ratio: the time an ideal
fault-free run would need divided by the modeled wall time actually
spent (re-executed steps, detection timeouts, restore transfers and
straggler inflation all count against it).

The same loop runs without a trainer (``trainer_factory=None``) as a pure
timeline model, which is what lets :mod:`repro.experiments.availability`
sweep thousands of chips without doing any numerics.
"""

from __future__ import annotations

import logging
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry as _telemetry
from repro.resilience.faults import DeviceLostError, FaultPlan

logger = logging.getLogger("repro.resilience")

#: ``trainer_factory(num_replicas)`` must return an *initialized* trainer
#: exposing ``step``/``save_checkpoint``/``restore_checkpoint``.
TrainerFactory = Callable[[int], object]

#: ``batch_fn(step)`` must return the deterministic global batch of a step
#: — the same data order regardless of how many replicas split it.
BatchFn = Callable[[int], tuple[np.ndarray, np.ndarray]]


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs of the recovery loop and its timeline model.

    ``mesh_shape`` is the logical ``(x, y)`` chip grid the fault plan
    targets; replicas map x-major onto it.  ``base_step_seconds`` is the
    modeled fault-free step time; restore cost is a detection timeout plus
    moving the checkpoint back over ``restore_bandwidth_bytes_per_s``
    (checkpoint *writes* are treated as asynchronous and free, matching
    the usual snapshot-to-host overlap).
    """

    mesh_shape: tuple[int, int]
    target_steps: int
    checkpoint_interval: int = 5
    base_step_seconds: float = 1.0
    detection_timeout_s: float = 0.5
    restore_bandwidth_bytes_per_s: float = 1e9

    def __post_init__(self) -> None:
        if self.target_steps < 0:
            raise ValueError("target_steps must be >= 0")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.base_step_seconds <= 0:
            raise ValueError("base_step_seconds must be > 0")


@dataclass
class ChaosReport:
    """Outcome of one chaos run: goodput accounting plus the final state."""

    steps_executed: int = 0
    device_failures: int = 0
    restarts: int = 0
    lost_steps: int = 0
    checkpoints_taken: int = 0
    restart_seconds: float = 0.0
    total_seconds: float = 0.0
    useful_seconds: float = 0.0
    survivors: int = 0
    losses: list[float] = field(default_factory=list)
    final_params: dict[str, np.ndarray] | None = None

    @property
    def goodput(self) -> float:
        """Fault-free seconds of useful work per modeled wall-clock second."""
        if self.total_seconds <= 0.0:
            return 1.0
        return self.useful_seconds / self.total_seconds

    @property
    def mttr_seconds(self) -> float:
        """Mean time to recover: average restart latency over all restarts."""
        if self.restarts == 0:
            return 0.0
        return self.restart_seconds / self.restarts


def _straggler_slowdown(
    plan: FaultPlan, alive: list[tuple[int, int]], step: int
) -> float:
    """Synchronous step slowdown: the fleet waits for the slowest chip."""
    return max(plan.straggler_factor(device, step) for device in alive)


def run_chaos(
    plan: FaultPlan,
    config: ChaosConfig,
    *,
    trainer_factory: TrainerFactory | None = None,
    batch_fn: BatchFn | None = None,
    state_bytes: int = 0,
) -> ChaosReport:
    """Train ``config.target_steps`` steps through the plan's failures.

    With a ``trainer_factory`` the run does real numerics: the factory is
    called with the current survivor count whenever the fleet (re)forms,
    and every restore reshards the last checkpoint onto it.  The global
    batch from ``batch_fn`` must stay divisible by every survivor count
    the plan can produce.

    Without one the loop is pure goodput accounting over ``state_bytes``
    of checkpoint payload — no arrays move, so it scales to pod-size
    sweeps.

    Raises :class:`DeviceLostError` if the plan exterminates every chip.
    """
    if (trainer_factory is None) != (batch_fn is None):
        raise ValueError("trainer_factory and batch_fn go together")
    x_size, y_size = config.mesh_shape
    alive = [(x, y) for x in range(x_size) for y in range(y_size)]
    report = ChaosReport()

    trainer = trainer_factory(len(alive)) if trainer_factory else None
    ckpt = trainer.save_checkpoint() if trainer else None
    ckpt_step = 0
    ckpt_bytes = ckpt.nbytes if ckpt is not None else state_bytes
    report.checkpoints_taken += 1

    step = 0
    while step < config.target_steps:
        hits = [
            device
            for device in plan.chip_failures_at_step(step)
            if device in alive
        ]
        if hits:
            for device in hits:
                alive.remove(device)
            report.device_failures += len(hits)
            if _telemetry.enabled:
                _telemetry.metrics.counter("resilience_device_failures").inc(
                    len(hits)
                )
            if not alive:
                raise DeviceLostError(
                    hits,
                    "fault plan killed every chip; nothing left to restore onto",
                )
            # The step the failure interrupted is wasted, along with every
            # step completed since the last checkpoint (they get redone).
            report.total_seconds += (
                config.base_step_seconds * _straggler_slowdown(plan, alive, step)
            )
            lost = (step - ckpt_step) + 1
            report.lost_steps += lost
            restart_s = (
                config.detection_timeout_s
                + ckpt_bytes / config.restore_bandwidth_bytes_per_s
            )
            report.restarts += 1
            report.restart_seconds += restart_s
            report.total_seconds += restart_s
            if _telemetry.enabled:
                m = _telemetry.metrics
                m.counter("resilience_lost_steps").inc(lost)
                m.counter("resilience_restarts").inc()
                m.counter("resilience_restart_seconds").inc(restart_s)
                m.gauge("resilience_mttr_seconds").set(report.mttr_seconds)
            logger.warning(
                "chip failure at step %d (%s): rewinding to step %d on %d "
                "survivors (%d steps lost, %.3fs restart)",
                step, hits, ckpt_step, len(alive), lost,
                restart_s,
            )
            if trainer_factory is not None:
                with _telemetry.tracer.span(
                    "chaos_restart", category="resilience", actor="chaos"
                ):
                    trainer = trainer_factory(len(alive))
                    trainer.restore_checkpoint(ckpt)
            step = ckpt_step
            continue

        slowdown = _straggler_slowdown(plan, alive, step)
        if trainer is not None:
            assert batch_fn is not None
            x, labels = batch_fn(step)
            report.losses.append(trainer.step(x, labels))
        report.total_seconds += config.base_step_seconds * slowdown
        report.steps_executed += 1
        step += 1
        if step % config.checkpoint_interval == 0 and step < config.target_steps:
            if trainer is not None:
                ckpt = trainer.save_checkpoint()
                ckpt_bytes = ckpt.nbytes
            ckpt_step = step
            report.checkpoints_taken += 1

    report.useful_seconds = config.target_steps * config.base_step_seconds
    report.survivors = len(alive)
    if trainer is not None:
        report.final_params = trainer.params
    logger.info(
        "chaos run done: %d/%d steps useful, %d failures, goodput %.3f",
        config.target_steps, report.steps_executed, report.device_failures,
        report.goodput,
    )
    return report

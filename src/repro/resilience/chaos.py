"""Elastic chaos harness: train through an injected fault plan.

The harness drives a trainer step-by-step against a :class:`FaultPlan`,
modelling the recovery loop of a synchronous TPU fleet:

* a checkpoint policy (default: every ``checkpoint_interval`` steps, plus
  an initial snapshot at step 0 before any work) decides when the trainer
  snapshots its full state;
* when the plan kills a chip mid-step, the partial step is wasted, the
  fleet hangs until a **detector** declares the death (an
  :class:`~repro.controlplane.heartbeat.OracleDetector` with the config's
  fixed timeout by default, or a measured-MTTD
  :class:`~repro.controlplane.heartbeat.HeartbeatDetector`), reloads the
  last checkpoint, and — this is the *elastic* part — resumes on the
  **survivors**: the trainer is rebuilt for the smaller replica count and
  the checkpoint is resharded onto it;
* a :class:`~repro.resilience.faults.PreemptionSignal` is an *announced*
  death: the host gets a grace window, and if the checkpoint write fits
  inside it the fleet saves before dying and loses zero steps — no
  detection latency is charged because nothing had to be detected;
* an injected :class:`~repro.resilience.faults.BitFlipFault` corrupts one
  replica's parameter view silently; only a
  :class:`~repro.controlplane.guard.ConsistencyGuard` catches it, either
  resyncing the minority replica from the majority or — when the vote is
  ambiguous — rewinding the whole fleet to the last checkpoint;
* stragglers inflate the modeled step time (synchronous SPMD runs at the
  speed of the slowest chip) without changing the math.

Because a restore replays from the last checkpoint with the same data
order, the final parameters are **bit-identical** to an uninterrupted run
on the surviving mesh shape restored from the same snapshot — the chaos
tests pin this.  The same holds through SDC recovery: flips are transient
(consumed once injected), so both the resync and the rewind path converge
back onto the clean trajectory.

Goodput here is the paper-style availability ratio: the time an ideal
fault-free run would need divided by the modeled wall time actually
spent (re-executed steps, detection latency, restore transfers and
straggler inflation all count against it).  During a detection blind
window no step completes — the fleet is hung in a collective — so a
larger MTTD lowers goodput even in accounting-only mode.

The same loop runs without a trainer (``trainer_factory=None``) as a pure
timeline model, which is what lets :mod:`repro.experiments.availability`
sweep thousands of chips without doing any numerics.
"""

from __future__ import annotations

import logging
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro import telemetry as _telemetry
from repro.resilience.faults import (
    BitFlipFault,
    Device,
    DeviceLostError,
    FaultPlan,
    host_map,
)

if TYPE_CHECKING:  # runtime imports are deferred to avoid a package cycle
    from repro.controlplane.checkpointing import CheckpointPolicy
    from repro.controlplane.guard import ConsistencyGuard, DesyncEvent
    from repro.core.trainer import TrainerConfig

logger = logging.getLogger("repro.resilience")

#: ``trainer_factory(num_replicas)`` must return an *initialized* trainer
#: exposing ``step``/``save_checkpoint``/``restore_checkpoint``.
TrainerFactory = Callable[[int], object]

#: ``batch_fn(step)`` must return the deterministic global batch of a step
#: — the same data order regardless of how many replicas split it.
BatchFn = Callable[[int], tuple[np.ndarray, np.ndarray]]


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs of the recovery loop and its timeline model.

    ``mesh_shape`` is the logical ``(x, y)`` chip grid the fault plan
    targets; replicas map x-major onto it and ``chips_per_host`` groups
    them into preemption failure domains via
    :func:`~repro.resilience.faults.host_map`.  ``base_step_seconds`` is
    the modeled fault-free step time; restore cost is the detection
    latency plus moving the checkpoint back over
    ``restore_bandwidth_bytes_per_s`` (checkpoint *writes* are treated as
    asynchronous and free by default, matching the usual snapshot-to-host
    overlap; set ``checkpoint_write_seconds`` to charge a non-overlapped
    write cost per snapshot, which is what gives checkpoint-interval
    policies a real overhead/rework trade-off.  The synchronous
    best-effort save inside a preemption grace window is always charged).  ``detection_timeout_s`` seeds the default
    oracle detector; pass ``detector=`` to :func:`run_chaos` to replace
    it.
    """

    mesh_shape: tuple[int, int]
    target_steps: int
    checkpoint_interval: int = 5
    base_step_seconds: float = 1.0
    detection_timeout_s: float = 0.5
    restore_bandwidth_bytes_per_s: float = 1e9
    chips_per_host: int = 8
    checkpoint_write_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.target_steps < 0:
            raise ValueError("target_steps must be >= 0")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.base_step_seconds <= 0:
            raise ValueError("base_step_seconds must be > 0")
        if self.chips_per_host < 1:
            raise ValueError("chips_per_host must be >= 1")
        if self.checkpoint_write_seconds < 0:
            raise ValueError("checkpoint_write_seconds must be >= 0")


@dataclass
class GoodputAccounting:
    """The structured failure/recovery accounting schema of one workload.

    Every consumer of goodput numbers — :func:`run_chaos` (both real and
    accounting-only modes), the per-tenant
    :class:`~repro.cluster.jobs.JobReport` of the cluster scheduler, and
    the :mod:`repro.experiments.availability` sweep — reads this one
    dataclass rather than ad-hoc dicts, so a field added here propagates
    to every table with the same meaning.
    """

    steps_executed: int = 0
    restarts: int = 0
    lost_steps: int = 0
    checkpoints_taken: int = 0
    restart_seconds: float = 0.0
    total_seconds: float = 0.0
    useful_seconds: float = 0.0
    detections: int = 0
    detection_seconds: float = 0.0
    preemptions: int = 0

    @property
    def goodput(self) -> float:
        """Fault-free seconds of useful work per modeled wall-clock second."""
        if self.total_seconds <= 0.0:
            return 1.0
        return self.useful_seconds / self.total_seconds

    @property
    def mttr_seconds(self) -> float:
        """Mean time to recover: average restart latency over all restarts."""
        if self.restarts == 0:
            return 0.0
        return self.restart_seconds / self.restarts

    @property
    def mttd_seconds(self) -> float:
        """Mean time to detect: average detection latency over declared deaths."""
        if self.detections == 0:
            return 0.0
        return self.detection_seconds / self.detections

    def accounting_dict(self) -> dict[str, float]:
        """The stable, JSON-ready goodput schema (fields + derived rates)."""
        return {
            "steps_executed": self.steps_executed,
            "restarts": self.restarts,
            "lost_steps": self.lost_steps,
            "checkpoints_taken": self.checkpoints_taken,
            "restart_seconds": self.restart_seconds,
            "total_seconds": self.total_seconds,
            "useful_seconds": self.useful_seconds,
            "detections": self.detections,
            "detection_seconds": self.detection_seconds,
            "preemptions": self.preemptions,
            "goodput": self.goodput,
            "mttr_seconds": self.mttr_seconds,
            "mttd_seconds": self.mttd_seconds,
        }


@dataclass
class ChaosReport(GoodputAccounting):
    """Outcome of one chaos run: goodput accounting plus the final state.

    Both modes of :func:`run_chaos` — real numerics and accounting-only —
    return this same dataclass (never a bare dict), extending the shared
    :class:`GoodputAccounting` schema with the chaos-specific state.
    """

    device_failures: int = 0
    survivors: int = 0
    preempt_checkpoints_saved: int = 0
    guard_checks: int = 0
    desync_events: list["DesyncEvent"] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    final_params: dict[str, np.ndarray] | None = None
    #: Wall seconds actually measured per step phase, summed over every
    #: executed step (populated when the trainer returns ``StepResult``).
    measured_phase_seconds: dict[str, float] = field(default_factory=dict)
    #: Fused collective payload actually handed to the wire, summed.
    measured_bytes_moved: float = 0.0

    @property
    def desyncs_caught(self) -> int:
        return len(self.desync_events)


def _straggler_slowdown(
    plan: FaultPlan, alive: list[tuple[int, int]], step: int
) -> float:
    """Synchronous step slowdown: the fleet waits for the slowest chip."""
    return max(plan.straggler_factor(device, step) for device in alive)


def _params_nbytes(params: dict[str, np.ndarray]) -> int:
    return sum(int(np.asarray(a).nbytes) for a in params.values())


def _injected_step(flips: list[BitFlipFault], fallback: int) -> int:
    return min((f.at_step for f in flips), default=fallback)


def run_chaos(
    plan: FaultPlan,
    config: ChaosConfig,
    *,
    trainer_factory: TrainerFactory | None = None,
    trainer_config: "TrainerConfig | None" = None,
    batch_fn: BatchFn | None = None,
    state_bytes: int = 0,
    detector: object | None = None,
    guard: "ConsistencyGuard | None" = None,
    checkpoint_policy: "CheckpointPolicy | None" = None,
) -> ChaosReport:
    """Train ``config.target_steps`` steps through the plan's failures.

    With a ``trainer_factory`` the run does real numerics: the factory is
    called with the current survivor count whenever the fleet (re)forms,
    and every restore reshards the last checkpoint onto it.  The global
    batch from ``batch_fn`` must stay divisible by every survivor count
    the plan can produce.

    ``trainer_config`` is the declarative alternative: a
    :class:`~repro.core.trainer.TrainerConfig` whose ``mesh_shape`` is
    re-derived as ``(survivors, 1)`` on every (re)formation and built via
    :func:`~repro.core.trainer.make_trainer` — initialized with the
    config's ``seed`` (0 if unset, since the harness needs a live
    trainer).  Mutually exclusive with ``trainer_factory``; still needs
    ``batch_fn``.

    Without one the loop is pure goodput accounting over ``state_bytes``
    of checkpoint payload — no arrays move, so it scales to pod-size
    sweeps.  Desync detection still runs on the timeline (a corrupted
    replica is tracked as an overlay, and a guard check flags it), so
    SDC accounting works at pod scale too.

    ``detector`` is anything with ``detection_latency(fault_time) ->
    seconds`` (see :mod:`repro.controlplane.heartbeat`); ``None`` keeps
    the legacy oracle with ``config.detection_timeout_s``.  The latency
    is charged per chip-failure event as a fleet-wide hang — the blind
    window between the death and the declaration, during which no step
    completes.  ``checkpoint_policy`` defaults to the legacy
    ``StepInterval(config.checkpoint_interval)``.

    Raises :class:`DeviceLostError` if the plan exterminates every chip.
    """
    from repro.controlplane.checkpointing import StepInterval
    from repro.controlplane.guard import DesyncEvent, apply_bit_flips
    from repro.controlplane.heartbeat import OracleDetector

    if trainer_config is not None:
        if trainer_factory is not None:
            raise ValueError(
                "pass either trainer_factory or trainer_config, not both"
            )
        from repro.core.trainer import make_trainer

        base_config = trainer_config
        if base_config.seed is None:
            base_config = base_config.with_(seed=0)

        def trainer_factory(num_replicas: int) -> object:
            return make_trainer(
                base_config.with_(mesh_shape=(num_replicas, 1))
            )

    if (trainer_factory is None) != (batch_fn is None):
        raise ValueError("trainer_factory and batch_fn go together")
    if detector is None:
        detector = OracleDetector(config.detection_timeout_s)
    policy = checkpoint_policy or StepInterval(config.checkpoint_interval)
    x_size, y_size = config.mesh_shape
    alive = [(x, y) for x in range(x_size) for y in range(y_size)]
    hosts = host_map(config.mesh_shape, config.chips_per_host)
    report = ChaosReport()

    trainer = trainer_factory(len(alive)) if trainer_factory else None
    ckpt = trainer.save_checkpoint() if trainer else None
    ckpt_step = 0
    ckpt_time = 0.0
    ckpt_bytes = ckpt.nbytes if ckpt is not None else state_bytes
    report.checkpoints_taken += 1

    # Silent-corruption bookkeeping: a flipped replica's divergence from the
    # shared trajectory, carried as a sparse overlay of pending flips.  Flips
    # are transient — ``consumed`` stops a rewind from re-injecting them.
    overlays: dict[Device, list[BitFlipFault]] = {}
    consumed: set[BitFlipFault] = set()

    step = 0
    while step < config.target_steps:
        # --- announced deaths: preemption signals with a grace window -------
        live_signals = []
        for sig in plan.preemptions_at_step(step):
            victims = [c for c in hosts.get(sig.host, ()) if c in alive]
            if victims:
                live_signals.append((sig, victims))
        if live_signals:
            save_s = ckpt_bytes / config.restore_bandwidth_bytes_per_s
            grace_s = min(sig.grace_s for sig, _ in live_signals)
            saved_in_grace = save_s <= grace_s
            if saved_in_grace:
                # Best-effort save fits the grace window: zero lost steps.
                if trainer is not None:
                    ckpt = trainer.save_checkpoint()
                    ckpt_bytes = ckpt.nbytes
                ckpt_step = step
                report.total_seconds += save_s
                ckpt_time = report.total_seconds
                report.checkpoints_taken += 1
                report.preempt_checkpoints_saved += 1
            for sig, victims in live_signals:
                for device in victims:
                    alive.remove(device)
                    overlays.pop(device, None)
            report.preemptions += len(live_signals)
            _telemetry.flight_recorder.record(
                "chaos", "preemption",
                step=step,
                hosts=[sig.host for sig, _ in live_signals],
                saved_in_grace=saved_in_grace,
                survivors=len(alive),
            )
            if not alive:
                err = DeviceLostError(
                    [c for _, cs in live_signals for c in cs],
                    "preemption took every chip; nothing left to restore onto",
                )
                _telemetry.on_terminal_failure(err, origin="chaos.preemption", step=step)
                raise err
            # Announced death: no detection latency, only the restore move.
            restart_s = ckpt_bytes / config.restore_bandwidth_bytes_per_s
            lost = step - ckpt_step
            report.lost_steps += lost
            report.restarts += 1
            report.restart_seconds += restart_s
            report.total_seconds += restart_s
            if _telemetry.enabled:
                m = _telemetry.metrics
                m.counter("controlplane_preemptions").inc(len(live_signals))
                if saved_in_grace:
                    m.counter("controlplane_preempt_checkpoints").inc()
                m.counter("resilience_lost_steps").inc(lost)
                m.counter("resilience_restarts").inc()
                m.counter("resilience_restart_seconds").inc(restart_s)
                m.gauge("resilience_mttr_seconds").set(report.mttr_seconds)
            logger.warning(
                "preemption at step %d (hosts %s): %s, %d survivors "
                "(%d steps lost, %.3fs restart)",
                step, [sig.host for sig, _ in live_signals],
                "checkpoint saved in grace window"
                if saved_in_grace else "grace window too short to save",
                len(alive), lost, restart_s,
            )
            if trainer_factory is not None:
                with _telemetry.tracer.span(
                    "chaos_restart", category="resilience", actor="chaos"
                ):
                    trainer = trainer_factory(len(alive))
                    trainer.restore_checkpoint(ckpt)
            step = ckpt_step
            continue

        # --- unannounced deaths: chip failures mid-step ---------------------
        hits = [
            device
            for device in plan.chip_failures_at_step(step)
            if device in alive
        ]
        if hits:
            for device in hits:
                alive.remove(device)
                overlays.pop(device, None)
            report.device_failures += len(hits)
            if _telemetry.enabled:
                _telemetry.metrics.counter("resilience_device_failures").inc(
                    len(hits)
                )
            _telemetry.flight_recorder.record(
                "chaos", "chip_failure",
                step=step,
                devices=[list(d) for d in hits],
                survivors=len(alive),
            )
            if not alive:
                err = DeviceLostError(
                    hits,
                    "fault plan killed every chip; nothing left to restore onto",
                )
                _telemetry.on_terminal_failure(
                    err, origin="chaos.chip_failure", step=step
                )
                raise err
            # The step the failure interrupted is wasted, along with every
            # step completed since the last checkpoint (they get redone).
            report.total_seconds += (
                config.base_step_seconds * _straggler_slowdown(plan, alive, step)
            )
            lost = (step - ckpt_step) + 1
            report.lost_steps += lost
            # The fleet hangs in a dead collective until the detector
            # declares the death; only then does the restore transfer start.
            latency = detector.detection_latency(report.total_seconds)
            report.detections += 1
            report.detection_seconds += latency
            restart_s = (
                latency + ckpt_bytes / config.restore_bandwidth_bytes_per_s
            )
            report.restarts += 1
            report.restart_seconds += restart_s
            report.total_seconds += restart_s
            if _telemetry.enabled:
                m = _telemetry.metrics
                m.counter("resilience_lost_steps").inc(lost)
                m.counter("resilience_restarts").inc()
                m.counter("resilience_restart_seconds").inc(restart_s)
                m.gauge("resilience_mttr_seconds").set(report.mttr_seconds)
                m.counter("controlplane_detections").inc()
                m.counter("controlplane_detection_seconds").inc(latency)
                m.histogram("controlplane_detection_latency_seconds").observe(
                    latency
                )
            _telemetry.flight_recorder.record(
                "chaos", "restart",
                step=step, rewound_to=ckpt_step, lost_steps=lost,
                detection_s=latency, restart_s=restart_s,
            )
            logger.warning(
                "chip failure at step %d (%s): detected after %.3fs, "
                "rewinding to step %d on %d survivors (%d steps lost, "
                "%.3fs restart)",
                step, hits, latency, ckpt_step, len(alive), lost, restart_s,
            )
            if trainer_factory is not None:
                with _telemetry.tracer.span(
                    "chaos_restart", category="resilience", actor="chaos"
                ):
                    trainer = trainer_factory(len(alive))
                    trainer.restore_checkpoint(ckpt)
            step = ckpt_step
            continue

        # --- silent corruption: bit flips land without any loud signal ------
        for flip in plan.bit_flips_at_step(step):
            if flip in consumed:
                continue
            consumed.add(flip)
            if flip.device in alive:
                overlays.setdefault(flip.device, []).append(flip)
                if _telemetry.enabled:
                    _telemetry.metrics.counter(
                        "controlplane_bit_flips_injected"
                    ).inc()

        slowdown = _straggler_slowdown(plan, alive, step)
        if trainer is not None:
            assert batch_fn is not None
            x, labels = batch_fn(step)
            res = trainer.step(x, labels)
            report.losses.append(float(res))
            phases = getattr(res, "phase_seconds", None)
            if phases:
                for phase, seconds in phases.items():
                    report.measured_phase_seconds[phase] = (
                        report.measured_phase_seconds.get(phase, 0.0) + seconds
                    )
            report.measured_bytes_moved += getattr(res, "bytes_moved", 0.0)
        report.total_seconds += config.base_step_seconds * slowdown
        report.steps_executed += 1
        if trainer is None:
            # Accounting mode has no trainer StepResult to mirror; keep the
            # flight timeline alive with the modeled step boundary instead.
            _telemetry.flight_recorder.record(
                "step", "modeled_step", step_index=step, slowdown=slowdown
            )
            _telemetry.flight_recorder.record_counter_deltas()
        step += 1

        # --- cross-replica hash check ---------------------------------------
        if guard is not None and guard.due(step):
            report.total_seconds += guard.hash_seconds
            report.guard_checks += 1
            if trainer is not None:
                clean = trainer.params
                views = {
                    d: apply_bit_flips(clean, overlays[d])
                    if d in overlays else clean
                    for d in alive
                }
                desynced, ambiguous = guard.check_replicas(views, step)
                resync_bytes = _params_nbytes(clean)
            else:
                # Accounting mode: no arrays, but the overlay bookkeeping
                # still says which replicas would hash differently.
                hashes = {
                    d: f"flip:{d}" if d in overlays else "clean" for d in alive
                }
                desynced, ambiguous = guard.find_desynced(hashes)
                resync_bytes = state_bytes
                if _telemetry.enabled:
                    m = _telemetry.metrics
                    m.counter("controlplane_hash_checks").inc()
                    if desynced:
                        m.counter("controlplane_desyncs_caught").inc(
                            len(desynced)
                        )
            if desynced and not ambiguous:
                # Quarantine the minority and resync it from the majority.
                resync_s = (
                    len(desynced)
                    * resync_bytes
                    / config.restore_bandwidth_bytes_per_s
                )
                report.total_seconds += resync_s
                for device in desynced:
                    flips = overlays.pop(device, [])
                    report.desync_events.append(
                        DesyncEvent(
                            device=device,
                            injected_step=_injected_step(flips, step),
                            detected_step=step,
                            recovery="resync",
                        )
                    )
            elif desynced and ambiguous:
                # No trustworthy donor: rewind everyone to the checkpoint.
                lost = step - ckpt_step
                restart_s = ckpt_bytes / config.restore_bandwidth_bytes_per_s
                report.lost_steps += lost
                report.restarts += 1
                report.restart_seconds += restart_s
                report.total_seconds += restart_s
                if _telemetry.enabled:
                    m = _telemetry.metrics
                    m.counter("resilience_lost_steps").inc(lost)
                    m.counter("resilience_restarts").inc()
                    m.counter("resilience_restart_seconds").inc(restart_s)
                    m.gauge("resilience_mttr_seconds").set(report.mttr_seconds)
                for device, flips in sorted(overlays.items()):
                    report.desync_events.append(
                        DesyncEvent(
                            device=device,
                            injected_step=_injected_step(flips, step),
                            detected_step=step,
                            recovery="rewind",
                        )
                    )
                overlays.clear()
                logger.warning(
                    "ambiguous desync at step %d: rewinding to step %d "
                    "(%d steps lost)",
                    step, ckpt_step, lost,
                )
                # The fleet survives, but it just rewound on corrupted state
                # with no trustworthy donor — exactly the moment an operator
                # wants the preceding timeline, so dump a postmortem bundle.
                _telemetry.flight_recorder.record(
                    "chaos", "ambiguous_rewind",
                    step=step, rewound_to=ckpt_step, lost_steps=lost,
                )
                if _telemetry.enabled:
                    _telemetry.flight_recorder.dump(reason="consistency_rewind")
                if trainer is not None:
                    trainer.restore_checkpoint(ckpt)
                step = ckpt_step
                continue

        if step < config.target_steps and policy.should_checkpoint(
            step=step,
            now_s=report.total_seconds,
            last_checkpoint_step=ckpt_step,
            last_checkpoint_time_s=ckpt_time,
        ):
            if trainer is not None:
                ckpt = trainer.save_checkpoint()
                ckpt_bytes = ckpt.nbytes
            # Non-overlapped part of the snapshot write, if the model has one
            # (zero by default: writes stream out asynchronously).
            report.total_seconds += config.checkpoint_write_seconds
            ckpt_step = step
            ckpt_time = report.total_seconds
            report.checkpoints_taken += 1

    report.useful_seconds = config.target_steps * config.base_step_seconds
    report.survivors = len(alive)
    if trainer is not None:
        report.final_params = trainer.params
    logger.info(
        "chaos run done: %d/%d steps useful, %d failures, %d preemptions, "
        "%d desyncs, goodput %.3f",
        config.target_steps, report.steps_executed, report.device_failures,
        report.preemptions, report.desyncs_caught, report.goodput,
    )
    return report

"""Fault injection, checkpoint/restore, and elastic degraded-mode training.

The reproduction's execution substrates (the functional
:class:`~repro.runtime.mesh.VirtualMesh`, the discrete-event collective
schedules, the :mod:`repro.core` trainers) assume a healthy fleet; this
subpackage adds the failure surface the paper's 4096-chip lockstep runs
actually face:

* :mod:`repro.resilience.faults` — deterministic seeded
  :class:`~repro.resilience.faults.FaultPlan` (chip/host death, link
  degradation and flaps, stragglers) plus the typed errors
  (:class:`~repro.resilience.faults.DeviceLostError`,
  :class:`~repro.resilience.faults.LinkDownError`) raised by faulted
  substrates;
* :mod:`repro.resilience.checkpoint` — snapshot/restore of the full
  (sharded) param + optimizer state of both trainers, with GSPMD-style
  resharding so a checkpoint restores onto a *different* mesh shape;
* :mod:`repro.resilience.chaos` — the elastic harness: run a trainer under
  a fault plan, checkpoint on an interval, shrink to the surviving replica
  set on device loss, restore and replay, and account goodput (lost steps,
  restarts, restart seconds, MTTR).

Only :mod:`.faults` is imported eagerly — it is a leaf module, which lets
low-level modules (``repro.runtime.mesh``, ``repro.comm.schedule``) import
the typed errors without a cycle; ``checkpoint`` and ``chaos`` load on
first attribute access (PEP 562).
"""

from __future__ import annotations

import importlib

from repro.resilience.faults import (
    BitFlipFault,
    ChipFailure,
    Device,
    DeviceLostError,
    FaultPlan,
    LinkDownError,
    LinkFault,
    PreemptionSignal,
    RetryPolicy,
    StragglerFault,
    fail_host,
    host_failure,
    host_map,
)

_LAZY_SUBMODULES = ("chaos", "checkpoint", "faults")

__all__ = [
    "BitFlipFault",
    "ChipFailure",
    "Device",
    "DeviceLostError",
    "FaultPlan",
    "LinkDownError",
    "LinkFault",
    "PreemptionSignal",
    "RetryPolicy",
    "StragglerFault",
    "fail_host",
    "host_failure",
    "host_map",
    *_LAZY_SUBMODULES,
]


def __getattr__(name: str):
    if name in _LAZY_SUBMODULES:
        return importlib.import_module(f"repro.resilience.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

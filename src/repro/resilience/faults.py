"""Deterministic fault model: seeded plans of chip, link, and straggler faults.

The paper's Multipod runs 4096 chips in lockstep, so a single preempted
host, flapped optical link, or straggler chip stalls every synchronous
collective.  This module provides the *plan* side of chaos engineering for
the reproduction: a :class:`FaultPlan` is an immutable, seed-deterministic
schedule of fault events that both execution substrates consume —

* the functional :class:`~repro.runtime.mesh.VirtualMesh` (a dead device
  makes its buffers unreachable; collectives either heal over survivors or
  raise :class:`DeviceLostError`),
* the discrete-event collective schedules in :mod:`repro.comm.schedule`
  (link faults degrade bandwidth or hard-fail transfers, which retry with
  backoff and eventually raise :class:`LinkDownError`),
* the elastic training harness in :mod:`repro.resilience.chaos` (chip
  failures interrupt steps; checkpoints restore onto the surviving mesh).

Determinism is the point: the same seed replays the same churn, so chaos
tests pin exact goodput numbers and bit-identical recovery.

Devices are plain ``(x, y)`` tuples, compatible with both
``VirtualMesh`` device keys and ``repro.hardware.topology.Coordinate``
(a NamedTuple — tuple equality holds across the two).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

logger = logging.getLogger("repro.resilience")

#: A device address: ``(x, y)`` on the logical mesh.
Device = tuple[int, int]


class DeviceLostError(RuntimeError):
    """A buffer access or collective touched one or more failed devices."""

    def __init__(self, devices: Device | Iterable[Device], message: str = "") -> None:
        if isinstance(devices, tuple) and len(devices) == 2 and all(
            isinstance(c, int) for c in devices
        ):
            devices = (devices,)
        self.devices: tuple[Device, ...] = tuple(sorted(devices))
        super().__init__(
            message or f"device(s) lost: {', '.join(map(str, self.devices))}"
        )


class LinkDownError(RuntimeError):
    """A link transfer exhausted its retry budget while the link was down."""

    def __init__(self, src: Device, dst: Device, attempts: int) -> None:
        self.src = src
        self.dst = dst
        self.attempts = attempts
        super().__init__(
            f"link {src}->{dst} still down after {attempts} attempt(s)"
        )


@dataclass(frozen=True)
class ChipFailure:
    """Permanent loss of one chip, at a training step and/or a sim time.

    ``at_step`` addresses the functional trainers (the failure interrupts
    that step's collective); ``at_time`` addresses the discrete-event
    schedules (simulated seconds).  Either may be ``None`` when the fault
    only targets one substrate.
    """

    device: Device
    at_step: int | None = None
    at_time: float | None = None

    def __post_init__(self) -> None:
        if self.at_step is None and self.at_time is None:
            raise ValueError("chip failure needs at_step and/or at_time")
        if self.at_step is not None and self.at_step < 0:
            raise ValueError("at_step must be >= 0")
        if self.at_time is not None and self.at_time < 0:
            raise ValueError("at_time must be >= 0")


@dataclass(frozen=True)
class LinkFault:
    """A window during which one physical link is degraded or down.

    ``factor`` scales the link bandwidth inside ``[start, start+duration)``:
    ``0.0`` is a hard outage (an optical-link flap — transfers time out and
    retry), values in ``(0, 1)`` model a degraded lane.  ``bidirectional``
    applies the fault to both link directions.
    """

    src: Device
    dst: Device
    start: float
    duration: float
    factor: float = 0.0
    bidirectional: bool = True

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError("link fault window must be non-negative/non-empty")
        if not 0.0 <= self.factor < 1.0:
            raise ValueError("factor must be in [0, 1) — 1.0 is a healthy link")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def applies(self, src: Device, dst: Device) -> bool:
        if (src, dst) == (self.src, self.dst):
            return True
        return self.bidirectional and (dst, src) == (self.src, self.dst)


@dataclass(frozen=True)
class StragglerFault:
    """One chip runs slow for a window of steps (inflates step wall time)."""

    device: Device
    start_step: int
    duration_steps: int
    slowdown: float

    def __post_init__(self) -> None:
        if self.start_step < 0 or self.duration_steps <= 0:
            raise ValueError("straggler window must be non-negative/non-empty")
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1.0")

    def active_at(self, step: int) -> bool:
        return self.start_step <= step < self.start_step + self.duration_steps


@dataclass(frozen=True)
class PreemptionSignal:
    """An *announced* host eviction: SIGTERM now, SIGKILL after a grace window.

    Cloud preemption is the polite failure mode — unlike a chip death, the
    job is told in advance and has ``grace_s`` of wall-clock to flush a
    best-effort checkpoint before every chip the host drives goes away.
    ``host`` indexes the row-major host blocks of :func:`host_map`; the
    signal is delivered at the start of ``at_step``.
    """

    host: int
    at_step: int
    grace_s: float = 30.0

    def __post_init__(self) -> None:
        if self.host < 0:
            raise ValueError("host must be >= 0")
        if self.at_step < 0:
            raise ValueError("at_step must be >= 0")
        if self.grace_s < 0:
            raise ValueError("grace_s must be >= 0")


@dataclass(frozen=True)
class BitFlipFault:
    """A silent single-bit corruption of one replica's parameter copy.

    No collective raises on this: the flipped replica keeps participating,
    its parameter copy silently diverged from its peers — the SDC class of
    failure only a cross-replica consistency check can catch.  ``param``
    names the corrupted tensor (``None`` = first name in sorted order),
    ``index`` the flat element within it, and ``bit`` the bit within the
    element's 32-bit word (mantissa bits make quiet drift, exponent bits
    make loud blow-ups; both are silent to the collectives).

    The flip is *transient*: it corrupts the state once at ``at_step`` and
    is consumed — a rewind-and-replay recovery does not re-inject it.
    """

    device: Device
    at_step: int
    param: str | None = None
    index: int = 0
    bit: int = 12

    def __post_init__(self) -> None:
        if self.at_step < 0:
            raise ValueError("at_step must be >= 0")
        if self.index < 0:
            raise ValueError("index must be >= 0")
        if not 0 <= self.bit < 32:
            raise ValueError("bit must be in [0, 32)")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    One shared policy dataclass governs every retry loop in the repo:

    * the faulted link transfers in :mod:`repro.comm.schedule` — an
      attempt on a down link burns ``timeout_s`` (the sender's detection
      timeout), then waits ``backoff_s * backoff_factor**k`` before
      attempt ``k+1``; after ``max_attempts`` failed attempts the
      transfer raises :class:`LinkDownError` into the collective
      schedule;
    * the cluster admission loop in :mod:`repro.cluster.scheduler` — a
      job that cannot be placed retries on the same exponential schedule,
      decorrelated across tenants by a *deterministic* jitter term
      derived from ``(key, attempt)``.

    ``jitter_frac`` scales the jitter as a fraction of the backoff and
    defaults to ``0.0``, which keeps the link-retry path bit-identical to
    the historical hardcoded constants (``1e-3`` timeout, 4 attempts,
    ``2e-3`` base backoff, factor 2).  Jitter is *not* random: the same
    ``(key, attempt)`` always yields the same delay, so a seeded run
    replays exactly.
    """

    timeout_s: float = 1e-3
    max_attempts: int = 4
    backoff_s: float = 2e-3
    backoff_factor: float = 2.0
    jitter_frac: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_s < 0 or self.backoff_s < 0 or self.backoff_factor < 1:
            raise ValueError("negative timeout/backoff")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError("jitter_frac must be in [0, 1]")

    def backoff_after(self, attempt: int) -> float:
        """Seconds to wait after failed attempt number ``attempt`` (1-based)."""
        return self.backoff_s * self.backoff_factor ** (attempt - 1)

    def jitter_after(self, attempt: int, key: int = 0) -> float:
        """Deterministic jitter in ``[0, jitter_frac * backoff)`` for ``key``.

        The uniform draw comes from hashing ``(key, attempt)`` through
        ``numpy``'s :class:`~numpy.random.SeedSequence`, so two tenants
        (different keys) back off at decorrelated times while the same
        seeded run always replays the same delays.
        """
        if self.jitter_frac == 0.0:
            return 0.0
        word = np.random.SeedSequence(
            (int(key) & 0xFFFFFFFFFFFFFFFF, int(attempt))
        ).generate_state(1)[0]
        return self.backoff_after(attempt) * self.jitter_frac * (word / 2**32)

    def delay_after(self, attempt: int, key: int = 0) -> float:
        """Total stall charged after failed attempt ``attempt`` (1-based).

        ``timeout_s`` (detecting the failure) plus the exponential backoff
        plus the deterministic jitter.  With the default ``jitter_frac=0``
        this is exactly the historical ``timeout_s + backoff_after``.
        """
        return (
            self.timeout_s
            + self.backoff_after(attempt)
            + self.jitter_after(attempt, key)
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded schedule of faults for one run.

    Construct explicitly for targeted chaos tests, or sample a random plan
    with :meth:`sample` — the same ``seed`` always yields the same plan, so
    failures reproduce exactly across runs and machines.
    """

    seed: int = 0
    chip_failures: tuple[ChipFailure, ...] = ()
    link_faults: tuple[LinkFault, ...] = ()
    stragglers: tuple[StragglerFault, ...] = ()
    preemptions: tuple[PreemptionSignal, ...] = ()
    bit_flips: tuple[BitFlipFault, ...] = ()

    # --- queries (trainer / step domain) -------------------------------------

    def chip_failures_at_step(self, step: int) -> tuple[Device, ...]:
        """Devices whose failure is injected while executing ``step``."""
        return tuple(
            f.device for f in self.chip_failures if f.at_step == step
        )

    def dead_through_step(self, step: int) -> frozenset[Device]:
        """Devices dead once ``step`` has been reached (inclusive)."""
        return frozenset(
            f.device
            for f in self.chip_failures
            if f.at_step is not None and f.at_step <= step
        )

    def preemptions_at_step(self, step: int) -> tuple[PreemptionSignal, ...]:
        """Preemption signals delivered at the start of ``step``."""
        return tuple(p for p in self.preemptions if p.at_step == step)

    def bit_flips_at_step(self, step: int) -> tuple[BitFlipFault, ...]:
        """Silent bit flips injected while executing ``step``."""
        return tuple(f for f in self.bit_flips if f.at_step == step)

    def straggler_factor(self, device: Device, step: int) -> float:
        """Step-time multiplier for ``device`` at ``step`` (1.0 = healthy)."""
        factor = 1.0
        for s in self.stragglers:
            if s.device == device and s.active_at(step):
                factor = max(factor, s.slowdown)
        return factor

    # --- queries (discrete-event / time domain) ------------------------------

    def dead_at_time(self, t: float) -> frozenset[Device]:
        """Devices dead at simulated time ``t``."""
        return frozenset(
            f.device
            for f in self.chip_failures
            if f.at_time is not None and f.at_time <= t
        )

    def link_factor(self, src: Device, dst: Device, t: float) -> float:
        """Bandwidth factor of the ``src -> dst`` link at time ``t``.

        1.0 when healthy; the *minimum* factor of all active fault windows
        otherwise (0.0 means the link is down).
        """
        factor = 1.0
        for f in self.link_faults:
            if f.applies(src, dst) and f.start <= t < f.end:
                factor = min(factor, f.factor)
        return factor

    def next_link_up(self, src: Device, dst: Device, t: float) -> float | None:
        """Earliest time >= ``t`` at which the link carries traffic again.

        ``None`` when the link is already up at ``t``.
        """
        if self.link_factor(src, dst, t) > 0.0:
            return None
        up = t
        for f in sorted(self.link_faults, key=lambda f: f.start):
            if f.applies(src, dst) and f.factor == 0.0 and f.start <= up < f.end:
                up = f.end
        return up

    # --- construction ---------------------------------------------------------

    @classmethod
    def sample(
        cls,
        seed: int,
        mesh_shape: tuple[int, int],
        steps: int,
        *,
        expected_chip_failures: float = 0.0,
        expected_link_flaps: float = 0.0,
        expected_stragglers: float = 0.0,
        expected_preemptions: float = 0.0,
        expected_bit_flips: float = 0.0,
        step_time_s: float = 1.0,
        flap_duration_s: float = 0.05,
        straggler_duration_steps: int = 3,
        straggler_slowdown: float = 3.0,
        chips_per_host: int = 8,
        preemption_grace_s: float = 30.0,
    ) -> "FaultPlan":
        """A random plan, fully determined by ``seed``.

        Event *counts* are Poisson with the given expectations; chip
        failures strike distinct devices at uniform steps (each also gets an
        ``at_time`` of ``at_step * step_time_s`` so the same plan drives the
        discrete-event schedules), link flaps strike uniform adjacent device
        pairs at uniform times, stragglers strike uniform devices/steps.
        """
        x_size, y_size = mesh_shape
        if x_size < 1 or y_size < 1:
            raise ValueError("mesh dims must be >= 1")
        if steps < 1:
            raise ValueError("steps must be >= 1")
        rng = np.random.default_rng(seed)
        devices = [(x, y) for x in range(x_size) for y in range(y_size)]
        horizon_s = steps * step_time_s

        n_chip = min(int(rng.poisson(expected_chip_failures)), len(devices))
        victims = rng.choice(len(devices), size=n_chip, replace=False)
        chip_failures = []
        for idx in victims:
            at_step = int(rng.integers(0, steps))
            chip_failures.append(
                ChipFailure(
                    device=devices[int(idx)],
                    at_step=at_step,
                    at_time=at_step * step_time_s,
                )
            )

        link_faults = []
        links = _adjacent_pairs(x_size, y_size)
        if links:
            for _ in range(int(rng.poisson(expected_link_flaps))):
                src, dst = links[int(rng.integers(0, len(links)))]
                start = float(rng.uniform(0.0, horizon_s))
                link_faults.append(
                    LinkFault(src=src, dst=dst, start=start,
                              duration=flap_duration_s, factor=0.0)
                )

        stragglers = []
        for _ in range(int(rng.poisson(expected_stragglers))):
            device = devices[int(rng.integers(0, len(devices)))]
            start_step = int(rng.integers(0, steps))
            stragglers.append(
                StragglerFault(
                    device=device,
                    start_step=start_step,
                    duration_steps=straggler_duration_steps,
                    slowdown=straggler_slowdown,
                )
            )

        hosts = host_map(mesh_shape, chips_per_host)
        preemptions = []
        for _ in range(int(rng.poisson(expected_preemptions))):
            preemptions.append(
                PreemptionSignal(
                    host=int(rng.integers(0, len(hosts))),
                    at_step=int(rng.integers(0, steps)),
                    grace_s=preemption_grace_s,
                )
            )

        bit_flips = []
        for _ in range(int(rng.poisson(expected_bit_flips))):
            bit_flips.append(
                BitFlipFault(
                    device=devices[int(rng.integers(0, len(devices)))],
                    at_step=int(rng.integers(0, steps)),
                    index=int(rng.integers(0, 4)),
                    bit=int(rng.integers(0, 23)),  # mantissa bits: quiet drift
                )
            )

        plan = cls(
            seed=seed,
            chip_failures=tuple(
                sorted(chip_failures, key=lambda f: (f.at_step, f.device))
            ),
            link_faults=tuple(sorted(link_faults, key=lambda f: f.start)),
            stragglers=tuple(
                sorted(stragglers, key=lambda s: (s.start_step, s.device))
            ),
            preemptions=tuple(
                sorted(preemptions, key=lambda p: (p.at_step, p.host))
            ),
            bit_flips=tuple(
                sorted(bit_flips, key=lambda f: (f.at_step, f.device))
            ),
        )
        logger.debug(
            "sampled fault plan seed=%d: %d chip failures, %d link faults, "
            "%d stragglers, %d preemptions, %d bit flips over %d steps on %dx%d",
            seed, len(plan.chip_failures), len(plan.link_faults),
            len(plan.stragglers), len(plan.preemptions), len(plan.bit_flips),
            steps, x_size, y_size,
        )
        return plan

    @property
    def num_events(self) -> int:
        return (
            len(self.chip_failures)
            + len(self.link_faults)
            + len(self.stragglers)
            + len(self.preemptions)
            + len(self.bit_flips)
        )


def host_map(
    topology, chips_per_host: int | None = None
) -> dict[int, tuple[Device, ...]]:
    """Host index -> the chips that host drives, as row-major blocks.

    This is the *single* host->chip mapping rule of the repo, shared by
    :func:`fail_host` and :class:`repro.controlplane.HostGroup`, and it
    matches :meth:`repro.hardware.topology.TorusMesh.host_of` exactly:
    chips are enumerated x-major (``chip_id = x * y_size + y``) and
    assigned to hosts in consecutive blocks of ``chips_per_host``.

    ``topology`` is either an ``(x_size, y_size)`` shape tuple or any
    object exposing ``x_size``/``y_size`` (a ``TorusMesh`` or a
    ``VirtualMesh``).  ``chips_per_host`` defaults to the topology's own
    ``host.chips_per_host`` when it has one, else 8 (TPU-v3).
    """
    if isinstance(topology, tuple):
        x_size, y_size = topology
    else:
        x_size, y_size = topology.x_size, topology.y_size
    if x_size < 1 or y_size < 1:
        raise ValueError("mesh dims must be >= 1")
    if chips_per_host is None:
        host_spec = getattr(topology, "host", None)
        chips_per_host = getattr(host_spec, "chips_per_host", 8)
    if chips_per_host < 1:
        raise ValueError("chips_per_host must be >= 1")
    hosts: dict[int, list[Device]] = {}
    for x in range(x_size):
        for y in range(y_size):
            chip_id = x * y_size + y
            hosts.setdefault(chip_id // chips_per_host, []).append((x, y))
    return {h: tuple(chips) for h, chips in hosts.items()}


def host_failure(
    devices: Sequence[Device], at_step: int | None = None,
    at_time: float | None = None,
) -> tuple[ChipFailure, ...]:
    """Chip failures for every chip of one host, dying together.

    Pass one block of :func:`host_map` (or any explicit chip set); a
    preempted VM takes all of them out at once.  :func:`fail_host` wraps
    the lookup for the common case.
    """
    if not devices:
        raise ValueError("host failure needs at least one device")
    return tuple(
        ChipFailure(device=tuple(d), at_step=at_step, at_time=at_time)
        for d in devices
    )


def fail_host(
    topology,
    host: int,
    *,
    chips_per_host: int | None = None,
    at_step: int | None = None,
    at_time: float | None = None,
) -> tuple[ChipFailure, ...]:
    """Chip failures for host ``host`` of ``topology``, via :func:`host_map`."""
    hosts = host_map(topology, chips_per_host)
    if host not in hosts:
        raise ValueError(f"host {host} not in topology ({len(hosts)} hosts)")
    return host_failure(hosts[host], at_step=at_step, at_time=at_time)


def _adjacent_pairs(x_size: int, y_size: int) -> list[tuple[Device, Device]]:
    """Directed +x / +y neighbor pairs of a grid (the physical ICI links)."""
    pairs: list[tuple[Device, Device]] = []
    for x in range(x_size):
        for y in range(y_size):
            if x + 1 < x_size:
                pairs.append(((x, y), (x + 1, y)))
            if y + 1 < y_size:
                pairs.append(((x, y), (x, y + 1)))
    return pairs

"""Checkpoint/restore with GSPMD-style resharding of sharded optimizer state.

Weight-update sharding makes recovery a *correctness* problem: optimizer
slots exist only in sharded form, so a lost device holds state no survivor
has.  A checkpoint therefore snapshots the **full assembled** state — the
replicated parameters plus every optimizer slot reassembled from its
shards — which is exactly what lets a restore *reshard* onto a different
mesh shape (fewer replicas after a failure, or a different ``x*y`` grid):
the restore path re-runs the same sharding the trainer's ``init`` would,
over the checkpointed values.

Bit-identity guarantee (pinned by the chaos tests): for either trainer,
``save at step k -> restore -> resume`` produces exactly the same floats
as never interrupting, because the assembled state round-trips through
sharding losslessly (shards are disjoint views/copies, no arithmetic).

The inverse-sharding helpers here mirror the two sharding layouts of
:mod:`repro.core.weight_update_sharding`:

* :func:`unshard_states` inverts ``shard_states`` (per-parameter padded
  chunks);
* :func:`unshard_state_segments` inverts ``shard_state_segments`` (fused
  bucket windows spanning several parameters).
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass

import numpy as np

from repro import telemetry as _telemetry
from repro.optim.base import OptimizerState, Params
from repro.runtime.bucket import GradientBucket

logger = logging.getLogger("repro.resilience")

#: Separator for flattening nested state keys into npz archive names.
_KEY_SEP = "::"


@dataclass
class TrainerCheckpoint:
    """A full, unsharded snapshot of one trainer's training state.

    ``params`` and ``opt_state`` are deep copies — continued training never
    mutates a taken checkpoint.  ``trainer`` records the class name of the
    producer (informational; any trainer with compatible parameters can
    restore the snapshot, which is how a WUS run restores onto a smaller
    replica count).
    """

    step_index: int
    params: Params
    opt_state: OptimizerState
    trainer: str = ""

    @property
    def nbytes(self) -> int:
        """Total payload size (what a restore must move back onto devices)."""
        total = sum(a.nbytes for a in self.params.values())
        for slots in self.opt_state.values():
            total += sum(a.nbytes for a in slots.values())
        return total

    def copy(self) -> "TrainerCheckpoint":
        return TrainerCheckpoint(
            step_index=self.step_index,
            params={k: v.copy() for k, v in self.params.items()},
            opt_state={
                name: {slot: arr.copy() for slot, arr in slots.items()}
                for name, slots in self.opt_state.items()
            },
            trainer=self.trainer,
        )

    # --- serialization --------------------------------------------------------

    def save(self, path: str) -> None:
        """Write the checkpoint as an ``.npz`` archive (no pickling)."""
        arrays: dict[str, np.ndarray] = {}
        for name, arr in self.params.items():
            arrays[f"param{_KEY_SEP}{name}"] = arr
        for name, slots in self.opt_state.items():
            for slot, arr in slots.items():
                arrays[f"state{_KEY_SEP}{name}{_KEY_SEP}{slot}"] = arr
        meta = json.dumps({"step_index": self.step_index, "trainer": self.trainer})
        arrays["meta"] = np.frombuffer(meta.encode(), dtype=np.uint8)
        with open(path, "wb") as fh:
            np.savez(fh, **arrays)
        logger.info(
            "wrote checkpoint step=%d (%d bytes of state) to %s",
            self.step_index, self.nbytes, path,
        )

    @classmethod
    def load(cls, path: str) -> "TrainerCheckpoint":
        """Read a checkpoint written by :meth:`save`."""
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(bytes(archive["meta"]).decode())
            params: Params = {}
            opt_state: OptimizerState = {}
            for key in archive.files:
                parts = key.split(_KEY_SEP)
                if parts[0] == "param":
                    params[parts[1]] = archive[key]
                elif parts[0] == "state":
                    opt_state.setdefault(parts[1], {})[parts[2]] = archive[key]
        return cls(
            step_index=int(meta["step_index"]),
            params=params,
            opt_state=opt_state,
            trainer=meta.get("trainer", ""),
        )


def unshard_states(
    sharded_state: list[OptimizerState], params: Params
) -> OptimizerState:
    """Reassemble per-parameter chunked shards into full optimizer slots.

    Inverse of :func:`repro.core.weight_update_sharding.shard_states`:
    device ``d`` holds chunk ``d`` of each flattened slot (zero-padded to a
    multiple of the device count); concatenating and trimming restores the
    replicated slot exactly.
    """
    if not sharded_state:
        raise ValueError("need at least one device's state")
    full: OptimizerState = {}
    for name, param in params.items():
        slots = sharded_state[0][name]
        full[name] = {}
        for slot in slots:
            flat = np.concatenate(
                [np.asarray(dev[name][slot]).reshape(-1) for dev in sharded_state]
            )
            full[name][slot] = flat[: param.size].reshape(param.shape).copy()
    return full


def unshard_state_segments(
    sharded_state: list[OptimizerState], bucket: GradientBucket
) -> OptimizerState:
    """Reassemble fused-bucket-window shards into full optimizer slots.

    Inverse of
    :func:`repro.core.weight_update_sharding.shard_state_segments`: device
    ``d`` holds, for every parameter overlapping its fused reduce-scatter
    window, that segment of each slot.  The windows tile the bucket, so
    writing each segment back at its ``tensor_slice`` restores every slot.
    """
    n = len(sharded_state)
    if n < 1:
        raise ValueError("need at least one device's state")
    flats: dict[str, dict[str, np.ndarray]] = {}
    for d, segs in enumerate(bucket.shard_segments(n)):
        for seg in segs:
            dev_slots = sharded_state[d][seg.name]
            per_name = flats.setdefault(seg.name, {})
            for slot, arr in dev_slots.items():
                dest = per_name.get(slot)
                if dest is None:
                    size = int(np.prod(bucket.shapes[seg.name]) or 1)
                    dest = per_name[slot] = np.empty(
                        size, dtype=np.asarray(arr).dtype
                    )
                dest[seg.tensor_slice] = np.asarray(arr).reshape(-1)
    return {
        name: {
            slot: flat.reshape(bucket.shapes[name])
            for slot, flat in per_name.items()
        }
        for name, per_name in flats.items()
    }


def record_checkpoint_metrics(ckpt: TrainerCheckpoint, trainer: str) -> None:
    """Account a taken checkpoint in the telemetry registry."""
    if not _telemetry.enabled:
        return
    m = _telemetry.metrics
    m.counter("resilience_checkpoints", trainer=trainer).inc()
    m.counter("resilience_checkpoint_bytes", trainer=trainer).inc(ckpt.nbytes)

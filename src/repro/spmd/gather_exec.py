"""Functional gather -> one-hot-matmul and distributed top-k (§4.5).

Two of the XLA techniques the MaskRCNN work added, executable on numpy:

* **one-hot matmul gather** — ROIAlign is dominated by non-contiguous
  gathers, which run on the TPU's slow scalar/vector path; rewriting a
  gather of ``k`` rows as ``onehot(ids) @ table`` turns it into a dense
  matmul on the MXU, and *partitions*: with the table row-sharded over
  ``m`` cores, each core multiplies its table shard by its slice of the
  one-hot matrix and an all-reduce sums the partial results (each id's row
  lives on exactly one shard, so the sum is exact).
* **distributed top-k** — a value vector sharded over ``m`` cores: each
  core takes a local top-k of its shard (k candidates), the candidates are
  all-gathered (tiny payload), and the final top-k is selected from
  ``m*k`` candidates — provably equal to the global top-k.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.collectives import ring_all_reduce


def onehot_matrix(ids: np.ndarray, num_rows: int) -> np.ndarray:
    """[k] int ids -> [k, num_rows] one-hot float matrix."""
    ids = np.asarray(ids)
    if ids.ndim != 1:
        raise ValueError("ids must be 1-D")
    if ids.size and (ids.min() < 0 or ids.max() >= num_rows):
        raise IndexError("id out of range")
    out = np.zeros((ids.size, num_rows))
    out[np.arange(ids.size), ids] = 1.0
    return out


def gather_as_onehot_matmul(table: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """``table[ids]`` computed as a dense matmul (the MXU-friendly form)."""
    if table.ndim != 2:
        raise ValueError("table must be [rows, dim]")
    return onehot_matrix(ids, table.shape[0]) @ table


def sharded_onehot_gather(
    table_shards: list[np.ndarray],
    ids: np.ndarray,
    dtype_policy: str = "f64",
) -> np.ndarray:
    """Partitioned gather: row-sharded table, replicated ids.

    Each core computes ``onehot_slice @ shard`` (a partial result that is
    zero for ids owned elsewhere); a real ring all-reduce sums the partials
    — this is how the SPMD partitioner parallelizes ROIAlign's gathers
    across model cores.
    """
    if not table_shards:
        raise ValueError("need at least one shard")
    offsets = np.cumsum([0] + [s.shape[0] for s in table_shards])
    total_rows = offsets[-1]
    ids = np.asarray(ids)
    if ids.size and (ids.min() < 0 or ids.max() >= total_rows):
        raise IndexError("id out of range")
    partials = []
    for d, shard in enumerate(table_shards):
        lo, hi = offsets[d], offsets[d + 1]
        local = np.zeros((ids.size, shard.shape[0]))
        mask = (ids >= lo) & (ids < hi)
        rows = np.flatnonzero(mask)
        local[rows, ids[rows] - lo] = 1.0
        partials.append(local @ shard)
    return ring_all_reduce(partials, dtype_policy)[0]


def topk_direct(values: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Global top-k (descending values, then ascending index for ties)."""
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError("values must be 1-D")
    if not 1 <= k <= values.size:
        raise ValueError(f"k={k} out of range for {values.size} values")
    # Stable ordering: sort by (-value, index).
    order = np.lexsort((np.arange(values.size), -values))
    idx = order[:k]
    return values[idx], idx


def distributed_topk(
    value_shards: list[np.ndarray], k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Top-k over a sharded vector via local-topk + candidate merge.

    Each core contributes its local top-``min(k, len(shard))`` (values and
    *global* indices); the merged candidate set provably contains the
    global top-k.  The exchanged payload is ``m * k`` entries — the tiny
    all-gather the partitioner inserts (Section 4.5's "partitioning more
    ops").
    """
    if not value_shards:
        raise ValueError("need at least one shard")
    total = sum(s.size for s in value_shards)
    if not 1 <= k <= total:
        raise ValueError(f"k={k} out of range for {total} values")
    candidates_v = []
    candidates_i = []
    offset = 0
    for shard in value_shards:
        shard = np.asarray(shard)
        local_k = min(k, shard.size)
        if local_k:
            v, i = topk_direct(shard, local_k)
            candidates_v.append(v)
            candidates_i.append(i + offset)
        offset += shard.size
    all_v = np.concatenate(candidates_v)
    all_i = np.concatenate(candidates_i)
    order = np.lexsort((all_i, -all_v))[:k]
    return all_v[order], all_i[order]

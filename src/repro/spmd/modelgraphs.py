"""IR graphs for the model-parallel benchmarks (SSD, MaskRCNN, Transformer).

Shapes follow the published architectures at the fidelity the partitioning
analysis needs: per-stage activation geometry, the gather/topk ops that were
Amdahl bottlenecks before the paper's XLA work, and the dense layers the
Transformer shards.  Each builder sets ``graph.handles`` with the node ids
that seed functions annotate.
"""

from __future__ import annotations

from repro.spmd.annotations import Sharding
from repro.spmd.ir import Graph


def _conv_stage(g: Graph, x: int, cin: int, cout: int, size: int,
                repeats: int, name: str) -> int:
    """A stack of 3x3 convolutions at one spatial resolution."""
    for r in range(repeats):
        w = g.parameter((3, 3, cin if r == 0 else cout, cout),
                        name=f"{name}_w{r}")
        x = g.conv2d(x, w, name=f"{name}_conv{r}")
        x = g.elementwise(x, "relu", name=f"{name}_relu{r}")
    return x


def ssd_graph(batch: int = 1) -> Graph:
    """MLPerf SSD: ResNet-34 backbone on 300x300 + detection heads."""
    g = Graph("ssd")
    image = g.input((batch, 300, 300, 3), name="image")
    stem_w = g.parameter((7, 7, 3, 64), name="stem_w")
    x = g.conv2d(image, stem_w, stride=2, name="stem")  # 150x150x64
    x = _conv_stage(g, x, 64, 64, 150, 3, "stage1")
    x = g.conv2d(x, g.parameter((3, 3, 64, 128), name="down1_w"), stride=2,
                 name="down1")  # 75x75
    x = _conv_stage(g, x, 128, 128, 75, 4, "stage2")
    x = g.conv2d(x, g.parameter((3, 3, 128, 256), name="down2_w"), stride=2,
                 name="down2")  # 38x38 (rounded)
    x = _conv_stage(g, x, 256, 256, 38, 6, "stage3")
    feat38 = x
    x = g.conv2d(x, g.parameter((3, 3, 256, 512), name="down3_w"), stride=2,
                 name="down3")  # 19x19
    feat19 = _conv_stage(g, x, 512, 512, 19, 3, "stage4")
    # Extra feature layers shrink to 10, 5, 3, 1 — small and hard to split.
    x = g.conv2d(feat19, g.parameter((3, 3, 512, 256), name="extra1_w"),
                 stride=2, name="extra1")  # 10x10
    x = g.conv2d(x, g.parameter((3, 3, 256, 256), name="extra2_w"),
                 stride=2, name="extra2")  # 5x5
    # Detection heads on the two big maps (class + box convs).
    for i, feat in enumerate((feat38, feat19)):
        cin = 256 if i == 0 else 512
        head_w = g.parameter((3, 3, cin, 6 * (81 + 4)), name=f"head{i}_w")
        g.conv2d(feat, head_w, name=f"head{i}")
    # Prior selection: top-k over ~8732 anchors, then box gather.
    scores = g.input((batch, 8732), name="scores")
    top = g.topk(scores, 200, name="nms_topk")
    g.gather(top, 200, 4, name="box_gather")
    g.handles = {"image": image, "scores": scores}
    return g


def maskrcnn_graph(batch: int = 1) -> Graph:
    """MaskRCNN: ResNet-50+FPN on 800x1344, RPN, ROIAlign, heads."""
    g = Graph("maskrcnn")
    image = g.input((batch, 800, 1344, 3), name="image")
    stem_w = g.parameter((7, 7, 3, 64), name="stem_w")
    x = g.conv2d(image, stem_w, stride=2, name="stem")  # 400x672
    x = _conv_stage(g, x, 64, 256, 400, 3, "res2")
    x = g.conv2d(x, g.parameter((3, 3, 256, 512), name="down2_w"), stride=2,
                 name="down2")  # 200x336
    x = _conv_stage(g, x, 512, 512, 200, 4, "res3")
    x = g.conv2d(x, g.parameter((3, 3, 512, 1024), name="down3_w"), stride=2,
                 name="down3")  # 100x168
    x = _conv_stage(g, x, 1024, 1024, 100, 6, "res4")
    x = g.conv2d(x, g.parameter((3, 3, 1024, 2048), name="down4_w"), stride=2,
                 name="down4")  # 50x84
    p5 = _conv_stage(g, x, 2048, 256, 50, 1, "fpn5")
    # RPN objectness + proposal top-k (an op XLA could not partition pre-v0.7).
    rpn_w = g.parameter((3, 3, 256, 256), name="rpn_w")
    rpn = g.conv2d(p5, rpn_w, name="rpn_conv")
    scores = g.input((batch, 256 * 1024), name="rpn_scores")
    top = g.topk(scores, 1000, name="proposal_topk")
    # ROIAlign: non-contiguous gather of 1000 rois x 7x7x256 features,
    # rewritten as one-hot matmuls in v0.7 (Section 4.5).
    rois = g.gather(top, 1000, 7 * 7 * 256, name="roialign_gather")
    # Box head: two big fully connected layers over the rois.
    fc1_w = g.parameter((7 * 7 * 256, 1024), name="boxhead_fc1")
    h = g.matmul(rois, fc1_w, name="boxhead_mm1")
    h = g.elementwise(h, "relu", name="boxhead_relu")
    fc2_w = g.parameter((1024, 1024), name="boxhead_fc2")
    h = g.matmul(h, fc2_w, name="boxhead_mm2")
    # Mask head convs run on the gathered roi features (serial-ish, small).
    g.reduce(h, name="loss")
    g.handles = {"image": image, "scores": scores}
    return g


def resnet_block_graph(batch: int = 1, size: int = 16, cin: int = 4,
                       cout: int = 8) -> Graph:
    """A small ResNet residual block, sized to *execute* on a VirtualMesh.

    Unlike :func:`ssd_graph`/:func:`maskrcnn_graph` (full-scale shape
    models), every op here is stride-1 with odd kernels so the spatial
    execution path can run it for real at small scale — the bit-exact
    validation target for the partitioner search.
    """
    g = Graph("resnet_block")
    image = g.input((batch, size, size, cin), name="image")
    proj_w = g.parameter((1, 1, cin, cout), name="proj_w")
    shortcut = g.conv2d(image, proj_w, name="proj")
    w1 = g.parameter((3, 3, cin, cout), name="conv1_w")
    x = g.conv2d(image, w1, name="conv1")
    x = g.elementwise(x, "relu", name="relu1")
    w2 = g.parameter((3, 3, cout, cout), name="conv2_w")
    x = g.conv2d(x, w2, name="conv2")
    x = g.add(x, shortcut, name="residual")
    x = g.elementwise(x, "relu", name="relu2")
    g.reduce(x, name="loss")
    g.handles = {"image": image}
    return g


def transformer_block_graph(
    seq: int = 256, hidden: int = 1024, ffn: int = 4096, vocab: int = 33_000
) -> Graph:
    """One Transformer-big layer + shared embedding, dense-sharded (§4.3).

    Sharded dimensions follow the paper: vocab (embedding), num_heads
    (attention projections, via the hidden projection columns) and the ffn
    hidden dimension.
    """
    g = Graph("transformer_block")
    tokens = g.input((seq, vocab), name="onehot_tokens")
    embed_w = g.parameter((vocab, hidden), name="embedding")
    x = g.matmul(tokens, embed_w, name="embed_mm")
    # Attention projections: QKV fused (columns = heads dim) + output proj.
    qkv_w = g.parameter((hidden, 3 * hidden), name="qkv_w")
    qkv = g.matmul(x, qkv_w, name="qkv_mm")
    qkv = g.elementwise(qkv, "identity", name="attn_core")
    out_w = g.parameter((3 * hidden, hidden), name="attn_out_w")
    attn = g.matmul(qkv, out_w, name="attn_out_mm")
    attn = g.add(attn, x, name="residual1")
    # Feed-forward pair: column-shard W1, row-shard W2 (partial + allreduce).
    ffn_w1 = g.parameter((hidden, ffn), name="ffn_w1")
    h = g.matmul(attn, ffn_w1, name="ffn_mm1")
    h = g.elementwise(h, "relu", name="ffn_relu")
    ffn_w2 = g.parameter((ffn, hidden), name="ffn_w2")
    out = g.matmul(h, ffn_w2, name="ffn_mm2")
    out = g.add(out, attn, name="residual2")
    g.reduce(out, name="loss")
    g.handles = {
        "embedding": embed_w,
        "qkv_w": qkv_w,
        "attn_out_w": out_w,
        "ffn_w1": ffn_w1,
        "ffn_w2": ffn_w2,
    }
    return g


# --- seed functions (the paper's annotations) ------------------------------


def spatial_seeds(graph: Graph, k: int) -> dict[int, Sharding]:
    """Annotate the input image split along H (SSD/MaskRCNN, Section 3.1)."""
    if k == 1:
        return {}
    return {graph.handles["image"]: Sharding.split(k, 1)}


def transformer_seeds(graph: Graph, k: int) -> dict[int, Sharding]:
    """Dense sharding along vocab / heads / ffn-hidden (Section 4.3)."""
    if k == 1:
        return {}
    h = graph.handles
    return {
        h["embedding"]: Sharding.split(k, 0),   # vocab (contracting) -> partial
        h["qkv_w"]: Sharding.split(k, 1),       # heads dimension
        h["attn_out_w"]: Sharding.split(k, 0),  # contracting -> partial + allreduce
        h["ffn_w1"]: Sharding.split(k, 1),      # ffn hidden
        h["ffn_w2"]: Sharding.split(k, 0),      # contracting -> partial + allreduce
    }

"""Partitioner-search smoke: bounded 2-model search with hard assertions.

``python -m repro.spmd`` beam-searches shardings for two model graphs (a
small executable ResNet block and the Transformer model-parallel block),
then asserts the claims CI gates on:

* **feasibility** — every returned plan propagates (the search only ranks
  plans the partitioner accepted) and carries a finite positive cost;
* **determinism** — re-running with the same seed reproduces the ranked
  list bit-for-bit (specs and costs);
* **never worse than replicated** — the best plan's estimated step time is
  <= the all-replicated baseline;
* **matches/beats the hand annotation** under V07 features;
* **bit-exactness** — the winning plan computes the same numbers as the
  unsharded reference on a small VirtualMesh.

Exits non-zero on any failure so CI can gate on it.
"""

from __future__ import annotations

import os
import sys

from repro.spmd import (
    SearchConfig,
    ShardingSpec,
    Sharding,
    make_partitioner,
    resnet_block_graph,
    search_partitioning,
    transformer_block_graph,
)
from repro.spmd.modelgraphs import transformer_seeds


def main() -> int:
    seed = int(os.environ.get("REPRO_SPMD_SEED", "2021"))
    k = 4
    partitioner = make_partitioner("v07")
    failures: list[str] = []

    def check(ok: bool, what: str) -> None:
        print(("  PASS " if ok else "  FAIL ") + what)
        if not ok:
            failures.append(what)

    # Small shapes keep the search + bit-exact execution fast in CI.
    models = {
        "resnet_block": (
            resnet_block_graph(),
            lambda g: {"image": Sharding.split(k, 1)},
        ),
        "transformer_block": (
            transformer_block_graph(seq=16, hidden=32, ffn=64, vocab=128),
            lambda g: dict(transformer_seeds(g, k)),
        ),
    }

    for name, (graph, hand_seeds) in models.items():
        config = SearchConfig(
            num_shards=k, seed=seed, seed_nodes="all", validate=True
        )
        result = search_partitioning(graph, config, partitioner)
        print(f"{name}: {result.describe()}")

        check(len(result.plans) >= 1, f"{name}: search returned plans")
        check(
            all(0.0 < p.total_seconds < float("inf") for p in result.plans),
            f"{name}: every ranked plan is feasible with finite cost",
        )
        check(
            result.best.total_seconds <= result.baseline.total_seconds,
            f"{name}: never worse than replicated",
        )
        hand = partitioner.partition(
            graph, ShardingSpec.from_seeds(k, dict(hand_seeds(graph)))
        )
        check(
            result.best.total_seconds <= hand.total_seconds,
            f"{name}: matches/beats hand annotation "
            f"({result.best.total_seconds:.3e} vs {hand.total_seconds:.3e})",
        )
        check(
            bool(result.validations) and result.validations[0].ok,
            f"{name}: winning plan is bit-exact "
            f"({result.validations[0].describe() if result.validations else 'no verdict'})",
        )

        replay = search_partitioning(graph, config, partitioner)
        identical = len(replay.plans) == len(result.plans) and all(
            a.spec == b.spec and a.total_seconds == b.total_seconds
            for a, b in zip(result.plans, replay.plans)
        )
        check(identical, f"{name}: ranked list replays bit-identically")

    if failures:
        print(f"\nspmd-search smoke: {len(failures)} check(s) FAILED")
        return 1
    print("\nspmd-search smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The supported ``repro.spmd`` surface: spec -> partitioner -> plan.

Mirrors the ``TrainerConfig``/``make_trainer``/``StepResult`` pattern of
:mod:`repro.core.trainer`:

* :class:`ShardingSpec` — a validated frozen config naming which tensors
  are sharded and how (by node id, node name, or ``graph.handles`` key);
* :func:`make_partitioner` — the factory that resolves feature-set names
  ("v06"/"v07") and binds the cost model's mesh;
* :class:`PartitionPlan` — the result object carrying the resolved
  assignments, the inserted :class:`~repro.spmd.partitioner.CommOp`\\ s and
  the :class:`~repro.spmd.estimator.PartitionCost`.

The legacy free functions (``replicated``/``split``/``partial``,
``partition``, ``estimate_cost``) keep working but warn unless reached
through this facade.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.topology import TorusMesh
from repro.spmd.annotations import Sharding, _facade
from repro.spmd.estimator import PartitionCost, _estimate_cost_impl
from repro.spmd.ir import Graph
from repro.spmd.partitioner import (
    CommOp,
    PartitionedGraph,
    PartitionerFeatures,
    V06_FEATURES,
    V07_FEATURES,
    _partition_impl,
)

#: feature-set names accepted by :func:`make_partitioner`.
FEATURE_SETS: dict[str, PartitionerFeatures] = {
    "v06": V06_FEATURES,
    "v07": V07_FEATURES,
}


@dataclass(frozen=True)
class ShardingSpec:
    """A validated, frozen set of seed shardings for one graph.

    ``assignments`` maps tensor references to layouts.  A reference is a
    node id (``int``) or a name (``str``) resolved against
    ``graph.handles`` first, then node names — so specs written against
    the :mod:`repro.spmd.modelgraphs` builders survive graph rebuilds.
    """

    num_shards: int
    assignments: tuple[tuple[int | str, Sharding], ...] = ()

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if not isinstance(self.assignments, tuple):
            object.__setattr__(self, "assignments", tuple(self.assignments))
        seen: set[int | str] = set()
        for ref, sharding in self.assignments:
            if not isinstance(ref, (int, str)):
                raise TypeError(f"assignment key must be int or str, got {ref!r}")
            if ref in seen:
                raise ValueError(f"duplicate assignment for {ref!r}")
            seen.add(ref)
            if not isinstance(sharding, Sharding):
                raise TypeError(f"assignment for {ref!r} is not a Sharding")
            if sharding.num_shards != self.num_shards:
                raise ValueError(
                    f"assignment for {ref!r} uses {sharding.num_shards} shards, "
                    f"spec uses {self.num_shards}"
                )

    @classmethod
    def replicated(cls, num_shards: int) -> "ShardingSpec":
        """The no-annotation baseline: everything replicated."""
        return cls(num_shards=num_shards)

    @classmethod
    def from_seeds(
        cls, num_shards: int, seeds: dict[int | str, Sharding]
    ) -> "ShardingSpec":
        """Build a spec from a seed dict (sorted for a canonical order)."""
        items = sorted(seeds.items(), key=lambda kv: (str(type(kv[0])), str(kv[0])))
        return cls(num_shards=num_shards, assignments=tuple(items))

    def resolve(self, graph: Graph) -> dict[int, Sharding]:
        """Map every assignment to a node id in ``graph``."""
        handles: dict[str, int] = getattr(graph, "handles", {}) or {}
        by_name = {n.name: n.id for n in graph.nodes}
        out: dict[int, Sharding] = {}
        for ref, sharding in self.assignments:
            if isinstance(ref, int):
                node_id = ref
                graph.node(node_id)  # raises ShapeError on unknown ids
            elif ref in handles:
                node_id = handles[ref]
            elif ref in by_name:
                node_id = by_name[ref]
            else:
                raise KeyError(
                    f"spec references {ref!r}, not a handle or node name of "
                    f"graph {graph.name!r}"
                )
            if node_id in out:
                raise ValueError(f"two assignments resolve to node {node_id}")
            out[node_id] = sharding
        return out

    def describe(self) -> str:
        parts = ", ".join(f"{ref}={s.describe()}" for ref, s in self.assignments)
        return f"ShardingSpec(k={self.num_shards}, {{{parts or 'replicated'}}})"


@dataclass(frozen=True)
class PartitionPlan:
    """One partitioning of one graph, with its communication and cost."""

    graph: Graph = field(repr=False)
    spec: ShardingSpec
    partitioned: PartitionedGraph = field(repr=False)
    cost: PartitionCost

    @property
    def num_shards(self) -> int:
        return self.partitioned.num_shards

    @property
    def shardings(self) -> dict[int, Sharding]:
        """Final layout of every value (post partial-resolution)."""
        return self.partitioned.shardings

    @property
    def compute_shardings(self) -> dict[int, Sharding]:
        """Layout each op computed under (what the cost model priced)."""
        return self.partitioned.compute_shardings

    @property
    def comm_ops(self) -> list[CommOp]:
        return self.partitioned.comm_ops

    @property
    def serial_nodes(self) -> set[int]:
        return self.partitioned.serial_nodes

    @property
    def total_seconds(self) -> float:
        return self.cost.total_seconds

    def describe(self) -> str:
        c = self.cost
        return (
            f"plan[{self.graph.name} k={self.num_shards}] "
            f"total={c.total_seconds * 1e3:.3f}ms "
            f"(compute={c.compute_seconds * 1e3:.3f} "
            f"serial={c.serial_seconds * 1e3:.3f} "
            f"comm={c.comm_seconds * 1e3:.3f}) "
            f"comm_ops={len(self.comm_ops)} serial_nodes={len(self.serial_nodes)}"
        )


@dataclass(frozen=True)
class Partitioner:
    """A configured partitioner: feature set + cost-model target mesh."""

    features: PartitionerFeatures = V07_FEATURES
    mesh: TorusMesh | None = None
    mxu_efficiency: float = 0.35

    def partition(self, graph: Graph, spec: ShardingSpec) -> PartitionPlan:
        """Propagate ``spec`` through ``graph`` and cost the result."""
        with _facade():
            seeds = spec.resolve(graph)
            pg = _partition_impl(graph, seeds, spec.num_shards, self.features)
            cost = _estimate_cost_impl(
                pg, self.mesh, mxu_efficiency=self.mxu_efficiency
            )
        return PartitionPlan(graph=graph, spec=spec, partitioned=pg, cost=cost)


def make_partitioner(
    features: PartitionerFeatures | str = "v07",
    *,
    mesh: TorusMesh | None = None,
    mxu_efficiency: float = 0.35,
) -> Partitioner:
    """Build a :class:`Partitioner` (the supported entry point).

    ``features`` is a :class:`PartitionerFeatures` or one of
    ``{"v06", "v07"}``; ``mesh`` defaults to a single TPU-v3 pod.
    """
    if isinstance(features, str):
        try:
            features = FEATURE_SETS[features]
        except KeyError:
            raise ValueError(
                f"unknown feature set {features!r}; expected one of "
                f"{sorted(FEATURE_SETS)}"
            ) from None
    elif not isinstance(features, PartitionerFeatures):
        raise TypeError(f"features must be str or PartitionerFeatures, got {features!r}")
    if not 0.0 < mxu_efficiency <= 1.0:
        raise ValueError("mxu_efficiency must be in (0, 1]")
    return Partitioner(features=features, mesh=mesh, mxu_efficiency=mxu_efficiency)

"""An SPMD partitioner in the style of XLA's (Lepikhin et al. 2020).

Section 3.1 of the paper parallelizes models by annotating tensors with
sharding and letting the compiler partition the graph, inserting halo
exchanges (spatial partitioning), all-reduces (contracting-dimension
sharding), and reshards.  This subpackage reproduces that machinery on a
small tensor IR:

* :mod:`repro.spmd.ir` — a minimal static-shape tensor graph (conv2d,
  matmul, gather, topk, elementwise, ...) with FLOP/byte accounting;
* :mod:`repro.spmd.annotations` — sharding specs (replicated / split along
  a dim / partial-pending-reduction);
* :mod:`repro.spmd.partitioner` — annotation propagation and communication
  insertion, with feature flags reproducing the paper's v0.6 -> v0.7 XLA
  improvements (gather/topk partitioning, gather -> one-hot matmul,
  reshard minimization, Section 4.5);
* :mod:`repro.spmd.estimator` — per-device compute/communication cost of a
  partitioned graph on a mesh, driving the Figure 9 model-parallelism
  speedup curves;
* :mod:`repro.spmd.modelgraphs` — IR graphs for SSD, MaskRCNN, and the
  Transformer model-parallel blocks.
"""

from repro.spmd.ir import Graph, Node, ShapeError
from repro.spmd.annotations import Sharding, replicated, split, partial
from repro.spmd.partitioner import (
    PartitionerFeatures,
    PartitionedGraph,
    CommOp,
    partition,
    V06_FEATURES,
    V07_FEATURES,
)
from repro.spmd.estimator import PartitionCost, estimate_cost, model_parallel_speedup
from repro.spmd.modelgraphs import ssd_graph, maskrcnn_graph, transformer_block_graph
from repro.spmd.gather_exec import (
    gather_as_onehot_matmul,
    sharded_onehot_gather,
    topk_direct,
    distributed_topk,
)
from repro.spmd.spatial_exec import (
    conv2d_direct,
    shard_height,
    unshard_height,
    halo_exchange,
    spatial_conv2d,
    spatial_conv_stack,
)

__all__ = [
    "Graph",
    "Node",
    "ShapeError",
    "Sharding",
    "replicated",
    "split",
    "partial",
    "PartitionerFeatures",
    "PartitionedGraph",
    "CommOp",
    "partition",
    "V06_FEATURES",
    "V07_FEATURES",
    "PartitionCost",
    "estimate_cost",
    "model_parallel_speedup",
    "ssd_graph",
    "maskrcnn_graph",
    "transformer_block_graph",
    "gather_as_onehot_matmul",
    "sharded_onehot_gather",
    "topk_direct",
    "distributed_topk",
    "conv2d_direct",
    "shard_height",
    "unshard_height",
    "halo_exchange",
    "spatial_conv2d",
    "spatial_conv_stack",
]

"""An SPMD partitioner in the style of XLA's (Lepikhin et al. 2020).

Section 3.1 of the paper parallelizes models by annotating tensors with
sharding and letting the compiler partition the graph, inserting halo
exchanges (spatial partitioning), all-reduces (contracting-dimension
sharding), and reshards.  This subpackage reproduces that machinery on a
small tensor IR — and searches it automatically:

* :mod:`repro.spmd.ir` — a minimal static-shape tensor graph (conv2d,
  matmul, gather, topk, elementwise, ...) with FLOP/byte accounting and
  per-node dtypes;
* :mod:`repro.spmd.annotations` — sharding layouts (replicated / split
  along a dim / partial-pending-reduction);
* :mod:`repro.spmd.plan` — **the supported public surface**: a validated
  frozen :class:`ShardingSpec`, the :func:`make_partitioner` factory, and
  the :class:`PartitionPlan` result (assignments + inserted comm + cost);
* :mod:`repro.spmd.partitioner` — annotation propagation and communication
  insertion, with feature flags reproducing the paper's v0.6 -> v0.7 XLA
  improvements (gather/topk partitioning, gather -> one-hot matmul,
  reshard minimization, Section 4.5);
* :mod:`repro.spmd.estimator` — per-device compute/communication cost of a
  partitioned graph on a mesh, driving the Figure 9 model-parallelism
  speedup curves;
* :mod:`repro.spmd.search` — GSPMD-style automatic partitioner search:
  beam-search per-tensor shardings, prune on propagation feasibility,
  rank by estimated step time (:func:`search_partitioning`);
* :mod:`repro.spmd.graph_exec` — bit-exact execution of plans on a
  :class:`~repro.runtime.mesh.VirtualMesh` (:func:`validate_plan`);
* :mod:`repro.spmd.modelgraphs` — IR graphs for SSD, MaskRCNN, a small
  executable ResNet block, and the Transformer model-parallel block.

Supported API::

    from repro.spmd import Sharding, ShardingSpec, make_partitioner
    plan = make_partitioner("v07").partition(graph, spec)   # PartitionPlan
    result = search_partitioning(graph, SearchConfig(num_shards=4))

The legacy free functions (``replicated``/``split``/``partial``,
``partition``, ``estimate_cost``) keep working but emit a
``DeprecationWarning`` when called outside the facade.
"""

from repro.spmd.ir import Graph, Node, ShapeError
from repro.spmd.annotations import Sharding, replicated, split, partial
from repro.spmd.plan import (
    FEATURE_SETS,
    Partitioner,
    PartitionPlan,
    ShardingSpec,
    make_partitioner,
)
from repro.spmd.partitioner import (
    PartitionerFeatures,
    PartitionedGraph,
    CommOp,
    partition,
    V06_FEATURES,
    V07_FEATURES,
)
from repro.spmd.estimator import PartitionCost, estimate_cost, model_parallel_speedup
from repro.spmd.search import (
    SearchConfig,
    SearchResult,
    SearchStats,
    search_partitioning,
)
from repro.spmd.graph_exec import (
    ExecutionUnsupported,
    ValidationResult,
    execute_plan,
    execute_reference,
    make_inputs,
    validate_plan,
)
from repro.spmd.modelgraphs import (
    maskrcnn_graph,
    resnet_block_graph,
    ssd_graph,
    transformer_block_graph,
)
from repro.spmd.gather_exec import (
    gather_as_onehot_matmul,
    sharded_onehot_gather,
    topk_direct,
    distributed_topk,
)
from repro.spmd.spatial_exec import (
    conv2d_direct,
    shard_height,
    unshard_height,
    halo_exchange,
    spatial_conv2d,
    spatial_conv_stack,
)

__all__ = [
    # IR
    "Graph",
    "Node",
    "ShapeError",
    # layouts
    "Sharding",
    # supported facade (PR 5 trainer pattern)
    "ShardingSpec",
    "make_partitioner",
    "Partitioner",
    "PartitionPlan",
    "FEATURE_SETS",
    # partitioner internals (feature flags + results)
    "PartitionerFeatures",
    "PartitionedGraph",
    "CommOp",
    "V06_FEATURES",
    "V07_FEATURES",
    "PartitionCost",
    "model_parallel_speedup",
    # automatic search
    "SearchConfig",
    "SearchResult",
    "SearchStats",
    "search_partitioning",
    # bit-exact execution
    "ExecutionUnsupported",
    "ValidationResult",
    "execute_plan",
    "execute_reference",
    "make_inputs",
    "validate_plan",
    # model graphs
    "ssd_graph",
    "maskrcnn_graph",
    "resnet_block_graph",
    "transformer_block_graph",
    # functional kernels
    "gather_as_onehot_matmul",
    "sharded_onehot_gather",
    "topk_direct",
    "distributed_topk",
    "conv2d_direct",
    "shard_height",
    "unshard_height",
    "halo_exchange",
    "spatial_conv2d",
    "spatial_conv_stack",
    # deprecated entry points (warn outside the facade)
    "replicated",
    "split",
    "partial",
    "partition",
    "estimate_cost",
]

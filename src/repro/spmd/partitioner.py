"""Annotation-driven SPMD partitioning with communication insertion.

Given seed shardings (the "lightweight annotations" of Section 3.1) the
partitioner propagates layouts through the graph and records the
communication each op induces:

* conv2d over a spatially split activation -> **halo exchange**;
* matmul with a sharded contracting dimension -> **partial** output, and an
  **all-reduce** at first use;
* mismatched operand layouts -> **reshard**;
* ops without partitioning support -> **all-gather** the operand and run
  the op serially (replicated) — the Amdahl bottleneck the paper's XLA
  work removed for topk/gather/special convolutions (Section 4.5).

:class:`PartitionerFeatures` toggles reproduce the MLPerf v0.6 vs v0.7
compiler: ``V06_FEATURES`` lacks gather/topk partitioning and reshard
minimization; ``V07_FEATURES`` has them all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.spmd.annotations import Sharding, _warn_legacy
from repro.spmd.ir import Graph, Node


@dataclass(frozen=True)
class PartitionerFeatures:
    """Compiler capabilities (paper's v0.6 -> v0.7 delta, Section 4.5)."""

    partition_gather: bool = True
    partition_topk: bool = True
    gather_as_onehot_matmul: bool = True
    minimize_reshards: bool = True
    optimized_halo_barriers: bool = True


V06_FEATURES = PartitionerFeatures(
    partition_gather=False,
    partition_topk=False,
    gather_as_onehot_matmul=False,
    minimize_reshards=False,
    optimized_halo_barriers=False,
)
V07_FEATURES = PartitionerFeatures()


@dataclass(frozen=True)
class CommOp:
    """A communication operation inserted by the partitioner.

    ``bytes_per_shard`` is the payload each core moves; ``steps`` the
    number of synchronization rounds it takes (barrier overhead).
    """

    kind: str  # 'halo' | 'all_reduce' | 'all_gather' | 'reshard'
    node_id: int
    bytes_per_shard: float
    steps: int = 1


@dataclass
class PartitionedGraph:
    """The result of partitioning: per-node layouts and induced comm."""

    graph: Graph
    num_shards: int
    features: PartitionerFeatures
    shardings: dict[int, Sharding] = field(default_factory=dict)
    """Current layout of each value (updated when partials are resolved)."""
    compute_shardings: dict[int, Sharding] = field(default_factory=dict)
    """Layout each op *computed under* (what the cost estimator needs)."""
    comm_ops: list[CommOp] = field(default_factory=list)
    serial_nodes: set[int] = field(default_factory=set)

    def sharding(self, node_id: int) -> Sharding:
        return self.shardings[node_id]

    def _set(self, node_id: int, sharding: Sharding) -> None:
        self.shardings[node_id] = sharding
        self.compute_shardings[node_id] = sharding

    def comm_bytes(self) -> float:
        return sum(c.bytes_per_shard for c in self.comm_ops)

    def comm_by_kind(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for c in self.comm_ops:
            out[c.kind] = out.get(c.kind, 0.0) + c.bytes_per_shard
        return out


def _check_dtype_consistent(graph: Graph, dtype_bytes: int | None) -> None:
    """An explicit byte width must agree with every node's own dtype.

    ``None`` means "use per-node dtypes" and is always consistent; passing
    a width that silently contradicts the graph (the old hardcoded-2 bug,
    with f32 accumulators priced as bf16) is an error.
    """
    if dtype_bytes is None:
        return
    for node in graph.nodes:
        if node.dtype_bytes != dtype_bytes:
            raise ValueError(
                f"dtype_bytes={dtype_bytes} is inconsistent with node "
                f"{node.name!r} (dtype_bytes={node.dtype_bytes}); omit the "
                f"argument to use per-node dtypes"
            )


def partition(
    graph: Graph,
    seeds: dict[int, Sharding],
    num_shards: int,
    features: PartitionerFeatures = V07_FEATURES,
    dtype_bytes: int | None = None,
) -> PartitionedGraph:
    """Propagate shardings through ``graph`` and insert communication.

    Deprecated as a direct entry point — build a partitioner with
    :func:`repro.spmd.make_partitioner` and call its ``partition`` method,
    which also returns the costed :class:`repro.spmd.plan.PartitionPlan`.
    """
    _warn_legacy(
        "repro.spmd.partition()",
        "make_partitioner(...).partition(graph, ShardingSpec(...))",
    )
    return _partition_impl(graph, seeds, num_shards, features, dtype_bytes)


def _partition_impl(
    graph: Graph,
    seeds: dict[int, Sharding],
    num_shards: int,
    features: PartitionerFeatures = V07_FEATURES,
    dtype_bytes: int | None = None,
) -> PartitionedGraph:
    """Propagation + communication insertion (the facade-internal path).

    ``seeds`` maps node ids (typically inputs/parameters) to layouts; all
    other inputs default to replicated.  Communication payloads are priced
    at each tensor's own ``dtype_bytes``; passing an explicit width that
    contradicts a node raises (dtype-consistency guard).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    _check_dtype_consistent(graph, dtype_bytes)
    for node_id, sharding in seeds.items():
        if sharding.num_shards != num_shards:
            raise ValueError(
                f"seed for node {node_id} has {sharding.num_shards} shards, "
                f"partitioner uses {num_shards}"
            )
    pg = PartitionedGraph(graph=graph, num_shards=num_shards, features=features)
    if num_shards == 1:
        for node in graph.topological():
            pg._set(node.id, Sharding.replicate(1))
        return pg

    def resolve_partial(node_id: int) -> Sharding:
        """All-reduce a partial value before a consumer that needs it."""
        s = pg.shardings[node_id]
        if not s.partial:
            return s
        node = graph.node(node_id)
        pg.comm_ops.append(CommOp("all_reduce", node_id, node.output_bytes()))
        s = Sharding.replicate(num_shards)
        pg.shardings[node_id] = s  # layout change only; compute ran as partial
        return s

    def gathered(node_id: int) -> None:
        """All-gather a sharded operand so a serial op can see all of it."""
        s = pg.shardings[node_id]
        if s.partial:
            resolve_partial(node_id)
            return
        if s.dim is not None:
            node = graph.node(node_id)
            pg.comm_ops.append(CommOp("all_gather", node_id, node.output_bytes()))

    reshard_steps = 1 if features.minimize_reshards else 2

    for node in graph.topological():
        if node.op in ("input", "parameter"):
            pg._set(node.id, seeds.get(node.id, Sharding.replicate(num_shards)))
            continue

        if node.op == "conv2d":
            x_id, w_id = node.inputs
            xs = resolve_partial(x_id)
            ws = pg.shardings[w_id]
            if not ws.replicated:
                raise NotImplementedError("sharded conv filters not supported")
            if xs.dim in (1, 2):  # spatial split
                kh, kw = node.attrs["kernel"]
                k_dim = kh if xs.dim == 1 else kw
                halo = (k_dim - 1) // 2
                if halo > 0:
                    x_node = graph.node(x_id)
                    b, h, w, c = x_node.shape
                    row = (w * c) if xs.dim == 1 else (h * c)
                    steps = 1 if features.optimized_halo_barriers else 2
                    pg.comm_ops.append(
                        CommOp(
                            "halo",
                            node.id,
                            2.0 * halo * row * b * x_node.dtype_bytes,
                            steps=steps,
                        )
                    )
                pg._set(node.id, Sharding.split(num_shards, xs.dim))
            elif xs.dim == 0:  # batch split: embarrassingly parallel
                pg._set(node.id, Sharding.split(num_shards, 0))
            elif xs.dim == 3:  # input channels = contracting dim
                pg._set(node.id, Sharding.partial_sum(num_shards))
            else:
                pg._set(node.id, Sharding.replicate(num_shards))
            continue

        if node.op == "matmul":
            a_id, b_id = node.inputs
            sa = resolve_partial(a_id)
            sb = resolve_partial(b_id)
            if sa.dim == 1 or sb.dim == 0:
                # Contracting dimension sharded on either side: local slices
                # multiply, result is a partial sum.
                pg._set(node.id, Sharding.partial_sum(num_shards))
            elif sa.dim == 0:
                pg._set(node.id, Sharding.split(num_shards, 0))
            elif sb.dim == 1:
                pg._set(node.id, Sharding.split(num_shards, 1))
            else:
                pg._set(node.id, Sharding.replicate(num_shards))
            continue

        if node.op in ("elementwise", "add"):
            in_shardings = [resolve_partial(i) for i in node.inputs]
            chosen = in_shardings[0]
            for other_id, other in zip(node.inputs[1:], in_shardings[1:]):
                if other.dim != chosen.dim and not other.replicated and not chosen.replicated:
                    # Layout mismatch: reshard the second operand.
                    other_node = graph.node(other_id)
                    pg.comm_ops.append(
                        CommOp(
                            "reshard",
                            other_id,
                            other_node.output_bytes() / num_shards,
                            steps=reshard_steps,
                        )
                    )
                elif chosen.replicated and not other.replicated:
                    chosen = other
            pg._set(node.id, chosen)
            continue

        if node.op == "gather":
            (x_id,) = node.inputs
            xs = resolve_partial(x_id)
            if features.partition_gather or features.gather_as_onehot_matmul:
                # Partitioned (as one-hot matmuls on the MXU when enabled):
                # output rows split over cores.
                pg._set(node.id, Sharding.split(num_shards, 0))
            else:
                gathered(x_id)
                pg.serial_nodes.add(node.id)
                pg._set(node.id, Sharding.replicate(num_shards))
            continue

        if node.op == "topk":
            (x_id,) = node.inputs
            xs = resolve_partial(x_id)
            if features.partition_topk and xs.dim is not None:
                # Local top-k then a tiny candidate exchange.
                k = node.attrs["k"]
                pg.comm_ops.append(
                    CommOp("all_gather", node.id, float(k) * node.dtype_bytes)
                )
                pg._set(node.id, Sharding.replicate(num_shards))
            else:
                gathered(x_id)
                pg.serial_nodes.add(node.id)
                pg._set(node.id, Sharding.replicate(num_shards))
            continue

        if node.op == "reduce":
            (x_id,) = node.inputs
            xs = pg.shardings[x_id]
            if xs.partial or xs.dim is not None:
                # Partial local reductions + a scalar all-reduce.
                pg.comm_ops.append(CommOp("all_reduce", node.id, float(node.dtype_bytes)))
            pg._set(node.id, Sharding.replicate(num_shards))
            continue

        raise NotImplementedError(f"no partitioning rule for op {node.op!r}")

    return pg

"""Cost estimation of partitioned graphs -> model-parallel speedup curves.

Converts a :class:`~repro.spmd.partitioner.PartitionedGraph` into per-core
compute seconds (accounting for tile imbalance and serial unpartitioned
ops) plus communication seconds on the model tile's X-line links, and from
that the Figure 9 speedup-vs-cores curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.topology import TorusMesh, single_pod
from repro.spmd.annotations import Sharding, _warn_legacy
from repro.spmd.ir import Node
from repro.spmd.partitioner import (
    PartitionedGraph,
    PartitionerFeatures,
    V07_FEATURES,
    _check_dtype_consistent,
    _partition_impl,
)

#: forward+backward multiplier applied to forward FLOPs.
FWD_BWD_FACTOR = 3.0


@dataclass(frozen=True)
class PartitionCost:
    """Per-step cost of a partitioned graph on one model tile."""

    compute_seconds: float
    serial_seconds: float
    comm_seconds: float
    comm_bytes: float

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.serial_seconds + self.comm_seconds

    @property
    def comm_fraction(self) -> float:
        total = self.total_seconds
        return self.comm_seconds / total if total > 0 else 0.0


def _granularity(node: Node, dim: int) -> int:
    """Hardware tile granularity along a sharded dimension.

    The TPU vector unit processes activations in 8-row sublanes and the MXU
    is a 128x128 systolic array: tiles smaller than the granule pad up to
    it, so splitting a dimension below the granule stops paying off — the
    "inefficiencies from smaller dimensions after partitioning" of
    Section 5.
    """
    if node.op == "conv2d" and dim in (1, 2):
        return 8
    if node.op == "matmul":
        return 128
    return 1


def _tile_factor(node: Node, sharding: Sharding) -> float:
    """Fraction of the node's FLOPs the *slowest* core executes.

    A sharded contracting dimension (``partial``) splits work evenly; a
    split output dimension of size ``s`` over ``k`` cores gives the largest
    tile ``ceil(s/k)``, padded to the hardware granule — the load imbalance
    and small-dimension inefficiency the paper calls out for SSD.
    """
    if sharding.partial:
        return 1.0 / sharding.num_shards
    if sharding.dim is None:
        return 1.0
    if sharding.dim >= len(node.shape):
        return 1.0 / sharding.num_shards
    s = node.shape[sharding.dim]
    k = sharding.num_shards
    if s <= 0:
        return 1.0
    granule = _granularity(node, sharding.dim)
    largest = math.ceil(s / k)
    padded = min(s, math.ceil(largest / granule) * granule)
    return padded / s


def estimate_cost(
    pg: PartitionedGraph,
    mesh: TorusMesh | None = None,
    *,
    core_flops_rate: float | None = None,
    mxu_efficiency: float = 0.35,
    fwd_bwd_factor: float = FWD_BWD_FACTOR,
    per_op_overhead: float = 2.0e-6,
    dtype_bytes: int | None = None,
) -> PartitionCost:
    """Seconds per step for one partitioned model tile.

    Deprecated as a direct entry point — the :func:`repro.spmd.make_partitioner`
    facade attaches this cost to every :class:`repro.spmd.plan.PartitionPlan`.
    """
    _warn_legacy(
        "repro.spmd.estimate_cost()",
        "make_partitioner(...).partition(...).cost",
    )
    return _estimate_cost_impl(
        pg,
        mesh,
        core_flops_rate=core_flops_rate,
        mxu_efficiency=mxu_efficiency,
        fwd_bwd_factor=fwd_bwd_factor,
        per_op_overhead=per_op_overhead,
        dtype_bytes=dtype_bytes,
    )


def _estimate_cost_impl(
    pg: PartitionedGraph,
    mesh: TorusMesh | None = None,
    *,
    core_flops_rate: float | None = None,
    mxu_efficiency: float = 0.35,
    fwd_bwd_factor: float = FWD_BWD_FACTOR,
    per_op_overhead: float = 2.0e-6,
    dtype_bytes: int | None = None,
) -> PartitionCost:
    """Seconds per step for one partitioned model tile.

    ``per_op_overhead`` is a fixed per-node cost (dispatch, fusion
    boundaries) that does not shrink with partitioning; elementwise ops are
    charged as memory-bound (HBM) rather than MXU work.  HBM traffic is
    priced at each node's own ``dtype_bytes``; an explicit width must be
    consistent with the graph (see :func:`_check_dtype_consistent`).
    """
    _check_dtype_consistent(pg.graph, dtype_bytes)
    mesh = mesh if mesh is not None else single_pod()
    if core_flops_rate is None:
        core_flops_rate = mesh.chip.per_core_matmul_flops * mxu_efficiency
    hbm_per_core = mesh.chip.hbm_bandwidth / mesh.chip.cores
    graph = pg.graph
    compute = 0.0
    serial = 0.0
    for node in graph.topological():
        flops = graph.node_flops(node) * fwd_bwd_factor
        if flops == 0.0:
            continue
        serial += per_op_overhead
        if node.id in pg.serial_nodes:
            serial += flops / core_flops_rate
            continue
        factor = _tile_factor(node, pg.compute_shardings[node.id])
        if node.op in ("elementwise", "add"):
            # Memory bound: read inputs + write output through HBM.
            traffic = 3.0 * node.output_bytes() * fwd_bwd_factor
            compute += traffic * factor / hbm_per_core
        else:
            compute += flops * factor / core_flops_rate
    comm = 0.0
    comm_bytes = 0.0
    # Model-parallel groups sit on X-adjacent cores: the two cores of a chip
    # plus neighbor chips over ICI links.  Within-chip transfers are fast;
    # we charge the ICI link uniformly, which is conservative.
    bw = mesh.link_bandwidth
    alpha = mesh.chip.link_latency
    k = pg.num_shards
    for op in pg.comm_ops:
        comm_bytes += op.bytes_per_shard
        if op.kind == "halo":
            # Both boundary transfers overlap on full-duplex links.
            comm += op.steps * (alpha + (op.bytes_per_shard / 2.0) / bw)
        elif op.kind in ("all_reduce", "all_gather"):
            frac = (k - 1) / k if k > 1 else 0.0
            phases = 2.0 if op.kind == "all_reduce" else 1.0
            comm += op.steps * (phases * frac * op.bytes_per_shard / bw
                                + (k - 1) * alpha)
        elif op.kind == "reshard":
            comm += op.steps * (alpha + op.bytes_per_shard / bw)
        else:  # pragma: no cover - exhaustive kinds
            raise ValueError(f"unknown comm op kind {op.kind!r}")
    # Backward pass roughly mirrors forward communication.
    comm *= 2.0
    comm_bytes *= 2.0
    return PartitionCost(
        compute_seconds=compute,
        serial_seconds=serial,
        comm_seconds=comm,
        comm_bytes=comm_bytes,
    )


def model_parallel_speedup(
    build_graph,
    seed_fn,
    num_cores_list: list[int],
    *,
    features: PartitionerFeatures = V07_FEATURES,
    mesh: TorusMesh | None = None,
    mxu_efficiency: float = 0.35,
    dtype_bytes: int | None = None,
) -> dict[int, float]:
    """Speedup over 1 core for each model-parallel tile size.

    ``build_graph()`` returns a fresh :class:`~repro.spmd.ir.Graph`;
    ``seed_fn(graph, k)`` returns the seed shardings for ``k`` cores.
    This drives Figure 9.
    """
    if any(k < 1 for k in num_cores_list):
        raise ValueError("core counts must be >= 1")
    graph1 = build_graph()
    base = _estimate_cost_impl(
        _partition_impl(graph1, {}, 1, features, dtype_bytes),
        mesh,
        mxu_efficiency=mxu_efficiency,
    ).total_seconds
    out: dict[int, float] = {}
    for k in num_cores_list:
        graph = build_graph()
        pg = _partition_impl(graph, seed_fn(graph, k), k, features, dtype_bytes)
        cost = _estimate_cost_impl(pg, mesh, mxu_efficiency=mxu_efficiency)
        out[k] = base / cost.total_seconds
    return out

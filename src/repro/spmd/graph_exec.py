"""Bit-exact execution of partition plans on a :class:`VirtualMesh`.

The partitioner search needs ground truth: a winning
:class:`~repro.spmd.plan.PartitionPlan` must compute *the same numbers* as
the unsharded graph, not merely model well.  This module executes small IR
graphs two ways —

* :func:`execute_reference` — unsharded numpy, one array per node;
* :func:`execute_plan` — sharded, mirroring the partitioner's propagation
  op by op: halo-exchanged spatial convolutions
  (:func:`~repro.spmd.spatial_exec.spatial_conv2d`), contracting-dim
  matmuls producing partial sums resolved by *real* ring all-reduces on a
  :class:`~repro.runtime.mesh.VirtualMesh`, one-hot-matmul gathers
  (:func:`~repro.spmd.gather_exec.sharded_onehot_gather`) and distributed
  top-k (:func:`~repro.spmd.gather_exec.distributed_topk`)

— and :func:`validate_plan` compares every node bit-for-bit.

Exactness strategy: inputs are *integer-valued* float64 tensors (see
:func:`make_inputs`), so every sum any execution order produces is exact
in double precision (magnitudes stay far below 2**53) and reordering
(sharded partial sums + all-reduce vs. one dense contraction) cannot
change a single bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.runtime.mesh import VirtualMesh
from repro.spmd.gather_exec import distributed_topk, sharded_onehot_gather, topk_direct
from repro.spmd.ir import Graph, Node
from repro.spmd.plan import PartitionPlan
from repro.spmd.spatial_exec import conv2d_direct, spatial_conv2d


class ExecutionUnsupported(NotImplementedError):
    """The graph uses an op/config the small-scale executor cannot run."""


# --- deterministic inputs --------------------------------------------------


def _rng(seed: int, *path: str) -> np.random.Generator:
    from repro.cluster.jobs import derive_subseed  # lazy: avoids import cycle

    return np.random.default_rng(derive_subseed(seed, "graph_exec", *path))


def make_inputs(graph: Graph, seed: int = 0) -> dict[int, np.ndarray]:
    """Integer-valued float64 payloads for every input/parameter node.

    Small integer magnitudes keep every downstream sum exact in f64, which
    is what makes sharded-vs-replicated comparison *bit*-exact rather than
    tolerance-based.
    """
    out: dict[int, np.ndarray] = {}
    for node in graph.nodes:
        if node.op in ("input", "parameter"):
            rng = _rng(seed, graph.name, node.name)
            out[node.id] = rng.integers(-4, 5, size=node.shape).astype(np.float64)
    return out


def _gather_table(graph: Graph, node: Node, seed: int) -> np.ndarray:
    """The lookup table an IR ``gather`` reads (deterministic per node)."""
    num_indices = node.attrs["num_indices"]
    slice_elems = node.shape[1]
    rng = _rng(seed, graph.name, node.name, "table")
    return rng.integers(0, 8, size=(2 * num_indices, slice_elems)).astype(np.float64)


def _gather_ids(x_full: np.ndarray, num_indices: int, num_rows: int) -> np.ndarray:
    """Row ids derived from the (integer-valued) gather operand."""
    flat = np.abs(x_full).ravel().astype(np.int64)
    if flat.size == 0:
        flat = np.zeros(1, dtype=np.int64)
    reps = -(-num_indices // flat.size)
    return (np.tile(flat, reps)[:num_indices]) % num_rows


# --- reference (unsharded) execution ---------------------------------------


def execute_reference(
    graph: Graph, inputs: dict[int, np.ndarray], seed: int = 0
) -> dict[int, np.ndarray]:
    """Run the graph unsharded; one full array per node id."""
    vals: dict[int, np.ndarray] = {}
    for node in graph.topological():
        if node.op in ("input", "parameter"):
            vals[node.id] = np.asarray(inputs[node.id], dtype=np.float64)
        elif node.op == "conv2d":
            if node.attrs["stride"] != 1:
                raise ExecutionUnsupported("executor supports stride-1 convs only")
            x, w = vals[node.inputs[0]], vals[node.inputs[1]]
            vals[node.id] = conv2d_direct(x, w)
        elif node.op == "matmul":
            vals[node.id] = vals[node.inputs[0]] @ vals[node.inputs[1]]
        elif node.op == "elementwise":
            vals[node.id] = _apply_fn(node, vals[node.inputs[0]])
        elif node.op == "add":
            vals[node.id] = vals[node.inputs[0]] + vals[node.inputs[1]]
        elif node.op == "gather":
            table = _gather_table(graph, node, seed)
            x = vals[node.inputs[0]]
            ids = _gather_ids(x, node.attrs["num_indices"], table.shape[0])
            vals[node.id] = table[ids]
        elif node.op == "topk":
            vals[node.id] = _topk_full(node, vals[node.inputs[0]])
        elif node.op == "reduce":
            vals[node.id] = np.asarray(np.sum(vals[node.inputs[0]]))
        else:  # pragma: no cover - IR is closed over these ops
            raise ExecutionUnsupported(f"no executor for op {node.op!r}")
    return vals


def _apply_fn(node: Node, x: np.ndarray) -> np.ndarray:
    fn = node.attrs.get("fn", "identity")
    if fn == "relu":
        return np.maximum(x, 0.0)
    if fn == "identity":
        return np.array(x, copy=True)
    raise ExecutionUnsupported(f"elementwise fn {fn!r} is not integer-exact")


def _topk_full(node: Node, x: np.ndarray) -> np.ndarray:
    if int(np.prod(x.shape[:-1], initial=1)) != 1:
        raise ExecutionUnsupported("topk executor wants leading dims of size 1")
    v, _ = topk_direct(x.ravel(), node.attrs["k"])
    return v.reshape(node.shape)


# --- sharded values --------------------------------------------------------


@dataclass
class _Val:
    """One value during sharded execution.

    ``kind``: ``'rep'`` (full array), ``'split'`` (``parts`` along ``dim``)
    or ``'partial'`` (``parts`` are full-shape partial sums pending an
    all-reduce) — the executable twin of :class:`~repro.spmd.annotations.Sharding`.
    """

    kind: str
    dim: int | None = None
    parts: list[np.ndarray] = field(default_factory=list)
    full: np.ndarray | None = None


def _split_bounds(size: int, k: int) -> list[tuple[int, int]]:
    """XLA-style ceil/floor split of ``size`` into ``k`` contiguous ranges."""
    base, extra = divmod(size, k)
    bounds = []
    lo = 0
    for i in range(k):
        n = base + (1 if i < extra else 0)
        bounds.append((lo, lo + n))
        lo += n
    return bounds


def _split_array(arr: np.ndarray, k: int, dim: int) -> list[np.ndarray]:
    slicer: list[slice] = [slice(None)] * arr.ndim
    parts = []
    for lo, hi in _split_bounds(arr.shape[dim], k):
        slicer[dim] = slice(lo, hi)
        parts.append(arr[tuple(slicer)])
    return parts


class _Exec:
    """Sharded execution state: values + the mesh doing the collectives."""

    def __init__(self, graph: Graph, k: int, mesh: VirtualMesh | None) -> None:
        self.graph = graph
        self.k = k
        self.mesh = mesh if mesh is not None else VirtualMesh(k, 1)
        if self.mesh.num_devices != k:
            raise ValueError(
                f"mesh has {self.mesh.num_devices} devices, plan wants {k}"
            )
        self.vals: dict[int, _Val] = {}
        self._n_reduces = 0

    def all_reduce(self, parts: list[np.ndarray]) -> np.ndarray:
        """Sum ``parts`` with a real mesh collective (f64 policy = exact)."""
        name = f"graph_exec_ar_{self._n_reduces}"
        self._n_reduces += 1
        shape = np.asarray(parts[0]).shape
        for device, p in zip(self.mesh.devices(), parts):
            # 0-d payloads (reduce outputs) go through as 1-element vectors;
            # the mesh's device-major views need at least one axis.
            self.mesh.put(name, device, np.asarray(p).reshape(shape or (1,)))
        self.mesh.all_reduce(name, dtype_policy="f64")
        out = np.array(self.mesh.get(name, next(iter(self.mesh.devices()))))
        return out.reshape(shape)

    def to_full(self, v: _Val) -> np.ndarray:
        """Materialize the full value (lossless for rep/split; partial
        values go through the mesh all-reduce)."""
        if v.kind == "rep":
            assert v.full is not None
            return v.full
        if v.kind == "split":
            assert v.dim is not None
            return np.concatenate(v.parts, axis=v.dim)
        return self.all_reduce(v.parts)

    def resolve_partial(self, node_id: int) -> _Val:
        """Mirror of the partitioner's ``resolve_partial``."""
        v = self.vals[node_id]
        if v.kind != "partial":
            return v
        resolved = _Val(kind="rep", full=self.all_reduce(v.parts))
        self.vals[node_id] = resolved
        return resolved

    def align_to(self, v: _Val, dim: int | None) -> _Val:
        """Re-lay a non-partial value out as ``dim`` (None = replicated).

        Splitting and concatenating contiguous ranges is lossless, so this
        models reshard/all-gather without affecting bit-exactness.
        """
        if v.kind == "partial":
            raise ValueError("resolve partial values before aligning")
        if dim is None:
            return _Val(kind="rep", full=self.to_full(v))
        full = self.to_full(v)
        return _Val(kind="split", dim=dim, parts=_split_array(full, self.k, dim))


def execute_plan(
    plan: PartitionPlan,
    inputs: dict[int, np.ndarray] | None = None,
    seed: int = 0,
    mesh: VirtualMesh | None = None,
) -> dict[int, np.ndarray]:
    """Execute ``plan`` sharded over ``plan.num_shards`` virtual cores.

    Returns the *full* (materialized) value of every node, for comparison
    with :func:`execute_reference`.  Layouts follow the plan's recorded
    ``compute_shardings`` — a divergence raises, so a "validated" plan is
    the plan the cost model priced, not a lookalike.
    """
    graph = plan.graph
    k = plan.num_shards
    if inputs is None:
        inputs = make_inputs(graph, seed)
    if k == 1:
        return execute_reference(graph, inputs, seed)
    ex = _Exec(graph, k, mesh)
    features = plan.partitioned.features
    seeds = plan.spec.resolve(graph)

    for node in graph.topological():
        if node.op in ("input", "parameter"):
            arr = np.asarray(inputs[node.id], dtype=np.float64)
            s = seeds.get(node.id)
            if s is None or s.replicated:
                ex.vals[node.id] = _Val(kind="rep", full=arr)
            elif s.partial:
                raise ExecutionUnsupported("partial seeds are not executable")
            else:
                ex.vals[node.id] = ex.align_to(_Val(kind="rep", full=arr), s.dim)
        elif node.op == "conv2d":
            _exec_conv2d(ex, node)
        elif node.op == "matmul":
            _exec_matmul(ex, node)
        elif node.op in ("elementwise", "add"):
            _exec_pointwise(ex, node)
        elif node.op == "gather":
            _exec_gather(ex, node, features, seed)
        elif node.op == "topk":
            _exec_topk(ex, node, features)
        elif node.op == "reduce":
            _exec_reduce(ex, node)
        else:  # pragma: no cover - IR is closed over these ops
            raise ExecutionUnsupported(f"no sharded executor for op {node.op!r}")
        _check_layout(ex, plan, node)

    return {nid: ex.to_full(v) for nid, v in ex.vals.items()}


def _check_layout(ex: _Exec, plan: PartitionPlan, node: Node) -> None:
    want = plan.compute_shardings[node.id]
    got = ex.vals[node.id]
    kind = "partial" if want.partial else ("rep" if want.dim is None else "split")
    if got.kind != kind or (kind == "split" and got.dim != want.dim):
        raise AssertionError(
            f"executor layout {got.kind}/{got.dim} for node {node.name!r} "
            f"diverges from plan {want.describe()}"
        )


def _exec_conv2d(ex: _Exec, node: Node) -> None:
    if node.attrs["stride"] != 1:
        raise ExecutionUnsupported("executor supports stride-1 convs only")
    x_id, w_id = node.inputs
    xv = ex.resolve_partial(x_id)
    w = ex.to_full(ex.vals[w_id])
    kh, kw = node.attrs["kernel"]
    if xv.kind == "split" and xv.dim == 1:
        halo = (kh - 1) // 2
        if kh % 2 == 1 and kw % 2 == 1 and all(
            p.shape[1] >= halo for p in xv.parts
        ):
            parts, _ = spatial_conv2d(xv.parts, w)
            ex.vals[node.id] = _Val(kind="split", dim=1, parts=parts)
            return
        # Degenerate tiles: gather, convolve, re-split (lossless).
        full = conv2d_direct(ex.to_full(xv), w)
        ex.vals[node.id] = _Val(
            kind="split", dim=1, parts=_split_array(full, ex.k, 1)
        )
        return
    if xv.kind == "split" and xv.dim == 2:
        full = conv2d_direct(ex.to_full(xv), w)
        ex.vals[node.id] = _Val(
            kind="split", dim=2, parts=_split_array(full, ex.k, 2)
        )
        return
    if xv.kind == "split" and xv.dim == 0:
        parts = [
            conv2d_direct(p, w) if p.shape[0] else
            np.zeros((0,) + node.shape[1:], dtype=np.float64)
            for p in xv.parts
        ]
        ex.vals[node.id] = _Val(kind="split", dim=0, parts=parts)
        return
    if xv.kind == "split" and xv.dim == 3:
        # Contracting (input-channel) split: each core convolves its channel
        # slice against the matching filter rows -> full-shape partial sums.
        bounds = _split_bounds(w.shape[2], ex.k)
        parts = [
            conv2d_direct(p, w[:, :, lo:hi, :]) if (hi - lo) else
            np.zeros(node.shape, dtype=np.float64)
            for p, (lo, hi) in zip(xv.parts, bounds)
        ]
        ex.vals[node.id] = _Val(kind="partial", parts=parts)
        return
    if xv.kind == "split":
        full = conv2d_direct(ex.to_full(xv), w)
        ex.vals[node.id] = _Val(kind="rep", full=full)
        return
    ex.vals[node.id] = _Val(kind="rep", full=conv2d_direct(xv.full, w))


def _exec_matmul(ex: _Exec, node: Node) -> None:
    a_id, b_id = node.inputs
    av = ex.resolve_partial(a_id)
    bv = ex.resolve_partial(b_id)
    a_dim = av.dim if av.kind == "split" else None
    b_dim = bv.dim if bv.kind == "split" else None
    if a_dim == 1 or b_dim == 0:
        # Contracting dimension sharded: per-core slice matmuls -> partials.
        contract = ex.graph.node(a_id).shape[1]
        bounds = _split_bounds(contract, ex.k)
        a_parts = (
            av.parts if a_dim == 1
            else _split_array(ex.to_full(av), ex.k, 1)
        )
        b_parts = (
            bv.parts if b_dim == 0
            else _split_array(ex.to_full(bv), ex.k, 0)
        )
        parts = [
            ap @ bp if (hi - lo) else np.zeros(node.shape, dtype=np.float64)
            for ap, bp, (lo, hi) in zip(a_parts, b_parts, bounds)
        ]
        ex.vals[node.id] = _Val(kind="partial", parts=parts)
        return
    if a_dim == 0:
        b = ex.to_full(bv)
        parts = [p @ b for p in av.parts]
        ex.vals[node.id] = _Val(kind="split", dim=0, parts=parts)
        return
    if b_dim == 1:
        a = ex.to_full(av)
        parts = [a @ p for p in bv.parts]
        ex.vals[node.id] = _Val(kind="split", dim=1, parts=parts)
        return
    ex.vals[node.id] = _Val(kind="rep", full=ex.to_full(av) @ ex.to_full(bv))


def _exec_pointwise(ex: _Exec, node: Node) -> None:
    in_vals = [ex.resolve_partial(i) for i in node.inputs]
    # Mirror the partitioner's layout choice, then align every operand to it
    # (losslessly) and apply the op shard-wise.
    chosen: int | None = in_vals[0].dim if in_vals[0].kind == "split" else None
    chosen_rep = in_vals[0].kind == "rep"
    for other in in_vals[1:]:
        other_rep = other.kind == "rep"
        if chosen_rep and not other_rep:
            chosen = other.dim
            chosen_rep = False
    aligned = [ex.align_to(v, None if chosen_rep else chosen) for v in in_vals]
    if chosen_rep:
        arrays = [v.full for v in aligned]
        out = (
            _apply_fn(node, arrays[0]) if node.op == "elementwise"
            else arrays[0] + arrays[1]
        )
        ex.vals[node.id] = _Val(kind="rep", full=out)
        return
    parts = []
    for i in range(ex.k):
        ps = [v.parts[i] for v in aligned]
        parts.append(
            _apply_fn(node, ps[0]) if node.op == "elementwise" else ps[0] + ps[1]
        )
    ex.vals[node.id] = _Val(kind="split", dim=chosen, parts=parts)


def _exec_gather(ex: _Exec, node: Node, features, seed: int) -> None:
    (x_id,) = node.inputs
    xv = ex.resolve_partial(x_id)
    table = _gather_table(ex.graph, node, seed)
    ids = _gather_ids(ex.to_full(xv), node.attrs["num_indices"], table.shape[0])
    if features.partition_gather or features.gather_as_onehot_matmul:
        # Row-sharded table, one-hot matmul per core, all-reduce of partials
        # (each id's row lives on exactly one shard -> the sum is exact).
        full = sharded_onehot_gather(_split_array(table, ex.k, 0), ids, "f64")
        ex.vals[node.id] = _Val(
            kind="split", dim=0, parts=_split_array(full, ex.k, 0)
        )
    else:
        ex.vals[node.id] = _Val(kind="rep", full=table[ids])


def _exec_topk(ex: _Exec, node: Node, features) -> None:
    (x_id,) = node.inputs
    xv = ex.resolve_partial(x_id)
    if features.partition_topk and xv.kind == "split":
        if int(np.prod(node.shape[:-1], initial=1)) != 1:
            raise ExecutionUnsupported("topk executor wants leading dims of size 1")
        if xv.dim == len(ex.graph.node(x_id).shape) - 1:
            v, _ = distributed_topk(
                [p.ravel() for p in xv.parts], node.attrs["k"]
            )
            ex.vals[node.id] = _Val(kind="rep", full=v.reshape(node.shape))
            return
        full = _topk_full(node, ex.to_full(xv))
        ex.vals[node.id] = _Val(kind="rep", full=full)
        return
    ex.vals[node.id] = _Val(
        kind="rep", full=_topk_full(node, ex.to_full(xv))
    )


def _exec_reduce(ex: _Exec, node: Node) -> None:
    (x_id,) = node.inputs
    xv = ex.vals[x_id]
    if xv.kind == "rep":
        ex.vals[node.id] = _Val(kind="rep", full=np.asarray(np.sum(xv.full)))
        return
    # Partial or split: local sums + a real scalar all-reduce (exact for
    # the integer-valued payloads this executor runs).
    locals_ = [np.asarray(np.sum(p)) for p in xv.parts]
    ex.vals[node.id] = _Val(kind="rep", full=ex.all_reduce(locals_))


# --- validation ------------------------------------------------------------


@dataclass(frozen=True)
class ValidationResult:
    """Bit-exactness verdict for one plan at one seed."""

    ok: bool
    num_nodes: int
    mismatched_nodes: tuple[str, ...] = ()

    def describe(self) -> str:
        if self.ok:
            return f"bit-exact on all {self.num_nodes} nodes"
        return (
            f"MISMATCH on {len(self.mismatched_nodes)}/{self.num_nodes} "
            f"nodes: {', '.join(self.mismatched_nodes[:5])}"
        )


def validate_plan(
    plan: PartitionPlan, seed: int = 0, mesh: VirtualMesh | None = None
) -> ValidationResult:
    """Compare sharded plan execution against the replicated reference.

    Every node's materialized value must match bit-for-bit
    (``np.array_equal``, no tolerance).
    """
    inputs = make_inputs(plan.graph, seed)
    ref = execute_reference(plan.graph, inputs, seed)
    got = execute_plan(plan, inputs, seed, mesh)
    bad = tuple(
        plan.graph.node(nid).name
        for nid in sorted(ref)
        if not np.array_equal(ref[nid], got[nid])
    )
    return ValidationResult(ok=not bad, num_nodes=len(ref), mismatched_nodes=bad)

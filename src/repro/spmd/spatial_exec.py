"""Functional spatial partitioning: conv2d over H-sharded activations.

This executes Section 3.1's spatial partitioning for real on numpy: an
NHWC activation is split along the height dimension over ``k`` virtual
cores; before each convolution the shards exchange **halo rows** with their
spatial neighbors (actual array slices moving between shards, exactly the
communication XLA's SPMD partitioner inserts); each core then convolves its
padded tile locally.  The tests check bit-equality with the unsharded
convolution, through multi-layer stacks.
"""

from __future__ import annotations

import numpy as np


def conv2d_direct(x: np.ndarray, w: np.ndarray, stride: int = 1) -> np.ndarray:
    """Reference NHWC convolution with SAME padding (odd kernels).

    Small and clear rather than fast — it is the ground truth the sharded
    execution is checked against.
    """
    if x.ndim != 4 or w.ndim != 4:
        raise ValueError("expected NHWC x and KKIO w")
    kh, kw, cin, cout = w.shape
    if kh % 2 == 0 or kw % 2 == 0:
        raise ValueError("kernels must be odd for SAME padding")
    if x.shape[3] != cin:
        raise ValueError(f"channel mismatch: {x.shape[3]} vs {cin}")
    if stride != 1:
        raise ValueError("only stride 1 is supported in the functional demo")
    b, h, wd, _ = x.shape
    ph, pw = kh // 2, kw // 2
    padded = np.pad(x, ((0, 0), (ph, ph), (pw, pw), (0, 0)))
    out = np.zeros((b, h, wd, cout), dtype=np.result_type(x, w))
    for i in range(kh):
        for j in range(kw):
            patch = padded[:, i:i + h, j:j + wd, :]
            out += np.einsum("bhwc,co->bhwo", patch, w[i, j])
    return out


def shard_height(x: np.ndarray, k: int) -> list[np.ndarray]:
    """Split an NHWC activation into k height shards (XLA ceil/floor split)."""
    if x.ndim != 4:
        raise ValueError("expected NHWC activations")
    h = x.shape[1]
    if k < 1 or k > h:
        raise ValueError(f"cannot split {h} rows over {k} shards")
    base, extra = divmod(h, k)
    shards = []
    row = 0
    for i in range(k):
        rows = base + (1 if i < extra else 0)
        shards.append(x[:, row:row + rows])
        row += rows
    return shards


def unshard_height(shards: list[np.ndarray]) -> np.ndarray:
    """Concatenate height shards back into one activation."""
    if not shards:
        raise ValueError("no shards")
    return np.concatenate(shards, axis=1)


def halo_exchange(
    shards: list[np.ndarray], halo: int
) -> tuple[list[np.ndarray], float]:
    """Exchange ``halo`` boundary rows between neighboring shards.

    Returns per-shard tiles padded with the neighbors' rows (edge shards
    get zero padding on their outer side, matching SAME conv padding) and
    the total bytes that crossed shard boundaries.
    """
    if halo < 0:
        raise ValueError("halo must be non-negative")
    k = len(shards)
    if k == 0:
        raise ValueError("no shards")
    if halo == 0:
        return list(shards), 0.0
    padded = []
    moved = 0.0
    for i, tile in enumerate(shards):
        b, rows, w, c = tile.shape
        if i > 0:
            above = shards[i - 1][:, -halo:]
            moved += above.nbytes
        else:
            above = np.zeros((b, halo, w, c), dtype=tile.dtype)
        if i + 1 < k:
            below = shards[i + 1][:, :halo]
            moved += below.nbytes
        else:
            below = np.zeros((b, halo, w, c), dtype=tile.dtype)
        padded.append(np.concatenate([above, tile, below], axis=1))
    return padded, moved


def spatial_conv2d(
    shards: list[np.ndarray], w: np.ndarray
) -> tuple[list[np.ndarray], float]:
    """Convolve H-sharded activations with halo exchange.

    Each core receives its neighbors' ``(kh-1)/2`` rows, convolves its
    padded tile with VALID semantics along H (the halo supplies the
    padding) and SAME along W.  Returns output shards and halo bytes moved.
    """
    kh, kw, cin, cout = w.shape
    if kh % 2 == 0 or kw % 2 == 0:
        raise ValueError("kernels must be odd")
    halo = kh // 2
    padded, moved = halo_exchange(shards, halo)
    outs = []
    pw = kw // 2
    for tile in padded:
        b, rows, wd, _ = tile.shape
        out_rows = rows - 2 * halo
        wide = np.pad(tile, ((0, 0), (0, 0), (pw, pw), (0, 0)))
        out = np.zeros((b, out_rows, wd, cout), dtype=np.result_type(tile, w))
        for i in range(kh):
            for j in range(kw):
                patch = wide[:, i:i + out_rows, j:j + wd, :]
                out += np.einsum("bhwc,co->bhwo", patch, w[i, j])
        outs.append(out)
    return outs, moved


def spatial_conv_stack(
    x: np.ndarray,
    weights: list[np.ndarray],
    k: int,
    *,
    relu_between: bool = True,
) -> tuple[np.ndarray, float]:
    """Run a stack of convolutions spatially partitioned over k cores.

    Shards once, halo-exchanges before every layer (as the SPMD partitioner
    schedules it), and reassembles at the end.  Returns the full output and
    total halo traffic.
    """
    shards = shard_height(x, k)
    total_moved = 0.0
    for layer_index, w in enumerate(weights):
        shards, moved = spatial_conv2d(shards, w)
        total_moved += moved
        if relu_between and layer_index + 1 < len(weights):
            shards = [np.maximum(s, 0.0) for s in shards]
    return unshard_height(shards), total_moved

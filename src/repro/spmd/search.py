"""Automatic partitioner search over the tensor IR (GSPMD-style).

The paper's models were sharded by hand: a human wrote the annotations of
Section 3.1.  GSPMD (arXiv 2105.04663) and Mesh-TensorFlow (1811.02084)
showed the same decisions can be *searched* — per-tensor sharding choices
scored with a communication cost model.  This module does that over
:mod:`repro.spmd.ir` graphs:

1. **enumerate** candidate layouts for each seedable tensor (replicate, or
   split along any dimension large enough to tile);
2. **beam-search** assignments one tensor at a time, scoring every
   candidate with the real partitioner + cost estimator through the
   :func:`repro.spmd.make_partitioner` facade;
3. **prune** candidates whose propagation fails (shape/feasibility errors
   from the partition pass);
4. **rank** the surviving plans by estimated ``total_seconds``, always
   including the all-replicated baseline — a search result is therefore
   *never worse than replicated* by construction;
5. optionally **validate** winners bit-exactly against the replicated
   reference on a small :class:`~repro.runtime.mesh.VirtualMesh`
   (:func:`repro.spmd.graph_exec.validate_plan`).

Determinism: the beam is seed-stable.  All tie-breaks between equal-cost
candidates go through priorities drawn from
:func:`repro.cluster.jobs.derive_subseed`, so the same
``(graph, config)`` replays the identical ranked list bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry as _telemetry
from repro.spmd.annotations import Sharding
from repro.spmd.graph_exec import ExecutionUnsupported, ValidationResult, validate_plan
from repro.spmd.ir import Graph, Node
from repro.spmd.plan import (
    Partitioner,
    PartitionPlan,
    ShardingSpec,
    make_partitioner,
)


@dataclass(frozen=True)
class SearchConfig:
    """Frozen, validated configuration of one search run."""

    num_shards: int
    beam_width: int = 8
    top_k: int = 5
    seed: int = 0
    seed_nodes: str = "handles"
    """Which tensors get searched layouts: ``"handles"`` (the builder's
    annotation handles — the paper's own annotation points) or ``"all"``
    (every input/parameter node)."""
    validate: bool = False
    """Bit-exactly validate the winning plan(s) on a VirtualMesh."""
    validate_top: int = 1

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.beam_width < 1:
            raise ValueError("beam_width must be >= 1")
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.seed_nodes not in ("handles", "all"):
            raise ValueError('seed_nodes must be "handles" or "all"')
        if self.validate_top < 1:
            raise ValueError("validate_top must be >= 1")


@dataclass(frozen=True)
class SearchStats:
    """What the beam did (also exported as telemetry counters)."""

    candidates_expanded: int
    candidates_pruned: int
    rounds: int
    plans_validated: int = 0


@dataclass(frozen=True)
class SearchResult:
    """Ranked plans (best first) plus the replicated baseline."""

    plans: tuple[PartitionPlan, ...]
    baseline: PartitionPlan
    stats: SearchStats
    validations: tuple[ValidationResult, ...] = ()

    @property
    def best(self) -> PartitionPlan:
        return self.plans[0]

    @property
    def speedup_vs_replicated(self) -> float:
        best = self.best.total_seconds
        return self.baseline.total_seconds / best if best > 0 else 1.0

    def describe(self) -> str:
        return (
            f"search[{self.best.graph.name} k={self.best.num_shards}]: "
            f"best={self.best.total_seconds * 1e3:.3f}ms "
            f"baseline={self.baseline.total_seconds * 1e3:.3f}ms "
            f"({self.speedup_vs_replicated:.2f}x), "
            f"{self.stats.candidates_expanded} expanded / "
            f"{self.stats.candidates_pruned} pruned"
        )


def candidate_shardings(node: Node, num_shards: int) -> tuple[Sharding, ...]:
    """Layout options for one tensor: replicate + every tileable split.

    A dimension is tileable when every core gets at least one element
    (``size >= num_shards``); smaller dims would leave cores empty-handed,
    which the hardware granularity model already prices as useless.
    """
    options = [Sharding.replicate(num_shards)]
    for dim, size in enumerate(node.shape):
        if size >= num_shards:
            options.append(Sharding.split(num_shards, dim))
    return tuple(options)


def seedable_nodes(graph: Graph, seed_nodes: str) -> list[Node]:
    """The tensors the search assigns layouts to, in deterministic order."""
    if seed_nodes == "handles":
        handles = getattr(graph, "handles", {}) or {}
        ids = sorted(set(handles.values()))
        return [graph.node(i) for i in ids]
    return [n for n in graph.topological() if n.op in ("input", "parameter")]


@dataclass
class _Candidate:
    """One beam entry: a (partial) assignment and its scored plan."""

    assignment: tuple[tuple[int, Sharding], ...]
    plan: PartitionPlan
    tiebreak: float

    @property
    def cost(self) -> float:
        return self.plan.total_seconds


def _spec_for(
    num_shards: int, assignment: tuple[tuple[int, Sharding], ...]
) -> ShardingSpec:
    non_trivial = tuple(
        (nid, s) for nid, s in assignment if not s.replicated
    )
    return ShardingSpec(num_shards=num_shards, assignments=non_trivial)


def search_partitioning(
    graph: Graph,
    config: SearchConfig,
    partitioner: Partitioner | None = None,
) -> SearchResult:
    """Beam-search per-tensor shardings of ``graph`` for ``num_shards`` cores.

    Returns a :class:`SearchResult` whose ``plans`` are ranked by estimated
    step time (ties broken seed-stably).  ``partitioner`` carries the
    feature set and cost-model mesh; defaults to v0.7 on a single pod.
    """
    from repro.cluster.jobs import derive_subseed  # lazy: avoids import cycle

    if partitioner is None:
        partitioner = make_partitioner("v07")
    k = config.num_shards
    rng = np.random.default_rng(
        derive_subseed(config.seed, "spmd_search", graph.name, str(k))
    )

    baseline = partitioner.partition(graph, ShardingSpec.replicated(k))
    nodes = seedable_nodes(graph, config.seed_nodes)

    expanded = 0
    pruned = 0
    # Best plans seen anywhere in the search, deduplicated by assignment.
    pool: dict[tuple, _Candidate] = {}

    def score(
        assignment: tuple[tuple[int, Sharding], ...]
    ) -> _Candidate | None:
        nonlocal expanded, pruned
        expanded += 1
        spec = _spec_for(k, assignment)
        try:
            plan = partitioner.partition(graph, spec)
        except (NotImplementedError, ValueError, KeyError):
            # Propagation infeasible under this feature set: prune.
            pruned += 1
            return None
        cand = _Candidate(
            assignment=assignment, plan=plan, tiebreak=float(rng.random())
        )
        key = tuple((nid, s.dim, s.partial) for nid, s in assignment if not s.replicated)
        best = pool.get(key)
        if best is None or cand.cost < best.cost:
            pool[key] = cand
        return cand

    root = score(())
    assert root is not None  # the replicated assignment always propagates
    beam: list[_Candidate] = [root]

    rounds = 0
    for node in nodes:
        rounds += 1
        frontier: list[_Candidate] = []
        for cand in beam:
            for sharding in candidate_shardings(node, k):
                nxt = score(cand.assignment + ((node.id, sharding),))
                if nxt is not None:
                    frontier.append(nxt)
        if frontier:
            frontier.sort(key=lambda c: (c.cost, c.tiebreak))
            beam = frontier[: config.beam_width]
        # An empty frontier keeps the previous beam: every extension of
        # this node was infeasible, so its layout stays unassigned.

    ranked = sorted(pool.values(), key=lambda c: (c.cost, c.tiebreak))
    plans = tuple(c.plan for c in ranked[: config.top_k])
    if not plans:  # pragma: no cover - pool always holds the root
        plans = (baseline,)

    validations: list[ValidationResult] = []
    if config.validate:
        for plan in plans[: config.validate_top]:
            try:
                validations.append(validate_plan(plan, seed=config.seed))
            except ExecutionUnsupported:
                # Shape-model graphs (stride-2 convs, huge tensors) cannot
                # run at small scale; the caller sees no verdict for them.
                break

    stats = SearchStats(
        candidates_expanded=expanded,
        candidates_pruned=pruned,
        rounds=rounds,
        plans_validated=len(validations),
    )
    if _telemetry.enabled:
        m = _telemetry.metrics
        m.counter("spmd_search_runs").inc()
        m.counter("spmd_search_candidates_expanded").inc(expanded)
        m.counter("spmd_search_candidates_pruned").inc(pruned)
        m.counter("spmd_search_plans_validated").inc(len(validations))
        m.counter("spmd_search_plans_returned").inc(len(plans))
    return SearchResult(
        plans=plans,
        baseline=baseline,
        stats=stats,
        validations=tuple(validations),
    )

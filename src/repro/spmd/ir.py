"""A minimal static-shape tensor IR with FLOP and byte accounting.

Shapes follow the conventions:

* activations: ``(batch, height, width, channels)`` (NHWC) or
  ``(batch, features)``;
* conv filters: ``(kh, kw, cin, cout)``;
* matmul operands: ``(m, k) @ (k, n)``.

Each node knows its FLOPs (training = forward; the estimator applies the
forward/backward multiplier) and its output byte size; that is all the
partitioner and cost estimator need.

Every node carries an explicit ``dtype_bytes`` (defaulting to the graph's
``dtype_bytes``, bf16 = 2 unless overridden), so the partitioner's inserted
communication and the estimator's memory-bound accounting price the same
element width — a graph mixing f32 accumulators simply marks those nodes
with ``dtype_bytes=4`` instead of inheriting a silent bf16 assumption.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class ShapeError(ValueError):
    """Raised on inconsistent operand shapes."""


@dataclass(frozen=True)
class Node:
    """One operation in the graph."""

    id: int
    op: str
    inputs: tuple[int, ...]
    shape: tuple[int, ...]
    attrs: dict = field(default_factory=dict, hash=False, compare=False)
    name: str = ""
    dtype_bytes: int = 2

    @property
    def elements(self) -> int:
        return int(math.prod(self.shape)) if self.shape else 1

    def output_bytes(self, dtype_bytes: int | None = None) -> float:
        """Output size in bytes; ``None`` uses the node's own dtype."""
        return self.elements * (self.dtype_bytes if dtype_bytes is None else dtype_bytes)


class Graph:
    """A tensor program under construction (SSA, topologically ordered)."""

    def __init__(self, name: str = "graph", dtype_bytes: int = 2) -> None:
        if dtype_bytes < 1:
            raise ValueError("dtype_bytes must be >= 1")
        self.name = name
        self.dtype_bytes = dtype_bytes
        self.nodes: list[Node] = []

    def node(self, node_id: int) -> Node:
        if not 0 <= node_id < len(self.nodes):
            raise ShapeError(f"unknown node id {node_id}")
        return self.nodes[node_id]

    def _add(self, op: str, inputs: tuple[int, ...], shape: tuple[int, ...],
             attrs: dict | None = None, name: str = "",
             dtype_bytes: int | None = None) -> int:
        for i in inputs:
            if not 0 <= i < len(self.nodes):
                raise ShapeError(f"unknown input id {i}")
        node = Node(
            id=len(self.nodes), op=op, inputs=inputs, shape=tuple(shape),
            attrs=attrs or {}, name=name or f"{op}_{len(self.nodes)}",
            dtype_bytes=self.dtype_bytes if dtype_bytes is None else dtype_bytes,
        )
        self.nodes.append(node)
        return node.id

    # --- builders -------------------------------------------------------

    def input(self, shape: tuple[int, ...], name: str = "input",
              dtype_bytes: int | None = None) -> int:
        return self._add("input", (), shape, name=name, dtype_bytes=dtype_bytes)

    def parameter(self, shape: tuple[int, ...], name: str = "param",
                  dtype_bytes: int | None = None) -> int:
        return self._add("parameter", (), shape, name=name, dtype_bytes=dtype_bytes)

    def conv2d(self, x: int, w: int, stride: int = 1, name: str = "") -> int:
        xs, ws = self.node(x).shape, self.node(w).shape
        if len(xs) != 4 or len(ws) != 4:
            raise ShapeError(f"conv2d wants NHWC x and KKIO w, got {xs}, {ws}")
        b, h, wd, cin = xs
        kh, kw, win, cout = ws
        if win != cin:
            raise ShapeError(f"conv2d channel mismatch: {cin} vs {win}")
        oh = max(1, h // stride)
        ow = max(1, wd // stride)
        return self._add(
            "conv2d", (x, w), (b, oh, ow, cout),
            attrs={"kernel": (kh, kw), "stride": stride}, name=name,
        )

    def matmul(self, a: int, b: int, name: str = "") -> int:
        sa, sb = self.node(a).shape, self.node(b).shape
        if len(sa) != 2 or len(sb) != 2 or sa[1] != sb[0]:
            raise ShapeError(f"matmul mismatch: {sa} @ {sb}")
        return self._add("matmul", (a, b), (sa[0], sb[1]), name=name)

    def elementwise(self, x: int, op: str = "relu", name: str = "") -> int:
        return self._add("elementwise", (x,), self.node(x).shape,
                         attrs={"fn": op}, name=name)

    def add(self, a: int, b: int, name: str = "") -> int:
        sa, sb = self.node(a).shape, self.node(b).shape
        if sa != sb:
            raise ShapeError(f"add shape mismatch: {sa} vs {sb}")
        return self._add("add", (a, b), sa, name=name)

    def gather(self, x: int, num_indices: int, slice_elems: int, name: str = "") -> int:
        """Non-contiguous gather (ROIAlign-style): rows from a table."""
        if num_indices < 1 or slice_elems < 1:
            raise ShapeError("gather sizes must be positive")
        return self._add(
            "gather", (x,), (num_indices, slice_elems),
            attrs={"num_indices": num_indices}, name=name,
        )

    def topk(self, x: int, k: int, name: str = "") -> int:
        xs = self.node(x).shape
        if not xs or k < 1 or k > xs[-1]:
            raise ShapeError(f"topk k={k} invalid for shape {xs}")
        return self._add("topk", (x,), xs[:-1] + (k,), attrs={"k": k}, name=name)

    def reduce(self, x: int, name: str = "", dtype_bytes: int | None = None) -> int:
        """Full reduction to a scalar (losses, norms — often f32 accumulated)."""
        return self._add("reduce", (x,), (), name=name, dtype_bytes=dtype_bytes)

    def softmax(self, x: int, name: str = "") -> int:
        return self._add("elementwise", (x,), self.node(x).shape,
                         attrs={"fn": "softmax"}, name=name)

    # --- accounting -----------------------------------------------------

    def node_flops(self, node: Node) -> float:
        """Forward FLOPs of one node."""
        if node.op == "conv2d":
            b, oh, ow, cout = node.shape
            kh, kw = node.attrs["kernel"]
            cin = self.node(node.inputs[0]).shape[3]
            return 2.0 * b * oh * ow * cout * kh * kw * cin
        if node.op == "matmul":
            m, n = node.shape
            k = self.node(node.inputs[0]).shape[1]
            return 2.0 * m * k * n
        if node.op in ("elementwise", "add"):
            return float(node.elements)
        if node.op == "gather":
            return float(node.elements)  # address generation + copy
        if node.op == "topk":
            src = self.node(node.inputs[0])
            n = src.shape[-1]
            return float(src.elements) * max(1.0, math.log2(max(2, n)))
        if node.op == "reduce":
            return float(self.node(node.inputs[0]).elements)
        return 0.0

    def total_flops(self) -> float:
        return sum(self.node_flops(n) for n in self.nodes)

    def topological(self) -> list[Node]:
        """Nodes are appended in topological order by construction."""
        return list(self.nodes)

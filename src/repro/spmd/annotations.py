"""Sharding annotations: how a tensor is laid out over the model tile.

:class:`Sharding` is the single layout type; the supported constructors are
its classmethods (``Sharding.replicate`` / ``Sharding.split`` /
``Sharding.partial_sum``).  The legacy free functions (``replicated`` /
``split`` / ``partial``) keep working but emit a ``DeprecationWarning``
unless called through the :func:`repro.spmd.make_partitioner` facade —
the same factory-silent pattern :func:`repro.core.make_trainer` uses for
the concrete trainer constructors.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from dataclasses import dataclass

# Depth counter set while the repro.spmd facade (make_partitioner /
# Partitioner / search) runs, so the deprecated module-level entry points
# stay silent on the supported path (single-threaded, like make_trainer's
# _IN_FACTORY flag).
_FACADE_DEPTH = 0


@contextmanager
def _facade():
    """Silence legacy-entry-point deprecation warnings within the facade."""
    global _FACADE_DEPTH
    _FACADE_DEPTH += 1
    try:
        yield
    finally:
        _FACADE_DEPTH -= 1


def _warn_legacy(old: str, new: str) -> None:
    if _FACADE_DEPTH:
        return
    warnings.warn(
        f"calling {old} directly is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class Sharding:
    """Layout of one tensor across ``num_shards`` model-parallel cores.

    ``dim is None`` means fully replicated.  ``partial=True`` means every
    core holds a partial *sum* of the full value (a matmul whose contracting
    dimension was sharded) — usable only after an all-reduce.
    """

    num_shards: int
    dim: int | None = None
    partial: bool = False

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.partial and self.dim is not None:
            raise ValueError("a partial value is not also dim-sharded")
        if self.dim is not None and self.dim < 0:
            raise ValueError("dim must be non-negative")

    # --- supported constructors ----------------------------------------

    @classmethod
    def replicate(cls, num_shards: int) -> "Sharding":
        """Fully replicated over ``num_shards`` cores."""
        return cls(num_shards=num_shards)

    @classmethod
    def split(cls, num_shards: int, dim: int) -> "Sharding":
        """Split along tensor dimension ``dim`` over ``num_shards`` cores."""
        return cls(num_shards=num_shards, dim=dim)

    @classmethod
    def partial_sum(cls, num_shards: int) -> "Sharding":
        """Every core holds a partial sum (pending all-reduce)."""
        return cls(num_shards=num_shards, partial=True)

    # --- inspection -----------------------------------------------------

    @property
    def replicated(self) -> bool:
        return self.dim is None and not self.partial

    def tile_fraction(self) -> float:
        """Per-core share of the tensor's elements."""
        if self.dim is None:
            return 1.0
        return 1.0 / self.num_shards

    def describe(self) -> str:
        if self.partial:
            return f"partial(+{self.num_shards})"
        if self.dim is None:
            return "replicated"
        return f"split(dim={self.dim}, {self.num_shards})"


# --- legacy free functions (deprecated outside the facade) -----------------


def replicated(num_shards: int) -> Sharding:
    _warn_legacy("repro.spmd.replicated()", "Sharding.replicate()")
    return Sharding.replicate(num_shards)


def split(num_shards: int, dim: int) -> Sharding:
    _warn_legacy("repro.spmd.split()", "Sharding.split()")
    return Sharding.split(num_shards, dim)


def partial(num_shards: int) -> Sharding:
    _warn_legacy("repro.spmd.partial()", "Sharding.partial_sum()")
    return Sharding.partial_sum(num_shards)

"""Sharding annotations: how a tensor is laid out over the model tile."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Sharding:
    """Layout of one tensor across ``num_shards`` model-parallel cores.

    ``dim is None`` means fully replicated.  ``partial=True`` means every
    core holds a partial *sum* of the full value (a matmul whose contracting
    dimension was sharded) — usable only after an all-reduce.
    """

    num_shards: int
    dim: int | None = None
    partial: bool = False

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.partial and self.dim is not None:
            raise ValueError("a partial value is not also dim-sharded")

    @property
    def replicated(self) -> bool:
        return self.dim is None and not self.partial

    def tile_fraction(self) -> float:
        """Per-core share of the tensor's elements."""
        if self.dim is None:
            return 1.0
        return 1.0 / self.num_shards

    def describe(self) -> str:
        if self.partial:
            return f"partial(+{self.num_shards})"
        if self.dim is None:
            return "replicated"
        return f"split(dim={self.dim}, {self.num_shards})"


def replicated(num_shards: int) -> Sharding:
    return Sharding(num_shards=num_shards)


def split(num_shards: int, dim: int) -> Sharding:
    if dim < 0:
        raise ValueError("dim must be non-negative")
    return Sharding(num_shards=num_shards, dim=dim)


def partial(num_shards: int) -> Sharding:
    return Sharding(num_shards=num_shards, partial=True)

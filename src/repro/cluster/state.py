"""Chip and slice bookkeeping for a shared, multi-tenant pod.

A :class:`ClusterState` owns the pod's ``(x, y)`` chip grid and hands out
**rectangular mesh slices** to jobs — the per-workload pod carving of the
MLPerf-0.6 TPU-pods setup (one tenant gets a contiguous sub-mesh whose
rings never cross another tenant's traffic).  The same row-major
:func:`~repro.resilience.faults.host_map` rule that drives preemption
failure domains everywhere else in the repo maps the pod's chips onto
hosts, so a host-level :class:`~repro.resilience.faults.PreemptionSignal`
names exactly the chips it takes down.

Chips have three independent facts tracked here: an *owner* (which job's
slice they belong to, if any), *dead* (killed by a fault plan and not yet
healed), and the host that drives them.  A dead chip inside a slice stays
assigned — the owning job shrinks around it and regrows in place when the
chip heals; a dead free chip is simply not allocatable until healed.

Everything is deterministic: allocation scans anchors in row-major order
(first fit, trying the rotated shape second), so the same request stream
always produces the same packing.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.resilience.faults import Device, host_map

logger = logging.getLogger("repro.cluster")


@dataclass(frozen=True)
class Slice:
    """A rectangular sub-mesh allocation: ``width x height`` chips at an anchor."""

    job: str
    x0: int
    y0: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.x0 < 0 or self.y0 < 0:
            raise ValueError("slice anchor must be non-negative")
        if self.width < 1 or self.height < 1:
            raise ValueError("slice dims must be >= 1")

    @property
    def shape(self) -> tuple[int, int]:
        return (self.width, self.height)

    @property
    def num_chips(self) -> int:
        return self.width * self.height

    @property
    def devices(self) -> tuple[Device, ...]:
        """The slice's chips, x-major (the repo's canonical enumeration)."""
        return tuple(
            (x, y)
            for x in range(self.x0, self.x0 + self.width)
            for y in range(self.y0, self.y0 + self.height)
        )


class ClusterState:
    """Allocation/death/heal bookkeeping of one pod shared by many jobs."""

    def __init__(
        self, mesh_shape: tuple[int, int], chips_per_host: int = 8
    ) -> None:
        x_size, y_size = mesh_shape
        if x_size < 1 or y_size < 1:
            raise ValueError("mesh dims must be >= 1")
        self.mesh_shape = (x_size, y_size)
        self.chips_per_host = chips_per_host
        #: Host index -> chips, by the repo-wide row-major block rule.
        self.hosts = host_map(mesh_shape, chips_per_host)
        self._host_of: dict[Device, int] = {
            chip: h for h, chips in self.hosts.items() for chip in chips
        }
        self._owner: dict[Device, str | None] = {
            (x, y): None for x in range(x_size) for y in range(y_size)
        }
        #: Dead chip -> the time it died (drives heal eligibility).
        self._dead: dict[Device, float] = {}
        self._slices: dict[str, Slice] = {}

    # --- read side -----------------------------------------------------------

    @property
    def total_chips(self) -> int:
        return self.mesh_shape[0] * self.mesh_shape[1]

    @property
    def dead_chips(self) -> int:
        return len(self._dead)

    @property
    def free_chips(self) -> int:
        """Chips that are allocatable right now (unowned and alive)."""
        return sum(
            1
            for dev, owner in self._owner.items()
            if owner is None and dev not in self._dead
        )

    @property
    def slices(self) -> dict[str, Slice]:
        return dict(self._slices)

    def slice_of(self, job: str) -> Slice | None:
        return self._slices.get(job)

    def owner_of(self, device: Device) -> str | None:
        return self._owner[device]

    def host_of(self, device: Device) -> int:
        return self._host_of[device]

    def hosts_of(self, job: str) -> tuple[int, ...]:
        """The hosts driving at least one chip of ``job``'s slice."""
        slc = self._slices[job]
        return tuple(sorted({self._host_of[d] for d in slc.devices}))

    def is_dead(self, device: Device) -> bool:
        return device in self._dead

    def alive_in(self, job: str) -> tuple[Device, ...]:
        """The currently usable chips of ``job``'s slice, x-major."""
        slc = self._slices[job]
        return tuple(d for d in slc.devices if d not in self._dead)

    # --- allocation ----------------------------------------------------------

    def _fits(
        self,
        x0: int,
        y0: int,
        width: int,
        height: int,
        extra_free: frozenset[str] = frozenset(),
    ) -> bool:
        for x in range(x0, x0 + width):
            for y in range(y0, y0 + height):
                if (x, y) in self._dead:
                    return False
                owner = self._owner[(x, y)]
                if owner is not None and owner not in extra_free:
                    return False
        return True

    def find_anchor(
        self,
        shape: tuple[int, int],
        evictable: frozenset[str] = frozenset(),
    ) -> tuple[int, int, int, int] | None:
        """First-fit anchor for a ``shape`` rectangle, or ``None``.

        Scans anchors row-major (x-major, matching chip enumeration), the
        requested orientation first and the rotated one second.
        ``evictable`` names jobs whose chips may be counted as free — the
        hypothetical-eviction check the preemption planner uses before
        actually evicting anyone.
        """
        x_size, y_size = self.mesh_shape
        w, h = shape
        orientations = [(w, h)] if w == h else [(w, h), (h, w)]
        for ow, oh in orientations:
            if ow > x_size or oh > y_size:
                continue
            for x0 in range(x_size - ow + 1):
                for y0 in range(y_size - oh + 1):
                    if self._fits(x0, y0, ow, oh, evictable):
                        return (x0, y0, ow, oh)
        return None

    def allocate(self, job: str, shape: tuple[int, int]) -> Slice | None:
        """Carve a rectangular slice for ``job``; ``None`` if nothing fits."""
        if job in self._slices:
            raise ValueError(f"job {job!r} already holds a slice")
        anchor = self.find_anchor(shape)
        if anchor is None:
            return None
        x0, y0, w, h = anchor
        slc = Slice(job=job, x0=x0, y0=y0, width=w, height=h)
        for dev in slc.devices:
            self._owner[dev] = job
        self._slices[job] = slc
        logger.debug("allocated %dx%d at (%d,%d) to %s", w, h, x0, y0, job)
        return slc

    def release(self, job: str) -> Slice | None:
        """Free ``job``'s slice (dead chips inside it stay dead)."""
        slc = self._slices.pop(job, None)
        if slc is None:
            return None
        for dev in slc.devices:
            self._owner[dev] = None
        return slc

    # --- faults and healing --------------------------------------------------

    def fail_chip(self, device: Device, now_s: float) -> str | None:
        """Mark one chip dead; returns the owning job (``None`` if free)."""
        if device not in self._owner:
            raise ValueError(f"device {device} not on the pod")
        if device not in self._dead:
            self._dead[device] = now_s
        return self._owner[device]

    def heal_ready(self, now_s: float, heal_after_s: float) -> tuple[Device, ...]:
        """Dead chips whose repair window has elapsed by ``now_s``."""
        return tuple(
            sorted(
                dev
                for dev, since in self._dead.items()
                if now_s - since >= heal_after_s
            )
        )

    def heal_chip(self, device: Device) -> str | None:
        """Return a repaired chip to service; returns the owning job."""
        self._dead.pop(device, None)
        return self._owner[device]

"""Elastic multi-tenant scheduler: many training jobs on one simulated pod.

The scheduler composes every failure-machinery layer the repo has built —
:class:`~repro.resilience.faults.FaultPlan` chip deaths and host
preemptions, :class:`~repro.resilience.checkpoint.TrainerCheckpoint`
resharding, the grace-window save of
:class:`~repro.resilience.faults.PreemptionSignal`, heartbeat/oracle
detection latency, barrier straggler blame — and runs them *under
contention*: jobs queue, retry admission with the shared
:class:`~repro.resilience.faults.RetryPolicy`, preempt each other by
priority, shrink elastically around dead chips, and regrow into healed or
freed ones.

Time is quantized into cluster **ticks** of ``base_step_seconds``: every
running, unstalled job executes one synchronous training step per tick
(straggler slowdown accrues as stall debt, so a 2x straggler makes real
progress every other tick).  Recovery charges that do not quantize —
detection latency, checkpoint restore transfers, grace-window saves —
are charged to the job's own accounting clock and stall it until the
cluster clock catches up.

Per tick, in deterministic order:

1. fault injection — the plan's chip deaths shrink or evict their owners
   (unannounced: detection latency is charged); the plan's host
   preemptions do the same through the announced grace-window path;
2. healing — chips whose repair window elapsed return to service;
3. admission — pending jobs in (priority, arrival, name) order get a
   rectangular slice, possibly preempting strictly-lower-priority
   tenants (grace-window save, requeue with the checkpoint: zero lost
   steps when the write fits); placement failures retry with bounded
   exponential backoff + deterministic jitter, then reject;
4. elasticity — running jobs regrow in place over healed chips, and
   shrunken jobs migrate to a freed full-size slice elsewhere;
5. execution — one step per running job, checkpoints on the job's
   interval, completions release their slice.

Everything is a pure function of ``(specs, config, plan, seed)``: one
seed replays the whole multi-tenant run, event for event and bit for bit
(:func:`solo_replay` pins the latter per tenant).
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry as _telemetry
from repro.cluster.jobs import (
    COMPLETED,
    PENDING,
    REJECTED,
    RUNNING,
    JobReport,
    JobSpec,
    derive_subseed,
)
from repro.cluster.state import ClusterState
from repro.resilience.faults import (
    Device,
    FaultPlan,
    PreemptionSignal,
    RetryPolicy,
)

logger = logging.getLogger("repro.cluster")

#: Default admission policy: no detection timeout (the scheduler knows a
#: placement failed immediately), 8 bounded attempts backing off 2 s -> ~4
#: min with 25% deterministic jitter to decorrelate tenant retries.
DEFAULT_ADMISSION_POLICY = RetryPolicy(
    timeout_s=0.0,
    max_attempts=8,
    backoff_s=2.0,
    backoff_factor=2.0,
    jitter_frac=0.25,
)


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of the shared pod and its recovery/admission machinery.

    ``heal_after_s`` turns chip deaths into repairable outages (``None``
    means chips never return); ``heartbeat_interval_s`` replaces oracle
    detection of unannounced deaths with a measured
    :class:`~repro.controlplane.heartbeat.HeartbeatDetector` (interval,
    timeout = interval/2, suspicion threshold 2).  ``straggler_timeout``
    is the per-step barrier timeout in multiples of the base step time —
    steps slower than it get their straggler chips blamed through the
    :mod:`repro.controlplane.barrier` machinery.
    """

    mesh_shape: tuple[int, int]
    chips_per_host: int = 8
    base_step_seconds: float = 1.0
    detection_timeout_s: float = 0.5
    restore_bandwidth_bytes_per_s: float = 1e9
    checkpoint_write_seconds: float = 0.0
    preemption_grace_s: float = 30.0
    heal_after_s: float | None = None
    admission_policy: RetryPolicy = DEFAULT_ADMISSION_POLICY
    heartbeat_interval_s: float | None = None
    straggler_timeout: float = 1.5
    max_ticks: int = 10_000
    seed: int = 0

    def __post_init__(self) -> None:
        x, y = self.mesh_shape
        if x < 1 or y < 1:
            raise ValueError("mesh dims must be >= 1")
        if self.chips_per_host < 1:
            raise ValueError("chips_per_host must be >= 1")
        if self.base_step_seconds <= 0:
            raise ValueError("base_step_seconds must be > 0")
        if self.restore_bandwidth_bytes_per_s <= 0:
            raise ValueError("restore bandwidth must be > 0")
        if self.checkpoint_write_seconds < 0:
            raise ValueError("checkpoint_write_seconds must be >= 0")
        if self.preemption_grace_s < 0:
            raise ValueError("preemption_grace_s must be >= 0")
        if self.heal_after_s is not None and self.heal_after_s < 0:
            raise ValueError("heal_after_s must be >= 0")
        if self.straggler_timeout <= 1.0:
            raise ValueError("straggler_timeout must be > 1 step")
        if self.max_ticks < 1:
            raise ValueError("max_ticks must be >= 1")


@dataclass
class ClusterResult:
    """Outcome of one cluster run: per-tenant reports plus pod-level totals."""

    jobs: dict[str, JobReport] = field(default_factory=dict)
    ticks: int = 0
    total_seconds: float = 0.0
    chip_seconds_capacity: float = 0.0
    chip_seconds_used: float = 0.0
    #: Every scheduling transition, as ``(tick, event, tenant, info)``.
    events: list[tuple[int, str, str, dict]] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return sum(1 for j in self.jobs.values() if j.state == COMPLETED)

    @property
    def rejected(self) -> int:
        return sum(1 for j in self.jobs.values() if j.state == REJECTED)

    @property
    def preemptions(self) -> int:
        return sum(j.preemptions for j in self.jobs.values())

    @property
    def utilization(self) -> float:
        """Chip-seconds spent training over chip-seconds of live capacity."""
        if self.chip_seconds_capacity <= 0:
            return 0.0
        return self.chip_seconds_used / self.chip_seconds_capacity

    @property
    def fairness(self) -> float:
        """Jain's index over the goodput of every tenant that got service.

        1.0 when every admitted tenant saw identical goodput; 1/n when one
        tenant got everything.  Jobs never admitted don't dilute the index
        (their goodput is undefined, not zero).
        """
        goodputs = [
            j.goodput for j in self.jobs.values() if j.admissions > 0
        ]
        if not goodputs:
            return 1.0
        square_of_sum = sum(goodputs) ** 2
        sum_of_squares = sum(g * g for g in goodputs)
        if sum_of_squares == 0.0:
            return 1.0
        return square_of_sum / (len(goodputs) * sum_of_squares)

    @property
    def slo_attainment(self) -> float:
        """Fraction of tenants whose SLO was attained."""
        if not self.jobs:
            return 1.0
        return sum(
            1 for j in self.jobs.values() if j.slo_attained
        ) / len(self.jobs)

    @property
    def mean_goodput(self) -> float:
        served = [j.goodput for j in self.jobs.values() if j.admissions > 0]
        if not served:
            return 0.0
        return sum(served) / len(served)

    def trace(self) -> list[tuple[int, str, str]]:
        """The ``(tick, event, tenant)`` skeleton (what regression tests pin)."""
        return [(tick, event, tenant) for tick, event, tenant, _ in self.events]


class _Job:
    """Mutable runtime of one job (the report carries the durable outcome)."""

    __slots__ = (
        "spec", "report", "trainer", "trainer_base", "batch_fn", "ckpt",
        "ckpt_step", "ckpt_time", "ckpt_bytes", "step", "resume_at_s",
        "next_retry_tick", "attempts", "stall_debt", "retry_key",
    )

    def __init__(self, spec: JobSpec, cluster_seed: int) -> None:
        self.spec = spec
        self.report = JobReport(tenant=spec.name, priority=spec.priority)
        self.trainer = None
        self.trainer_base = _resolve_trainer_config(spec, cluster_seed)
        self.batch_fn = (
            spec.batch_fn_factory(
                derive_subseed(cluster_seed, "batches", spec.name)
            )
            if spec.batch_fn_factory is not None
            else None
        )
        self.ckpt = None
        self.ckpt_step = 0
        self.ckpt_time = 0.0
        self.ckpt_bytes = spec.state_bytes
        self.step = 0
        self.resume_at_s = 0.0
        self.next_retry_tick = spec.arrival_tick
        self.attempts = 0
        self.stall_debt = 0.0
        self.retry_key = derive_subseed(cluster_seed, "retry", spec.name)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def state(self) -> str:
        return self.report.state

    @state.setter
    def state(self, value: str) -> None:
        self.report.state = value

    @property
    def terminal(self) -> bool:
        return self.report.state in (COMPLETED, REJECTED)


def _resolve_trainer_config(spec: JobSpec, cluster_seed: int):
    """The job's trainer config with its init seed derived from the cluster seed."""
    if spec.trainer_config is None:
        return None
    base = spec.trainer_config
    if base.seed is None:
        base = base.with_(
            seed=derive_subseed(cluster_seed, "init", spec.name)
        )
    return base


class ClusterScheduler:
    """Drive a set of :class:`JobSpec` through one pod under one fault plan."""

    def __init__(
        self,
        specs: list[JobSpec] | tuple[JobSpec, ...],
        config: ClusterConfig,
        *,
        plan: FaultPlan | None = None,
        detector=None,
    ) -> None:
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError("job names must be unique")
        self.config = config
        self.plan = plan if plan is not None else FaultPlan()
        if detector is not None:
            self.detector = detector
        elif config.heartbeat_interval_s is not None:
            from repro.controlplane.heartbeat import HeartbeatDetector

            self.detector = HeartbeatDetector(
                interval_s=config.heartbeat_interval_s,
                timeout_s=config.heartbeat_interval_s / 2,
                suspicion_threshold=2,
            )
        else:
            from repro.controlplane.heartbeat import OracleDetector

            self.detector = OracleDetector(config.detection_timeout_s)
        self.state = ClusterState(config.mesh_shape, config.chips_per_host)
        self.jobs = {s.name: _Job(s, config.seed) for s in specs}
        self.result = ClusterResult(
            jobs={name: job.report for name, job in self.jobs.items()}
        )
        self._tick = 0

    # --- bookkeeping helpers -------------------------------------------------

    def _emit(self, event: str, tenant: str, **info) -> None:
        self.result.events.append((self._tick, event, tenant, info))
        _telemetry.flight_recorder.record(
            "cluster", event, tick=self._tick, tenant=tenant, **info
        )
        logger.debug("tick %d: %s %s %s", self._tick, event, tenant, info)

    def _count(self, metric: str, tenant: str, amount: float = 1.0) -> None:
        if _telemetry.enabled:
            _telemetry.metrics.counter(metric, tenant=tenant).inc(amount)

    def _restore_seconds(self, job: _Job) -> float:
        return job.ckpt_bytes / self.config.restore_bandwidth_bytes_per_s

    def _save_checkpoint(
        self, job: _Job, charge_s: float, now_s: float | None = None
    ) -> None:
        """Snapshot the job's full state; ``charge_s`` is the non-overlapped cost."""
        if job.trainer is not None:
            job.ckpt = job.trainer.save_checkpoint()
            job.ckpt_bytes = job.ckpt.nbytes
        job.ckpt_step = job.step
        if now_s is not None:
            job.ckpt_time = now_s
        job.report.checkpoints_taken += 1
        job.report.total_seconds += charge_s
        job.report.timeline.append(("save", job.step))

    def _should_checkpoint(self, job: _Job, now_s: float) -> bool:
        """Per-tenant policy decision; ``None`` keeps the legacy fixed rule."""
        policy = job.spec.checkpoint_policy
        if policy is None:
            return job.step % job.spec.checkpoint_interval == 0
        return policy.should_checkpoint(
            step=job.step,
            now_s=now_s,
            last_checkpoint_step=job.ckpt_step,
            last_checkpoint_time_s=job.ckpt_time,
        )

    def _build_trainer(self, job: _Job, replicas: int, restore: bool) -> None:
        """(Re)construct the job's trainer and optionally restore its checkpoint."""
        if job.trainer_base is not None:
            from repro.core.trainer import make_trainer

            job.trainer = make_trainer(
                job.trainer_base.with_(mesh_shape=(replicas, 1))
            )
        job.report.timeline.append(("build", replicas))
        job.report.replicas = replicas
        if restore:
            if job.trainer is not None:
                job.trainer.restore_checkpoint(job.ckpt)
            job.report.timeline.append(("restore", job.ckpt_step))
            job.step = job.ckpt_step

    # --- fault handling ------------------------------------------------------

    def _handle_chip_deaths(self, now_s: float) -> None:
        hits = [
            dev
            for dev in self.plan.chip_failures_at_step(self._tick)
            if not self.state.is_dead(dev)
        ]
        if not hits:
            return
        affected: dict[str, list[Device]] = {}
        for dev in hits:
            owner = self.state.fail_chip(dev, now_s)
            if owner is not None:
                affected.setdefault(owner, []).append(dev)
        self._emit(
            "chip_failure", "",
            devices=[list(d) for d in hits],
            owners=sorted(affected),
        )
        for name in sorted(affected):
            self._shrink_or_evict(
                self.jobs[name], affected[name], now_s, announced=False,
            )

    def _handle_plan_preemptions(self, now_s: float) -> None:
        """The plan's host evictions: announced chip removals with a grace window."""
        for sig in self.plan.preemptions_at_step(self._tick):
            chips = self.state.hosts.get(sig.host, ())
            lost = [d for d in chips if not self.state.is_dead(d)]
            if not lost:
                continue
            affected: dict[str, list[Device]] = {}
            for dev in lost:
                owner = self.state.fail_chip(dev, now_s)
                if owner is not None:
                    affected.setdefault(owner, []).append(dev)
            self._emit(
                "host_preemption", "",
                host=sig.host, chips=len(lost), owners=sorted(affected),
            )
            for name in sorted(affected):
                self._shrink_or_evict(
                    self.jobs[name], affected[name], now_s,
                    announced=True, grace_s=sig.grace_s,
                )

    def _shrink_or_evict(
        self,
        job: _Job,
        lost_devices: list[Device],
        now_s: float,
        *,
        announced: bool,
        grace_s: float = 0.0,
    ) -> None:
        """A running job lost chips: shrink onto the survivors or requeue.

        Announced losses (host preemptions) get the grace-window
        best-effort save — zero lost steps when the checkpoint write fits
        inside the window.  Unannounced deaths charge the detector's
        latency as a fleet hang plus the wasted partial step, exactly as
        :func:`~repro.resilience.chaos.run_chaos` does for a single job.
        """
        if job.state != RUNNING:
            return  # pending/terminal jobs hold no slice
        report = job.report
        stall_s = 0.0
        if announced:
            save_s = self._restore_seconds(job)
            if save_s <= grace_s:
                self._save_checkpoint(job, save_s, now_s)
                stall_s += save_s
                self._count("cluster_grace_saves", job.name)
            lost_steps = job.step - job.ckpt_step
        else:
            latency = self.detector.detection_latency(now_s)
            report.detections += 1
            report.detection_seconds += latency
            stall_s += latency
            # The interrupted step is wasted wall time on top of the rework.
            report.total_seconds += self.config.base_step_seconds
            lost_steps = (job.step - job.ckpt_step) + 1
        report.lost_steps += lost_steps
        self._count("cluster_lost_steps", job.name, lost_steps)
        survivors = self.state.alive_in(job.name)
        if len(survivors) >= max(job.spec.min_chips, 1):
            # Elastic shrink in place: reshard the checkpoint onto fewer
            # replicas and replay from it.
            restore_s = self._restore_seconds(job)
            stall_s += restore_s
            report.restarts += 1
            report.restart_seconds += stall_s
            report.total_seconds += stall_s
            report.shrinks += 1
            job.resume_at_s = now_s + stall_s
            self._build_trainer(job, len(survivors), restore=True)
            self._count("cluster_shrinks", job.name)
            self._emit(
                "shrink", job.name,
                lost=[list(d) for d in lost_devices],
                replicas=len(survivors), lost_steps=lost_steps,
                announced=announced,
            )
        else:
            # Below the elastic floor: give the slice back and requeue with
            # the checkpoint — the job resumes from it on readmission.
            self.state.release(job.name)
            job.trainer = None
            job.step = job.ckpt_step
            job.state = PENDING
            job.next_retry_tick = self._tick + 1
            job.attempts = 0
            report.total_seconds += stall_s
            report.replicas = 0
            report.evictions += 1
            self._count("cluster_evictions", job.name)
            self._emit(
                "evict", job.name,
                lost_steps=lost_steps, announced=announced,
                survivors=len(survivors),
            )

    def _handle_heals(self, now_s: float) -> None:
        if self.config.heal_after_s is None:
            return
        healed = self.state.heal_ready(now_s, self.config.heal_after_s)
        for dev in healed:
            self.state.heal_chip(dev)
        if healed:
            self._emit("heal", "", devices=[list(d) for d in healed])

    # --- admission and preemption -------------------------------------------

    def _preemption_plan(self, job: _Job) -> list[_Job] | None:
        """The minimal prefix of lower-priority victims that frees a slice."""
        candidates = sorted(
            (
                other
                for other in self.jobs.values()
                if other.state == RUNNING
                and other.spec.priority < job.spec.priority
            ),
            key=lambda other: (other.spec.priority, other.name),
        )
        evicted: list[_Job] = []
        for victim in candidates:
            evicted.append(victim)
            names = frozenset(v.name for v in evicted)
            if self.state.find_anchor(job.spec.slice_shape, evictable=names):
                return evicted
        return None

    def _preempt(self, victim: _Job, now_s: float, by: _Job) -> None:
        """Evict ``victim`` through the announced grace-window path."""
        grace = self.config.preemption_grace_s
        signals = [
            PreemptionSignal(host=h, at_step=self._tick, grace_s=grace)
            for h in self.state.hosts_of(victim.name)
        ]
        grace_s = min(sig.grace_s for sig in signals)
        save_s = self._restore_seconds(victim)
        saved_in_grace = save_s <= grace_s
        report = victim.report
        if saved_in_grace:
            self._save_checkpoint(victim, save_s, now_s)
            lost = 0
            self._count("cluster_grace_saves", victim.name)
        else:
            lost = victim.step - victim.ckpt_step
            victim.step = victim.ckpt_step
            report.lost_steps += lost
            self._count("cluster_lost_steps", victim.name, lost)
        self.state.release(victim.name)
        victim.trainer = None
        victim.state = PENDING
        victim.next_retry_tick = self._tick + 1
        victim.attempts = 0
        report.preemptions += 1
        report.replicas = 0
        self._count("cluster_preemptions", victim.name)
        self._emit(
            "preempt", victim.name,
            by=by.name, hosts=[sig.host for sig in signals],
            saved_in_grace=saved_in_grace, lost_steps=lost,
        )
        logger.warning(
            "tick %d: %s (prio %d) preempted %s (prio %d): %s",
            self._tick, by.name, by.spec.priority, victim.name,
            victim.spec.priority,
            "saved in grace window" if saved_in_grace
            else f"{lost} steps lost",
        )

    def _try_admit(self, job: _Job, now_s: float) -> bool:
        slc = self.state.allocate(job.name, job.spec.slice_shape)
        if slc is None:
            victims = self._preemption_plan(job)
            if victims is None:
                return False
            for victim in victims:
                self._preempt(victim, now_s, by=job)
            slc = self.state.allocate(job.name, job.spec.slice_shape)
            assert slc is not None, "eviction plan failed to free a slice"
        report = job.report
        resuming = report.admissions > 0
        job.state = RUNNING
        job.attempts = 0
        report.admissions += 1
        if report.admitted_tick is None:
            report.admitted_tick = self._tick
        replicas = len(self.state.alive_in(job.name))
        if resuming:
            # Moving the checkpoint back onto the new slice is a restart.
            restore_s = self._restore_seconds(job)
            report.restarts += 1
            report.restart_seconds += restore_s
            report.total_seconds += restore_s
            job.resume_at_s = now_s + restore_s
            self._build_trainer(job, replicas, restore=True)
        else:
            job.resume_at_s = now_s
            self._build_trainer(job, replicas, restore=False)
            # Initial snapshot before any work, as run_chaos takes one.
            self._save_checkpoint(job, 0.0, now_s)
        self._count("cluster_admissions", job.name)
        self._emit(
            "admit", job.name,
            slice=[slc.x0, slc.y0, slc.width, slc.height],
            replicas=replicas, resuming=resuming,
        )
        return True

    def _run_admission(self, now_s: float) -> None:
        policy = self.config.admission_policy
        waiting = sorted(
            (
                job
                for job in self.jobs.values()
                if job.state == PENDING and self._tick >= job.spec.arrival_tick
            ),
            key=lambda job: (
                -job.spec.priority, job.spec.arrival_tick, job.name,
            ),
        )
        for job in waiting:
            report = job.report
            report.queue_wait_ticks += 1
            if report.admissions > 0:
                # A previously served tenant's wait is real wall time lost.
                report.total_seconds += self.config.base_step_seconds
            if self._tick < job.next_retry_tick:
                continue
            if self._try_admit(job, now_s):
                continue
            job.attempts += 1
            if job.attempts >= policy.max_attempts:
                job.state = REJECTED
                self._count("cluster_rejections", job.name)
                self._emit("reject", job.name, attempts=job.attempts)
                logger.warning(
                    "tick %d: %s rejected after %d admission attempts",
                    self._tick, job.name, job.attempts,
                )
                if _telemetry.enabled:
                    _telemetry.flight_recorder.dump(
                        reason=f"tenant_rejected:{job.name}"
                    )
                continue
            delay_s = policy.delay_after(job.attempts, key=job.retry_key)
            job.next_retry_tick = self._tick + max(
                1, math.ceil(delay_s / self.config.base_step_seconds)
            )
            report.admission_retries += 1
            self._count("cluster_admission_retries", job.name)
            self._emit(
                "admission_retry", job.name,
                attempt=job.attempts, delay_s=round(delay_s, 6),
                next_tick=job.next_retry_tick,
            )

    # --- elasticity ----------------------------------------------------------

    def _run_elasticity(self, now_s: float) -> None:
        """Regrow running jobs over healed chips; migrate shrunken jobs."""
        for name in sorted(self.jobs):
            job = self.jobs[name]
            if job.state != RUNNING or now_s < job.resume_at_s:
                continue
            alive = self.state.alive_in(name)
            if len(alive) > job.report.replicas:
                # Chips inside the slice healed: expand onto them at a
                # checkpoint boundary (save -> rebuild bigger -> restore).
                self._resize(job, len(alive), now_s, kind="regrow")
            elif len(alive) < job.spec.num_chips:
                # Running degraded: a full-size slice freed up elsewhere
                # (a tenant finished, or healing restored another region).
                anchor = self.state.find_anchor(
                    job.spec.slice_shape, evictable=frozenset((name,))
                )
                if anchor is not None:
                    self.state.release(name)
                    slc = self.state.allocate(name, job.spec.slice_shape)
                    assert slc is not None
                    self._resize(
                        job, len(self.state.alive_in(name)), now_s,
                        kind="migrate",
                    )

    def _resize(self, job: _Job, replicas: int, now_s: float, kind: str) -> None:
        """Announced replica-count change at a checkpoint boundary."""
        self._save_checkpoint(job, self.config.checkpoint_write_seconds, now_s)
        restore_s = self._restore_seconds(job)
        job.report.total_seconds += restore_s
        job.resume_at_s = now_s + self.config.checkpoint_write_seconds + restore_s
        self._build_trainer(job, replicas, restore=True)
        if kind == "regrow":
            job.report.regrows += 1
        else:
            job.report.migrations += 1
        self._count(f"cluster_{kind}s", job.name)
        self._emit(kind, job.name, replicas=replicas)

    # --- execution -----------------------------------------------------------

    def _blame_stragglers(self, job: _Job, alive, slowdown: float) -> None:
        """Attribute a slow step through the control-plane barrier machinery."""
        from repro.controlplane.barrier import resolve_barrier

        _, y_size = self.config.mesh_shape
        base = self.config.base_step_seconds
        arrivals = {
            x * y_size + y: base * self.plan.straggler_factor((x, y), self._tick)
            for (x, y) in alive
        }
        result = resolve_barrier(
            arrivals, timeout_s=base * self.config.straggler_timeout
        )
        if result.stragglers:
            self._count(
                "cluster_straggler_blames", job.name, len(result.stragglers)
            )

    def _run_steps(self, now_s: float) -> None:
        base = self.config.base_step_seconds
        for name in sorted(self.jobs):
            job = self.jobs[name]
            if job.state != RUNNING or now_s < job.resume_at_s:
                continue
            alive = self.state.alive_in(name)
            slowdown = max(
                self.plan.straggler_factor(dev, self._tick) for dev in alive
            )
            if slowdown > 1.0:
                self._blame_stragglers(job, alive, slowdown)
                job.stall_debt += (slowdown - 1.0) * base
                if job.stall_debt >= base:
                    # The synchronous step is still in flight: the fleet
                    # waits on its slowest chip and makes no progress.
                    job.stall_debt -= base
                    job.report.total_seconds += base
                    self._count("cluster_straggler_stall_ticks", name)
                    continue
            report = job.report
            if job.trainer is not None:
                x, labels = job.batch_fn(job.step)
                result = job.trainer.step(x, labels)
                del result  # the loss is the job's own business
            report.record_run_step(job.step)
            report.steps_executed += 1
            report.total_seconds += base
            job.step += 1
            self._count("cluster_steps", name)
            self.result.chip_seconds_used += len(alive) * base
            if job.step >= job.spec.target_steps:
                self._complete(job, now_s + base)
            elif self._should_checkpoint(job, now_s + base):
                self._save_checkpoint(
                    job, self.config.checkpoint_write_seconds, now_s + base
                )

    def _complete(self, job: _Job, finish_s: float) -> None:
        report = job.report
        report.useful_seconds = (
            job.spec.target_steps * self.config.base_step_seconds
        )
        report.finish_s = finish_s
        report.completed_tick = self._tick
        if job.trainer is not None:
            report.final_params = job.trainer.params
        self.state.release(job.name)
        job.trainer = None
        job.state = COMPLETED
        self._count("cluster_completions", job.name)
        self._emit(
            "complete", job.name,
            steps=job.step, goodput=round(report.goodput, 6),
        )

    # --- main loop -----------------------------------------------------------

    def run(self) -> ClusterResult:
        config = self.config
        while self._tick < config.max_ticks and not all(
            job.terminal for job in self.jobs.values()
        ):
            now_s = self._tick * config.base_step_seconds
            self._handle_chip_deaths(now_s)
            self._handle_plan_preemptions(now_s)
            self._handle_heals(now_s)
            self._run_admission(now_s)
            self._run_elasticity(now_s)
            self._run_steps(now_s)
            self.result.chip_seconds_capacity += (
                self.state.total_chips - self.state.dead_chips
            ) * config.base_step_seconds
            if _telemetry.enabled:
                m = _telemetry.metrics
                m.gauge("cluster_free_chips").set(self.state.free_chips)
                m.gauge("cluster_dead_chips").set(self.state.dead_chips)
                m.gauge("cluster_running_jobs").set(
                    sum(1 for j in self.jobs.values() if j.state == RUNNING)
                )
                m.gauge("cluster_pending_jobs").set(
                    sum(1 for j in self.jobs.values() if j.state == PENDING)
                )
            self._tick += 1
        self.result.ticks = self._tick
        self.result.total_seconds = self._tick * config.base_step_seconds
        for job in self.jobs.values():
            report = job.report
            if job.state == RUNNING:
                # Horizon ended mid-run: progress so far is the useful work.
                report.useful_seconds = (
                    job.step * config.base_step_seconds
                )
                if job.trainer is not None:
                    report.final_params = job.trainer.params
            report.slo_attained = (
                job.state == COMPLETED
                and report.goodput >= job.spec.slo_goodput
                and (
                    job.spec.deadline_s is None
                    or (
                        report.finish_s is not None
                        and report.finish_s <= job.spec.deadline_s
                    )
                )
            )
            if _telemetry.enabled:
                _telemetry.metrics.gauge(
                    "cluster_slo_attained", tenant=job.name
                ).set(1.0 if report.slo_attained else 0.0)
        logger.info(
            "cluster run done: %d ticks, %d/%d completed, %d rejected, "
            "%d preemptions, utilization %.3f, fairness %.3f",
            self.result.ticks, self.result.completed, len(self.jobs),
            self.result.rejected, self.result.preemptions,
            self.result.utilization, self.result.fairness,
        )
        return self.result


def run_cluster(
    specs,
    config: ClusterConfig,
    *,
    plan: FaultPlan | None = None,
    detector=None,
) -> ClusterResult:
    """Run ``specs`` through one pod under ``plan`` (see :class:`ClusterScheduler`)."""
    return ClusterScheduler(
        specs, config, plan=plan, detector=detector
    ).run()


def solo_replay(
    spec: JobSpec, report: JobReport, cluster_seed: int
) -> dict[str, np.ndarray] | None:
    """Re-execute one tenant's recorded timeline with the job alone.

    Walks the ``("build" | "restore" | "save" | "run", ...)`` ops of the
    job's :class:`~repro.cluster.jobs.JobReport` timeline against a fresh
    trainer built from the same derived sub-seeds, with no cluster, no
    other tenants, and no fault machinery.  The multi-tenant run's final
    parameters must match this bit-for-bit — packing many tenants onto
    one pod never contaminates anyone's numerics.  Returns ``None`` for
    accounting-only jobs (nothing to replay).
    """
    if spec.trainer_config is None:
        return None
    from repro.core.trainer import make_trainer

    base = _resolve_trainer_config(spec, cluster_seed)
    batch_fn = spec.batch_fn_factory(
        derive_subseed(cluster_seed, "batches", spec.name)
    )
    trainer = None
    ckpt = None
    for op in report.timeline:
        kind = op[0]
        if kind == "build":
            trainer = make_trainer(base.with_(mesh_shape=(op[1], 1)))
        elif kind == "save":
            ckpt = trainer.save_checkpoint()
        elif kind == "restore":
            if ckpt is None or ckpt.step_index != op[1]:
                # The recorded restore must target the last saved snapshot;
                # anything else means the timeline is corrupt.
                raise ValueError(
                    f"timeline restore targets step {op[1]}, "
                    f"last save was {None if ckpt is None else ckpt.step_index}"
                )
            trainer.restore_checkpoint(ckpt)
        elif kind == "run":
            for step in range(op[1], op[2]):
                trainer.step(*batch_fn(step))
        else:  # pragma: no cover - future-proofing
            raise ValueError(f"unknown timeline op {op!r}")
    return trainer.params if trainer is not None else None

"""Job descriptions, per-tenant reports, and single-seed RNG splitting.

A :class:`JobSpec` declares one tenant's training job — the slice shape it
wants, its priority, its SLO — and, in real-numerics mode, the
:class:`~repro.core.trainer.TrainerConfig` it runs through
:func:`~repro.core.trainer.make_trainer`.  The scheduler turns each spec
into a :class:`JobReport`, which extends the repo-wide
:class:`~repro.resilience.chaos.GoodputAccounting` schema with the tenant
lifecycle (admissions, preemptions, shrinks, regrows, SLO attainment) and
a replayable **timeline** of every trainer-visible operation.

Reproducibility contract (:func:`derive_subseed`): every random choice of
a multi-job chaos run — the pod's fault plan, each job's trainer init,
each job's batch stream, each tenant's retry jitter — is derived from the
*single* cluster seed through a labeled hash path, so one ``--seed``
replays the whole cluster bit-for-bit and two tenants never share an RNG
stream by accident.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.resilience.chaos import BatchFn, GoodputAccounting

#: Job lifecycle states (plain strings so tables/JSON stay readable).
PENDING = "pending"
RUNNING = "running"
COMPLETED = "completed"
REJECTED = "rejected"

JOB_STATES = (PENDING, RUNNING, COMPLETED, REJECTED)


def derive_subseed(seed: int, *path: str | int) -> int:
    """A 32-bit sub-seed that is a pure function of ``seed`` and a label path.

    String path parts are hashed (SHA-256, first 8 bytes) into entropy
    words for :class:`numpy.random.SeedSequence`, whose mixing is
    documented as stable across platforms and numpy versions.  Distinct
    paths give statistically independent streams::

        derive_subseed(2021, "faults")            # the pod's fault plan
        derive_subseed(2021, "init", "tenant-a")  # one job's trainer init
        derive_subseed(2021, "batches", "tenant-a")

    This is the single splitting rule of :mod:`repro.cluster` — every
    random draw in a cluster run traces back to one seed through it.
    """
    entropy: list[int] = [int(seed) & 0xFFFFFFFFFFFFFFFF]
    for part in path:
        if isinstance(part, int):
            entropy.append(part & 0xFFFFFFFFFFFFFFFF)
        else:
            digest = hashlib.sha256(str(part).encode()).digest()
            entropy.append(int.from_bytes(digest[:8], "big"))
    return int(np.random.SeedSequence(entropy).generate_state(1)[0])


@dataclass(frozen=True)
class JobSpec:
    """One tenant's declared training job.

    ``slice_shape`` is the rectangular chip slice the job wants (the
    scheduler may also place its rotation); ``min_chips`` is the elastic
    floor — chip deaths shrink the job down to it before the job is
    evicted and requeued.  ``priority`` is strict: a higher-priority
    arrival may preempt lower-priority tenants to make room.

    In real-numerics mode (``trainer_config`` set) the job trains an
    actual model; ``batch_fn_factory(job_seed)`` must build the
    deterministic global-batch function (same data order at every replica
    count — the global batch must stay divisible by every survivor count
    the fault plan can produce).  Without a trainer config the job runs in
    accounting-only mode over ``state_bytes`` of checkpoint payload.

    The SLO is attained when the job completes with at least
    ``slo_goodput`` goodput and, if ``deadline_s`` is set, finishes by
    that cluster wall-clock time.

    ``checkpoint_policy`` is a per-tenant opt-in: a
    :class:`~repro.controlplane.checkpointing.CheckpointPolicy` (e.g.
    :class:`~repro.controlplane.checkpointing.RiskAdaptive`) that
    replaces the fixed ``checkpoint_interval`` rule — a high-hazard
    tenant can checkpoint on the Young/Daly schedule while its
    neighbors keep the legacy step interval.  ``None`` (the default)
    preserves the fixed-interval behavior bit-for-bit.
    """

    name: str
    slice_shape: tuple[int, int]
    target_steps: int
    priority: int = 0
    arrival_tick: int = 0
    min_chips: int = 1
    checkpoint_interval: int = 5
    state_bytes: int = 0
    trainer_config: Any = None
    batch_fn_factory: Callable[[int], BatchFn] | None = None
    slo_goodput: float = 0.0
    deadline_s: float | None = None
    checkpoint_policy: Any = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job needs a non-empty name")
        w, h = self.slice_shape
        if w < 1 or h < 1:
            raise ValueError("slice_shape dims must be >= 1")
        if self.target_steps < 1:
            raise ValueError("target_steps must be >= 1")
        if self.arrival_tick < 0:
            raise ValueError("arrival_tick must be >= 0")
        if not 1 <= self.min_chips <= self.num_chips:
            raise ValueError("min_chips must be in [1, slice chips]")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.state_bytes < 0:
            raise ValueError("state_bytes must be >= 0")
        if not 0.0 <= self.slo_goodput <= 1.0:
            raise ValueError("slo_goodput must be in [0, 1]")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be > 0")
        if self.trainer_config is not None and self.batch_fn_factory is None:
            raise ValueError(
                "real-numerics jobs need a batch_fn_factory(job_seed)"
            )

    @property
    def num_chips(self) -> int:
        return self.slice_shape[0] * self.slice_shape[1]


@dataclass
class JobReport(GoodputAccounting):
    """Per-tenant outcome: the shared goodput schema plus the lifecycle.

    ``timeline`` is the replayable record of every trainer-visible
    operation the scheduler performed for this job, as tuples:

    * ``("build", replicas)`` — (re)construct the trainer for that many
      replicas (fresh init from the job's derived seed);
    * ``("restore", ckpt_step)`` — load the last checkpoint saved at that
      step;
    * ``("save", step)`` — snapshot the full training state;
    * ``("run", start, end)`` — execute steps ``[start, end)``.

    :func:`repro.cluster.scheduler.solo_replay` executes exactly this
    sequence with the job alone on a machine and must land on
    bit-identical final parameters — multi-tenancy never contaminates a
    tenant's numerics.
    """

    tenant: str = ""
    priority: int = 0
    state: str = PENDING
    admitted_tick: int | None = None
    completed_tick: int | None = None
    finish_s: float | None = None
    replicas: int = 0
    admissions: int = 0
    admission_retries: int = 0
    evictions: int = 0
    shrinks: int = 0
    regrows: int = 0
    migrations: int = 0
    queue_wait_ticks: int = 0
    slo_attained: bool | None = None
    timeline: list[tuple] = field(default_factory=list)
    final_params: dict[str, np.ndarray] | None = None

    def record_run_step(self, step: int) -> None:
        """Extend the trailing ``("run", ...)`` segment with one step."""
        if self.timeline and self.timeline[-1][0] == "run" and (
            self.timeline[-1][2] == step
        ):
            self.timeline[-1] = ("run", self.timeline[-1][1], step + 1)
        else:
            self.timeline.append(("run", step, step + 1))

"""Elastic multi-tenant cluster scheduling over one simulated pod.

Many concurrent training jobs share one Multipod: :class:`ClusterState`
carves rectangular mesh slices against the repo-wide host map,
:class:`ClusterScheduler` runs admission (with the shared
:class:`~repro.resilience.faults.RetryPolicy` backoff), strict-priority
preemption through the announced grace-window path, elastic
shrink/regrow across :class:`~repro.resilience.faults.FaultPlan` chip
deaths, and per-tenant goodput/fairness/SLO accounting on the
:class:`~repro.resilience.chaos.GoodputAccounting` schema.

One cluster ``seed`` determines everything (:func:`derive_subseed`);
:func:`solo_replay` proves a tenant's numerics are bit-identical to
running its recorded timeline alone.
"""

from repro.cluster.jobs import (
    COMPLETED,
    JOB_STATES,
    PENDING,
    REJECTED,
    RUNNING,
    JobReport,
    JobSpec,
    derive_subseed,
)
from repro.cluster.scheduler import (
    DEFAULT_ADMISSION_POLICY,
    ClusterConfig,
    ClusterResult,
    ClusterScheduler,
    run_cluster,
    solo_replay,
)
from repro.cluster.state import ClusterState, Slice
from repro.resilience.faults import RetryPolicy

__all__ = [
    "COMPLETED",
    "DEFAULT_ADMISSION_POLICY",
    "JOB_STATES",
    "PENDING",
    "REJECTED",
    "RUNNING",
    "ClusterConfig",
    "ClusterResult",
    "ClusterScheduler",
    "ClusterState",
    "JobReport",
    "JobSpec",
    "RetryPolicy",
    "Slice",
    "derive_subseed",
    "run_cluster",
    "solo_replay",
]

"""Two-tenant cluster smoke: priority preemption with zero lost steps.

``python -m repro.cluster`` packs two real-numerics WUS jobs onto a pod
with room for only one: the low-priority tenant is admitted first, a
high-priority arrival preempts it through the grace-window checkpoint
path, and the victim resumes from the saved step once the slice frees up.
The run asserts the paper-level claims — the evicted tenant loses zero
steps, both finish, and each tenant's final parameters are bit-identical
to a solo replay of its recorded timeline — and exits non-zero if any
fails, so CI can gate on it.
"""

from __future__ import annotations

import os
import sys

import numpy as np

from repro.cluster import (
    ClusterConfig,
    ClusterScheduler,
    JobSpec,
    solo_replay,
)
from repro.core.trainer import TrainerConfig
from repro.models.mlp import MLP
from repro.optim.adam import Adam


def _batch_fn_factory(job_seed: int):
    """Global-batch stream: 12 samples (divisible by 1..4 survivors)."""

    def batch(step: int):
        rng = np.random.default_rng((job_seed, step))
        return rng.standard_normal((12, 8)), rng.integers(0, 4, size=12)

    return batch


def main() -> int:
    seed = int(os.environ.get("REPRO_CLUSTER_SEED", "2021"))
    trainer_config = TrainerConfig(
        model=MLP([8, 16, 4]), optimizer=Adam(learning_rate=0.01),
        strategy="wus",
    )
    specs = [
        JobSpec(
            name="tenant-low", slice_shape=(2, 2), target_steps=12,
            priority=0, checkpoint_interval=4,
            trainer_config=trainer_config,
            batch_fn_factory=_batch_fn_factory,
        ),
        JobSpec(
            name="tenant-high", slice_shape=(2, 2), target_steps=8,
            priority=1, arrival_tick=5, checkpoint_interval=4,
            trainer_config=trainer_config,
            batch_fn_factory=_batch_fn_factory,
        ),
    ]
    # The pod holds exactly one 2x2 slice: the high-priority arrival must
    # preempt.  Restores are instant (tiny model over 1 GB/s) so the
    # grace-window save always fits and the victim loses zero steps.
    config = ClusterConfig(
        mesh_shape=(2, 2), chips_per_host=2, preemption_grace_s=30.0,
        seed=seed,
    )
    result = ClusterScheduler(specs, config).run()

    print(f"cluster smoke (seed {seed}): {result.ticks} ticks")
    for name, report in sorted(result.jobs.items()):
        print(
            f"  {name}: state={report.state} steps={report.steps_executed}"
            f" lost={report.lost_steps} preemptions={report.preemptions}"
            f" goodput={report.goodput:.3f}"
        )
    for tick, event, tenant in result.trace():
        print(f"  tick {tick:3d}  {event:16s} {tenant}")

    failures = []
    low = result.jobs["tenant-low"]
    high = result.jobs["tenant-high"]
    if low.state != "completed" or high.state != "completed":
        failures.append("both tenants must complete")
    if high.preemptions != 0:
        failures.append("the high-priority tenant must never be preempted")
    if low.preemptions < 1:
        failures.append("the low-priority tenant must have been preempted")
    if low.lost_steps != 0:
        failures.append(
            f"grace-window save must lose zero steps (lost {low.lost_steps})"
        )
    for spec in specs:
        report = result.jobs[spec.name]
        replay = solo_replay(spec, report, seed)
        identical = replay is not None and all(
            np.array_equal(report.final_params[k], replay[k])
            for k in replay
        )
        print(f"  {spec.name}: solo replay bit-identical: {identical}")
        if not identical:
            failures.append(f"{spec.name} diverged from its solo replay")

    # Determinism end-to-end: the same seed replays the same event trace.
    rerun = ClusterScheduler(specs, config).run()
    if rerun.trace() != result.trace():
        failures.append("same-seed rerun produced a different event trace")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("cluster smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

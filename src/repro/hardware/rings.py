"""Ring construction for the multipod collective schedules (Figure 4).

Section 3.3 of the paper builds three families of reduction rings:

* **Y rings** — bidirectional rings along the Y torus dimension (one per
  mesh column); they carry the bulk of the gradient reduce-scatter ("red
  rings" in Figure 4).
* **X lines** — per-row paths along the X mesh dimension; they carry the
  second-stage reduce-scatter whose payload is already ``1/y_size`` of the
  gradients.
* **Model-peer rings** — when model parallelism shards weights over ``m``
  X-adjacent chips, gradient reduction along X happens between *peers*
  (chips holding the same weight shard), hopping over the ``m-1``
  model-parallel neighbors in between ("dotted blue" in Figure 4).  The
  model-parallel forward/backward all-reduces run on the short
  ``m``-chip X segments themselves ("black rings").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.hardware.routing import dimension_ordered_path, path_links
from repro.hardware.topology import Coordinate, Link, TorusMesh


@dataclass(frozen=True)
class Ring:
    """An ordered communication ring (or open line) over mesh chips.

    Attributes
    ----------
    members:
        Chips in ring order.
    closed:
        True when a physical wrap link closes the ring (a torus dimension);
        False for an open line (a mesh dimension), where ring algorithms
        must fall back to line variants.
    hop_stride:
        Number of physical hops between consecutive members (1 for plain
        rings; ``m`` for model-peer rings hopping over ``m-1`` chips).
    """

    members: tuple[Coordinate, ...]
    closed: bool
    hop_stride: int = 1

    def __post_init__(self) -> None:
        if len(self.members) < 2:
            raise ValueError("a ring needs at least 2 members")
        if len(set(self.members)) != len(self.members):
            raise ValueError("ring members must be distinct")

    @property
    def size(self) -> int:
        return len(self.members)

    def segments(self, mesh: TorusMesh) -> list[list[Link]]:
        """Physical links between consecutive members, in ring order.

        Returns ``size`` segments for a closed ring (including the closing
        hop) and ``size - 1`` for an open line.  Each segment is the
        dimension-ordered shortest path between neighbors.
        """
        pairs = list(zip(self.members, self.members[1:]))
        if self.closed:
            pairs.append((self.members[-1], self.members[0]))
        return [
            path_links(mesh, dimension_ordered_path(mesh, a, b)) for a, b in pairs
        ]

    def all_links(self, mesh: TorusMesh) -> list[Link]:
        """Flat list of every physical link the ring touches."""
        return [link for seg in self.segments(mesh) for link in seg]


def y_ring(mesh: TorusMesh, x: int) -> Ring:
    """The Y-dimension ring (or line) in mesh column ``x``."""
    if not 0 <= x < mesh.x_size:
        raise ValueError(f"column {x} outside mesh")
    members = tuple(Coordinate(x, y) for y in range(mesh.y_size))
    return Ring(members, closed=mesh.wrap_y)


def x_line(mesh: TorusMesh, y: int) -> Ring:
    """The X-dimension line (or ring, in a single-pod torus) in row ``y``."""
    if not 0 <= y < mesh.y_size:
        raise ValueError(f"row {y} outside mesh")
    members = tuple(Coordinate(x, y) for x in range(mesh.x_size))
    return Ring(members, closed=mesh.wrap_x)


def all_y_rings(mesh: TorusMesh) -> list[Ring]:
    """One Y ring per mesh column — they use disjoint physical links."""
    return [y_ring(mesh, x) for x in range(mesh.x_size)]


def all_x_lines(mesh: TorusMesh) -> list[Ring]:
    """One X line per mesh row — disjoint physical links."""
    return [x_line(mesh, y) for y in range(mesh.y_size)]


def model_group(mesh: TorusMesh, coord: Coordinate, mp_size: int) -> tuple[Coordinate, ...]:
    """The X-adjacent model-parallel group containing ``coord``.

    Model-parallel groups are aligned blocks of ``mp_size`` chips along X
    ("placed along a line on the X-dimension", Section 3.3).
    """
    if mp_size < 1:
        raise ValueError("mp_size must be >= 1")
    if mesh.x_size % mp_size != 0:
        raise ValueError(
            f"x_size {mesh.x_size} not divisible by model-parallel size {mp_size}"
        )
    base = (coord.x // mp_size) * mp_size
    return tuple(Coordinate(base + i, coord.y) for i in range(mp_size))


def degraded_ring(ring: Ring, dead: Iterable[Coordinate]) -> Ring | None:
    """Heal a ring around dead chips by hopping over the holes.

    Survivors keep their ring order; the segment between the neighbors of a
    dead chip is the dimension-ordered path *through* the hole's position
    — exactly the model-peer hop of Figure 4, applied to an unplanned hole
    (ICI links remain switchable through a failed chip's router, so only
    the chip's compute and buffers are lost).  Returns ``None`` when fewer
    than two members survive (no ring schedule is possible).

    ``hop_stride`` is preserved from the source ring: it describes the
    *planned* member spacing; the healed holes are irregular and are
    visible only through :meth:`Ring.segments`.
    """
    dead = set(tuple(d) for d in dead)
    members = tuple(m for m in ring.members if tuple(m) not in dead)
    if len(members) < 2:
        return None
    if len(members) == len(ring.members):
        return ring
    return Ring(members, closed=ring.closed, hop_stride=ring.hop_stride)


def degraded_rings(
    rings: Iterable[Ring], dead: Iterable[Coordinate]
) -> list[Ring]:
    """Heal every ring, dropping those with fewer than two survivors."""
    dead = set(tuple(d) for d in dead)
    healed = []
    for ring in rings:
        survivor = degraded_ring(ring, dead)
        if survivor is not None:
            healed.append(survivor)
    return healed


def model_peer_ring(mesh: TorusMesh, y: int, mp_size: int, peer_id: int) -> Ring:
    """Gradient-reduction ring over model-parallel *peers* in row ``y``.

    With ``mp_size``-way model parallelism along X, the chips at
    ``x = peer_id, peer_id + mp_size, peer_id + 2*mp_size, ...`` hold the
    same weight shard; their gradients are summed on a ring that hops over
    the intervening model-parallel neighbors (Figure 4, dotted blue; only
    ``peer_id = 0`` is drawn in the paper).
    """
    if not 0 <= peer_id < mp_size:
        raise ValueError(f"peer_id {peer_id} outside model group of {mp_size}")
    if mesh.x_size % mp_size != 0:
        raise ValueError(
            f"x_size {mesh.x_size} not divisible by model-parallel size {mp_size}"
        )
    if mesh.x_size // mp_size < 2:
        raise ValueError("need at least 2 replicas along X for a peer ring")
    members = tuple(
        Coordinate(x, y) for x in range(peer_id, mesh.x_size, mp_size)
    )
    return Ring(members, closed=mesh.wrap_x, hop_stride=mp_size)

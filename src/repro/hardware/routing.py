"""Routing tables and the sparse row/column routing scheme.

The TPU-v3 chip has only 1024 routing-table entries.  On a 4096-chip
multipod a dense table (one entry per destination chip) cannot fit, so the
paper uses a *sparse* scheme in which each chip only installs routes to the
chips sharing its row or its column.  That is sufficient for the ring-based
all-reduce schedules of Section 3.3, which only ever communicate along rows
and columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.topology import Coordinate, Link, TorusMesh


class RoutingError(RuntimeError):
    """Raised when a route cannot be installed or resolved."""


@dataclass
class RoutingTable:
    """Per-chip destination table with a hardware capacity limit.

    Maps destination coordinates to the next-hop neighbor coordinate.
    """

    owner: Coordinate
    capacity: int
    entries: dict[Coordinate, Coordinate] = field(default_factory=dict)

    def install(self, dest: Coordinate, next_hop: Coordinate) -> None:
        if dest == self.owner:
            raise RoutingError(f"cannot install route to self at {self.owner}")
        if dest not in self.entries and len(self.entries) >= self.capacity:
            raise RoutingError(
                f"routing table at {self.owner} full "
                f"({len(self.entries)}/{self.capacity} entries)"
            )
        self.entries[dest] = next_hop

    def next_hop(self, dest: Coordinate) -> Coordinate:
        try:
            return self.entries[dest]
        except KeyError:
            raise RoutingError(
                f"chip {self.owner} has no route to {dest} "
                f"(sparse row/column routing only covers the owner's row and column)"
            ) from None

    def __len__(self) -> int:
        return len(self.entries)


def _step_toward(mesh: TorusMesh, src: int, dst: int, axis: str) -> int:
    """Next coordinate value moving from src toward dst along one axis.

    Uses the shorter way around if the axis has a wrap link, otherwise the
    only way along the mesh line.
    """
    size = mesh.x_size if axis == "x" else mesh.y_size
    wrap = mesh.wrap_x if axis == "x" else mesh.wrap_y
    if src == dst:
        return src
    forward = (dst - src) % size
    backward = (src - dst) % size
    if wrap and backward < forward:
        return (src - 1) % size
    if wrap and forward <= backward:
        return (src + 1) % size
    return src + 1 if dst > src else src - 1


def dimension_ordered_path(
    mesh: TorusMesh, src: Coordinate, dst: Coordinate
) -> list[Coordinate]:
    """Dimension-ordered (X then Y) route from ``src`` to ``dst``.

    Returns the full coordinate sequence including both endpoints.  Takes
    wrap links when they shorten the path.
    """
    if not (mesh.contains(src) and mesh.contains(dst)):
        raise ValueError("endpoints outside mesh")
    path = [src]
    cur = src
    while cur.x != dst.x:
        cur = Coordinate(_step_toward(mesh, cur.x, dst.x, "x"), cur.y)
        path.append(cur)
    while cur.y != dst.y:
        cur = Coordinate(cur.x, _step_toward(mesh, cur.y, dst.y, "y"))
        path.append(cur)
    return path


def path_links(mesh: TorusMesh, path: list[Coordinate]) -> list[Link]:
    """The directed links traversed by a coordinate path."""
    return [mesh.link_between(a, b) for a, b in zip(path, path[1:])]


def build_dense_routing(mesh: TorusMesh) -> dict[Coordinate, RoutingTable]:
    """Install a route from every chip to every other chip.

    Raises :class:`RoutingError` when the mesh has more destinations than a
    chip's routing table can hold — this is exactly the constraint that
    forces the multipod onto sparse routing (the table reproduces the
    paper's observation that 4096 chips exceed the 1024-entry table).
    """
    capacity = mesh.chip.routing_table_entries
    tables = {c: RoutingTable(c, capacity) for c in mesh.chips()}
    for src in mesh.chips():
        table = tables[src]
        for dst in mesh.chips():
            if dst == src:
                continue
            path = dimension_ordered_path(mesh, src, dst)
            table.install(dst, path[1])
    return tables


def build_sparse_row_col_routing(mesh: TorusMesh) -> dict[Coordinate, RoutingTable]:
    """Install routes only to chips in the owner's row and column.

    This is the paper's scheme: each chip sees ``x_size - 1 + y_size - 1``
    destinations, which fits the 1024-entry table even on the 128x32
    multipod (158 entries per chip).
    """
    capacity = mesh.chip.routing_table_entries
    tables = {c: RoutingTable(c, capacity) for c in mesh.chips()}
    for src in mesh.chips():
        table = tables[src]
        for x in range(mesh.x_size):
            dst = Coordinate(x, src.y)
            if dst == src:
                continue
            path = dimension_ordered_path(mesh, src, dst)
            table.install(dst, path[1])
        for y in range(mesh.y_size):
            dst = Coordinate(src.x, y)
            if dst == src:
                continue
            path = dimension_ordered_path(mesh, src, dst)
            table.install(dst, path[1])
    return tables


def resolve_route(
    tables: dict[Coordinate, RoutingTable],
    src: Coordinate,
    dst: Coordinate,
    max_hops: int = 1_000,
) -> list[Coordinate]:
    """Follow installed next-hops from ``src`` to ``dst``.

    Raises :class:`RoutingError` if any chip on the way lacks a route (as
    happens under sparse routing for destinations off the row/column) or if
    the route loops.
    """
    path = [src]
    cur = src
    for _ in range(max_hops):
        if cur == dst:
            return path
        cur = tables[cur].next_hop(dst)
        path.append(cur)
    raise RoutingError(f"route from {src} to {dst} exceeded {max_hops} hops")

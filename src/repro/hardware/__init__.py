"""Hardware substrate: accelerator chip specs, hosts, and pod topologies.

This subpackage models the machines of the paper:

* :mod:`repro.hardware.chip` — per-chip specifications (TPU-v2/v3/v4 and the
  NVIDIA V100/A100 comparators of Figures 10-11), plus host specifications.
* :mod:`repro.hardware.topology` — the 2-D mesh/torus chip interconnect,
  including the 4-pod "Multipod" (128x32 mesh, Y-edge torus wraps, cross-pod
  optical links along X) and arbitrary rectangular slices of it.
* :mod:`repro.hardware.routing` — the TPU-v3 routing-table constraint (1024
  entries) and the sparse row/column routing scheme used by the paper.
* :mod:`repro.hardware.rings` — ring construction for the collective
  algorithms of Section 3.3 / Figure 4: bidirectional Y-rings, X-lines, and
  the "hop over model-parallel peers" gradient rings.
* :mod:`repro.hardware.gpu` — DGX-style GPU cluster model used as the
  comparator system in Figures 10-11.
"""

from repro.hardware.chip import (
    ChipSpec,
    HostSpec,
    TPU_V2,
    TPU_V3,
    TPU_V4,
    GPU_V100,
    GPU_A100,
    TPU_V3_HOST,
    chip_spec,
)
from repro.hardware.topology import (
    Coordinate,
    Link,
    LinkKind,
    TorusMesh,
    multipod,
    single_pod,
    slice_for_chips,
)
from repro.hardware.routing import (
    RoutingError,
    RoutingTable,
    build_dense_routing,
    build_sparse_row_col_routing,
    dimension_ordered_path,
)
from repro.hardware.rings import (
    Ring,
    x_line,
    y_ring,
    all_y_rings,
    all_x_lines,
    model_peer_ring,
)
from repro.hardware.gpu import GpuCluster, dgx_cluster

__all__ = [
    "ChipSpec",
    "HostSpec",
    "TPU_V2",
    "TPU_V3",
    "TPU_V4",
    "GPU_V100",
    "GPU_A100",
    "TPU_V3_HOST",
    "chip_spec",
    "Coordinate",
    "Link",
    "LinkKind",
    "TorusMesh",
    "multipod",
    "single_pod",
    "slice_for_chips",
    "RoutingError",
    "RoutingTable",
    "build_dense_routing",
    "build_sparse_row_col_routing",
    "dimension_ordered_path",
    "Ring",
    "x_line",
    "y_ring",
    "all_y_rings",
    "all_x_lines",
    "model_peer_ring",
    "GpuCluster",
    "dgx_cluster",
]

"""GPU cluster comparator model (Figures 10-11).

NVIDIA's MLPerf v0.7 submissions ran on DGX systems: 8 or 16 GPUs per node
joined by NVLink/NVSwitch, nodes joined by InfiniBand.  We model the
standard NCCL-style hierarchical all-reduce — intra-node reduce-scatter over
NVLink, inter-node ring over IB on the node shards, intra-node all-gather —
which is the right abstraction level for reproducing the *shape* of the
TPU-vs-GPU end-to-end comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.chip import ChipSpec, GPU_A100, GPU_V100


@dataclass(frozen=True)
class GpuCluster:
    """A homogeneous GPU cluster of NVLink islands joined by InfiniBand.

    Attributes
    ----------
    chip:
        Per-GPU spec.
    num_gpus:
        Total GPU count.
    gpus_per_node:
        NVLink island size.
    nvlink_bandwidth:
        Effective per-GPU NVLink bandwidth in bytes/s (aggregate over links).
    ib_bandwidth:
        Effective per-node InfiniBand bandwidth in bytes/s.
    ib_latency:
        Per-message inter-node latency in seconds.
    nvlink_latency:
        Per-message intra-node latency in seconds.
    """

    chip: ChipSpec
    num_gpus: int
    gpus_per_node: int = 8
    nvlink_bandwidth: float = 150e9
    ib_bandwidth: float = 100e9
    ib_latency: float = 5.0e-6
    nvlink_latency: float = 2.0e-6

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        if self.num_gpus % self.gpus_per_node and self.num_gpus > self.gpus_per_node:
            raise ValueError(
                f"num_gpus {self.num_gpus} not a multiple of node size "
                f"{self.gpus_per_node}"
            )

    @property
    def num_nodes(self) -> int:
        return max(1, self.num_gpus // self.gpus_per_node)

    def allreduce_time(self, payload_bytes: float) -> float:
        """Hierarchical (NCCL-style) all-reduce latency for one replica payload.

        Three phases:

        1. intra-node reduce-scatter over NVLink,
        2. inter-node ring all-reduce over IB on the ``1/gpus_per_node``
           shard,
        3. intra-node all-gather over NVLink.
        """
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        n_local = min(self.num_gpus, self.gpus_per_node)
        t = 0.0
        if n_local > 1:
            frac = (n_local - 1) / n_local
            # reduce-scatter + all-gather over NVLink
            t += 2 * (frac * payload_bytes / self.nvlink_bandwidth
                      + (n_local - 1) * self.nvlink_latency)
        nodes = self.num_nodes
        if nodes > 1:
            shard = payload_bytes / n_local
            frac = (nodes - 1) / nodes
            # ring all-reduce = reduce-scatter + all-gather over IB
            t += 2 * (frac * shard / self.ib_bandwidth
                      + (nodes - 1) * self.ib_latency)
        return t

    def compute_time(self, flops_per_gpu: float, efficiency: float) -> float:
        """Seconds of tensor-core compute per step per GPU."""
        return self.chip.matmul_time(flops_per_gpu, efficiency)


def dgx_cluster(num_gpus: int, generation: str = "a100") -> GpuCluster:
    """A DGX-style cluster of ``num_gpus`` V100s or A100s."""
    gen = generation.lower()
    if gen == "a100":
        # DGX-A100: NVSwitch ~300 GB/s usable per GPU, 8x HDR200 IB per node.
        return GpuCluster(
            chip=GPU_A100,
            num_gpus=num_gpus,
            gpus_per_node=8,
            nvlink_bandwidth=250e9,
            ib_bandwidth=180e9,
        )
    if gen == "v100":
        # DGX-2H island of 16 via NVSwitch, 8x EDR100 IB per node.
        return GpuCluster(
            chip=GPU_V100,
            num_gpus=num_gpus,
            gpus_per_node=16,
            nvlink_bandwidth=120e9,
            ib_bandwidth=80e9,
        )
    raise ValueError(f"unknown GPU generation {generation!r}; use 'v100' or 'a100'")

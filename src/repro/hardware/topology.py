"""2-D mesh/torus interconnect topology of TPU pods and multipods.

A single TPU-v3 pod is a 32x32 torus of chips.  The paper's "Multipod"
(Figures 1-2) joins four pods along the X dimension with longer cross-pod
optical links, giving a 128x32 topology that is a *mesh* along X (no X wrap)
and keeps the within-pod *torus* wrap links at the Y edges.  Smaller
benchmark runs use rectangular slices; a slice only has wrap links in a
dimension it spans completely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, NamedTuple

import networkx as nx

from repro.hardware.chip import ChipSpec, HostSpec, TPU_V3, TPU_V3_HOST

POD_SIDE = 32
"""Chips per side of one TPU-v3 pod (32x32 = 1024 chips)."""


class Coordinate(NamedTuple):
    """Position of a chip in the 2-D mesh."""

    x: int
    y: int


class LinkKind(enum.Enum):
    """Physical flavor of an inter-chip link."""

    INTRA_POD = "intra_pod"
    WRAP = "wrap"  # torus wrap-around at a mesh edge
    CROSS_POD = "cross_pod"  # longer optical link between pods (Figure 2)


@dataclass(frozen=True)
class Link:
    """A directed inter-chip link."""

    src: Coordinate
    dst: Coordinate
    kind: LinkKind

    @property
    def axis(self) -> str:
        """``"x"`` or ``"y"`` — the mesh dimension this link travels along."""
        return "x" if self.src.y == self.dst.y else "y"


class TorusMesh:
    """A rectangular 2-D mesh of chips with optional torus wraps.

    Parameters
    ----------
    x_size, y_size:
        Mesh extent in chips.
    wrap_x, wrap_y:
        Whether wrap-around (torus) links exist along each dimension.
    cross_pod_every:
        If set (e.g. 32 for a TPU-v3 multipod), the X links crossing
        ``x = k*cross_pod_every - 1 -> k*cross_pod_every`` are cross-pod
        optical links with higher latency.
    chip:
        Per-chip specification (defaults to TPU-v3).
    host:
        Host specification; chips are assigned to hosts in row-major blocks
        of ``host.chips_per_host``.
    """

    def __init__(
        self,
        x_size: int,
        y_size: int,
        *,
        wrap_x: bool = False,
        wrap_y: bool = False,
        cross_pod_every: int | None = None,
        chip: ChipSpec = TPU_V3,
        host: HostSpec = TPU_V3_HOST,
    ) -> None:
        if x_size < 1 or y_size < 1:
            raise ValueError(f"mesh dims must be >= 1, got {x_size}x{y_size}")
        if wrap_x and x_size < 3:
            # A wrap on a 1- or 2-wide dimension duplicates an existing link.
            wrap_x = False
        if wrap_y and y_size < 3:
            wrap_y = False
        if cross_pod_every is not None and cross_pod_every < 1:
            raise ValueError("cross_pod_every must be positive")
        self.x_size = x_size
        self.y_size = y_size
        self.wrap_x = wrap_x
        self.wrap_y = wrap_y
        self.cross_pod_every = cross_pod_every
        self.chip = chip
        self.host = host

    # --- basic geometry ----------------------------------------------------

    @property
    def num_chips(self) -> int:
        return self.x_size * self.y_size

    @property
    def num_cores(self) -> int:
        return self.num_chips * self.chip.cores

    @property
    def num_hosts(self) -> int:
        chips = self.num_chips
        per = self.host.chips_per_host
        return max(1, (chips + per - 1) // per)

    def contains(self, coord: Coordinate) -> bool:
        return 0 <= coord[0] < self.x_size and 0 <= coord[1] < self.y_size

    def chips(self) -> Iterator[Coordinate]:
        """All chip coordinates in row-major (y-fastest) order."""
        for x in range(self.x_size):
            for y in range(self.y_size):
                yield Coordinate(x, y)

    def chip_id(self, coord: Coordinate) -> int:
        """Dense integer id of a chip (row-major, y-fastest)."""
        if not self.contains(coord):
            raise ValueError(f"{coord} outside {self.x_size}x{self.y_size} mesh")
        return coord[0] * self.y_size + coord[1]

    def coordinate(self, chip_id: int) -> Coordinate:
        """Inverse of :meth:`chip_id`."""
        if not 0 <= chip_id < self.num_chips:
            raise ValueError(f"chip id {chip_id} out of range")
        return Coordinate(chip_id // self.y_size, chip_id % self.y_size)

    def host_of(self, coord: Coordinate) -> int:
        """Host index feeding this chip (row-major blocks)."""
        return self.chip_id(coord) // self.host.chips_per_host

    # --- links --------------------------------------------------------------

    def _x_link_kind(self, x_lo: int) -> LinkKind:
        """Kind of the +x link leaving column ``x_lo`` (to ``x_lo + 1``)."""
        if (
            self.cross_pod_every is not None
            and (x_lo + 1) % self.cross_pod_every == 0
            and x_lo + 1 < self.x_size
        ):
            return LinkKind.CROSS_POD
        return LinkKind.INTRA_POD

    def neighbors(self, coord: Coordinate) -> list[Coordinate]:
        """Physically connected neighbor chips (mesh and wrap links)."""
        x, y = coord
        out: list[Coordinate] = []
        if x + 1 < self.x_size:
            out.append(Coordinate(x + 1, y))
        elif self.wrap_x:
            out.append(Coordinate(0, y))
        if x - 1 >= 0:
            out.append(Coordinate(x - 1, y))
        elif self.wrap_x:
            out.append(Coordinate(self.x_size - 1, y))
        if y + 1 < self.y_size:
            out.append(Coordinate(x, y + 1))
        elif self.wrap_y:
            out.append(Coordinate(x, 0))
        if y - 1 >= 0:
            out.append(Coordinate(x, y - 1))
        elif self.wrap_y:
            out.append(Coordinate(x, self.y_size - 1))
        return out

    def links(self) -> list[Link]:
        """All directed links of the mesh."""
        out: list[Link] = []
        for x in range(self.x_size):
            for y in range(self.y_size):
                a = Coordinate(x, y)
                if x + 1 < self.x_size:
                    b = Coordinate(x + 1, y)
                    kind = self._x_link_kind(x)
                    out.append(Link(a, b, kind))
                    out.append(Link(b, a, kind))
                if y + 1 < self.y_size:
                    b = Coordinate(x, y + 1)
                    out.append(Link(a, b, LinkKind.INTRA_POD))
                    out.append(Link(b, a, LinkKind.INTRA_POD))
        if self.wrap_x:
            for y in range(self.y_size):
                a = Coordinate(self.x_size - 1, y)
                b = Coordinate(0, y)
                out.append(Link(a, b, LinkKind.WRAP))
                out.append(Link(b, a, LinkKind.WRAP))
        if self.wrap_y:
            for x in range(self.x_size):
                a = Coordinate(x, self.y_size - 1)
                b = Coordinate(x, 0)
                out.append(Link(a, b, LinkKind.WRAP))
                out.append(Link(b, a, LinkKind.WRAP))
        return out

    def link_between(self, a: Coordinate, b: Coordinate) -> Link:
        """The directed link from ``a`` to ``b``; raises if not adjacent."""
        if b not in self.neighbors(a):
            raise ValueError(f"{a} and {b} are not connected")
        if a.y == b.y:  # x link
            if abs(a.x - b.x) == 1:
                kind = self._x_link_kind(min(a.x, b.x))
            else:
                kind = LinkKind.WRAP
        else:
            kind = LinkKind.INTRA_POD if abs(a.y - b.y) == 1 else LinkKind.WRAP
        return Link(a, b, kind)

    def link_latency(self, link: Link) -> float:
        """One-hop latency of a link in seconds."""
        if link.kind is LinkKind.CROSS_POD:
            return self.chip.cross_pod_link_latency
        return self.chip.link_latency

    @property
    def link_bandwidth(self) -> float:
        """Effective per-direction bandwidth of every link (bytes/s)."""
        return self.chip.link_bandwidth

    # --- analysis helpers ----------------------------------------------------

    def to_networkx(self) -> nx.DiGraph:
        """Directed graph of chips and links, for analysis and tests."""
        g = nx.DiGraph()
        g.add_nodes_from(self.chips())
        for link in self.links():
            g.add_edge(
                link.src,
                link.dst,
                kind=link.kind,
                latency=self.link_latency(link),
                bandwidth=self.link_bandwidth,
            )
        return g

    def bisection_bandwidth(self) -> float:
        """One-direction bandwidth across the X midline cut, bytes/s.

        For a Y-torus / X-mesh multipod the midline cut crosses ``y_size``
        X links (plus ``y_size`` more if X wraps).
        """
        cut_links = self.y_size * (2 if self.wrap_x else 1)
        return cut_links * self.link_bandwidth

    def sub_slice(self, x_size: int, y_size: int) -> "TorusMesh":
        """A rectangular slice anchored at the origin.

        Wrap links survive only along dimensions the slice spans fully.
        """
        if x_size > self.x_size or y_size > self.y_size:
            raise ValueError(
                f"slice {x_size}x{y_size} exceeds mesh {self.x_size}x{self.y_size}"
            )
        return TorusMesh(
            x_size,
            y_size,
            wrap_x=self.wrap_x and x_size == self.x_size,
            wrap_y=self.wrap_y and y_size == self.y_size,
            cross_pod_every=(
                self.cross_pod_every
                if self.cross_pod_every is not None and x_size > self.cross_pod_every
                else None
            ),
            chip=self.chip,
            host=self.host,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        wraps = "".join(d for d, w in (("x", self.wrap_x), ("y", self.wrap_y)) if w)
        return (
            f"TorusMesh({self.x_size}x{self.y_size}, wrap={wraps or 'none'}, "
            f"chip={self.chip.name})"
        )


def single_pod(chip: ChipSpec = TPU_V3, side: int = POD_SIDE) -> TorusMesh:
    """One TPU pod: a ``side x side`` full torus."""
    return TorusMesh(side, side, wrap_x=True, wrap_y=True, chip=chip)


def multipod(num_pods: int = 4, chip: ChipSpec = TPU_V3) -> TorusMesh:
    """A TPU-v3 multipod: ``num_pods`` pods joined along X (Figure 2).

    The result is a ``(32*num_pods) x 32`` topology, a mesh along X with
    cross-pod links at pod boundaries and torus wraps along Y.  With
    ``num_pods=1`` this degenerates to a full single-pod torus.
    """
    if num_pods < 1:
        raise ValueError("num_pods must be >= 1")
    if num_pods == 1:
        return single_pod(chip)
    return TorusMesh(
        POD_SIDE * num_pods,
        POD_SIDE,
        wrap_x=False,
        wrap_y=True,
        cross_pod_every=POD_SIDE,
        chip=chip,
    )


#: Canonical slice shapes used for the paper's scaling studies (Figures 5-8).
#: Shapes follow TPU slice geometry: grow X first once Y spans the pod.
_SLICE_SHAPES: dict[int, tuple[int, int]] = {
    16: (4, 4),
    32: (8, 4),
    64: (8, 8),
    128: (16, 8),
    256: (16, 16),
    512: (16, 32),
    1024: (32, 32),
    2048: (64, 32),
    4096: (128, 32),
}


def slice_for_chips(num_chips: int, chip: ChipSpec = TPU_V3) -> TorusMesh:
    """The benchmark slice used for a given chip count.

    Slices of 1024 chips or fewer live inside one pod; they get Y wrap links
    only when they span the full pod side (32), and the 1024-chip slice is a
    full torus.  Larger slices are multipods (X mesh with cross-pod links).
    """
    try:
        x, y = _SLICE_SHAPES[num_chips]
    except KeyError:
        known = ", ".join(str(k) for k in sorted(_SLICE_SHAPES))
        raise ValueError(
            f"no canonical slice for {num_chips} chips; known sizes: {known}"
        ) from None
    if num_chips <= 1024:
        return TorusMesh(
            x,
            y,
            wrap_x=(x == POD_SIDE),
            wrap_y=(y == POD_SIDE),
            chip=chip,
        )
    return TorusMesh(
        x,
        y,
        wrap_x=False,
        wrap_y=True,
        cross_pod_every=POD_SIDE,
        chip=chip,
    )

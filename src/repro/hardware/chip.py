"""Accelerator chip and host specifications.

The numbers for TPU chips follow the public descriptions in Jouppi et al.
(CACM 2020, "A domain-specific supercomputer for training deep neural
networks") and the MLPerf v0.6 scaling paper (Kumar et al., 2019); GPU
numbers follow NVIDIA's public datasheets.  Interconnect numbers are
effective (achievable) bandwidths, not signalling rates, and are the
calibration anchors discussed in DESIGN.md section 5.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ChipSpec:
    """Static description of one accelerator chip.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"tpu-v3"``.
    cores:
        Number of accelerator cores per chip (TPU-v3 has 2; we treat a GPU
        as a single core).
    peak_matmul_flops:
        Peak dense-matmul throughput of the whole chip in FLOP/s at the
        low-precision training format (bf16 for TPUs, fp16/tf32 tensor cores
        for GPUs).
    peak_vector_flops:
        Peak throughput of the vector (non-MXU) units in FLOP/s; optimizer
        weight updates run here (Section 3.2 of the paper).
    hbm_bytes:
        On-chip high-bandwidth-memory capacity in bytes.
    hbm_bandwidth:
        HBM bandwidth in bytes/s.
    link_bandwidth:
        Effective per-direction bandwidth of one inter-chip interconnect
        (ICI) link in bytes/s.
    link_latency:
        One-hop latency of a within-pod ICI link, in seconds.
    cross_pod_link_latency:
        Latency of the longer cross-pod optical links (Figure 2), seconds.
    num_links:
        Number of ICI link ports on the chip (TPU-v3: 4, arranged +x/-x/+y/-y
        in the 2-D torus).
    routing_table_entries:
        Size of the on-chip routing table.  The paper notes TPU-v3 has only
        1024 entries, which forces the sparse row/column routing scheme on a
        4096-chip multipod.
    """

    name: str
    cores: int
    peak_matmul_flops: float
    peak_vector_flops: float
    hbm_bytes: float
    hbm_bandwidth: float
    link_bandwidth: float
    link_latency: float = 1.0e-6
    cross_pod_link_latency: float = 3.0e-6
    num_links: int = 4
    routing_table_entries: int = 1024

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        for attr in (
            "peak_matmul_flops",
            "peak_vector_flops",
            "hbm_bytes",
            "hbm_bandwidth",
            "link_bandwidth",
        ):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")

    @property
    def per_core_matmul_flops(self) -> float:
        """Peak matmul FLOP/s available to one core."""
        return self.peak_matmul_flops / self.cores

    def matmul_time(self, flops: float, efficiency: float = 1.0) -> float:
        """Seconds to execute ``flops`` on the matrix units.

        ``efficiency`` is the achieved fraction of peak (model-dependent;
        calibrated per benchmark in :mod:`repro.experiments.calibration`).
        """
        if not 0.0 < efficiency <= 1.0:
            raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
        return flops / (self.peak_matmul_flops * efficiency)

    def vector_time(self, flops: float, efficiency: float = 1.0) -> float:
        """Seconds to execute ``flops`` on the vector units."""
        if not 0.0 < efficiency <= 1.0:
            raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
        return flops / (self.peak_vector_flops * efficiency)

    def hbm_time(self, num_bytes: float) -> float:
        """Seconds to stream ``num_bytes`` through HBM."""
        return num_bytes / self.hbm_bandwidth


@dataclass(frozen=True)
class HostSpec:
    """A CPU host feeding accelerator chips over PCIe.

    Attributes
    ----------
    chips_per_host:
        TPU-v3 systems attach 8 chips (4 boards) per host.
    pcie_bandwidth:
        Host-to-accelerator bandwidth in bytes/s (per host).
    cpu_cores:
        Worker threads available to the input pipeline.
    jpeg_decode_rate:
        Host throughput decoding JPEG images, in (compressed) bytes/s per
        core; drives the ResNet-50 input-pipeline imbalance study (§3.5).
    memcpy_rate:
        Host memory bandwidth available to pipeline stages, bytes/s per core.
    """

    chips_per_host: int = 8
    pcie_bandwidth: float = 16.0e9
    cpu_cores: int = 96
    jpeg_decode_rate: float = 200.0e6
    memcpy_rate: float = 5.0e9

    def __post_init__(self) -> None:
        if self.chips_per_host < 1:
            raise ValueError("chips_per_host must be >= 1")


# --- TPU generations ------------------------------------------------------

TPU_V2 = ChipSpec(
    name="tpu-v2",
    cores=2,
    peak_matmul_flops=46e12,
    peak_vector_flops=3e12,
    hbm_bytes=16 * 2**30,
    hbm_bandwidth=700e9,
    link_bandwidth=62.5e9,
)

TPU_V3 = ChipSpec(
    name="tpu-v3",
    cores=2,
    peak_matmul_flops=123e12,
    peak_vector_flops=4e12,
    hbm_bytes=32 * 2**30,
    hbm_bandwidth=900e9,
    # 656 Gb/s signalling per link; ~70 GB/s effective per direction.
    link_bandwidth=70e9,
)

TPU_V4 = ChipSpec(
    name="tpu-v4",
    cores=2,
    peak_matmul_flops=275e12,
    peak_vector_flops=8e12,
    hbm_bytes=32 * 2**30,
    hbm_bandwidth=1200e9,
    link_bandwidth=100e9,
    num_links=6,
)

# --- GPU comparators (Figures 10-11) --------------------------------------

GPU_V100 = ChipSpec(
    name="gpu-v100",
    cores=1,
    peak_matmul_flops=125e12,  # fp16 tensor cores
    peak_vector_flops=15.7e12,
    hbm_bytes=32 * 2**30,
    hbm_bandwidth=900e9,
    # NVLink2: 6 links x 25 GB/s/direction; modelled per-"port" below.
    link_bandwidth=25e9,
    num_links=6,
    link_latency=1.5e-6,
)

GPU_A100 = ChipSpec(
    name="gpu-a100",
    cores=1,
    peak_matmul_flops=312e12,  # fp16/bf16 tensor cores
    peak_vector_flops=19.5e12,
    hbm_bytes=40 * 2**30,
    hbm_bandwidth=1555e9,
    link_bandwidth=50e9,
    num_links=12,
    link_latency=1.5e-6,
)

TPU_V3_HOST = HostSpec()

_CHIP_REGISTRY: dict[str, ChipSpec] = {
    spec.name: spec for spec in (TPU_V2, TPU_V3, TPU_V4, GPU_V100, GPU_A100)
}


def chip_spec(name: str) -> ChipSpec:
    """Look up a chip spec by name (e.g. ``"tpu-v3"``)."""
    try:
        return _CHIP_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_CHIP_REGISTRY))
        raise KeyError(f"unknown chip {name!r}; known chips: {known}") from None

"""Adam (Kingma & Ba) — the Transformer benchmark's optimizer."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer, OptimizerState, Params
from repro.optim.schedules import LRSchedule, as_schedule


class Adam(Optimizer):
    """Standard Adam with bias correction.

    Fully elementwise (no trust-ratio norms), so it shards trivially under
    weight-update sharding.
    """

    def __init__(
        self,
        learning_rate: float | LRSchedule,
        beta1: float = 0.9,
        beta2: float = 0.98,
        epsilon: float = 1e-9,
    ) -> None:
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.learning_rate = as_schedule(learning_rate)
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon

    def init_state(self, params: Params) -> OptimizerState:
        return self._zeros_like(params, ("m", "v"))

    def norm_stats(self, name, param, grad, state, step):
        return {}

    def apply(self, name, param, grad, state, step, stats):
        lr = self.learning_rate(step)
        g = grad.astype(np.float64)
        m = self.beta1 * state["m"] + (1.0 - self.beta1) * g
        v = self.beta2 * state["v"] + (1.0 - self.beta2) * g * g
        t = step + 1
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        new_p = param.astype(np.float64) - lr * m_hat / (np.sqrt(v_hat) + self.epsilon)
        return new_p.astype(param.dtype), {"m": m, "v": v}

    def flops_per_param(self) -> float:
        return 12.0

"""LAMB — Layerwise Adaptive Moments for Batch training (You et al., 2019).

LAMB is the optimizer that lets MLPerf BERT scale to 4096-chip data
parallelism (Section 4.1).  It is also the motivating example for
weight-update sharding: the paper measured its update at ~18% of the BERT
step time on 512 chips when executed replicated (Section 3.2).  The trust
ratio ``||w|| / ||r||`` requires full-tensor norms of both the weights and
the Adam-normalized update, exposed through :meth:`norm_stats` as two
partial sums of squares (``r`` is elementwise given the moments, so the
partial norm of ``r`` is computable shard-locally).
"""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer, OptimizerState, Params
from repro.optim.schedules import LRSchedule, as_schedule


class LAMB(Optimizer):
    """LAMB as specified in the BERT-in-76-minutes paper."""

    def __init__(
        self,
        learning_rate: float | LRSchedule,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-6,
        weight_decay: float = 0.01,
        skip_patterns: tuple[str, ...] = ("bias", "beta", "gamma", "layernorm", "ln"),
    ) -> None:
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.learning_rate = as_schedule(learning_rate)
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self.skip_patterns = skip_patterns

    def _decay(self, name: str) -> bool:
        lowered = name.lower()
        return not any(pat in lowered for pat in self.skip_patterns)

    def init_state(self, params: Params) -> OptimizerState:
        return self._zeros_like(params, ("m", "v"))

    def _normalized_update(self, name, param, grad, state, step):
        """New moments and the Adam-normalized update r (all elementwise)."""
        g = grad.astype(np.float64)
        p = param.astype(np.float64)
        m = self.beta1 * state["m"] + (1.0 - self.beta1) * g
        v = self.beta2 * state["v"] + (1.0 - self.beta2) * g * g
        # Bias correction (step is 0-based).
        t = step + 1
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        r = m_hat / (np.sqrt(v_hat) + self.epsilon)
        if self._decay(name):
            r = r + self.weight_decay * p
        return m, v, r

    def norm_stats(self, name, param, grad, state, step):
        p = param.astype(np.float64)
        _, _, r = self._normalized_update(name, param, grad, state, step)
        return {
            "param_sq": float(np.sum(p * p)),
            "update_sq": float(np.sum(r * r)),
        }

    def apply(self, name, param, grad, state, step, stats):
        lr = self.learning_rate(step)
        m, v, r = self._normalized_update(name, param, grad, state, step)
        w_norm = float(np.sqrt(stats["param_sq"]))
        r_norm = float(np.sqrt(stats["update_sq"]))
        if w_norm > 0 and r_norm > 0:
            trust = w_norm / r_norm
        else:
            trust = 1.0
        new_p = param.astype(np.float64) - lr * trust * r
        return new_p.astype(param.dtype), {"m": m, "v": v}

    def flops_per_param(self) -> float:
        # moments (6), normalization (4: sqrt/div/add), norms (4), axpy (3)
        return 18.0

"""Optimizers and learning-rate schedules used by the MLPerf v0.7 models.

The paper's large-batch scaling hinges on layerwise-adaptive optimizers:
LARS for ResNet-50 (batch 65536) and LAMB for BERT.  Both compute per-layer
trust ratios from *full-tensor* norms — the exact property that makes
weight-update sharding (Section 3.2) non-trivial: a device holding only a
shard of a layer must combine partial norms with its peers before it can
apply its shard of the update.  Every optimizer here therefore exposes both
a replicated ``update`` and the shard-wise pieces (:meth:`partial_norms` /
:meth:`apply`) that the sharded trainer composes with collectives.
"""

from repro.optim.base import Optimizer, OptimizerState, Params, Grads
from repro.optim.sgd import SGDMomentum
from repro.optim.lars import LARS
from repro.optim.lamb import LAMB
from repro.optim.adam import Adam
from repro.optim.schedules import (
    LRSchedule,
    ConstantSchedule,
    LinearWarmupPolyDecay,
    PiecewiseConstant,
)

__all__ = [
    "Optimizer",
    "OptimizerState",
    "Params",
    "Grads",
    "SGDMomentum",
    "LARS",
    "LAMB",
    "Adam",
    "LRSchedule",
    "ConstantSchedule",
    "LinearWarmupPolyDecay",
    "PiecewiseConstant",
]

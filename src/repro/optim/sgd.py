"""SGD with momentum (the baseline update for small-batch training)."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer, OptimizerState, Params
from repro.optim.schedules import LRSchedule, as_schedule


class SGDMomentum(Optimizer):
    """Heavy-ball SGD: ``v = m*v + g + wd*p``; ``p -= lr * v``.

    Fully elementwise, so it shards trivially (``norm_stats`` is empty).
    """

    def __init__(
        self,
        learning_rate: float | LRSchedule,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.learning_rate = as_schedule(learning_rate)
        self.momentum = momentum
        self.weight_decay = weight_decay

    def init_state(self, params: Params) -> OptimizerState:
        return self._zeros_like(params, ("momentum",))

    def norm_stats(self, name, param, grad, state, step):
        return {}

    def apply(self, name, param, grad, state, step, stats):
        lr = self.learning_rate(step)
        g = grad.astype(np.float64)
        if self.weight_decay:
            g = g + self.weight_decay * param
        v = self.momentum * state["momentum"] + g
        new_param = param - lr * v
        return new_param.astype(param.dtype), {"momentum": v}

    def flops_per_param(self) -> float:
        return 5.0

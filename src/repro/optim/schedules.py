"""Learning-rate schedules for large-batch training."""

from __future__ import annotations

import abc


class LRSchedule(abc.ABC):
    """A learning rate as a function of the (0-based) step index."""

    @abc.abstractmethod
    def __call__(self, step: int) -> float:
        ...


class ConstantSchedule(LRSchedule):
    """A fixed learning rate."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError("learning rate must be non-negative")
        self.value = value

    def __call__(self, step: int) -> float:
        return self.value


class LinearWarmupPolyDecay(LRSchedule):
    """Linear warmup to ``peak`` then polynomial decay to ``end``.

    This is the shape used by both the MLPerf BERT (LAMB) and ResNet-50
    (LARS) references; warmup length grows with batch size when the batch
    is scaled up, which the convergence model in :mod:`repro.core` mirrors.
    """

    def __init__(
        self,
        peak: float,
        warmup_steps: int,
        total_steps: int,
        power: float = 2.0,
        end: float = 0.0,
    ) -> None:
        if peak < 0 or end < 0:
            raise ValueError("rates must be non-negative")
        if warmup_steps < 0 or total_steps <= 0:
            raise ValueError("step counts must be positive")
        if warmup_steps >= total_steps:
            raise ValueError("warmup must end before total_steps")
        self.peak = peak
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.power = power
        self.end = end

    def __call__(self, step: int) -> float:
        if self.warmup_steps > 0 and step < self.warmup_steps:
            return self.peak * (step + 1) / self.warmup_steps
        remaining = max(0, self.total_steps - step)
        frac = remaining / max(1, self.total_steps - self.warmup_steps)
        return self.end + (self.peak - self.end) * frac**self.power


class PiecewiseConstant(LRSchedule):
    """Step-decay schedule: boundaries and the value to use before each."""

    def __init__(self, boundaries: list[int], values: list[float]) -> None:
        if len(values) != len(boundaries) + 1:
            raise ValueError("need exactly len(boundaries) + 1 values")
        if sorted(boundaries) != list(boundaries):
            raise ValueError("boundaries must be sorted")
        self.boundaries = list(boundaries)
        self.values = list(values)

    def __call__(self, step: int) -> float:
        for boundary, value in zip(self.boundaries, self.values):
            if step < boundary:
                return value
        return self.values[-1]


def as_schedule(lr: "float | LRSchedule") -> LRSchedule:
    """Coerce a bare float into a constant schedule."""
    if isinstance(lr, LRSchedule):
        return lr
    return ConstantSchedule(float(lr))

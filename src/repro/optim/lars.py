"""LARS — Layerwise Adaptive Rate Scaling (You, Gitman & Ginsburg, 2017).

LARS scales each layer's learning rate by ``||w|| / (||g|| + wd*||w||)``,
which is what lets MLPerf ResNet-50 train at batch 65536 (Section 4.2).
The trust ratio needs full-tensor norms: :meth:`norm_stats` returns partial
sums of squares so the sharded update can all-reduce two scalars per layer
instead of the whole gradient.
"""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer, OptimizerState, Params
from repro.optim.schedules import LRSchedule, as_schedule


class LARS(Optimizer):
    """LARS with momentum, as used by the MLPerf ResNet-50 reference.

    Parameters named in ``skip_patterns`` (biases, batch-norm scales) fall
    back to plain momentum SGD without weight decay, matching the reference
    implementation.
    """

    def __init__(
        self,
        learning_rate: float | LRSchedule,
        momentum: float = 0.9,
        weight_decay: float = 1e-4,
        trust_coefficient: float = 0.001,
        epsilon: float = 1e-9,
        skip_patterns: tuple[str, ...] = ("bias", "beta", "gamma", "bn"),
    ) -> None:
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if trust_coefficient <= 0:
            raise ValueError("trust_coefficient must be positive")
        self.learning_rate = as_schedule(learning_rate)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.trust_coefficient = trust_coefficient
        self.epsilon = epsilon
        self.skip_patterns = skip_patterns

    def _skip(self, name: str) -> bool:
        lowered = name.lower()
        return any(pat in lowered for pat in self.skip_patterns)

    def init_state(self, params: Params) -> OptimizerState:
        return self._zeros_like(params, ("momentum",))

    def norm_stats(self, name, param, grad, state, step):
        if self._skip(name):
            return {}
        p = param.astype(np.float64)
        g = grad.astype(np.float64)
        return {
            "param_sq": float(np.sum(p * p)),
            "grad_sq": float(np.sum(g * g)),
        }

    def apply(self, name, param, grad, state, step, stats):
        lr = self.learning_rate(step)
        p = param.astype(np.float64)
        g = grad.astype(np.float64)
        if self._skip(name):
            v = self.momentum * state["momentum"] + g
            new_p = p - lr * v
            return new_p.astype(param.dtype), {"momentum": v}
        w_norm = float(np.sqrt(stats["param_sq"]))
        g_norm = float(np.sqrt(stats["grad_sq"]))
        if w_norm > 0 and g_norm > 0:
            trust = (
                self.trust_coefficient
                * w_norm
                / (g_norm + self.weight_decay * w_norm + self.epsilon)
            )
        else:
            trust = 1.0
        scaled_lr = lr * trust
        v = self.momentum * state["momentum"] + scaled_lr * (
            g + self.weight_decay * p
        )
        new_p = p - v
        return new_p.astype(param.dtype), {"momentum": v}

    def flops_per_param(self) -> float:
        # two norms (2 flops/elem), axpy chain (~6 flops/elem)
        return 8.0

"""Optimizer interface shared by the replicated and sharded update paths."""

from __future__ import annotations

import abc
from typing import Mapping

import numpy as np

#: A model's parameters / gradients: name -> array.
Params = dict[str, np.ndarray]
Grads = Mapping[str, np.ndarray]

#: Optimizer slot variables: name -> slot -> array (same shape as the param).
OptimizerState = dict[str, dict[str, np.ndarray]]


class Optimizer(abc.ABC):
    """Base class for stateful optimizers over named parameter dicts.

    Subclasses implement three methods:

    * :meth:`init_state` — allocate slot variables;
    * :meth:`norm_stats` — the per-layer scalars that require *global*
      tensor norms (empty for plain SGD); given a parameter/gradient
      *shard*, partial squared norms are returned, which the sharded update
      path sums across devices before calling :meth:`apply`;
    * :meth:`apply` — the elementwise update of one (shard of a) layer,
      parameterized by the already-reduced norm scalars.

    The convenience :meth:`update` runs the full replicated step.
    """

    @abc.abstractmethod
    def init_state(self, params: Params) -> OptimizerState:
        """Zero-initialized slot variables for every parameter."""

    @abc.abstractmethod
    def norm_stats(
        self, name: str, param: np.ndarray, grad: np.ndarray, state: dict[str, np.ndarray], step: int
    ) -> dict[str, float]:
        """Partial (shard-local) squared-norm statistics for one layer.

        Keys are stat names; values are *sums of squares* (or other
        associative partials) over the given shard, so that summing the
        dicts across shards yields the full-tensor statistics.
        """

    @abc.abstractmethod
    def apply(
        self,
        name: str,
        param: np.ndarray,
        grad: np.ndarray,
        state: dict[str, np.ndarray],
        step: int,
        stats: dict[str, float],
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Elementwise update of one layer (or any shard of it).

        ``stats`` must contain the globally reduced values of the keys
        produced by :meth:`norm_stats`.  Returns the new parameter (shard)
        and new state (shard).  Must be elementwise so it commutes with
        sharding — the invariant the WUS equivalence tests check.
        """

    def update(
        self, params: Params, grads: Grads, state: OptimizerState, step: int
    ) -> tuple[Params, OptimizerState]:
        """Full replicated update of every layer."""
        new_params: Params = {}
        new_state: OptimizerState = {}
        for name, p in params.items():
            g = np.asarray(grads[name])
            if g.shape != p.shape:
                raise ValueError(
                    f"gradient shape {g.shape} != param shape {p.shape} for {name!r}"
                )
            stats = self.norm_stats(name, p, g, state[name], step)
            new_params[name], new_state[name] = self.apply(
                name, p, g, state[name], step, stats
            )
        return new_params, new_state

    @staticmethod
    def _zeros_like(params: Params, slots: tuple[str, ...]) -> OptimizerState:
        return {
            name: {slot: np.zeros_like(p, dtype=np.float64) for slot in slots}
            for name, p in params.items()
        }

    def flops_per_param(self) -> float:
        """Approximate vector-unit FLOPs per parameter per update.

        Used by the step-time model to cost the (possibly sharded) weight
        update on the chip's vector units (Section 3.2).
        """
        return 4.0

"""DLRM host input optimizations (§3.5, §4.6).

DLRM runs huge batches (65536) at tiny step latencies (~2 ms), so the host
pipeline becomes the bottleneck unless:

1. parsing happens at **batch granularity** (one parse dispatch per batch,
   not per sample);
2. the ~40 input features are **stacked** into one PCIe transfer instead of
   ~40 small ones;
3. batches are **pre-shuffled and pre-serialized** so the hot loop is a
   read + transfer.

This module models host throughput for each combination and reports whether
the configuration can feed the device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.chip import HostSpec, TPU_V3_HOST
from repro.models.dlrm import NUM_CATEGORICAL, NUM_DENSE


@dataclass(frozen=True)
class DlrmInputConfig:
    """Host pipeline configuration toggles."""

    batch_granularity_parsing: bool = True
    stacked_features: bool = True
    pre_serialized: bool = True

    @property
    def label(self) -> str:
        flags = [
            "batch-parse" if self.batch_granularity_parsing else "sample-parse",
            "stacked" if self.stacked_features else "per-feature",
            "pre-serialized" if self.pre_serialized else "serialize-online",
        ]
        return "+".join(flags)


#: Host-side fixed costs (seconds).  Per-sample parsing dispatches one
#: deserialization call per example (~2 us of CPU including allocator and
#: framing overhead); batch-granularity parsing amortizes that into one
#: call per batch.
PER_SAMPLE_PARSE_OVERHEAD = 2.0e-6
PER_BATCH_PARSE_OVERHEAD = 2.0e-4
PER_TRANSFER_OVERHEAD = 5.0e-5
SERIALIZE_BYTES_FACTOR = 2.0  # extra memcpy when serializing online


def dlrm_input_throughput(
    config: DlrmInputConfig,
    *,
    batch_per_host: int = 8192,
    host: HostSpec = TPU_V3_HOST,
) -> float:
    """Examples/second one host can feed under a configuration."""
    if batch_per_host < 1:
        raise ValueError("batch_per_host must be >= 1")
    num_features = NUM_DENSE + NUM_CATEGORICAL + 1  # + label
    bytes_per_example = num_features * 4
    # Parsing CPU time per batch.
    if config.batch_granularity_parsing:
        parse = PER_BATCH_PARSE_OVERHEAD
    else:
        parse = PER_SAMPLE_PARSE_OVERHEAD * batch_per_host
    parse /= host.cpu_cores  # parallel parsing across host cores
    # Serialization memcpy per batch.
    serialize = 0.0
    if not config.pre_serialized:
        serialize = (
            SERIALIZE_BYTES_FACTOR * bytes_per_example * batch_per_host
            / (host.memcpy_rate * host.cpu_cores)
        )
    # PCIe transfer: one stacked transfer vs one per feature.
    payload = bytes_per_example * batch_per_host
    transfers = 1 if config.stacked_features else num_features
    pcie = transfers * PER_TRANSFER_OVERHEAD + payload / host.pcie_bandwidth
    seconds_per_batch = parse + serialize + pcie
    return batch_per_host / seconds_per_batch


def is_input_bound(
    config: DlrmInputConfig,
    *,
    device_step_seconds: float,
    batch_per_host: int = 8192,
    host: HostSpec = TPU_V3_HOST,
) -> bool:
    """True when the host cannot feed the device at its step latency."""
    throughput = dlrm_input_throughput(config, batch_per_host=batch_per_host, host=host)
    needed = batch_per_host / device_step_seconds
    return throughput < needed

"""Data-shuffling quality for BERT at scale (§3.5).

The BERT dataset is 500 files; on a 128-host system each host sees ~4
files, so shuffle policy determines both *coverage* (does a run see the
whole dataset?) and *run-to-run variance* (biased batches early in
training change convergence trajectories).  We simulate the tf.data
pipelines as index streams and measure:

* ``coverage`` — unique fraction of the dataset consumed in one epoch-
  equivalent of samples;
* ``batch_bias_std`` — std over runs of a batch-composition statistic
  (mean underlying example id per early batch), the paper's "biased
  training batch" effect;
* ``duplication`` — fraction of samples seen more than once.

Policies: file-level shuffle before vs after ``repeat``, crossed with the
sequence-level shuffle buffer size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ShuffleQualityReport:
    """Aggregated over ``num_runs`` random seeds."""

    policy: str
    buffer_size: int
    coverage: float
    duplication: float
    batch_bias_std: float


def _stream_for_host(
    rng: np.random.Generator,
    files: np.ndarray,
    sequences_per_file: int,
    buffer_size: int,
    num_samples: int,
    shuffle_before_repeat: bool,
) -> np.ndarray:
    """Sample ids one host consumes, under a tf.data-like pipeline.

    ``files`` are the file ids assigned to this host.  The pipeline is:
    file-level (shuffle -> repeat) or (repeat -> shuffle-within-pass), then
    interleaved sequence reads pushed through a ``buffer_size`` shuffle
    buffer.
    """
    # Build the file visitation order for enough passes.
    passes = int(np.ceil(num_samples / (len(files) * sequences_per_file))) + 1
    file_order: list[int] = []
    if shuffle_before_repeat:
        # Each pass is an independent permutation of the host's files.
        for _ in range(passes):
            file_order.extend(rng.permutation(files).tolist())
    else:
        # repeat-then-shuffle with a small shuffle window over the repeated
        # file stream: early passes can revisit files before covering all.
        repeated = np.tile(files, passes)
        window = max(2, len(files) // 2)
        repeated = repeated.copy()
        for i in range(len(repeated)):
            j = i + int(rng.integers(0, window))
            if j < len(repeated):
                repeated[i], repeated[j] = repeated[j], repeated[i]
        file_order = repeated.tolist()
    # Sequence stream: sequences of each file in storage order.
    stream = np.concatenate(
        [f * sequences_per_file + np.arange(sequences_per_file) for f in file_order]
    )
    # Sequence-level shuffle buffer (reservoir semantics of tf.data.shuffle).
    out = np.empty(num_samples, dtype=np.int64)
    buffer = stream[:buffer_size].copy()
    next_in = buffer_size
    for i in range(num_samples):
        slot = int(rng.integers(0, len(buffer)))
        out[i] = buffer[slot]
        if next_in < len(stream):
            buffer[slot] = stream[next_in]
            next_in += 1
        else:  # drain
            buffer = np.delete(buffer, slot)
            if len(buffer) == 0:
                return out[: i + 1]
    return out


def simulate_shuffle_policy(
    *,
    shuffle_before_repeat: bool,
    buffer_size: int,
    num_files: int = 500,
    sequences_per_file: int = 200,
    num_hosts: int = 128,
    hosts_sampled: int = 8,
    batch_per_host: int = 64,
    num_batches: int = 40,
    num_runs: int = 5,
    seed: int = 0,
) -> ShuffleQualityReport:
    """Measure shuffle quality for one policy.

    Files are sharded over hosts round-robin (each host owns
    ``num_files / num_hosts`` files, ~4 at BERT's 128-host scale).
    """
    if num_files % num_hosts != 0 and num_files < num_hosts:
        raise ValueError("need at least one file per host")
    files_per_host = max(1, num_files // num_hosts)
    num_samples = batch_per_host * num_batches
    coverages = []
    duplications = []
    early_bias = []
    for run in range(num_runs):
        rng = np.random.default_rng(seed + run * 977)
        seen: list[np.ndarray] = []
        batch_means = []
        for h in range(hosts_sampled):
            files = np.arange(h * files_per_host, (h + 1) * files_per_host)
            stream = _stream_for_host(
                rng, files, sequences_per_file, buffer_size, num_samples,
                shuffle_before_repeat,
            )
            seen.append(stream)
            early = min(5, num_batches)
            first_batches = stream[: batch_per_host * early].reshape(
                early, batch_per_host
            )
            batch_means.extend(first_batches.mean(axis=1).tolist())
        combined = np.concatenate(seen)
        host_dataset = hosts_sampled * files_per_host * sequences_per_file
        unique = np.unique(combined)
        coverages.append(len(unique) / min(host_dataset, len(combined)))
        counts = np.bincount(combined - combined.min())
        duplications.append(float(np.mean(counts[counts > 0] > 1)))
        # Normalize batch means by the per-host dataset span so runs compare.
        early_bias.append(np.mean(batch_means) / (files_per_host * sequences_per_file))
    return ShuffleQualityReport(
        policy="shuffle_before_repeat" if shuffle_before_repeat else "repeat_before_shuffle",
        buffer_size=buffer_size,
        coverage=float(np.mean(coverages)),
        duplication=float(np.mean(duplications)),
        batch_bias_std=float(np.std(early_bias)),
    )

"""Discrete-event simulation of one host's input pipeline.

Worker threads run the preprocessing stages and push examples into a
bounded prefetch buffer (a :class:`~repro.sim.resources.Store`); the device
consumer pops a batch every step.  The quantity of interest is the **stall
fraction**: how much of the device's time is spent waiting on the host —
what the paper eliminates for ResNet-50 by removing JPEG decode and
enlarging the prefetch buffer.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro import telemetry as _telemetry
from repro.input_pipeline.stages import PipelineStage
from repro.sim.engine import Simulator
from repro.sim.resources import Store

logger = logging.getLogger("repro.input_pipeline")


@dataclass(frozen=True)
class HostPipelineResult:
    """Outcome of a host-pipeline simulation."""

    steps: int
    device_step_seconds: float
    total_seconds: float
    stall_seconds: float

    @property
    def ideal_seconds(self) -> float:
        return self.steps * self.device_step_seconds

    @property
    def stall_fraction(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.stall_seconds / self.total_seconds

    @property
    def slowdown(self) -> float:
        """total / ideal (1.0 = input pipeline fully hidden)."""
        if self.ideal_seconds <= 0:
            return 1.0
        return self.total_seconds / self.ideal_seconds


def simulate_host_pipeline(
    stages: list[PipelineStage],
    *,
    batch_per_host: int,
    device_step_seconds: float,
    steps: int,
    workers: int = 32,
    prefetch_batches: float = 2.0,
    seed: int = 0,
) -> HostPipelineResult:
    """Simulate ``steps`` device steps fed by one host.

    ``prefetch_batches`` bounds the buffer in units of batches; the paper's
    uncompressed-image optimization works *because* the cheap pipeline can
    fill a large buffer and ride out expensive examples.
    """
    if batch_per_host < 1 or steps < 1:
        raise ValueError("batch_per_host and steps must be >= 1")
    if device_step_seconds <= 0:
        raise ValueError("device_step_seconds must be positive")
    sim = Simulator()
    rng = np.random.default_rng(seed)
    buffer = Store(sim, capacity=max(1, int(prefetch_batches * batch_per_host)))
    total_examples = steps * batch_per_host
    stall = {"seconds": 0.0, "done_at": 0.0}

    def worker_producer(worker_share: int):
        produced = 0
        while produced < worker_share:
            cost = sum(stage.sample_cost(rng) for stage in stages)
            yield sim.timeout(cost)
            yield buffer.put(1)
            produced += 1

    # Spread production across workers deterministically.
    share = total_examples // workers
    remainder = total_examples % workers
    for w in range(workers):
        n = share + (1 if w < remainder else 0)
        if n:
            sim.process(worker_producer(n), name=f"worker{w}")

    def device():
        for _ in range(steps):
            wait_start = sim.now
            for _ in range(batch_per_host):
                yield buffer.get()
            stall["seconds"] += sim.now - wait_start
            yield sim.timeout(device_step_seconds)
        stall["done_at"] = sim.now

    sim.process(device(), name="device")
    sim.run()
    result = HostPipelineResult(
        steps=steps,
        device_step_seconds=device_step_seconds,
        total_seconds=stall["done_at"],
        stall_seconds=stall["seconds"],
    )
    if _telemetry.enabled:
        m = _telemetry.metrics
        m.counter("input_prefetch_stall_seconds").inc(result.stall_seconds)
        m.counter("input_device_steps").inc(steps)
        m.counter("input_examples").inc(total_examples)
        m.gauge("input_stall_fraction").set(result.stall_fraction)
        if result.stall_fraction > 0.01:
            logger.debug(
                "host pipeline stalled %.1f%% of %d steps "
                "(prefetch=%.1f batches, workers=%d)",
                100.0 * result.stall_fraction, steps, prefetch_batches, workers,
            )
    return result

"""Multi-host input load imbalance on a multipod (§3.5, ResNet-50).

At 512 hosts, the *slowest host each step* gates the whole synchronous
machine.  With JPEG decode in the pipeline the per-host feed time is heavy-
tailed and the max over hosts is far above the mean; with uncompressed
images plus a deep prefetch buffer the feed time is flat and the imbalance
disappears.  This module runs per-host pipeline simulations and reports the
multipod-level slowdown for both configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.chip import HostSpec, TPU_V3_HOST
from repro.input_pipeline.host import HostPipelineResult, simulate_host_pipeline
from repro.input_pipeline.stages import (
    crop_flip_normalize_stage,
    jpeg_decode_stage,
    uncompressed_read_stage,
)


@dataclass(frozen=True)
class ImbalanceReport:
    """Multipod input-pipeline imbalance for one pipeline configuration."""

    label: str
    num_hosts: int
    per_host: tuple[HostPipelineResult, ...]

    @property
    def mean_slowdown(self) -> float:
        return sum(r.slowdown for r in self.per_host) / len(self.per_host)

    @property
    def max_slowdown(self) -> float:
        """The synchronous machine runs at the slowest host's pace."""
        return max(r.slowdown for r in self.per_host)

    @property
    def stall_fraction(self) -> float:
        return max(r.stall_fraction for r in self.per_host)


def multipod_input_imbalance(
    *,
    num_hosts: int = 32,
    batch_per_host: int = 128,
    device_step_seconds: float = 0.012,
    steps: int = 40,
    workers: int = 32,
    prefetch_batches_compressed: float = 1.0,
    prefetch_batches_uncompressed: float = 8.0,
    host: HostSpec = TPU_V3_HOST,
    seed: int = 0,
) -> tuple[ImbalanceReport, ImbalanceReport]:
    """Compare compressed vs uncompressed pipelines across hosts.

    Returns ``(compressed_report, uncompressed_report)``.  ``num_hosts`` is
    a sample of the multipod's 512 hosts (the max-statistics already bite
    at tens of hosts).
    """
    if num_hosts < 1:
        raise ValueError("num_hosts must be >= 1")
    compressed = []
    uncompressed = []
    for h in range(num_hosts):
        compressed.append(
            simulate_host_pipeline(
                [jpeg_decode_stage(host), crop_flip_normalize_stage(host)],
                batch_per_host=batch_per_host,
                device_step_seconds=device_step_seconds,
                steps=steps,
                workers=workers,
                prefetch_batches=prefetch_batches_compressed,
                seed=seed * 1000 + h,
            )
        )
        uncompressed.append(
            simulate_host_pipeline(
                [uncompressed_read_stage(host), crop_flip_normalize_stage(host)],
                batch_per_host=batch_per_host,
                device_step_seconds=device_step_seconds,
                steps=steps,
                workers=workers,
                prefetch_batches=prefetch_batches_uncompressed,
                seed=seed * 1000 + h,
            )
        )
    return (
        ImbalanceReport("jpeg_compressed", num_hosts, tuple(compressed)),
        ImbalanceReport("uncompressed", num_hosts, tuple(uncompressed)),
    )

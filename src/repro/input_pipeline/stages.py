"""Input-pipeline stage cost models.

A stage maps one example to CPU seconds on a host worker.  JPEG decode cost
is proportional to the *compressed* size, which is heavy-tailed across
ImageNet — the source of the load imbalance; uncompressed reads cost a
near-constant memcpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.hardware.chip import HostSpec, TPU_V3_HOST


@dataclass(frozen=True)
class JpegSizeModel:
    """Lognormal model of ImageNet JPEG sizes (median ~110 KB, heavy tail)."""

    median_bytes: float = 110e3
    sigma: float = 0.55
    max_bytes: float = 2e6

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        sizes = rng.lognormal(mean=np.log(self.median_bytes), sigma=self.sigma, size=n)
        return np.minimum(sizes, self.max_bytes)


@dataclass(frozen=True)
class PipelineStage:
    """One host-side preprocessing stage.

    ``cost_fn(rng)`` returns the CPU seconds one example spends in this
    stage (drawn per example, so heavy-tailed stages create stalls).
    """

    name: str
    cost_fn: Callable[[np.random.Generator], float]

    def sample_cost(self, rng: np.random.Generator) -> float:
        cost = self.cost_fn(rng)
        if cost < 0:
            raise ValueError(f"stage {self.name} produced negative cost")
        return cost


def jpeg_decode_stage(
    host: HostSpec = TPU_V3_HOST, sizes: JpegSizeModel = JpegSizeModel()
) -> PipelineStage:
    """Decode a compressed JPEG: cost = compressed bytes / decode rate."""

    def cost(rng: np.random.Generator) -> float:
        size = float(sizes.sample(rng, 1)[0])
        return size / host.jpeg_decode_rate

    return PipelineStage("jpeg_decode", cost)


def uncompressed_read_stage(
    host: HostSpec = TPU_V3_HOST, image_bytes: float = 224 * 224 * 3
) -> PipelineStage:
    """Read an uncompressed image from host memory: a constant memcpy."""
    per_example = image_bytes / host.memcpy_rate

    def cost(rng: np.random.Generator) -> float:
        return per_example

    return PipelineStage("uncompressed_read", cost)


def crop_flip_normalize_stage(
    host: HostSpec = TPU_V3_HOST, image_bytes: float = 224 * 224 * 3
) -> PipelineStage:
    """The three ops the paper keeps on the host: crop, flip, normalize."""
    per_example = 3.0 * image_bytes / host.memcpy_rate

    def cost(rng: np.random.Generator) -> float:
        return per_example

    return PipelineStage("crop_flip_normalize", cost)

"""Host input-pipeline simulation and shuffle-quality analysis (§3.5).

Three studies from the paper live here:

* **ResNet-50 load imbalance** — on a multipod, a few hosts hit runs of
  large JPEGs and stall their chips; storing *uncompressed* images plus a
  deep prefetch buffer removes the imbalance.  :mod:`repro.input_pipeline.host`
  simulates per-host worker pools and prefetch buffers with the DES;
  :mod:`repro.input_pipeline.imbalance` runs the multi-host comparison.
* **BERT shuffle quality** — with 512 hosts sharing 500 files, shuffle
  order and buffer size determine coverage and run-to-run batch bias.
  :mod:`repro.input_pipeline.shuffle` measures both for each policy.
* **DLRM input bound** — batch-granularity parsing, feature stacking over
  PCIe, and pre-serialized batches.  :mod:`repro.input_pipeline.dlrm_input`.
"""

from repro.input_pipeline.stages import (
    PipelineStage,
    jpeg_decode_stage,
    uncompressed_read_stage,
    crop_flip_normalize_stage,
    JpegSizeModel,
)
from repro.input_pipeline.host import HostPipelineResult, simulate_host_pipeline
from repro.input_pipeline.imbalance import (
    ImbalanceReport,
    multipod_input_imbalance,
)
from repro.input_pipeline.shuffle import (
    ShuffleQualityReport,
    simulate_shuffle_policy,
)
from repro.input_pipeline.dlrm_input import (
    DlrmInputConfig,
    dlrm_input_throughput,
)

__all__ = [
    "PipelineStage",
    "jpeg_decode_stage",
    "uncompressed_read_stage",
    "crop_flip_normalize_stage",
    "JpegSizeModel",
    "HostPipelineResult",
    "simulate_host_pipeline",
    "ImbalanceReport",
    "multipod_input_imbalance",
    "ShuffleQualityReport",
    "simulate_shuffle_policy",
    "DlrmInputConfig",
    "dlrm_input_throughput",
]

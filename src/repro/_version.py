"""Version of the tpu-multipod-repro package."""

__version__ = "0.11.0"

"""DLRM on Criteo Terabyte — the MLPerf recommendation benchmark.

Section 4.6: batch 65536 (largest converging), yet scalability caps out at
a fraction of a pod (256 TPU-v3 chips) because the step latency is tiny and
communication dominates.  Key systems work: partitioning the large
embedding tables (they don't fit one chip's HBM), masking instead of
gathering the self-interaction features, multi-step on-device eval, and a
custom sort-based AUC metric (reproduced in :mod:`repro.metrics.auc`).
"""

from __future__ import annotations

from repro.models.costspec import LayerCost, ModelCostSpec

#: Criteo Terabyte click logs: ~4.2B train examples, 89.1M eval examples.
CRITEO_TRAIN = 4_195_197_692
CRITEO_EVAL = 89_137_319

#: 26 categorical features; total embedding rows across tables (~188M rows
#: of width 128 -> ~96 GB in fp32, forcing table partitioning).
EMBEDDING_ROWS = 188e6
EMBEDDING_DIM = 128
NUM_CATEGORICAL = 26
NUM_DENSE = 13


def dlrm_spec() -> ModelCostSpec:
    """Cost spec for MLPerf DLRM."""
    # Bottom MLP 13-512-256-128, top MLP 479-1024-1024-512-256-1 (reference).
    mlp_params = (
        13 * 512 + 512 * 256 + 256 * 128
        + 479 * 1024 + 1024 * 1024 + 1024 * 512 + 512 * 256 + 256
    )
    embedding_params = EMBEDDING_ROWS * EMBEDDING_DIM
    dense_flops = 6.0 * mlp_params  # fwd+bwd per example
    layers = (
        LayerCost("embedding_lookup", 0.10),
        LayerCost("bottom_mlp", 0.25),
        LayerCost("interaction", 0.05),
        LayerCost("top_mlp", 0.60),
    )
    return ModelCostSpec(
        name="dlrm",
        # Dense (all-reduced) parameters only; embedding tables are
        # partitioned, their gradients never cross the full mesh.
        params=float(mlp_params),
        flops_per_example=dense_flops,
        dataset_examples=CRITEO_TRAIN,
        eval_examples=CRITEO_EVAL,
        quality_target="AUC 0.8025",
        reference_global_batch=65536,
        optimizer="sgd",
        optimizer_flops_per_param=5.0,
        weight_dtype_bytes=4,
        grad_wire_dtype_bytes=4,
        layers=layers,
        # Each example touches 26 embedding rows fwd + bwd in fp32.
        embedding_hbm_bytes_per_example=2 * NUM_CATEGORICAL * EMBEDDING_DIM * 4,
        max_model_parallel_cores=1,
        supports_large_batch_scaling=False,
        host_input_bytes_per_example=(NUM_DENSE + NUM_CATEGORICAL + 1) * 4,
    )

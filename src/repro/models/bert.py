"""BERT-large pre-training on Wikipedia — new in MLPerf v0.7.

Section 4.1: pure data parallelism at 4096 chips thanks to LAMB; bfloat16
activations and gradient summation; Vizier-tuned hyperparameters; shuffle
quality (file-level shuffle-before-repeat, large sequence buffers) guards
convergence at scale.  The weight update was ~18% of step time on 512
chips before weight-update sharding (Section 3.2).
"""

from __future__ import annotations

from repro.models.costspec import LayerCost, ModelCostSpec

#: MLPerf BERT pre-training set: ~156M sequences worth of Wikipedia text is
#: packed into 500 files; the benchmark region trains on a fixed slice.  We
#: express the dataset in 512-token sequences.
BERT_TRAIN_SEQUENCES = 156_725_653 // 512  # ~306k packed sequences per epoch
BERT_EVAL_EXAMPLES = 10_000
MAX_SEQ_LEN = 512


def bert_large_spec() -> ModelCostSpec:
    """Cost spec for BERT-large (24 layers, hidden 1024, ~334M params)."""
    hidden = 1024
    seq = MAX_SEQ_LEN
    params = 334e6
    # Dense-transformer training FLOPs: ~6 FLOPs per param per token.
    flops = 6.0 * params * seq
    layers = (
        LayerCost("embeddings", 0.02),
        LayerCost("encoder_24x", 0.93),
        LayerCost("mlm_head", 0.05),
    )
    return ModelCostSpec(
        name="bert",
        params=params,
        flops_per_example=flops,
        dataset_examples=BERT_TRAIN_SEQUENCES,
        eval_examples=BERT_EVAL_EXAMPLES,
        quality_target="MLM accuracy 0.712",
        reference_global_batch=8192,
        optimizer="lamb",
        optimizer_flops_per_param=18.0,
        optimizer_bytes_per_param=40.0,  # LAMB: p, g, m, v traffic
        weight_dtype_bytes=4,
        grad_wire_dtype_bytes=2,  # bfloat16 gradient summation (Section 3.3)
        layers=layers,
        max_model_parallel_cores=1,
        supports_large_batch_scaling=True,
        host_input_bytes_per_example=seq * 8,  # token + mask int32 pairs
    )

"""Multi-head self-attention with explicit gradients, and head sharding.

Section 4.3 shards the Transformer's attention projection layers along the
``num_heads`` dimension.  This module provides:

* :func:`attention_forward` / :func:`attention_backward` — a numpy
  multi-head self-attention block (projections + scaled dot-product +
  output projection) with hand-written gradients;
* :class:`HeadShardedAttention` — the same computation with Q/K/V/O
  projection weights split by head across ``mp`` cores: every core attends
  with its own heads locally, and a single all-reduce (over the model
  group's short X rings) combines the output-projection partials, exactly
  the paper's layout.

Tests check gradient correctness against numerical differentiation and
bit-level equivalence of the sharded execution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.layers import softmax
from repro.runtime.collectives import ring_all_reduce


@dataclass
class AttentionParams:
    """Projection weights for one attention block (no biases for clarity).

    Shapes: ``wq/wk/wv`` are [hidden, heads*dim]; ``wo`` is
    [heads*dim, hidden].
    """

    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    num_heads: int

    def __post_init__(self) -> None:
        hidden, proj = self.wq.shape
        if proj % self.num_heads != 0:
            raise ValueError(
                f"projection width {proj} not divisible by {self.num_heads} heads"
            )
        for name in ("wk", "wv"):
            if getattr(self, name).shape != (hidden, proj):
                raise ValueError(f"{name} shape mismatch")
        if self.wo.shape != (proj, hidden):
            raise ValueError("wo shape mismatch")

    @property
    def head_dim(self) -> int:
        return self.wq.shape[1] // self.num_heads

    @staticmethod
    def init(
        rng: np.random.Generator, hidden: int, num_heads: int, head_dim: int
    ) -> "AttentionParams":
        proj = num_heads * head_dim
        scale = 1.0 / np.sqrt(hidden)
        return AttentionParams(
            wq=rng.standard_normal((hidden, proj)) * scale,
            wk=rng.standard_normal((hidden, proj)) * scale,
            wv=rng.standard_normal((hidden, proj)) * scale,
            wo=rng.standard_normal((proj, hidden)) * scale,
            num_heads=num_heads,
        )


def _split_heads(x: np.ndarray, heads: int) -> np.ndarray:
    """[seq, heads*dim] -> [heads, seq, dim]."""
    seq, proj = x.shape
    return x.reshape(seq, heads, proj // heads).transpose(1, 0, 2)


def _merge_heads(x: np.ndarray) -> np.ndarray:
    """[heads, seq, dim] -> [seq, heads*dim]."""
    heads, seq, dim = x.shape
    return x.transpose(1, 0, 2).reshape(seq, heads * dim)


def attention_forward(
    params: AttentionParams, x: np.ndarray
) -> tuple[np.ndarray, dict]:
    """Self-attention over [seq, hidden]; returns (output, cache)."""
    if x.ndim != 2 or x.shape[1] != params.wq.shape[0]:
        raise ValueError("x must be [seq, hidden]")
    h = params.num_heads
    q = _split_heads(x @ params.wq, h)
    k = _split_heads(x @ params.wk, h)
    v = _split_heads(x @ params.wv, h)
    scale = 1.0 / np.sqrt(params.head_dim)
    scores = np.einsum("hqd,hkd->hqk", q, k) * scale
    probs = softmax(scores)
    context = np.einsum("hqk,hkd->hqd", probs, v)
    merged = _merge_heads(context)
    out = merged @ params.wo
    cache = {"x": x, "q": q, "k": k, "v": v, "probs": probs,
             "merged": merged, "scale": scale}
    return out, cache


def attention_backward(
    params: AttentionParams, cache: dict, dout: np.ndarray
) -> tuple[np.ndarray, AttentionParams]:
    """Gradients of attention; returns (dx, dparams)."""
    h = params.num_heads
    x, q, k, v = cache["x"], cache["q"], cache["k"], cache["v"]
    probs, merged, scale = cache["probs"], cache["merged"], cache["scale"]
    dwo = merged.T @ dout
    dmerged = dout @ params.wo.T
    dcontext = _split_heads(dmerged, h)
    dprobs = np.einsum("hqd,hkd->hqk", dcontext, v)
    dv = np.einsum("hqk,hqd->hkd", probs, dcontext)
    # softmax backward per row.
    dscores = probs * (dprobs - np.sum(dprobs * probs, axis=-1, keepdims=True))
    dscores *= scale
    dq = np.einsum("hqk,hkd->hqd", dscores, k)
    dk = np.einsum("hqk,hqd->hkd", dscores, q)
    dwq = x.T @ _merge_heads(dq)
    dwk = x.T @ _merge_heads(dk)
    dwv = x.T @ _merge_heads(dv)
    dx = (
        _merge_heads(dq) @ params.wq.T
        + _merge_heads(dk) @ params.wk.T
        + _merge_heads(dv) @ params.wv.T
    )
    return dx, AttentionParams(dwq, dwk, dwv, dwo, h)


class HeadShardedAttention:
    """Attention with heads split over ``mp`` model-parallel cores (§4.3)."""

    def __init__(self, params: AttentionParams, mp: int) -> None:
        if params.num_heads % mp != 0:
            raise ValueError(
                f"{params.num_heads} heads not divisible by mp={mp}"
            )
        self.mp = mp
        self.full = params
        self.shards = self._shard(params)

    def _shard(self, params: AttentionParams) -> list[AttentionParams]:
        h = params.num_heads
        per = h // self.mp
        dim = params.head_dim
        shards = []
        for i in range(self.mp):
            cols = slice(i * per * dim, (i + 1) * per * dim)
            shards.append(
                AttentionParams(
                    wq=params.wq[:, cols],
                    wk=params.wk[:, cols],
                    wv=params.wv[:, cols],
                    wo=params.wo[cols, :],
                    num_heads=per,
                )
            )
        return shards

    def forward(self, x: np.ndarray, dtype_policy: str = "f64") -> np.ndarray:
        """Each core attends with its heads; one all-reduce merges outputs.

        The output projection is row-sharded by head, so each core's
        ``context_i @ wo_i`` is a *partial* sum of the full output — the
        contraction the black rings of Figure 4 resolve.
        """
        partials = []
        for shard in self.shards:
            out, _ = attention_forward(shard, x)
            partials.append(out)
        return ring_all_reduce(partials, dtype_policy)[0]

    def forward_backward(
        self, x: np.ndarray, dout: np.ndarray, dtype_policy: str = "f64"
    ) -> tuple[np.ndarray, list[AttentionParams]]:
        """Sharded forward + backward; returns (dx, per-core weight grads).

        ``dout`` is the (replicated) output gradient; each core computes
        its shard's weight gradients locally and its partial ``dx``, which
        a backward all-reduce combines.
        """
        dxs = []
        grads = []
        for shard in self.shards:
            _, cache = attention_forward(shard, x)
            dx_i, g_i = attention_backward(shard, cache, dout)
            dxs.append(dx_i)
            grads.append(g_i)
        dx = ring_all_reduce(dxs, dtype_policy)[0]
        return dx, grads

    def gather_grads(self, grads: list[AttentionParams]) -> AttentionParams:
        """Reassemble full-weight gradients from per-core shards."""
        return AttentionParams(
            wq=np.concatenate([g.wq for g in grads], axis=1),
            wk=np.concatenate([g.wk for g in grads], axis=1),
            wv=np.concatenate([g.wv for g in grads], axis=1),
            wo=np.concatenate([g.wo for g in grads], axis=0),
            num_heads=self.full.num_heads,
        )

"""Transformer (big) on WMT'14 En-De — the MLPerf translation benchmark.

Section 4.3: the global batch is capped at 2048 by the epoch budget
(Shallue et al. 2018), so scaling past 2048 chips requires *model
parallelism*: shared embedding, attention projection and feed-forward
layers are dense-sharded along vocab / num_heads / hidden dimensions over
up to 4 X-adjacent cores, with forward/backward all-reduces on the short
X rings and gradient summation on the peer-hopping rings (Figure 4);
2-D cross-replica all-reduce runs in bfloat16.
"""

from __future__ import annotations

from repro.models.costspec import LayerCost, ModelCostSpec

#: WMT14 En-De sentence pairs and average tokens per sentence (MLPerf uses
#: ~4.5M pairs; sequences are bucketed, ~27 tokens mean).
WMT_TRAIN_PAIRS = 4_500_000
WMT_EVAL_PAIRS = 3_003
AVG_TOKENS = 27


def transformer_big_spec() -> ModelCostSpec:
    """Cost spec for Transformer-big (~210M params)."""
    params = 210e6
    tokens = AVG_TOKENS
    flops = 6.0 * params * tokens
    hidden = 1024
    ffn = 4096
    # Activation all-reduced once per sharded layer pair, forward + backward:
    # roughly 2 passes x num_layers x seq x hidden x 2 bytes.
    act_ar_bytes = 2 * 12 * tokens * hidden * 2.0
    layers = (
        LayerCost("embedding_vocab_sharded", 0.08),
        LayerCost("attention_heads_sharded", 0.35),
        LayerCost("ffn_hidden_sharded", 0.52),
        LayerCost("softmax_unsharded", 0.05),
    )
    return ModelCostSpec(
        name="transformer",
        params=params,
        flops_per_example=flops,
        dataset_examples=WMT_TRAIN_PAIRS,
        eval_examples=WMT_EVAL_PAIRS,
        quality_target="BLEU 25.0",
        reference_global_batch=2048,
        optimizer="adam",
        optimizer_flops_per_param=12.0,
        optimizer_bytes_per_param=36.0,  # Adam: p, g, m, v traffic
        weight_dtype_bytes=4,
        grad_wire_dtype_bytes=2,  # bf16 all-reduce (Section 4.3)
        layers=layers,
        activation_allreduce_bytes_per_example=act_ar_bytes,
        max_model_parallel_cores=4,
        supports_large_batch_scaling=False,
        host_input_bytes_per_example=tokens * 8,
    )

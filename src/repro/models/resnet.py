"""ResNet-50 v1.5 on ImageNet — the MLPerf image-classification benchmark.

Section 4.2: trained with pure data parallelism at batch 65536 on the full
4096-chip multipod, enabled by the LARS optimizer, distributed batch norm,
weight-update sharding and the 2-D gradient summation.  Convergence: 44
epochs at batch 4K growing to 88 epochs at batch 64K (Section 5), target
75.9% top-1.
"""

from __future__ import annotations

from repro.models.costspec import LayerCost, ModelCostSpec

#: ImageNet-1K training/eval sizes.
IMAGENET_TRAIN = 1_281_167
IMAGENET_EVAL = 50_000


def resnet50_spec() -> ModelCostSpec:
    """Cost spec for ResNet-50 v1.5 (25.6M params, ~4.1 GFLOPs forward)."""
    # Stage geometry of ResNet-50 on 224x224 inputs; fractions of total
    # training FLOPs (forward ~1/3, backward ~2/3, roughly uniform across
    # stages by their forward share).
    layers = (
        LayerCost("stem_conv7x7", 0.05, height=112, width=112, channels=64,
                  spatially_partitionable=True, halo_rows=3),
        LayerCost("stage1_56x56", 0.22, height=56, width=56, channels=256,
                  spatially_partitionable=True, halo_rows=1),
        LayerCost("stage2_28x28", 0.25, height=28, width=28, channels=512,
                  spatially_partitionable=True, halo_rows=1),
        LayerCost("stage3_14x14", 0.28, height=14, width=14, channels=1024,
                  spatially_partitionable=True, halo_rows=1),
        LayerCost("stage4_7x7", 0.15, height=7, width=7, channels=2048,
                  spatially_partitionable=True, halo_rows=1),
        LayerCost("fc_and_bn", 0.05),
    )
    return ModelCostSpec(
        name="resnet50",
        params=25.6e6,
        flops_per_example=3 * 4.1e9,  # fwd + ~2x bwd
        dataset_examples=IMAGENET_TRAIN,
        eval_examples=IMAGENET_EVAL,
        quality_target="75.9% top-1",
        reference_global_batch=65536,
        optimizer="lars",
        optimizer_flops_per_param=8.0,
        optimizer_bytes_per_param=24.0,  # LARS: p, g, momentum reads + writes
        weight_dtype_bytes=4,
        grad_wire_dtype_bytes=4,  # LARS norms want fp32 gradient summation
        layers=layers,
        max_model_parallel_cores=1,
        supports_large_batch_scaling=True,
        # 224*224*3 uint8 after host-side crop/flip/normalize staging.
        host_input_bytes_per_example=224 * 224 * 3,
    )

"""Models: trainable numpy networks and MLPerf v0.7 cost specifications.

Two kinds of model live here:

* **Trainable models** (:mod:`repro.models.layers`, :mod:`repro.models.mlp`)
  — small numpy networks with hand-written gradients, used to run the
  paper's parallelization schemes *for real* and check they leave the math
  unchanged.
* **Cost specs** (:mod:`repro.models.costspec` and the per-benchmark
  modules) — FLOPs / parameter / activation accounting for the six MLPerf
  v0.7 models, consumed by the step-time and end-to-end models that
  regenerate the paper's tables and figures.
"""

from repro.models.layers import (
    dense_forward,
    dense_backward,
    relu,
    relu_backward,
    softmax_cross_entropy,
)
from repro.models.mlp import MLP
from repro.models.costspec import ModelCostSpec, LayerCost
from repro.models.bert import bert_large_spec
from repro.models.resnet import resnet50_spec
from repro.models.transformer import transformer_big_spec
from repro.models.ssd import ssd_spec
from repro.models.maskrcnn import maskrcnn_spec
from repro.models.dlrm import dlrm_spec
from repro.models.attention import (
    AttentionParams,
    HeadShardedAttention,
    attention_forward,
    attention_backward,
)
from repro.models.transformer_small import (
    TinyTransformerClassifier,
    synthetic_sequences,
)
from repro.models.embedding import (
    EmbeddingTableSpec,
    EmbeddingPlacement,
    ShardedEmbedding,
    plan_embedding_placement,
    interaction_gather,
    interaction_masked,
    expand_weights_for_mask,
    criteo_tables,
)

__all__ = [
    "dense_forward",
    "dense_backward",
    "relu",
    "relu_backward",
    "softmax_cross_entropy",
    "MLP",
    "ModelCostSpec",
    "LayerCost",
    "bert_large_spec",
    "resnet50_spec",
    "transformer_big_spec",
    "ssd_spec",
    "maskrcnn_spec",
    "dlrm_spec",
    "AttentionParams",
    "HeadShardedAttention",
    "attention_forward",
    "attention_backward",
    "TinyTransformerClassifier",
    "synthetic_sequences",
    "EmbeddingTableSpec",
    "EmbeddingPlacement",
    "ShardedEmbedding",
    "plan_embedding_placement",
    "interaction_gather",
    "interaction_masked",
    "expand_weights_for_mask",
    "criteo_tables",
]

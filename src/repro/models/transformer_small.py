"""A tiny trainable Transformer classifier (attention + pool + dense).

Composes the multi-head attention block of :mod:`repro.models.attention`
into a trainable model with hand-written gradients, and provides a
head-sharded execution path — the smallest end-to-end instance of the
paper's Transformer model parallelism (§4.3) that can be *trained* and
checked against its unsharded twin.

Architecture per example (sequence of feature vectors):

    h  = x @ w_in                       # feature -> hidden projection
    h2 = h + attention(h)               # one pre-norm-free block
    p  = mean_seq(h2)                   # pooling
    logits = p @ w_out + b_out
"""

from __future__ import annotations

import numpy as np

from repro.models.attention import (
    AttentionParams,
    HeadShardedAttention,
    attention_backward,
    attention_forward,
)
from repro.models.layers import softmax_cross_entropy


class TinyTransformerClassifier:
    """Sequence classifier with one attention block."""

    def __init__(
        self, features: int, hidden: int, num_heads: int, classes: int
    ) -> None:
        if hidden % num_heads != 0:
            raise ValueError(f"hidden {hidden} not divisible by {num_heads} heads")
        self.features = features
        self.hidden = hidden
        self.num_heads = num_heads
        self.classes = classes

    def init_params(self, rng: np.random.Generator) -> dict:
        scale_in = 1.0 / np.sqrt(self.features)
        scale_out = 1.0 / np.sqrt(self.hidden)
        return {
            "w_in": rng.standard_normal((self.features, self.hidden)) * scale_in,
            "attn": AttentionParams.init(
                rng, self.hidden, self.num_heads, self.hidden // self.num_heads
            ),
            "w_out": rng.standard_normal((self.hidden, self.classes)) * scale_out,
            "b_out": np.zeros(self.classes),
        }

    def _forward_one(self, params: dict, x_e: np.ndarray):
        h = x_e @ params["w_in"]
        a, cache = attention_forward(params["attn"], h)
        h2 = h + a
        pooled = h2.mean(axis=0)
        return pooled, (x_e, h, cache)

    def forward(self, params: dict, x: np.ndarray) -> np.ndarray:
        """Logits for [batch, seq, features] inputs."""
        if x.ndim != 3 or x.shape[2] != self.features:
            raise ValueError("x must be [batch, seq, features]")
        pooled = np.stack([self._forward_one(params, xe)[0] for xe in x])
        return pooled @ params["w_out"] + params["b_out"]

    def loss_and_grad(
        self, params: dict, x: np.ndarray, labels: np.ndarray
    ) -> tuple[float, dict]:
        """Mean cross-entropy and gradients for a mini-batch."""
        batch, seq, _ = x.shape
        pooled = []
        caches = []
        for xe in x:
            p, cache = self._forward_one(params, xe)
            pooled.append(p)
            caches.append(cache)
        pooled = np.stack(pooled)
        logits = pooled @ params["w_out"] + params["b_out"]
        loss, dlogits = softmax_cross_entropy(logits, labels)
        grads = {
            "w_in": np.zeros_like(params["w_in"]),
            "w_out": pooled.T @ dlogits,
            "b_out": dlogits.sum(axis=0),
            "attn": AttentionParams(
                np.zeros_like(params["attn"].wq),
                np.zeros_like(params["attn"].wk),
                np.zeros_like(params["attn"].wv),
                np.zeros_like(params["attn"].wo),
                self.num_heads,
            ),
        }
        dpooled = dlogits @ params["w_out"].T
        for e in range(batch):
            x_e, h, cache = caches[e]
            dh2 = np.tile(dpooled[e] / seq, (seq, 1))
            dh_attn, attn_grads = attention_backward(params["attn"], cache, dh2)
            dh = dh2 + dh_attn  # residual
            grads["w_in"] += x_e.T @ dh
            for name in ("wq", "wk", "wv", "wo"):
                getattr(grads["attn"], name)[...] += getattr(attn_grads, name)
        return loss, grads

    def sgd_step(self, params: dict, grads: dict, lr: float) -> dict:
        """A plain SGD update (attention params handled structurally)."""
        new = {
            "w_in": params["w_in"] - lr * grads["w_in"],
            "w_out": params["w_out"] - lr * grads["w_out"],
            "b_out": params["b_out"] - lr * grads["b_out"],
            "attn": AttentionParams(
                params["attn"].wq - lr * grads["attn"].wq,
                params["attn"].wk - lr * grads["attn"].wk,
                params["attn"].wv - lr * grads["attn"].wv,
                params["attn"].wo - lr * grads["attn"].wo,
                self.num_heads,
            ),
        }
        return new

    def accuracy(self, params: dict, x: np.ndarray, labels: np.ndarray) -> float:
        return float(np.mean(np.argmax(self.forward(params, x), axis=-1) == labels))

    # --- head-sharded execution (§4.3) ------------------------------------

    def forward_sharded(self, params: dict, x: np.ndarray, mp: int) -> np.ndarray:
        """Logits with the attention block's heads split over mp cores."""
        sharded = HeadShardedAttention(params["attn"], mp)
        out = []
        for xe in x:
            h = xe @ params["w_in"]
            h2 = h + sharded.forward(h)
            out.append(h2.mean(axis=0))
        return np.stack(out) @ params["w_out"] + params["b_out"]


def synthetic_sequences(
    rng: np.random.Generator,
    num_samples: int,
    seq: int,
    features: int,
    classes: int,
    noise: float = 0.1,
) -> tuple[np.ndarray, np.ndarray]:
    """Sequence classification data: class prototype injected at a random
    position of an otherwise-noise sequence (attention must find it)."""
    prototypes = rng.standard_normal((classes, features))
    labels = rng.integers(0, classes, num_samples)
    x = noise * rng.standard_normal((num_samples, seq, features))
    pos = rng.integers(0, seq, num_samples)
    x[np.arange(num_samples), pos] += prototypes[labels]
    return x, labels

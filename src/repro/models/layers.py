"""Numpy neural-network layers with explicit backward passes.

Everything is written against float64 by default so that parallelization
equivalence tests can demand tight tolerances: if a sharded execution
produces the same numbers as the replicated one, the only remaining error
source is summation order.
"""

from __future__ import annotations

import numpy as np


def dense_forward(
    x: np.ndarray, w: np.ndarray, b: np.ndarray | None = None
) -> np.ndarray:
    """``y = x @ w (+ b)`` for a [batch, in] activation."""
    if x.ndim != 2 or w.ndim != 2:
        raise ValueError("dense_forward expects 2-D x and w")
    if x.shape[1] != w.shape[0]:
        raise ValueError(f"shape mismatch: x {x.shape} @ w {w.shape}")
    y = x @ w
    if b is not None:
        y = y + b
    return y


def dense_backward(
    x: np.ndarray, w: np.ndarray, dy: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of a dense layer: returns (dx, dw, db)."""
    dx = dy @ w.T
    dw = x.T @ dy
    db = dy.sum(axis=0)
    return dx, dw, db


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_backward(x: np.ndarray, dy: np.ndarray) -> np.ndarray:
    return dy * (x > 0.0)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and gradient w.r.t. logits.

    ``labels`` are integer class indices of shape [batch].
    """
    if logits.ndim != 2:
        raise ValueError("logits must be [batch, classes]")
    batch = logits.shape[0]
    if labels.shape != (batch,):
        raise ValueError(f"labels shape {labels.shape} != ({batch},)")
    probs = softmax(logits)
    eps = 1e-12
    picked = probs[np.arange(batch), labels]
    loss = float(-np.mean(np.log(picked + eps)))
    dlogits = probs.copy()
    dlogits[np.arange(batch), labels] -= 1.0
    dlogits /= batch
    return loss, dlogits


def layer_norm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
               eps: float = 1e-6) -> tuple[np.ndarray, tuple]:
    """Layer normalization over the last axis; returns (y, cache)."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    x_hat = (x - mean) * inv
    y = gamma * x_hat + beta
    return y, (x_hat, inv, gamma)


def layer_norm_backward(dy: np.ndarray, cache: tuple) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward of layer_norm; returns (dx, dgamma, dbeta)."""
    x_hat, inv, gamma = cache
    n = x_hat.shape[-1]
    dgamma = (dy * x_hat).sum(axis=tuple(range(dy.ndim - 1)))
    dbeta = dy.sum(axis=tuple(range(dy.ndim - 1)))
    dx_hat = dy * gamma
    dx = inv * (
        dx_hat
        - dx_hat.mean(axis=-1, keepdims=True)
        - x_hat * (dx_hat * x_hat).mean(axis=-1, keepdims=True)
    )
    return dx, dgamma, dbeta

"""Cost specifications for the MLPerf v0.7 benchmark models.

A :class:`ModelCostSpec` captures everything the analytic scaling models
need about a benchmark: arithmetic work per example, parameter/gradient
payloads, dataset sizes, the MLPerf submission batch size, and a coarse
per-layer profile used by the model-parallelism estimators (spatial tile
shapes and halo widths for the segmentation models, activation all-reduce
payloads for the feature-sharded Transformer).

The numbers come from the public model descriptions (He et al. 2016,
Devlin et al. 2018, Vaswani et al. 2017, Liu et al. SSD, MaskRCNN, Naumov
et al. DLRM) and the MLPerf v0.7 rules; they are inputs to a *shape*
reproduction, not testbed measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LayerCost:
    """A coarse stage of a model, for partitioning analysis.

    ``flops_fraction`` is the share of total per-example training FLOPs in
    this stage.  Spatial fields describe activation geometry where spatial
    partitioning applies.
    """

    name: str
    flops_fraction: float
    height: int = 1
    width: int = 1
    channels: int = 1
    spatially_partitionable: bool = False
    halo_rows: int = 0
    activation_dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.flops_fraction <= 1.0:
            raise ValueError("flops_fraction must be in [0, 1]")
        if min(self.height, self.width, self.channels) < 1:
            raise ValueError("activation dims must be positive")


@dataclass(frozen=True)
class ModelCostSpec:
    """Scaling-relevant accounting for one MLPerf benchmark."""

    name: str
    params: float
    """Trainable parameter count."""
    flops_per_example: float
    """Training FLOPs (forward + backward) per example."""
    dataset_examples: float
    """Training-set size (examples per epoch)."""
    eval_examples: float
    """Evaluation-set size."""
    quality_target: str
    """The MLPerf convergence criterion, for documentation."""
    reference_global_batch: int
    """Global batch of the paper's submission."""
    optimizer: str = "sgd"
    optimizer_flops_per_param: float = 5.0
    optimizer_bytes_per_param: float = 16.0
    """HBM traffic per parameter per update (reads+writes of the weight,
    gradient and slot variables).  The optimizer update is memory-bound on
    TPUs, which is why LAMB's replicated update reached ~18% of the BERT
    step (Section 3.2): SGD+momentum ~16 B, LARS ~24 B, Adam ~36 B,
    LAMB ~40 B."""
    weight_dtype_bytes: int = 4
    grad_wire_dtype_bytes: int = 4
    """Bytes per gradient element on the wire (2 when summed in bfloat16)."""
    layers: tuple[LayerCost, ...] = field(default=())
    activation_allreduce_bytes_per_example: float = 0.0
    """Feature-sharded MP: activation bytes all-reduced per example per pass."""
    embedding_hbm_bytes_per_example: float = 0.0
    """DLRM-style embedding traffic (HBM-bound) per example."""
    max_model_parallel_cores: int = 1
    """Largest model-parallel tile the paper uses for this benchmark."""
    supports_large_batch_scaling: bool = True
    """Whether data parallelism alone reaches multipod scale (BERT/ResNet)."""
    host_input_bytes_per_example: float = 0.0
    """Bytes the host pipeline must feed per example (over PCIe)."""

    def __post_init__(self) -> None:
        if self.params <= 0 or self.flops_per_example <= 0:
            raise ValueError("params and flops_per_example must be positive")
        if self.reference_global_batch < 1:
            raise ValueError("reference_global_batch must be >= 1")
        total = sum(layer.flops_fraction for layer in self.layers)
        if self.layers and total > 1.0 + 1e-9:
            raise ValueError(f"layer flops fractions sum to {total} > 1")

    @property
    def gradient_bytes(self) -> float:
        """Per-replica gradient payload on the wire."""
        return self.params * self.grad_wire_dtype_bytes

    @property
    def weight_bytes(self) -> float:
        return self.params * self.weight_dtype_bytes

    def steps_per_epoch(self, global_batch: int) -> float:
        if global_batch < 1:
            raise ValueError("global_batch must be >= 1")
        return self.dataset_examples / global_batch

    def unpartitionable_fraction(self) -> float:
        """FLOPs share with no spatially partitionable implementation."""
        if not self.layers:
            return 0.0
        return 1.0 - sum(
            l.flops_fraction for l in self.layers if l.spatially_partitionable
        )

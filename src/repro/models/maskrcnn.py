"""Mask-RCNN on COCO — the heavy-weight detection/segmentation benchmark.

Section 4.5: the quality-preserving batch is only 256, so data parallelism
stops at 128 cores and spatial model parallelism carries scaling to 1024
cores (512 chips).  The XLA SPMD work it motivated: gather -> one-hot
matmul for ROIAlign, resharding between convolution and einsum layouts,
partitioning support for topk/gather/special convolutions, and
communication optimizations that cut comm overhead from ~30% to ~10%.
"""

from __future__ import annotations

from repro.models.costspec import LayerCost, ModelCostSpec
from repro.models.ssd import COCO_TRAIN, COCO_EVAL


def maskrcnn_spec() -> ModelCostSpec:
    """Cost spec for MaskRCNN (ResNet-50 + FPN, ~46M params, 800x1333)."""
    layers = (
        LayerCost("backbone_400x667", 0.28, height=400, width=667, channels=64,
                  spatially_partitionable=True, halo_rows=3),
        LayerCost("backbone_200x334", 0.22, height=200, width=334, channels=256,
                  spatially_partitionable=True, halo_rows=1),
        LayerCost("backbone_100x167", 0.18, height=100, width=167, channels=512,
                  spatially_partitionable=True, halo_rows=1),
        LayerCost("fpn_50x84", 0.10, height=50, width=84, channels=1024,
                  spatially_partitionable=True, halo_rows=1),
        LayerCost("rpn_and_roialign", 0.12, spatially_partitionable=True),
        LayerCost("detection_heads", 0.10),
    )
    return ModelCostSpec(
        name="maskrcnn",
        params=46e6,
        flops_per_example=3 * 270e9,
        dataset_examples=COCO_TRAIN,
        eval_examples=COCO_EVAL,
        quality_target="box mAP 37.7 / mask mAP 33.9",
        reference_global_batch=256,
        optimizer="sgd",
        optimizer_flops_per_param=5.0,
        weight_dtype_bytes=4,
        grad_wire_dtype_bytes=4,
        layers=layers,
        max_model_parallel_cores=8,
        supports_large_batch_scaling=False,
        host_input_bytes_per_example=800 * 1333 * 3,
    )

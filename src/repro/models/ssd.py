"""SSD (ResNet-34 backbone, 300x300) on COCO — light-weight detection.

Section 4.4: batch 4096 (up from 2048 in v0.6) plus SPMD *spatial
partitioning* over up to 8 cores; SPMD (vs v0.6's MPMD) scales compilation
and enables weight-update sharding with model parallelism (a further 10%
speedup).  Speedups are limited by halo exchange, tile load imbalance and
the small 300x300 -> 1x1 spatial dims of late layers.
"""

from __future__ import annotations

from repro.models.costspec import LayerCost, ModelCostSpec

COCO_TRAIN = 117_266
COCO_EVAL = 5_000


def ssd_spec() -> ModelCostSpec:
    """Cost spec for MLPerf SSD (~36M params with ResNet-34 backbone)."""
    layers = (
        LayerCost("backbone_150x150", 0.30, height=150, width=150, channels=64,
                  spatially_partitionable=True, halo_rows=1),
        LayerCost("backbone_75x75", 0.25, height=75, width=75, channels=128,
                  spatially_partitionable=True, halo_rows=1),
        LayerCost("backbone_38x38", 0.22, height=38, width=38, channels=256,
                  spatially_partitionable=True, halo_rows=1),
        LayerCost("head_19x19", 0.13, height=19, width=19, channels=512,
                  spatially_partitionable=True, halo_rows=1),
        LayerCost("head_10x10_to_1x1", 0.06, height=10, width=10, channels=512,
                  spatially_partitionable=False),
        LayerCost("loss_and_nms", 0.04),
    )
    return ModelCostSpec(
        name="ssd",
        params=36e6,
        flops_per_example=3 * 35e9,
        dataset_examples=COCO_TRAIN,
        eval_examples=COCO_EVAL,
        quality_target="mAP 23.0",
        reference_global_batch=4096,
        optimizer="sgd",
        optimizer_flops_per_param=5.0,
        weight_dtype_bytes=4,
        grad_wire_dtype_bytes=4,
        layers=layers,
        max_model_parallel_cores=8,
        supports_large_batch_scaling=False,
        host_input_bytes_per_example=300 * 300 * 3,
    )

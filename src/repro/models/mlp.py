"""A small trainable MLP classifier with hand-written gradients.

This is the workhorse of the functional parallelism tests: big enough to
have multiple layers with distinct shapes (so sharding/reassembly bugs show
up), small enough that hundreds of equivalence checks run in seconds.
"""

from __future__ import annotations

import numpy as np

from repro.models.layers import (
    dense_backward,
    dense_forward,
    relu,
    relu_backward,
    softmax,
    softmax_cross_entropy,
)
from repro.optim.base import Grads, Params


class MLP:
    """A fully connected ReLU network for classification.

    Parameters are stored as a flat dict ``{"w0": ..., "b0": ..., ...}``
    compatible with the optimizers and the parallel trainers.
    """

    def __init__(self, layer_sizes: list[int], dtype=np.float64) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output sizes")
        if any(s < 1 for s in layer_sizes):
            raise ValueError("layer sizes must be positive")
        self.layer_sizes = list(layer_sizes)
        self.dtype = dtype

    @property
    def num_layers(self) -> int:
        return len(self.layer_sizes) - 1

    def init_params(self, rng: np.random.Generator) -> Params:
        """He-initialized weights, zero biases."""
        params: Params = {}
        for i, (fan_in, fan_out) in enumerate(
            zip(self.layer_sizes, self.layer_sizes[1:])
        ):
            scale = np.sqrt(2.0 / fan_in)
            params[f"w{i}"] = (
                rng.standard_normal((fan_in, fan_out)) * scale
            ).astype(self.dtype)
            params[f"b{i}"] = np.zeros(fan_out, dtype=self.dtype)
        return params

    def forward(self, params: Params, x: np.ndarray) -> np.ndarray:
        """Logits for a [batch, features] input."""
        h = x.astype(self.dtype)
        for i in range(self.num_layers):
            h = dense_forward(h, params[f"w{i}"], params[f"b{i}"])
            if i + 1 < self.num_layers:
                h = relu(h)
        return h

    def loss_and_grad(
        self, params: Params, x: np.ndarray, labels: np.ndarray
    ) -> tuple[float, Grads]:
        """Mean cross-entropy loss and gradients for a mini-batch."""
        activations = [x.astype(self.dtype)]
        pre_relu: list[np.ndarray] = []
        h = activations[0]
        for i in range(self.num_layers):
            z = dense_forward(h, params[f"w{i}"], params[f"b{i}"])
            if i + 1 < self.num_layers:
                pre_relu.append(z)
                h = relu(z)
            else:
                h = z
            activations.append(h)
        loss, dy = softmax_cross_entropy(h, labels)
        grads: dict[str, np.ndarray] = {}
        for i in reversed(range(self.num_layers)):
            x_in = activations[i]
            dx, dw, db = dense_backward(x_in, params[f"w{i}"], dy)
            grads[f"w{i}"] = dw
            grads[f"b{i}"] = db
            if i > 0:
                dy = relu_backward(pre_relu[i - 1], dx)
        return loss, grads

    def predict(self, params: Params, x: np.ndarray) -> np.ndarray:
        """Predicted class indices."""
        return np.argmax(self.forward(params, x), axis=-1)

    def accuracy(self, params: Params, x: np.ndarray, labels: np.ndarray) -> float:
        return float(np.mean(self.predict(params, x) == labels))

    def predict_proba(self, params: Params, x: np.ndarray) -> np.ndarray:
        return softmax(self.forward(params, x))


def synthetic_classification(
    rng: np.random.Generator,
    num_samples: int,
    num_features: int,
    num_classes: int,
    noise: float = 0.1,
) -> tuple[np.ndarray, np.ndarray]:
    """A learnable synthetic dataset: noisy linear class prototypes."""
    if num_samples < 1 or num_features < 1 or num_classes < 2:
        raise ValueError("invalid dataset dims")
    prototypes = rng.standard_normal((num_classes, num_features))
    labels = rng.integers(0, num_classes, size=num_samples)
    x = prototypes[labels] + noise * rng.standard_normal((num_samples, num_features))
    return x, labels

"""DLRM embedding tables: partitioning and the interaction-masking trick.

Section 4.6's systems work, executable at small scale:

* **Table partitioning** — the Criteo embedding tables (~96 GB in fp32) do
  not fit one TPU-v3 chip's 32 GB HBM, so large tables are row-sharded
  across chips while small ones are replicated.
  :func:`plan_embedding_placement` makes that decision under a real memory
  budget, and :class:`ShardedEmbedding` executes sharded lookups
  functionally (computing the all-to-all bytes a real system would move).
* **Interaction masking** — DLRM's feature self-interaction takes the
  lower triangle of a pairwise-dot matrix; the reference uses a *gather*
  to drop the redundant upper triangle.  Gathers are slow on TPU, so the
  paper instead zero-masks the redundant entries and initializes the
  downstream fully connected layer to ignore them.
  :func:`interaction_gather` / :func:`interaction_masked` implement both;
  :func:`expand_weights_for_mask` builds the equivalent FC weights, and the
  tests check the two paths produce identical logits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class EmbeddingTableSpec:
    """One categorical feature's embedding table."""

    name: str
    rows: int
    dim: int
    dtype_bytes: int = 4

    def __post_init__(self) -> None:
        if self.rows < 1 or self.dim < 1:
            raise ValueError("rows and dim must be positive")

    @property
    def bytes(self) -> float:
        return float(self.rows) * self.dim * self.dtype_bytes


@dataclass(frozen=True)
class EmbeddingPlacement:
    """Where each table lives: replicated everywhere or row-sharded."""

    replicated: tuple[EmbeddingTableSpec, ...]
    sharded: tuple[EmbeddingTableSpec, ...]
    num_chips: int

    def per_chip_bytes(self) -> float:
        rep = sum(t.bytes for t in self.replicated)
        shard = sum(t.bytes for t in self.sharded) / self.num_chips
        return rep + shard

    def fits(self, hbm_bytes: float, model_budget_fraction: float = 0.5) -> bool:
        """Whether the plan fits the per-chip HBM budget for embeddings."""
        return self.per_chip_bytes() <= hbm_bytes * model_budget_fraction


def plan_embedding_placement(
    tables: list[EmbeddingTableSpec],
    num_chips: int,
    hbm_bytes: float,
    *,
    replicate_threshold_bytes: float = 64 * 2**20,
    model_budget_fraction: float = 0.5,
) -> EmbeddingPlacement:
    """Replicate small tables, shard large ones (the paper's policy).

    Raises :class:`MemoryError` when even full sharding cannot fit the
    budget — the error a real DLRM deployment hits when the slice is too
    small for the tables.
    """
    if num_chips < 1:
        raise ValueError("num_chips must be >= 1")
    replicated = tuple(t for t in tables if t.bytes <= replicate_threshold_bytes)
    sharded = tuple(t for t in tables if t.bytes > replicate_threshold_bytes)
    plan = EmbeddingPlacement(replicated, sharded, num_chips)
    if not plan.fits(hbm_bytes, model_budget_fraction):
        # Fall back: shard everything.
        plan = EmbeddingPlacement((), tuple(tables), num_chips)
        if not plan.fits(hbm_bytes, model_budget_fraction):
            raise MemoryError(
                f"embedding tables need {plan.per_chip_bytes() / 2**30:.1f} GiB "
                f"per chip even fully sharded; budget is "
                f"{hbm_bytes * model_budget_fraction / 2**30:.1f} GiB"
            )
    return plan


class ShardedEmbedding:
    """A row-sharded embedding table over ``num_devices`` virtual chips.

    Rows are block-partitioned; a lookup routes each id to its owner and
    counts the bytes that cross the interconnect (the all-to-all the paper
    pays for table partitioning).
    """

    def __init__(self, table: np.ndarray, num_devices: int) -> None:
        if table.ndim != 2:
            raise ValueError("table must be [rows, dim]")
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        self.num_devices = num_devices
        self.rows, self.dim = table.shape
        self.rows_per_device = -(-self.rows // num_devices)
        self.shards = [
            table[d * self.rows_per_device: (d + 1) * self.rows_per_device]
            for d in range(num_devices)
        ]
        self.comm_bytes = 0.0

    def owner(self, row_id: int) -> int:
        return row_id // self.rows_per_device

    def lookup(self, ids: np.ndarray, requester: int = 0) -> np.ndarray:
        """Fetch embedding rows for ``ids``, tallying cross-device bytes."""
        ids = np.asarray(ids)
        if ids.ndim != 1:
            raise ValueError("ids must be 1-D")
        if ids.min(initial=0) < 0 or (ids.size and ids.max() >= self.rows):
            raise IndexError("embedding id out of range")
        out = np.empty((ids.size, self.dim), dtype=self.shards[0].dtype)
        for d in range(self.num_devices):
            mask = (ids // self.rows_per_device) == d
            if not mask.any():
                continue
            local = ids[mask] - d * self.rows_per_device
            out[mask] = self.shards[d][local]
            if d != requester:
                self.comm_bytes += float(mask.sum()) * self.dim * out.itemsize
        return out


# --- interaction masking (gather -> mask + adjusted FC) ---------------------


def interaction_gather(features: np.ndarray) -> np.ndarray:
    """DLRM self-interaction via gather: strict lower triangle of F @ F^T.

    ``features`` is [batch, num_features, dim]; returns
    [batch, num_features*(num_features-1)/2].
    """
    if features.ndim != 3:
        raise ValueError("features must be [batch, num_features, dim]")
    f = features.shape[1]
    prod = np.einsum("bnd,bmd->bnm", features, features)
    rows, cols = np.tril_indices(f, k=-1)
    return prod[:, rows, cols]


def interaction_masked(features: np.ndarray) -> np.ndarray:
    """The paper's version: full pairwise matrix with redundants zeroed.

    Returns [batch, num_features**2]; entries outside the strict lower
    triangle are zero, so a downstream FC initialized per
    :func:`expand_weights_for_mask` computes exactly the gathered result.
    """
    if features.ndim != 3:
        raise ValueError("features must be [batch, num_features, dim]")
    f = features.shape[1]
    prod = np.einsum("bnd,bmd->bnm", features, features)
    mask = np.tril(np.ones((f, f), dtype=bool), k=-1)
    masked = np.where(mask, prod, 0.0)
    return masked.reshape(features.shape[0], f * f)


def expand_weights_for_mask(
    w_gathered: np.ndarray, num_features: int
) -> np.ndarray:
    """FC weights for the masked layout equivalent to gathered weights.

    ``w_gathered`` is [num_pairs, out]; the result is
    [num_features**2, out] with zero rows at the masked positions, so
    ``interaction_masked(x) @ expanded == interaction_gather(x) @ w_gathered``.
    """
    pairs = num_features * (num_features - 1) // 2
    if w_gathered.shape[0] != pairs:
        raise ValueError(
            f"w_gathered has {w_gathered.shape[0]} rows, expected {pairs}"
        )
    out = w_gathered.shape[1]
    expanded = np.zeros((num_features * num_features, out), dtype=w_gathered.dtype)
    rows, cols = np.tril_indices(num_features, k=-1)
    flat_positions = rows * num_features + cols
    expanded[flat_positions] = w_gathered
    return expanded


def criteo_tables(
    num_tables: int = 26,
    total_rows: float = 188e6,
    dim: int = 128,
    seed: int = 0,
) -> list[EmbeddingTableSpec]:
    """A synthetic Criteo-like table-size distribution (heavy-tailed).

    A few categorical features (user/item ids) hold most of the rows;
    many are tiny — which is exactly why replicate-small/shard-large wins.
    """
    rng = np.random.default_rng(seed)
    weights = rng.pareto(1.0, num_tables) + 1e-3
    weights /= weights.sum()
    rows = np.maximum((weights * total_rows).astype(np.int64), 4)
    return [
        EmbeddingTableSpec(f"cat_{i}", int(r), dim) for i, r in enumerate(rows)
    ]

"""Runtime telemetry: metrics registry, span tracing, traffic accounting.

The real execution path (``repro.runtime``, ``repro.core`` trainers, the
input pipeline) is instrumented against the process-wide objects here:

``metrics``
    A :class:`~repro.telemetry.registry.MetricsRegistry` of counters,
    gauges, and fixed-bucket histograms with labeled children, e.g.
    ``metrics.counter("collective_bytes", op="reduce_scatter", axis="y")``.

``tracer``
    A :class:`~repro.telemetry.tracer.Tracer` producing wall-clock spans on
    the same :class:`~repro.sim.trace.TraceEvent` schema the discrete-event
    simulator emits, so measured and simulated timelines merge into one
    Chrome trace.

``enabled``
    Module-level flag, **on by default**.  Instrumentation sites guard with
    ``if telemetry.enabled:`` (or get a shared no-op span), keeping the
    disabled cost to one attribute lookup and the enabled cost far below
    the millisecond-scale kernels being measured (PR 1 benchmark medians
    stay within the 5% acceptance band either way).

Use :func:`enable` / :func:`disable` (or the :func:`disabled` context
manager) rather than writing the flag from other modules, and
:func:`reset` to clear both metrics and spans between runs.  The
``repro-telemetry`` console script (:mod:`repro.telemetry.report`) renders
a step-time breakdown and writes merged Chrome-trace JSON.
"""

from __future__ import annotations

import logging
import os
from contextlib import contextmanager

from repro.telemetry.registry import (
    Counter,
    DEFAULT_MAX_CHILDREN,
    DEFAULT_TIME_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.tracer import MEASURED_SOURCE, Tracer
from repro.telemetry.flight import FlightRecord, FlightRecorder, on_terminal_failure

logger = logging.getLogger("repro.telemetry")

#: Global kill switch checked by every instrumentation site.  Default on:
#: the instrumented paths are millisecond-scale, the probes nanosecond-scale.
#: ``REPRO_TELEMETRY=0`` in the environment starts the process disabled
#: (useful for A/B overhead measurements across subprocess boundaries).
enabled: bool = os.environ.get("REPRO_TELEMETRY", "1") != "0"

#: Process-wide registry and tracer; tests may construct private instances.
metrics = MetricsRegistry()
tracer = Tracer()

#: Process-wide flight recorder: a bounded ring of the last N spans,
#: counter deltas, and fault/control-plane events, dumped as a JSON
#: postmortem bundle when a terminal failure surfaces (see
#: :mod:`repro.telemetry.flight`).  Always attached; every write is gated
#: on ``enabled``, so ``REPRO_TELEMETRY=0`` silences it entirely.
flight_recorder = FlightRecorder()
tracer.add_sink(flight_recorder.on_trace_event)


def enable() -> None:
    """Turn instrumentation on (the default state)."""
    global enabled
    enabled = True
    logger.debug("telemetry enabled")


def disable() -> None:
    """Turn all instrumentation sites into near-no-ops."""
    global enabled
    enabled = False
    logger.debug("telemetry disabled")


@contextmanager
def disabled():
    """Temporarily disable telemetry (used by the micro-benchmarks)."""
    global enabled
    prev = enabled
    enabled = False
    try:
        yield
    finally:
        enabled = prev


def reset() -> None:
    """Clear all recorded metrics, spans, and flight records (flag kept)."""
    metrics.reset()
    tracer.reset()
    flight_recorder.clear()


__all__ = [
    "Counter",
    "DEFAULT_MAX_CHILDREN",
    "DEFAULT_TIME_BUCKETS",
    "FlightRecord",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MEASURED_SOURCE",
    "MetricsRegistry",
    "Tracer",
    "disable",
    "disabled",
    "enable",
    "enabled",
    "flight_recorder",
    "metrics",
    "on_terminal_failure",
    "reset",
    "tracer",
]

"""Render telemetry into reports — the ``repro-telemetry`` console script.

This is the read side of the telemetry subsystem.  The CLI now has four
subcommands (a bare invocation still runs ``report``, keeping the PR 1
command lines working):

* ``report`` — drive the instrumented demo run and print the per-phase
  step breakdown plus headline counters (``--json`` for the
  machine-readable form);
* ``postmortem`` — run a seed-deterministic chip-death chaos run and
  write the flight recorder's postmortem bundle, or summarize an
  existing bundle file;
* ``critical-path`` — run the overlap engine for a calibrated model and
  print the critical-path attribution
  (:mod:`repro.telemetry.critical_path`);
* ``drift`` — the model-vs-measured drift table
  (:mod:`repro.telemetry.drift`), exit 1 past ``--tolerance``.

Key library entry points: :func:`step_breakdown` /
:func:`step_breakdown_data` (text and JSON-ready forms of the Table 3 /
Figure 6/8-style attribution), :func:`chrome_trace` /
:func:`write_chrome_trace` (merged ``chrome://tracing`` JSON with
measured and simulated spans on separate ``pid`` lanes plus counter
events), and :func:`demo_run` (a real
:class:`~repro.core.weight_update_sharding.WeightUpdateShardedTrainer`
run plus a fused :class:`~repro.runtime.mesh.VirtualMesh` all-reduce and
the discrete-event schedule of the same collective).

The ``print`` calls in the command handlers are the CLI's report output
and stay on stdout deliberately (diagnostics go through the
``repro.telemetry`` logger).
"""

from __future__ import annotations

import argparse
import json
import logging
from collections import defaultdict

import numpy as np

from repro import telemetry
from repro.sim.trace import Trace

logger = logging.getLogger("repro.telemetry")


def step_breakdown_data(trace: Trace | None = None, registry=None) -> dict:
    """JSON-ready per-phase aggregation of the measured spans.

    Returns ``{"step_seconds", "phases": [{category, name, seconds,
    calls, fraction}, ...], "counters": <registry snapshot>}`` — the data
    behind :func:`step_breakdown` and the body of ``report --json``.
    """
    trace = trace if trace is not None else telemetry.tracer.trace
    registry = registry if registry is not None else telemetry.metrics
    totals: dict[tuple[str, str], list[float]] = defaultdict(lambda: [0.0, 0])
    step_total = 0.0
    for e in trace.events:
        agg = totals[(e.category or "default", e.name)]
        agg[0] += e.duration
        agg[1] += 1
        if e.name == "train_step":
            step_total += e.duration
    if step_total <= 0.0:
        start, end = trace.span()
        step_total = end - start
    phases = [
        {
            "category": category,
            "name": name,
            "seconds": seconds,
            "calls": calls,
            "fraction": seconds / step_total if step_total > 0 else 0.0,
        }
        for (category, name), (seconds, calls) in sorted(
            totals.items(), key=lambda kv: -kv[1][0]
        )
    ]
    return {
        "step_seconds": step_total,
        "phases": phases,
        "counters": registry.snapshot(),
    }


def step_breakdown(trace: Trace | None = None, registry=None) -> str:
    """Aggregate spans into an aligned per-phase table.

    Rows are (category, span name) pairs with total seconds, call count,
    and percentage of the total ``train_step`` span time (or of the whole
    trace span when no step spans were recorded).  A second block lists
    the headline counters: collective traffic, bucket flatten cost, cache
    hit rates, and the failure/recovery accounting of chaos runs.
    """
    data = step_breakdown_data(trace, registry)
    lines = [
        f"{'category':<10} {'span':<24} {'total_s':>10} {'calls':>7} {'% step':>7}",
        "-" * 62,
    ]
    for row in data["phases"]:
        lines.append(
            f"{row['category']:<10} {row['name']:<24} {row['seconds']:>10.4f} "
            f"{row['calls']:>7d} {100.0 * row['fraction']:>6.1f}%"
        )
    snap = data["counters"]
    counter_lines = []
    for name in (
        "collective_bytes",
        "collective_ring_steps",
        "bucket_flatten_seconds",
        "bucket_flatten_bytes",
        "bucket_segment_cache_hits",
        "bucket_segment_cache_misses",
        "train_steps",
        "step_phase_seconds",
        "overlap_steps",
        "overlap_comm_seconds",
        "overlap_exposed_seconds",
        "overlap_hidden_seconds",
        "overlap_efficiency",
        "overlap_buckets",
        "input_prefetch_stall_seconds",
        "resilience_checkpoints",
        "resilience_checkpoint_bytes",
        "resilience_device_failures",
        "resilience_lost_steps",
        "resilience_restarts",
        "resilience_restart_seconds",
        "resilience_mttr_seconds",
        "resilience_retries",
        "resilience_degraded_transfers",
        "mesh_device_failures",
        "mesh_degraded_collectives",
        "controlplane_heartbeats_sent",
        "controlplane_heartbeats_missed",
        "controlplane_false_suspicions",
        "controlplane_detections",
        "controlplane_detection_seconds",
        "controlplane_preemptions",
        "controlplane_preempt_checkpoints",
        "controlplane_bit_flips_injected",
        "controlplane_hash_checks",
        "controlplane_desyncs_caught",
        "controlplane_nonfinite_tensors",
        "controlplane_barrier_releases",
        "controlplane_barrier_timeouts",
        "controlplane_barrier_stragglers",
        "service_submitted",
        "service_completed",
        "service_rejected",
        "service_retries",
        "service_worker_crashes",
        "service_job_failures",
        "service_degraded_runs",
        "service_breaker_trips",
        "service_breaker_recoveries",
        "service_cache_hits",
        "service_cache_misses",
        "service_cache_evictions",
        "service_sweep_jobs",
        "spmd_search_runs",
        "spmd_search_candidates_expanded",
        "spmd_search_candidates_pruned",
        "spmd_search_plans_validated",
        "spmd_search_plans_returned",
    ):
        family = snap.get(name)
        if not family:
            continue
        for entry in family["values"]:
            labels = ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
            label_part = f"{{{labels}}}" if labels else ""
            counter_lines.append(
                f"{name + label_part:<56} {entry['value']:>14.6g}"
            )
    if counter_lines:
        lines.append("")
        lines.append("counters")
        lines.append("-" * 62)
        lines.extend(counter_lines)
    return "\n".join(lines)


def chrome_trace(
    measured: Trace | None = None,
    sim_trace: Trace | None = None,
    registry=None,
) -> list[dict]:
    """Merged Chrome-trace events: measured + simulated spans + counters.

    Measured spans keep their ``"measured"`` source lane; ``sim_trace``
    events are re-tagged ``"sim"`` so the two render as separate processes
    in ``chrome://tracing``.  Final counter/gauge values from the registry
    are appended as Chrome counter events (``ph: "C"``) at the trace end,
    one per metric family, with one series per labeled child.
    """
    measured = measured if measured is not None else telemetry.tracer.trace
    registry = registry if registry is not None else telemetry.metrics
    merged = Trace().merge(measured)
    if sim_trace is not None:
        merged.merge(sim_trace, source="sim")
    events = merged.to_chrome_trace()
    _, end = merged.span()
    for name, family in registry.snapshot().items():
        if family["type"] == "histogram":
            continue
        series = {}
        for entry in family["values"]:
            label = ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
            series[label or "value"] = entry["value"]
        if series:
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": end * 1e6,
                    "pid": 0,
                    "tid": "counters",
                    "args": series,
                }
            )
    return events


def write_chrome_trace(
    path: str,
    measured: Trace | None = None,
    sim_trace: Trace | None = None,
    registry=None,
) -> None:
    """Write merged Chrome-trace JSON (the ``traceEvents`` wrapper form)."""
    events = chrome_trace(measured, sim_trace, registry)
    with open(path, "w") as f:
        json.dump({"traceEvents": events}, f)
    logger.info("wrote %d chrome-trace events to %s", len(events), path)


def demo_run(
    x_size: int = 8, y_size: int = 4, steps: int = 3, seed: int = 0
) -> Trace:
    """Exercise the instrumented stack end to end; returns the sim trace.

    Runs (a) a fused :class:`WeightUpdateShardedTrainer` for ``steps``
    steps with ``x_size * y_size`` replicas, (b) a fused hierarchical
    all-reduce on an ``x_size x y_size`` :class:`VirtualMesh`, and (c) the
    discrete-event schedule of the same ring phases on a matching
    :class:`TorusMesh`, whose predicted phase times are returned as a
    ``Trace`` for merging against the measured spans.
    """
    from repro.comm.schedule import (
        simulate_ring_all_gather,
        simulate_ring_reduce_scatter,
    )
    from repro.core.trainer import TrainerConfig, make_trainer
    from repro.hardware.rings import all_y_rings
    from repro.hardware.topology import TorusMesh
    from repro.models.mlp import MLP
    from repro.optim.sgd import SGDMomentum
    from repro.runtime.mesh import VirtualMesh

    n = x_size * y_size
    rng = np.random.default_rng(seed)

    # (a) A real training run: every collective, bucket, and trainer span —
    #     in bucketed-overlap mode so the overlap_* counters and modeled
    #     schedule land in the report too.
    model = MLP([16, 32, 10])
    trainer = make_trainer(
        TrainerConfig(
            model=model,
            optimizer=SGDMomentum(learning_rate=0.05),
            strategy="wus",
            mesh_shape=(n, 1),
            num_buckets=min(4, n) if n > 1 else 1,
            overlap=n > 1,
            seed=seed,
        )
    )
    for _ in range(steps):
        x = rng.standard_normal((4 * n, 16))
        labels = rng.integers(0, 10, size=4 * n)
        trainer.step(x, labels)

    # (b) The 2-D hierarchical schedule on a virtual mesh of the same size.
    mesh = VirtualMesh(x_size, y_size)
    mesh.put_replicated("w", rng.standard_normal(4096).astype(np.float32))
    mesh.put_replicated("b", rng.standard_normal(512).astype(np.float32))
    mesh.all_reduce(["w", "b"], dtype_policy="f32")

    # (c) The discrete-event prediction of the same ring phases.
    torus = TorusMesh(x_size, y_size, wrap_y=True)
    payload = (4096 + 512) * 4.0
    rs = simulate_ring_reduce_scatter(torus, all_y_rings(torus), payload)
    ag = simulate_ring_all_gather(torus, all_y_rings(torus), payload)
    sim_trace = Trace()
    sim_trace.record("torus", "reduce_scatter_y", 0.0, rs, "comm")
    sim_trace.record("torus", "all_gather_y", rs, ag, "comm")
    # The modeled overlap schedule of the last step, on its own source lane.
    last_overlap = getattr(trainer, "last_overlap", None)
    if last_overlap is not None:
        sim_trace.merge(last_overlap.trace, source="overlap")
    return sim_trace


def cmd_report(args: argparse.Namespace) -> int:
    """``repro-telemetry report``: the instrumented demo + breakdown."""
    try:
        x_size, y_size = (int(p) for p in args.mesh.lower().split("x"))
    except ValueError:
        raise SystemExit(f"--mesh must look like 8x4, got {args.mesh!r}")
    telemetry.reset()
    sim_trace = demo_run(x_size, y_size, args.steps)
    if args.json:
        data = step_breakdown_data()
        data["mesh"] = [x_size, y_size]
        data["steps"] = args.steps
        print(json.dumps(data, indent=2))
    else:
        print(f"telemetry report — {x_size}x{y_size} mesh, {args.steps} steps")
        print()
        print(step_breakdown())
        snap = telemetry.metrics.snapshot()
        if not any(
            name.startswith(("resilience_", "controlplane_")) for name in snap
        ):
            print()
            print(
                "note: no resilience_* or controlplane_* counters were recorded "
                "— this run had no chaos harness or control-plane activity. "
                "Run `repro-experiments availability` for failure accounting."
            )
        if not any(name.startswith("service_") for name in snap):
            print()
            print(
                "note: no service_* counters were recorded — this run had no "
                "simulation-service activity. Run `repro-service load` for "
                "the shedding and latency accounting."
            )
        if not any(name.startswith("spmd_search_") for name in snap):
            print()
            print(
                "note: no spmd_search_* counters were recorded — this run "
                "had no partitioner-search activity. Run `python -m "
                "repro.spmd` or `repro-experiments spmd_search` for the "
                "candidate expansion/prune accounting."
            )
    write_chrome_trace(args.trace_out, sim_trace=sim_trace)
    if not args.json:
        print()
        print(f"chrome trace written to {args.trace_out} (open in chrome://tracing)")
    if args.metrics_out:
        with open(args.metrics_out, "w") as f:
            f.write(telemetry.metrics.to_json())
        if not args.json:
            print(f"metrics snapshot written to {args.metrics_out}")
    return 0


def cmd_postmortem(args: argparse.Namespace) -> int:
    """``repro-telemetry postmortem``: dump or summarize a bundle.

    With ``--demo`` (or no bundle path) a seed-deterministic chaos run
    exterminates a 2x2 fleet so the flight recorder dumps a real bundle;
    with a path, an existing bundle file is summarized.
    """
    if args.bundle is not None:
        with open(args.bundle) as f:
            bundle = json.load(f)
    else:
        from repro.experiments.availability import postmortem_demo

        telemetry.reset()
        table = postmortem_demo(seed=args.seed)
        print(table.format())
        print()
        bundle = telemetry.flight_recorder.last_postmortem
        if bundle is None:
            raise SystemExit("demo run produced no postmortem bundle")
        if args.out:
            with open(args.out, "w") as f:
                json.dump(bundle, f, indent=2)
            print(f"postmortem bundle written to {args.out}")
            print()
    if args.json:
        print(json.dumps(bundle, indent=2))
        return 0
    records = bundle.get("records", [])
    kinds: dict[str, int] = defaultdict(int)
    for r in records:
        kinds[r["kind"]] += 1
    fault = bundle.get("fault")
    print(f"postmortem bundle ({bundle.get('schema', '?')})")
    print(f"  reason:  {bundle.get('reason', '?')}")
    if fault:
        print(f"  fault:   {fault['type']}: {fault['message']}")
    print(f"  records: {len(records)} (capacity {bundle.get('capacity')})")
    for kind in sorted(kinds):
        print(f"    {kind:<10} {kinds[kind]}")
    tail = records[-args.tail:] if args.tail > 0 else []
    if tail:
        print(f"  last {len(tail)} records:")
        for r in tail:
            print(f"    t={r['t']:.6f} [{r['kind']}] {r['name']}")
    return 0


def cmd_critical_path(args: argparse.Namespace) -> int:
    """``repro-telemetry critical-path``: attribution of a modeled step."""
    from repro.core.step_time import StepTimeModel
    from repro.core.strategy import ParallelismConfig
    from repro.experiments.calibration import spec_for
    from repro.telemetry import critical_path as cp

    model = StepTimeModel(
        spec_for(args.model),
        ParallelismConfig(num_chips=args.chips, global_batch=args.batch),
    )
    ov = model.overlap_result()
    result = cp.analyze(ov.trace)
    if args.json:
        print(json.dumps(result.to_json(), indent=2))
        return 0
    print(
        f"critical path — {args.model}, {args.chips} chips, "
        f"global batch {args.batch} ({ov.num_buckets} buckets)"
    )
    print()
    print(cp.format_result(result))
    return 0


def cmd_drift(args: argparse.Namespace) -> int:
    """``repro-telemetry drift``: model-vs-measured table, gated exit."""
    from repro.telemetry import drift

    entries = drift.drift_report()
    if args.json:
        print(json.dumps([e.to_json() for e in entries], indent=2))
    else:
        print(drift.format_report(entries, tolerance=args.tolerance))
    ok, _ = drift.check_drift(entries, tolerance=args.tolerance)
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-telemetry",
        description="Telemetry reports: step breakdown, postmortem bundles, "
        "critical-path attribution, model-vs-measured drift.",
    )
    sub = parser.add_subparsers(dest="command")

    p_report = sub.add_parser(
        "report", help="run the instrumented demo and print the breakdown"
    )
    p_report.add_argument("--mesh", default="8x4", help="mesh as XxY (default 8x4)")
    p_report.add_argument("--steps", type=int, default=3, help="training steps")
    p_report.add_argument(
        "--trace-out", default="telemetry_trace.json",
        help="Chrome-trace JSON output path",
    )
    p_report.add_argument(
        "--metrics-out", default=None,
        help="optional metrics snapshot JSON output path",
    )
    p_report.add_argument(
        "--json", action="store_true", help="machine-readable breakdown"
    )
    p_report.set_defaults(func=cmd_report)

    p_pm = sub.add_parser(
        "postmortem",
        help="dump a flight-recorder bundle from a chaos demo, or summarize one",
    )
    p_pm.add_argument(
        "bundle", nargs="?", default=None,
        help="existing bundle JSON to summarize (omit to run the demo)",
    )
    p_pm.add_argument("--seed", type=int, default=7, help="demo fault-plan seed")
    p_pm.add_argument(
        "--out", default="postmortem.json",
        help="where the demo writes its bundle (default postmortem.json)",
    )
    p_pm.add_argument(
        "--tail", type=int, default=8, help="ring records to print (default 8)"
    )
    p_pm.add_argument("--json", action="store_true", help="print the full bundle")
    p_pm.set_defaults(func=cmd_postmortem)

    p_cp = sub.add_parser(
        "critical-path",
        help="critical-path attribution of a modeled overlap step",
    )
    p_cp.add_argument("--model", default="resnet50", help="calibrated model name")
    p_cp.add_argument("--chips", type=int, default=256, help="slice size")
    p_cp.add_argument("--batch", type=int, default=8192, help="global batch")
    p_cp.add_argument("--json", action="store_true", help="machine-readable result")
    p_cp.set_defaults(func=cmd_critical_path)

    p_drift = sub.add_parser(
        "drift", help="model-vs-measured drift table (exit 1 past tolerance)"
    )
    p_drift.add_argument(
        "--tolerance", type=float, default=1e-6,
        help="max relative drift (default 1e-6)",
    )
    p_drift.add_argument("--json", action="store_true", help="machine-readable table")
    p_drift.set_defaults(func=cmd_drift)

    # Back-compat: a bare `repro-telemetry --mesh 8x4` (the PR 1 command
    # line) still runs the report.
    if argv is None:
        import sys as _sys

        argv = _sys.argv[1:]
    if not argv or argv[0] not in (
        "report", "postmortem", "critical-path", "drift", "-h", "--help"
    ):
        argv = ["report", *argv]
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

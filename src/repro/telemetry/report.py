"""Render telemetry into a step-time breakdown and Chrome-trace JSON.

This is the read side of the telemetry subsystem and the body of the
``repro-telemetry`` console script:

* :func:`step_breakdown` — aggregate the measured spans into a per-phase
  table (total seconds, calls, share of the enclosing step time), the
  Table 3 / Figure 6/8-style attribution of where a step goes;
* :func:`chrome_trace` — merged ``chrome://tracing`` JSON: measured spans,
  optionally a simulated :class:`~repro.sim.trace.Trace` on its own
  ``pid`` lane, and final counter values as Chrome counter (``ph: "C"``)
  events;
* :func:`demo_run` / :func:`main` — drive a real
  :class:`~repro.core.weight_update_sharding.WeightUpdateShardedTrainer`
  run plus a fused :class:`~repro.runtime.mesh.VirtualMesh` all-reduce on
  an ``x*y`` mesh, alongside the discrete-event schedule of the same
  collective, then print the breakdown and write the merged trace.

The ``print`` calls in :func:`main` are the CLI's report output and stay
on stdout deliberately (diagnostics go through the ``repro.telemetry``
logger).
"""

from __future__ import annotations

import argparse
import json
import logging
from collections import defaultdict

import numpy as np

from repro import telemetry
from repro.sim.trace import Trace

logger = logging.getLogger("repro.telemetry")


def step_breakdown(trace: Trace | None = None, registry=None) -> str:
    """Aggregate spans into an aligned per-phase table.

    Rows are (category, span name) pairs with total seconds, call count,
    and percentage of the total ``train_step`` span time (or of the whole
    trace span when no step spans were recorded).  A second block lists
    the headline counters: collective traffic, bucket flatten cost, cache
    hit rates, and the failure/recovery accounting of chaos runs.
    """
    trace = trace if trace is not None else telemetry.tracer.trace
    registry = registry if registry is not None else telemetry.metrics
    totals: dict[tuple[str, str], list[float]] = defaultdict(lambda: [0.0, 0])
    step_total = 0.0
    for e in trace.events:
        agg = totals[(e.category or "default", e.name)]
        agg[0] += e.duration
        agg[1] += 1
        if e.name == "train_step":
            step_total += e.duration
    if step_total <= 0.0:
        start, end = trace.span()
        step_total = end - start
    lines = [
        f"{'category':<10} {'span':<24} {'total_s':>10} {'calls':>7} {'% step':>7}",
        "-" * 62,
    ]
    for (category, name), (seconds, calls) in sorted(
        totals.items(), key=lambda kv: -kv[1][0]
    ):
        pct = 100.0 * seconds / step_total if step_total > 0 else 0.0
        lines.append(
            f"{category:<10} {name:<24} {seconds:>10.4f} {calls:>7d} {pct:>6.1f}%"
        )
    snap = registry.snapshot()
    counter_lines = []
    for name in (
        "collective_bytes",
        "collective_ring_steps",
        "bucket_flatten_seconds",
        "bucket_flatten_bytes",
        "bucket_segment_cache_hits",
        "bucket_segment_cache_misses",
        "train_steps",
        "step_phase_seconds",
        "overlap_steps",
        "overlap_comm_seconds",
        "overlap_exposed_seconds",
        "overlap_hidden_seconds",
        "overlap_efficiency",
        "overlap_buckets",
        "input_prefetch_stall_seconds",
        "resilience_checkpoints",
        "resilience_checkpoint_bytes",
        "resilience_device_failures",
        "resilience_lost_steps",
        "resilience_restarts",
        "resilience_restart_seconds",
        "resilience_mttr_seconds",
        "resilience_retries",
        "resilience_degraded_transfers",
        "mesh_device_failures",
        "mesh_degraded_collectives",
        "controlplane_heartbeats_sent",
        "controlplane_heartbeats_missed",
        "controlplane_false_suspicions",
        "controlplane_detections",
        "controlplane_detection_seconds",
        "controlplane_preemptions",
        "controlplane_preempt_checkpoints",
        "controlplane_bit_flips_injected",
        "controlplane_hash_checks",
        "controlplane_desyncs_caught",
        "controlplane_nonfinite_tensors",
        "controlplane_barrier_releases",
        "controlplane_barrier_timeouts",
        "controlplane_barrier_stragglers",
    ):
        family = snap.get(name)
        if not family:
            continue
        for entry in family["values"]:
            labels = ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
            label_part = f"{{{labels}}}" if labels else ""
            counter_lines.append(
                f"{name + label_part:<56} {entry['value']:>14.6g}"
            )
    if counter_lines:
        lines.append("")
        lines.append("counters")
        lines.append("-" * 62)
        lines.extend(counter_lines)
    return "\n".join(lines)


def chrome_trace(
    measured: Trace | None = None,
    sim_trace: Trace | None = None,
    registry=None,
) -> list[dict]:
    """Merged Chrome-trace events: measured + simulated spans + counters.

    Measured spans keep their ``"measured"`` source lane; ``sim_trace``
    events are re-tagged ``"sim"`` so the two render as separate processes
    in ``chrome://tracing``.  Final counter/gauge values from the registry
    are appended as Chrome counter events (``ph: "C"``) at the trace end,
    one per metric family, with one series per labeled child.
    """
    measured = measured if measured is not None else telemetry.tracer.trace
    registry = registry if registry is not None else telemetry.metrics
    merged = Trace().merge(measured)
    if sim_trace is not None:
        merged.merge(sim_trace, source="sim")
    events = merged.to_chrome_trace()
    _, end = merged.span()
    for name, family in registry.snapshot().items():
        if family["type"] == "histogram":
            continue
        series = {}
        for entry in family["values"]:
            label = ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
            series[label or "value"] = entry["value"]
        if series:
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": end * 1e6,
                    "pid": 0,
                    "tid": "counters",
                    "args": series,
                }
            )
    return events


def write_chrome_trace(
    path: str,
    measured: Trace | None = None,
    sim_trace: Trace | None = None,
    registry=None,
) -> None:
    """Write merged Chrome-trace JSON (the ``traceEvents`` wrapper form)."""
    events = chrome_trace(measured, sim_trace, registry)
    with open(path, "w") as f:
        json.dump({"traceEvents": events}, f)
    logger.info("wrote %d chrome-trace events to %s", len(events), path)


def demo_run(
    x_size: int = 8, y_size: int = 4, steps: int = 3, seed: int = 0
) -> Trace:
    """Exercise the instrumented stack end to end; returns the sim trace.

    Runs (a) a fused :class:`WeightUpdateShardedTrainer` for ``steps``
    steps with ``x_size * y_size`` replicas, (b) a fused hierarchical
    all-reduce on an ``x_size x y_size`` :class:`VirtualMesh`, and (c) the
    discrete-event schedule of the same ring phases on a matching
    :class:`TorusMesh`, whose predicted phase times are returned as a
    ``Trace`` for merging against the measured spans.
    """
    from repro.comm.schedule import (
        simulate_ring_all_gather,
        simulate_ring_reduce_scatter,
    )
    from repro.core.trainer import TrainerConfig, make_trainer
    from repro.hardware.rings import all_y_rings
    from repro.hardware.topology import TorusMesh
    from repro.models.mlp import MLP
    from repro.optim.sgd import SGDMomentum
    from repro.runtime.mesh import VirtualMesh

    n = x_size * y_size
    rng = np.random.default_rng(seed)

    # (a) A real training run: every collective, bucket, and trainer span —
    #     in bucketed-overlap mode so the overlap_* counters and modeled
    #     schedule land in the report too.
    model = MLP([16, 32, 10])
    trainer = make_trainer(
        TrainerConfig(
            model=model,
            optimizer=SGDMomentum(learning_rate=0.05),
            strategy="wus",
            mesh_shape=(n, 1),
            num_buckets=min(4, n) if n > 1 else 1,
            overlap=n > 1,
            seed=seed,
        )
    )
    for _ in range(steps):
        x = rng.standard_normal((4 * n, 16))
        labels = rng.integers(0, 10, size=4 * n)
        trainer.step(x, labels)

    # (b) The 2-D hierarchical schedule on a virtual mesh of the same size.
    mesh = VirtualMesh(x_size, y_size)
    mesh.put_replicated("w", rng.standard_normal(4096).astype(np.float32))
    mesh.put_replicated("b", rng.standard_normal(512).astype(np.float32))
    mesh.all_reduce(["w", "b"], dtype_policy="f32")

    # (c) The discrete-event prediction of the same ring phases.
    torus = TorusMesh(x_size, y_size, wrap_y=True)
    payload = (4096 + 512) * 4.0
    rs = simulate_ring_reduce_scatter(torus, all_y_rings(torus), payload)
    ag = simulate_ring_all_gather(torus, all_y_rings(torus), payload)
    sim_trace = Trace()
    sim_trace.record("torus", "reduce_scatter_y", 0.0, rs, "comm")
    sim_trace.record("torus", "all_gather_y", rs, ag, "comm")
    # The modeled overlap schedule of the last step, on its own source lane.
    last_overlap = getattr(trainer, "last_overlap", None)
    if last_overlap is not None:
        sim_trace.merge(last_overlap.trace, source="overlap")
    return sim_trace


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-telemetry",
        description="Run an instrumented training demo and report telemetry.",
    )
    parser.add_argument("--mesh", default="8x4", help="mesh as XxY (default 8x4)")
    parser.add_argument("--steps", type=int, default=3, help="training steps")
    parser.add_argument(
        "--trace-out", default="telemetry_trace.json",
        help="Chrome-trace JSON output path",
    )
    parser.add_argument(
        "--metrics-out", default=None,
        help="optional metrics snapshot JSON output path",
    )
    args = parser.parse_args(argv)
    try:
        x_size, y_size = (int(p) for p in args.mesh.lower().split("x"))
    except ValueError:
        parser.error(f"--mesh must look like 8x4, got {args.mesh!r}")
    telemetry.reset()
    sim_trace = demo_run(x_size, y_size, args.steps)
    print(f"telemetry report — {x_size}x{y_size} mesh, {args.steps} steps")
    print()
    print(step_breakdown())
    snap = telemetry.metrics.snapshot()
    if not any(
        name.startswith(("resilience_", "controlplane_")) for name in snap
    ):
        print()
        print(
            "note: no resilience_* or controlplane_* counters were recorded "
            "— this run had no chaos harness or control-plane activity. "
            "Run `repro-experiments availability` for failure accounting."
        )
    write_chrome_trace(args.trace_out, sim_trace=sim_trace)
    print()
    print(f"chrome trace written to {args.trace_out} (open in chrome://tracing)")
    if args.metrics_out:
        with open(args.metrics_out, "w") as f:
            f.write(telemetry.metrics.to_json())
        print(f"metrics snapshot written to {args.metrics_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Model-vs-measured drift: does the cost model still match the simulator?

The repo carries two independent implementations of every collective's
timing: the closed-form alpha-beta cost model
(:mod:`repro.comm.cost` / :mod:`repro.comm.allreduce`) that the
:class:`~repro.core.step_time.StepTimeModel` plans with, and the
link-level discrete-event simulation (:mod:`repro.comm.schedule`, the
:mod:`~repro.core.overlap` channel engine) that plays the same schedule
out event by event.  They are supposed to agree to float round-off — the
DESIGN §6 validation tests pin exactly that — and this module turns that
agreement into a *continuously checked gauge*: per-phase relative drift
between "measured" (DES / trace-derived) and "predicted" (closed form),
exported as ``model_drift_rel{case,phase}`` gauges and gated in
``benchmarks/check_regression.py`` so silent cost-model rot (someone
edits the analytic formula, forgets the scheduler, or vice versa) fails
CI instead of quietly skewing every capacity plan built on the model.

Three drift families:

* **ring** — one ring collective: DES ``simulate_ring_reduce_scatter`` /
  ``all_gather`` vs :func:`repro.comm.cost.reduce_scatter_time` /
  ``all_gather_time`` on the same :func:`ring_cost_for` parameters;
* **2d** — the hierarchical gradient all-reduce, phase by phase: DES per
  phase (column rings, then row lines on the ``1/y`` shard) vs the
  matching :class:`~repro.comm.allreduce.AllReduceBreakdown` field;
* **overlap** — the overlap engine's DES trace, re-read through the
  critical-path analyzer (:mod:`repro.telemetry.critical_path`): the
  attribution buckets must reproduce the engine's own
  exposed/hidden/step numbers, and the wire busy time must equal the
  bucketed launch cost the step-time model charges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.comm.allreduce import two_phase_allreduce
from repro.comm.cost import all_gather_time, reduce_scatter_time, ring_cost_for
from repro.comm.schedule import (
    simulate_ring_all_gather,
    simulate_ring_reduce_scatter,
)
from repro.hardware.rings import model_peer_ring, x_line, y_ring
from repro.hardware.topology import TorusMesh, single_pod, slice_for_chips
from repro.telemetry import critical_path as _cp

#: Default acceptance ceiling on relative drift.  The two implementations
#: agree to ~1e-15 today; 1e-6 leaves three orders of headroom for float
#: noise while catching any real formula/scheduler divergence instantly.
DEFAULT_TOLERANCE = 1e-6

#: Payload used by the comm drift cases (1 MB: well past the latency-
#: dominated regime, well short of saturating float precision).
DEFAULT_PAYLOAD_BYTES = 1.0e6

#: Relative-drift denominator floor (1 ns), so an all-zero phase (e.g.
#: hidden comm on a non-overlapping model) compares absolutely at a scale
#: no modeled collective ever dips under.
_DENOM_FLOOR = 1e-9


@dataclass(frozen=True)
class DriftEntry:
    """One measured-vs-predicted comparison for a (case, phase) pair."""

    case: str
    phase: str
    measured_s: float
    predicted_s: float

    @property
    def drift_rel(self) -> float:
        denom = max(abs(self.predicted_s), _DENOM_FLOOR)
        return abs(self.measured_s - self.predicted_s) / denom

    def to_json(self) -> dict:
        return {
            "case": self.case,
            "phase": self.phase,
            "measured_s": self.measured_s,
            "predicted_s": self.predicted_s,
            "drift_rel": self.drift_rel,
        }


def _ring_pair(mesh: TorusMesh, ring, payload: float, frac: float = 1.0):
    """(measured, predicted) reduce-scatter seconds for one ring config."""
    c = ring_cost_for(mesh, ring)
    predicted = reduce_scatter_time(
        c.num_members, payload, c.bandwidth, c.latency,
        closed=c.closed, hop_links=c.hop_links, bandwidth_fraction=frac,
    )
    return predicted


def ring_drift(payload_bytes: float = DEFAULT_PAYLOAD_BYTES) -> list[DriftEntry]:
    """Single-ring collectives: DES schedule vs closed-form ring cost."""
    entries: list[DriftEntry] = []
    pod = single_pod()
    open_slice = slice_for_chips(512)  # 16x32: X is an open line

    cases = [
        ("ring/pod_y_closed", pod, y_ring(pod, 0), 1.0),
        ("ring/slice_x_open", open_slice, x_line(open_slice, 0), 1.0),
        ("ring/small_torus_y", TorusMesh(2, 4, wrap_y=True), None, 1.0),
    ]
    for name, mesh, ring, frac in cases:
        if ring is None:
            ring = y_ring(mesh, 0)
        entries.append(DriftEntry(
            name, "reduce_scatter",
            measured_s=simulate_ring_reduce_scatter(mesh, ring, payload_bytes),
            predicted_s=_ring_pair(mesh, ring, payload_bytes, frac),
        ))
        c = ring_cost_for(mesh, ring)
        entries.append(DriftEntry(
            name, "all_gather",
            measured_s=simulate_ring_all_gather(mesh, ring, payload_bytes),
            predicted_s=all_gather_time(
                c.num_members, payload_bytes, c.bandwidth, c.latency,
                closed=c.closed, hop_links=c.hop_links,
            ),
        ))

    # Contended model-peer rings: mp rings share the X links, so the DES
    # must reproduce the 1/mp bandwidth share the analytic model charges.
    mp = 4
    rings = [model_peer_ring(pod, 0, mp, p) for p in range(mp)]
    entries.append(DriftEntry(
        "ring/peer_contended_mp4", "reduce_scatter",
        measured_s=simulate_ring_reduce_scatter(pod, rings, payload_bytes),
        predicted_s=_ring_pair(pod, rings[0], payload_bytes, 1.0 / mp),
    ))
    return entries


def two_phase_drift(
    payload_bytes: float = DEFAULT_PAYLOAD_BYTES,
) -> list[DriftEntry]:
    """The 2-D hierarchical all-reduce, phase by phase, DES vs breakdown."""
    mesh = single_pod()
    bd = two_phase_allreduce(mesh, payload_bytes)
    y_rings = [y_ring(mesh, x) for x in range(mesh.x_size)]
    x_lines = [x_line(mesh, y) for y in range(mesh.y_size)]
    shard = payload_bytes / mesh.y_size
    case = "2d/pod"
    return [
        DriftEntry(case, "reduce_scatter_y",
                   simulate_ring_reduce_scatter(mesh, y_rings, payload_bytes),
                   bd.reduce_scatter_y),
        DriftEntry(case, "reduce_scatter_x",
                   simulate_ring_reduce_scatter(mesh, x_lines, shard),
                   bd.reduce_scatter_x),
        DriftEntry(case, "all_gather_x",
                   simulate_ring_all_gather(mesh, x_lines, shard),
                   bd.all_gather_x),
        DriftEntry(case, "all_gather_y",
                   simulate_ring_all_gather(mesh, y_rings, payload_bytes),
                   bd.all_gather_y),
    ]


def overlap_drift(
    models: Sequence[str] = ("resnet50", "transformer", "bert"),
    num_chips: int = 256,
    global_batch: int = 8192,
) -> list[DriftEntry]:
    """Overlap-engine DES trace, re-read through the critical-path analyzer.

    The attribution buckets are computed from the raw trace events alone;
    the engine's ``OverlapResult`` numbers come from its own bookkeeping.
    Agreement here certifies both the overlap engine's accounting and the
    analyzer's sweep, and ties the wire busy time back to the step-time
    model's bucketed launch cost.
    """
    from repro.core.step_time import StepTimeModel
    from repro.core.strategy import ParallelismConfig
    from repro.experiments.calibration import spec_for

    entries: list[DriftEntry] = []
    for name in models:
        model = StepTimeModel(
            spec_for(name),
            ParallelismConfig(num_chips=num_chips, global_batch=global_batch),
        )
        ov = model.overlap_result()
        att = _cp.attribute(ov.trace)
        case = f"overlap/{name}"
        entries.extend([
            DriftEntry(case, "step",
                       att.total, ov.step_seconds),
            DriftEntry(case, "exposed_comm",
                       att.buckets["exposed_comm"], ov.exposed_comm_seconds),
            DriftEntry(case, "hidden_comm",
                       att.buckets["hidden_comm"], ov.hidden_comm_seconds),
            DriftEntry(case, "wire_comm",
                       ov.trace.busy_time("ici"),
                       model.bucketed_allreduce_time()),
        ])
    return entries


def drift_report(
    payload_bytes: float = DEFAULT_PAYLOAD_BYTES,
    *,
    include_overlap: bool = True,
) -> list[DriftEntry]:
    """All drift entries; exports ``model_drift_rel`` gauges per entry."""
    from repro import telemetry

    entries = ring_drift(payload_bytes) + two_phase_drift(payload_bytes)
    if include_overlap:
        entries += overlap_drift()
    if telemetry.enabled:
        for e in entries:
            telemetry.metrics.gauge(
                "model_drift_rel", case=e.case, phase=e.phase
            ).set(e.drift_rel)
        telemetry.metrics.gauge("model_drift_max").set(max_drift(entries))
    return entries


def max_drift(entries: Iterable[DriftEntry]) -> float:
    return max((e.drift_rel for e in entries), default=0.0)


def check_drift(
    entries: Iterable[DriftEntry] | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple[bool, list[DriftEntry]]:
    """(ok, offending entries) — the CI gate's decision function."""
    entries = list(entries) if entries is not None else drift_report()
    bad = [e for e in entries if e.drift_rel > tolerance]
    return (not bad, bad)


def format_report(
    entries: Sequence[DriftEntry], tolerance: float | None = None
) -> str:
    """Aligned drift table, one row per (case, phase)."""
    lines = [
        f"{'case':<26} {'phase':<18} {'measured':>14} {'predicted':>14} {'drift':>10}",
        "-" * 86,
    ]
    for e in entries:
        flag = ""
        if tolerance is not None and e.drift_rel > tolerance:
            flag = "  << DRIFT"
        lines.append(
            f"{e.case:<26} {e.phase:<18} {e.measured_s:>14.6e} "
            f"{e.predicted_s:>14.6e} {e.drift_rel:>10.2e}{flag}"
        )
    lines.append("-" * 86)
    worst = max_drift(entries)
    tail = f" (tolerance {tolerance:.0e})" if tolerance is not None else ""
    lines.append(f"max relative drift: {worst:.2e}{tail}")
    return "\n".join(lines)

"""Always-on flight recorder: the last N telemetry records, crash-dumpable.

A production fleet cannot replay the seconds before a chip death; a flight
recorder can.  This module keeps a **bounded ring buffer** of the most
recent telemetry records — measured spans (fed by a
:class:`~repro.telemetry.tracer.Tracer` sink), counter deltas, fault
events, and control-plane transitions (heartbeat suspicions/detections,
barrier releases/timeouts, checkpoint/restore) — and serializes them into
a JSON **postmortem bundle** whenever a terminal failure surfaces:

* :class:`~repro.resilience.faults.DeviceLostError` (dead-buffer access,
  a fault plan exterminating the fleet);
* :class:`~repro.controlplane.group.JobKilledError` (coordinator death in
  the single-client topology);
* a :class:`~repro.controlplane.guard.ConsistencyGuard` ambiguous-tie
  rewind (the fleet survives, but the run rewound on corrupted state —
  exactly the moment an operator wants the preceding timeline);
* an unhandled process failure re-raised from
  :meth:`repro.sim.engine.Simulator.run`.

The recorder is **always on** (attached to the process tracer at import)
but every write is gated on ``repro.telemetry.enabled``, so
``REPRO_TELEMETRY=0`` disables it entirely.  Memory is O(capacity)
regardless of run length — the ring is a ``deque(maxlen=capacity)`` and a
record stores only floats/strings, never tensors.  Writers are
lock-protected, so concurrent measured spans (e.g. input-pipeline host
threads) cannot corrupt the ring.

Bundles are written to ``REPRO_POSTMORTEM_DIR`` (or
``FlightRecorder.dump_dir``) when set; otherwise the bundle is only built
in memory and kept at :attr:`FlightRecorder.last_postmortem`, so library
code can *always* call :func:`on_terminal_failure` without littering the
working directory of test runs.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

logger = logging.getLogger("repro.telemetry")

#: Bundle schema tag, bumped on incompatible layout changes.
POSTMORTEM_SCHEMA = "repro.postmortem/v1"

#: Default ring capacity; override per-recorder or via REPRO_FLIGHT_CAPACITY.
DEFAULT_CAPACITY = 256


def _default_capacity() -> int:
    raw = os.environ.get("REPRO_FLIGHT_CAPACITY", "")
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_CAPACITY
    return value if value >= 1 else DEFAULT_CAPACITY


@dataclass(frozen=True)
class FlightRecord:
    """One entry in the ring: a timestamped (kind, name, payload) triple.

    ``t`` is seconds since the recorder's epoch.  ``kind`` is the record
    class (``"span"``, ``"counters"``, ``"fault"``, ``"heartbeat"``,
    ``"barrier"``, ``"checkpoint"``, ``"step"``, ``"chaos"``, ...);
    ``data`` is a small JSON-ready payload — scalars and strings only.
    """

    t: float
    kind: str
    name: str
    data: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {"t": self.t, "kind": self.kind, "name": self.name, "data": self.data}


class FlightRecorder:
    """Bounded ring buffer of recent telemetry, dumpable as a postmortem.

    ``capacity`` bounds both the record count and (because records hold no
    arrays) the memory footprint; the ring silently drops the oldest
    record on overflow, which is the whole point — recording must never
    become the thing that kills a 4096-chip run.
    """

    def __init__(
        self,
        capacity: int | None = None,
        clock=time.perf_counter,
        dump_dir: str | None = None,
    ) -> None:
        self.capacity = capacity if capacity is not None else _default_capacity()
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._clock = clock
        self._epoch = clock()
        self._records: deque[FlightRecord] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._last_counts: dict[str, float] = {}
        self.dump_dir = (
            dump_dir
            if dump_dir is not None
            else (os.environ.get("REPRO_POSTMORTEM_DIR") or None)
        )
        #: The most recent bundle built by :meth:`dump` (memory-only when
        #: no dump directory is configured).
        self.last_postmortem: dict | None = None
        #: Wall seconds :meth:`dump` took to build (and, when a directory
        #: is configured, write) the last bundle — the time-to-postmortem
        #: column of the availability tables.
        self.last_postmortem_seconds: float = 0.0
        self._dump_count = 0

    # --- write side ---------------------------------------------------------

    def now(self) -> float:
        """Seconds since the recorder epoch."""
        return self._clock() - self._epoch

    def record(self, kind: str, name: str, **data) -> None:
        """Append one record (no-op while telemetry is disabled)."""
        from repro import telemetry

        if not telemetry.enabled:
            return
        rec = FlightRecord(self.now(), kind, name, data)
        with self._lock:
            self._records.append(rec)

    def on_trace_event(self, event) -> None:
        """Tracer sink: mirror every measured span into the ring."""
        from repro import telemetry

        if not telemetry.enabled:
            return
        rec = FlightRecord(
            self.now(),
            "span",
            event.name,
            {
                "actor": event.actor,
                "category": event.category,
                "start": event.start,
                "duration": event.duration,
            },
        )
        with self._lock:
            self._records.append(rec)

    def record_counter_deltas(self, registry=None) -> None:
        """Record which scalar metrics moved (and by how much) since last call.

        Reads the registry's counter/gauge children (histograms and
        collectors are skipped — this runs per training step) via the
        lock-protected :meth:`~repro.telemetry.registry.MetricsRegistry.scalar_children`
        snapshot and stores only the changed values, keyed ``name{k=v,...}``.
        """
        from repro import telemetry

        if not telemetry.enabled:
            return
        registry = registry if registry is not None else telemetry.metrics
        current: dict[str, float] = {}
        for name, key, value in registry.scalar_children():
            labels = ",".join(f"{k}={v}" for k, v in key)
            current[f"{name}{{{labels}}}" if labels else name] = value
        deltas = {
            k: v - self._last_counts.get(k, 0.0)
            for k, v in current.items()
            if v != self._last_counts.get(k, 0.0)
        }
        self._last_counts = current
        if deltas:
            self.record("counters", "counter_deltas", deltas=deltas)

    def record_fault(self, exc: BaseException, origin: str = "", **context) -> None:
        """Record a fault event (terminal or survived) into the ring."""
        self.record(
            "fault",
            type(exc).__name__,
            message=str(exc),
            origin=origin,
            **context,
        )

    def on_step(self, result, trainer: str = "") -> None:
        """Record one trainer step boundary plus the counter deltas it caused."""
        from repro import telemetry

        if not telemetry.enabled:
            return
        phases = dict(getattr(result, "phase_seconds", {}) or {})
        self.record(
            "step",
            "train_step",
            trainer=trainer,
            step_index=getattr(result, "step_index", -1),
            loss=float(result),
            phase_seconds=phases,
            bytes_moved=getattr(result, "bytes_moved", 0.0),
        )
        self.record_counter_deltas()

    # --- read side ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    @property
    def dump_count(self) -> int:
        """Postmortem bundles built since construction (survives clear())."""
        return self._dump_count

    @property
    def records(self) -> list[FlightRecord]:
        """Snapshot of the ring contents, oldest first."""
        with self._lock:
            return list(self._records)

    def records_of_kind(self, kind: str) -> list[FlightRecord]:
        return [r for r in self.records if r.kind == kind]

    def clear(self) -> None:
        """Drop every record and restart the epoch (flag state untouched)."""
        with self._lock:
            self._records.clear()
            self._last_counts = {}
            self._epoch = self._clock()

    # --- postmortem ---------------------------------------------------------

    def postmortem_bundle(
        self,
        reason: str,
        exc: BaseException | None = None,
        registry=None,
        extra: Mapping[str, object] | None = None,
    ) -> dict:
        """The JSON-ready bundle: fault, ring contents, final counters."""
        from repro import telemetry

        registry = registry if registry is not None else telemetry.metrics
        fault = None
        if exc is not None:
            fault = {
                "type": type(exc).__name__,
                "message": str(exc),
                "devices": [list(d) for d in getattr(exc, "devices", ())],
            }
        records = self.records
        return {
            "schema": POSTMORTEM_SCHEMA,
            "reason": reason,
            "recorded_at_s": self.now(),
            "capacity": self.capacity,
            "num_records": len(records),
            "fault": fault,
            "records": [r.to_json() for r in records],
            "counters": registry.snapshot(),
            **(dict(extra) if extra else {}),
        }

    def dump(
        self,
        reason: str,
        exc: BaseException | None = None,
        path: str | None = None,
        registry=None,
        extra: Mapping[str, object] | None = None,
    ) -> str | None:
        """Build (and, when a directory is configured, write) a bundle.

        Returns the written path, or ``None`` when the bundle stayed
        in memory (no ``path`` argument, no dump directory) **or the
        write failed** — a broken dump directory must not replace the
        terminal failure the caller is about to re-raise.  The bundle
        is always available afterwards at :attr:`last_postmortem`.
        """
        t0 = self._clock()
        bundle = self.postmortem_bundle(reason, exc, registry=registry, extra=extra)
        self.last_postmortem = bundle
        self._dump_count += 1
        out_path = path
        try:
            if out_path is None and self.dump_dir:
                os.makedirs(self.dump_dir, exist_ok=True)
                out_path = os.path.join(
                    self.dump_dir,
                    f"postmortem_{os.getpid()}_{self._dump_count:03d}.json",
                )
            if out_path is not None:
                with open(out_path, "w") as f:
                    json.dump(bundle, f, indent=2)
                logger.warning(
                    "postmortem bundle (%s, %d records) written to %s",
                    reason, bundle["num_records"], out_path,
                )
        except Exception:  # a broken sink must not kill the traced code
            logger.exception(
                "postmortem bundle (%s) could not be written; keeping it in memory",
                reason,
            )
            out_path = None
        self.last_postmortem_seconds = self._clock() - t0
        from repro import telemetry

        if telemetry.enabled:
            telemetry.metrics.counter("flight_postmortems", reason=reason).inc()
            telemetry.metrics.gauge("flight_postmortem_seconds").set(
                self.last_postmortem_seconds
            )
        return out_path


def on_terminal_failure(
    exc: BaseException,
    origin: str = "",
    recorder: FlightRecorder | None = None,
    **context,
) -> str | None:
    """Record ``exc`` as a fault and dump a postmortem bundle.

    Call sites raise terminal errors from several layers (a dead mesh
    buffer inside a collective, the chaos harness re-raising it); the
    exception object is tagged after the first dump so the same failure
    propagating upward produces exactly one bundle.  Returns the written
    bundle path (``None`` when memory-only or telemetry is disabled).
    """
    from repro import telemetry

    if not telemetry.enabled:
        return None
    if getattr(exc, "_repro_postmortem_done", False):
        return None
    try:
        exc._repro_postmortem_done = True  # type: ignore[attr-defined]
    except AttributeError:  # exotic exception with __slots__: dump anyway
        pass
    rec = recorder if recorder is not None else telemetry.flight_recorder
    rec.record_fault(exc, origin=origin, **context)
    return rec.dump(reason=origin or type(exc).__name__, exc=exc)

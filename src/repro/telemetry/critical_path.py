"""Critical-path analysis and step-time attribution over trace events.

The DES schedules and the measured tracer both emit
:class:`~repro.sim.trace.TraceEvent` spans; this module turns a bag of
those spans back into the two questions an operator actually asks:

* **Where did the step go?**  :func:`attribute` classifies every instant
  of the step window into exactly one bucket — ``compute`` (device busy,
  no collective on the wire), ``hidden_comm`` (collective overlapped by
  compute — the overlap engine's whole point), ``exposed_comm``
  (collective past the end of compute — the only all-reduce share a step
  should be charged), ``input_stall``, ``barrier_wait``, ``other``
  (spans of unmapped categories), and ``idle``.  Because the
  classification partitions the timeline, the buckets **sum to the
  measured step time exactly** — the invariant the drift gate leans on.

* **What was the bottleneck chain?**  :func:`critical_path` reconstructs
  the dependency DAG implied by span timing — event B depends on the
  latest-ending event A that finishes by B's start (same-actor contact
  preferred, since a serialized resource is the strongest dependency) —
  and walks it backward from the last-ending event.  Gaps on the chain
  surface as per-segment ``wait_s``.  :func:`device_slack` reports, per
  actor, how much later that actor could have run without stretching the
  step — the scheduler's headroom number.

Categories map onto buckets via :data:`CATEGORY_GROUPS`; container spans
(a ``train_step`` wrapping its phases) are excluded so the enclosing span
does not double-cover its children.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.trace import Trace, TraceEvent

#: Attribution buckets, in reporting order.
BUCKETS = (
    "compute",
    "exposed_comm",
    "hidden_comm",
    "input_stall",
    "barrier_wait",
    "other",
    "idle",
)

#: Trace-event category -> classification group.  ``update`` counts as
#: compute (the optimizer runs on the device's vector units), ``input`` and
#: ``stall`` as input-pipeline time.  Unmapped categories classify as
#: ``other`` so the partition stays exhaustive on arbitrary traces.
CATEGORY_GROUPS: dict[str, str] = {
    "compute": "compute",
    "update": "compute",
    "comm": "comm",
    "input": "input",
    "stall": "input",
    "barrier": "barrier",
}

#: Categories whose spans *contain* other spans (the step wrapper, the
#: overlap-modeling span, chaos restarts): excluded from the instant
#: classification so a parent does not shadow its children.
CONTAINER_CATEGORIES = frozenset({"step", "overlap", "resilience"})

#: Contact tolerance when chaining events into dependencies: float
#: round-off from summing DES event times, far below any real span.
CONTACT_EPS = 1e-9


@dataclass(frozen=True)
class Attribution:
    """Per-bucket seconds over one step window; buckets partition it."""

    buckets: dict[str, float]
    window: tuple[float, float]

    @property
    def total(self) -> float:
        """Sum over buckets — equal to the window length by construction."""
        return sum(self.buckets.values())

    @property
    def window_seconds(self) -> float:
        return self.window[1] - self.window[0]

    def fraction(self, bucket: str) -> float:
        total = self.window_seconds
        return self.buckets.get(bucket, 0.0) / total if total > 0 else 0.0

    def to_json(self) -> dict:
        return {
            "window": list(self.window),
            "window_seconds": self.window_seconds,
            "buckets": {k: self.buckets.get(k, 0.0) for k in BUCKETS},
        }


@dataclass(frozen=True)
class PathSegment:
    """One event on the critical path, plus the dead wait preceding it."""

    event: TraceEvent
    wait_s: float


@dataclass(frozen=True)
class CriticalPathResult:
    """Attribution + bottleneck chain + per-actor slack of one trace."""

    attribution: Attribution
    path: tuple[PathSegment, ...]
    slack: dict[str, float]

    @property
    def makespan(self) -> float:
        return self.attribution.window_seconds

    @property
    def path_seconds(self) -> float:
        """Busy + wait seconds along the chain (<= makespan)."""
        return sum(s.event.duration + s.wait_s for s in self.path)

    def to_json(self) -> dict:
        return {
            "makespan_seconds": self.makespan,
            "attribution": self.attribution.to_json(),
            "critical_path": [
                {
                    "actor": s.event.actor,
                    "name": s.event.name,
                    "start": s.event.start,
                    "duration": s.event.duration,
                    "category": s.event.category,
                    "wait_s": s.wait_s,
                }
                for s in self.path
            ],
            "slack": dict(sorted(self.slack.items())),
        }


def _classified_events(
    trace: Trace, source: str | None
) -> list[TraceEvent]:
    """Events participating in classification (containers dropped)."""
    return [
        e
        for e in trace.events
        if e.category not in CONTAINER_CATEGORIES
        and (source is None or e.source == source)
        and e.duration >= 0.0
    ]


def attribute(
    trace: Trace,
    window: tuple[float, float] | None = None,
    source: str | None = None,
) -> Attribution:
    """Partition the step window into the :data:`BUCKETS` — sums exactly.

    A boundary sweep over the (clamped) event endpoints classifies every
    inter-boundary segment by which groups are active on it:

    ======================  ==============
    active groups           bucket
    ======================  ==============
    compute and comm        ``hidden_comm``
    compute, no comm        ``compute``
    comm, no compute        ``exposed_comm``
    input only              ``input_stall``
    barrier (none above)    ``barrier_wait``
    anything unmapped       ``other``
    nothing                 ``idle``
    ======================  ==============

    ``window`` defaults to the trace span; ``source`` restricts to one
    event source (e.g. ``"measured"`` in a merged trace).
    """
    events = _classified_events(trace, source)
    if window is None:
        if not events:
            return Attribution({b: 0.0 for b in BUCKETS}, (0.0, 0.0))
        window = (
            min(e.start for e in events),
            max(e.end for e in events),
        )
    w0, w1 = window
    if w1 < w0:
        raise ValueError("window end precedes window start")

    # Boundary sweep: +1/-1 per group at each clamped event edge.
    deltas: dict[float, dict[str, int]] = {}
    for e in events:
        start = max(w0, e.start)
        end = min(w1, e.end)
        if end <= start:
            continue
        group = CATEGORY_GROUPS.get(e.category or "", "other")
        deltas.setdefault(start, {}).setdefault(group, 0)
        deltas[start][group] += 1
        deltas.setdefault(end, {}).setdefault(group, 0)
        deltas[end][group] -= 1

    buckets = {b: 0.0 for b in BUCKETS}
    bounds = sorted(set(deltas) | {w0, w1})
    active = {g: 0 for g in ("compute", "comm", "input", "barrier", "other")}
    prev = w0
    for t in bounds:
        if t > prev:
            seg = t - prev
            if active["compute"] > 0 and active["comm"] > 0:
                buckets["hidden_comm"] += seg
            elif active["compute"] > 0:
                buckets["compute"] += seg
            elif active["comm"] > 0:
                buckets["exposed_comm"] += seg
            elif active["input"] > 0:
                buckets["input_stall"] += seg
            elif active["barrier"] > 0:
                buckets["barrier_wait"] += seg
            elif active["other"] > 0:
                buckets["other"] += seg
            else:
                buckets["idle"] += seg
        for group, d in deltas.get(t, {}).items():
            active[group] += d
        prev = t
    if w1 > prev:  # no events at all inside the window
        buckets["idle"] += w1 - prev
    return Attribution(buckets, (w0, w1))


def critical_path(
    trace: Trace,
    window: tuple[float, float] | None = None,
    source: str | None = None,
) -> tuple[PathSegment, ...]:
    """The bottleneck chain ending at the last-finishing event.

    Dependency rule: an event's predecessor is the event with the latest
    end time not after its start (within :data:`CONTACT_EPS`); among
    ties, a same-actor predecessor wins (a serialized resource is the
    hardest dependency to break).  The gap between a predecessor's end
    and the event's start is reported as the segment's ``wait_s`` —
    time the chain spent blocked on something the trace did not record.
    """
    events = _classified_events(trace, source)
    if window is not None:
        w0, w1 = window
        events = [e for e in events if e.start >= w0 - CONTACT_EPS and e.end <= w1 + CONTACT_EPS]
    if not events:
        return ()
    by_end = sorted(events, key=lambda e: (e.end, e.duration))
    current = by_end[-1]
    segments: list[PathSegment] = []
    # Zero-duration events sharing a timestamp satisfy each other's
    # predecessor condition; the visited set keeps the backward walk from
    # cycling through them and guarantees termination in <= len(events) steps.
    visited: set[int] = {id(current)}
    while True:
        candidates = [
            e
            for e in events
            if id(e) not in visited and e.end <= current.start + CONTACT_EPS
        ]
        if not candidates:
            segments.append(PathSegment(current, wait_s=max(0.0, current.start - (window[0] if window else min(e.start for e in events)))))
            break
        best_end = max(e.end for e in candidates)
        contact = [e for e in candidates if e.end >= best_end - CONTACT_EPS]
        same_actor = [e for e in contact if e.actor == current.actor]
        pred = (same_actor or contact)[0]
        segments.append(
            PathSegment(current, wait_s=max(0.0, current.start - pred.end))
        )
        current = pred
        visited.add(id(pred))
    segments.reverse()
    return tuple(segments)


def device_slack(
    trace: Trace,
    window: tuple[float, float] | None = None,
    source: str | None = None,
) -> dict[str, float]:
    """Per-actor slack: makespan minus the actor's busy time.

    An actor with zero slack is busy for the whole step — it *is* the
    critical resource; large slack marks devices/links the scheduler
    could load harder without stretching the step.
    """
    events = _classified_events(trace, source)
    if not events:
        return {}
    if window is None:
        window = (
            min(e.start for e in events),
            max(e.end for e in events),
        )
    w0, w1 = window
    makespan = w1 - w0
    sub = Trace(events=[e for e in events if e.end > w0 and e.start < w1])
    return {
        actor: max(0.0, makespan - sub.busy_time(actor))
        for actor in sub.actors()
    }


def analyze(
    trace: Trace,
    window: tuple[float, float] | None = None,
    source: str | None = None,
) -> CriticalPathResult:
    """Attribution + critical path + slack in one pass (shared window)."""
    events = _classified_events(trace, source)
    if window is None and events:
        window = (
            min(e.start for e in events),
            max(e.end for e in events),
        )
    return CriticalPathResult(
        attribution=attribute(trace, window, source),
        path=critical_path(trace, window, source),
        slack=device_slack(trace, window, source),
    )


def format_result(result: CriticalPathResult, max_path: int = 12) -> str:
    """Aligned text rendering of one analysis (the CLI's output body)."""
    lines = [
        f"{'bucket':<14} {'seconds':>12} {'% step':>8}",
        "-" * 38,
    ]
    for bucket in BUCKETS:
        seconds = result.attribution.buckets.get(bucket, 0.0)
        if seconds == 0.0 and bucket in ("other", "idle"):
            continue
        lines.append(
            f"{bucket:<14} {seconds:>12.6g} {100.0 * result.attribution.fraction(bucket):>7.1f}%"
        )
    lines.append("-" * 38)
    lines.append(
        f"{'total':<14} {result.attribution.total:>12.6g} "
        f"(step {result.makespan:.6g}s)"
    )
    if result.path:
        lines.append("")
        lines.append(f"critical path ({len(result.path)} events):")
        shown = result.path if len(result.path) <= max_path else result.path[-max_path:]
        if len(result.path) > max_path:
            lines.append(f"  ... {len(result.path) - max_path} earlier events elided ...")
        for seg in shown:
            wait = f" (+{seg.wait_s:.3g}s wait)" if seg.wait_s > 0 else ""
            lines.append(
                f"  {seg.event.actor:<12} {seg.event.name:<24} "
                f"t={seg.event.start:.6g}s dur={seg.event.duration:.6g}s{wait}"
            )
    if result.slack:
        lines.append("")
        lines.append("per-actor slack:")
        for actor, slack in sorted(result.slack.items(), key=lambda kv: kv[1]):
            lines.append(f"  {actor:<12} {slack:>12.6g}s")
    return "\n".join(lines)

"""Wall-clock span tracing onto the shared :class:`repro.sim.trace.Trace`.

The tracer is the timeline half of the telemetry subsystem.  It reuses the
simulator's event schema — measured spans and simulated spans are the same
:class:`~repro.sim.trace.TraceEvent`, so a measured run and a discrete-event
prediction merge into one Chrome trace (distinct ``pid`` lanes per source;
see :meth:`repro.sim.trace.Trace.to_chrome_trace`).

Usage::

    from repro import telemetry

    with telemetry.tracer.span("all_reduce", category="comm"):
        ...

Spans nest; Chrome's flame view nests them by containment automatically.
Timestamps are seconds since the tracer's epoch (construction or last
:meth:`Tracer.reset`), so a trace always starts near t=0.

When the module-level ``repro.telemetry.enabled`` flag is off, ``span``
returns a shared no-op context — two attribute lookups and no allocation,
which is the "near-zero cost" guarantee the instrumented hot paths rely on.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.sim.trace import Trace

#: Source tag stamped on every measured span (simulator traces default "").
MEASURED_SOURCE = "measured"


class _NullSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span; records itself into the owning tracer's trace on exit."""

    __slots__ = ("_tracer", "name", "category", "actor", "_start")

    def __init__(self, tracer: "Tracer", name: str, category: str, actor: str) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.actor = actor
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._tracer._stack.append(self)
        self._start = self._tracer._clock()
        return self

    def __exit__(self, *exc) -> None:
        end = self._tracer._clock()
        tracer = self._tracer
        stack = tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        tracer.trace.record(
            self.actor,
            self.name,
            self._start - tracer._epoch,
            end - self._start,
            self.category,
            source=MEASURED_SOURCE,
        )


class Tracer:
    """Produces measured spans compatible with the simulator's ``Trace``.

    ``clock`` is injectable for tests (defaults to
    :func:`time.perf_counter`).  ``actor`` names the default timeline lane;
    individual spans can override it.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        actor: str = "runtime",
    ) -> None:
        self._clock = clock
        self.actor = actor
        self.trace = Trace()
        self._stack: list[_Span] = []
        self._epoch = clock()

    def span(self, name: str, category: str = "", actor: str | None = None):
        """Context manager timing one span; no-op when telemetry is disabled."""
        from repro import telemetry

        if not telemetry.enabled:
            return _NULL_SPAN
        return _Span(self, name, category, actor or self.actor)

    @property
    def depth(self) -> int:
        """Number of currently open spans (0 outside any ``with`` block)."""
        return len(self._stack)

    def now(self) -> float:
        """Seconds since the tracer epoch (comparable to recorded starts)."""
        return self._clock() - self._epoch

    def reset(self) -> None:
        """Drop all recorded events and restart the epoch at t=0."""
        self.trace = Trace()
        self._stack.clear()
        self._epoch = self._clock()

"""Wall-clock span tracing onto the shared :class:`repro.sim.trace.Trace`.

The tracer is the timeline half of the telemetry subsystem.  It reuses the
simulator's event schema — measured spans and simulated spans are the same
:class:`~repro.sim.trace.TraceEvent`, so a measured run and a discrete-event
prediction merge into one Chrome trace (distinct ``pid`` lanes per source;
see :meth:`repro.sim.trace.Trace.to_chrome_trace`).

Usage::

    from repro import telemetry

    with telemetry.tracer.span("all_reduce", category="comm"):
        ...

Spans nest; Chrome's flame view nests them by containment automatically.
Timestamps are seconds since the tracer's epoch (construction or last
:meth:`Tracer.reset`), so a trace always starts near t=0.

When the module-level ``repro.telemetry.enabled`` flag is off, ``span``
returns a shared no-op context — two attribute lookups and no allocation,
which is the "near-zero cost" guarantee the instrumented hot paths rely on.

Concurrency: the open-span stack is **thread-local** (each writer thread
nests independently) and completed events land in the shared trace via a
single GIL-atomic list append, so concurrent writers (input-pipeline host
threads, a chaos harness driving a trainer while a detector thread spans)
interleave without corrupting each other's nesting.  *Sinks* registered
with :meth:`Tracer.add_sink` observe every completed event — this is how
the :class:`~repro.telemetry.flight.FlightRecorder` mirrors the span
stream into its ring buffer.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Callable

from repro.sim.trace import Trace, TraceEvent

logger = logging.getLogger("repro.telemetry")

#: Source tag stamped on every measured span (simulator traces default "").
MEASURED_SOURCE = "measured"


class _NullSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span; records itself into the owning tracer's trace on exit."""

    __slots__ = ("_tracer", "name", "category", "actor", "_start")

    def __init__(self, tracer: "Tracer", name: str, category: str, actor: str) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.actor = actor
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._tracer._stack.append(self)
        self._start = self._tracer._clock()
        return self

    def __exit__(self, *exc) -> None:
        end = self._tracer._clock()
        tracer = self._tracer
        stack = tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        event = TraceEvent(
            self.actor,
            self.name,
            self._start - tracer._epoch,
            max(0.0, end - self._start),
            self.category,
            MEASURED_SOURCE,
        )
        tracer.trace.events.append(event)
        for sink in tracer._sinks:
            try:
                sink(event)
            except Exception:  # a broken sink must not kill the traced code
                logger.exception("trace sink %r failed", sink)


class Tracer:
    """Produces measured spans compatible with the simulator's ``Trace``.

    ``clock`` is injectable for tests (defaults to
    :func:`time.perf_counter`).  ``actor`` names the default timeline lane;
    individual spans can override it.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        actor: str = "runtime",
    ) -> None:
        self._clock = clock
        self.actor = actor
        self.trace = Trace()
        self._local = threading.local()
        self._sinks: list[Callable[[TraceEvent], None]] = []
        self._epoch = clock()

    @property
    def _stack(self) -> list["_Span"]:
        """This thread's open-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, category: str = "", actor: str | None = None):
        """Context manager timing one span; no-op when telemetry is disabled."""
        from repro import telemetry

        if not telemetry.enabled:
            return _NULL_SPAN
        return _Span(self, name, category, actor or self.actor)

    def add_sink(self, fn: Callable[[TraceEvent], None]) -> None:
        """Call ``fn(event)`` for every completed span (flight recorder hook)."""
        if fn not in self._sinks:
            self._sinks.append(fn)

    def remove_sink(self, fn: Callable[[TraceEvent], None]) -> None:
        if fn in self._sinks:
            self._sinks.remove(fn)

    @property
    def depth(self) -> int:
        """Open spans on the calling thread (0 outside any ``with`` block)."""
        return len(self._stack)

    def now(self) -> float:
        """Seconds since the tracer epoch (comparable to recorded starts)."""
        return self._clock() - self._epoch

    def reset(self) -> None:
        """Drop all recorded events and restart the epoch at t=0.

        Sinks stay registered; only this thread's open-span stack can be
        cleared (other threads' stacks empty as their spans exit).
        """
        self.trace = Trace()
        self._stack.clear()
        self._epoch = self._clock()

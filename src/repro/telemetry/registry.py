"""Process-wide runtime metrics: counters, gauges, fixed-bucket histograms.

The registry is the numeric half of the telemetry subsystem (the
:mod:`repro.telemetry.tracer` spans are the timeline half).  Metrics are
organized as *families* — one family per metric name, fanned out into
labeled children::

    metrics.counter("collective_bytes", op="reduce_scatter", axis="y").inc(n)

Children are created on first use and live until :meth:`MetricsRegistry.reset`.
The lookup path is one dict access on a tuple key, cheap enough to sit on
the collective hot path (the instrumented kernels run for milliseconds; a
labeled child lookup is ~100 ns).

Snapshots are plain dicts (JSON-ready via :meth:`MetricsRegistry.to_json`);
*collector* callbacks registered with
:meth:`MetricsRegistry.register_collector` run at snapshot time, which is
how cheap cache statistics (e.g. the padding-layout ``lru_cache`` in
:mod:`repro.runtime.collectives`) surface as gauges without per-call cost.
"""

from __future__ import annotations

import json
import logging
import threading
from bisect import bisect_left
from typing import Callable, Iterable, Mapping

logger = logging.getLogger("repro.telemetry")

#: Default histogram upper bounds for second-valued observations: six
#: decades from 1 µs to 100 s (an implicit +inf overflow bucket follows).
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)

LabelKey = tuple[tuple[str, str], ...]

#: Default cap on labeled children per metric family.  Per-device labels at
#: 4096 devices fit exactly; anything past the cap (a label accidentally
#: carrying a step index, a timestamp, a payload size) collapses into one
#: shared overflow child instead of growing the registry without bound.
DEFAULT_MAX_CHILDREN = 4096

#: Label key of the shared overflow child a saturated family falls back to.
OVERFLOW_KEY: LabelKey = (("overflow", "true"),)

#: Counter family that counts label sets rejected by the cardinality guard.
OVERFLOW_COUNTER = "telemetry_label_overflow"


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus an overflow bucket.

    ``buckets`` are strictly increasing *inclusive* upper bounds (``le``
    semantics, as in Prometheus): an observation lands in the first bucket
    whose bound is >= the value, or in the implicit +inf overflow bucket.
    ``sum``/``count`` track the running total and number of observations,
    so means survive the bucketing.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, labels: LabelKey, buckets: tuple[float, ...]) -> None:
        self.name = name
        self.labels = labels
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class _Family:
    """All labeled children of one metric name, plus its kind/bucket spec."""

    __slots__ = ("name", "kind", "buckets", "children")

    def __init__(self, name: str, kind: str, buckets: tuple[float, ...] | None) -> None:
        self.name = name
        self.kind = kind
        self.buckets = buckets
        self.children: dict[LabelKey, Counter | Gauge | Histogram] = {}


class MetricsRegistry:
    """Get-or-create registry of metric families with labeled children.

    A module-level instance (``repro.telemetry.metrics``) serves the whole
    process; independent registries can be created for tests.  Creation is
    lock-protected; increments rely on the GIL (single mutating bytecode
    ops), which matches the single-threaded functional runtime.

    ``max_children`` is the per-family label-cardinality guard: once a
    family holds that many labeled children, further *new* label sets are
    routed to one shared overflow child (labels ``{overflow: true}``) and
    counted in the ``telemetry_label_overflow`` counter, labeled by the
    saturated family's name.  Existing children keep working — the guard
    bounds growth, it never loses an established series.
    """

    def __init__(self, max_children: int = DEFAULT_MAX_CHILDREN) -> None:
        if max_children < 1:
            raise ValueError("max_children must be >= 1")
        self._families: dict[str, _Family] = {}
        self._collectors: list[Callable[[MetricsRegistry], None]] = []
        self._lock = threading.Lock()
        self.max_children = max_children

    # --- get-or-create ------------------------------------------------------

    def _child(
        self,
        name: str,
        kind: str,
        labels: Mapping[str, object],
        buckets: tuple[float, ...] | None = None,
    ):
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = self._families[name] = _Family(name, kind, buckets)
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, requested as {kind}"
            )
        if kind == "histogram" and buckets is not None and family.buckets != buckets:
            raise ValueError(f"histogram {name!r} already registered with different buckets")
        key = _label_key(labels)
        child = family.children.get(key)
        if child is None:
            overflowed = False
            with self._lock:
                child = family.children.get(key)
                if child is None:
                    if (
                        key
                        and key != OVERFLOW_KEY
                        and len(family.children) >= self.max_children
                    ):
                        # Cardinality guard: collapse the new label set into
                        # the family's shared overflow child.
                        overflowed = True
                        key = OVERFLOW_KEY
                        child = family.children.get(key)
                    if child is None:
                        if kind == "counter":
                            child = Counter(name, key)
                        elif kind == "gauge":
                            child = Gauge(name, key)
                        else:
                            child = Histogram(name, key, family.buckets or DEFAULT_TIME_BUCKETS)
                        family.children[key] = child
            if overflowed and name != OVERFLOW_COUNTER:
                # Outside the lock (counter() re-enters _child).  The guard
                # counter's own cardinality is bounded by the family count.
                self.counter(OVERFLOW_COUNTER, metric=name).inc()
        return child

    def counter(self, name: str, **labels: object) -> Counter:
        return self._child(name, "counter", labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._child(name, "gauge", labels)

    def histogram(
        self, name: str, buckets: Iterable[float] | None = None, **labels: object
    ) -> Histogram:
        spec = tuple(buckets) if buckets is not None else None
        if spec is not None and list(spec) != sorted(set(spec)):
            raise ValueError("histogram buckets must be strictly increasing")
        return self._child(name, "histogram", labels, spec)

    # --- collectors ---------------------------------------------------------

    def register_collector(self, fn: Callable[[MetricsRegistry], None]) -> None:
        """Run ``fn(registry)`` at every snapshot (for pull-style gauges)."""
        with self._lock:
            if fn not in self._collectors:
                self._collectors.append(fn)

    # --- read side ----------------------------------------------------------

    def value(self, name: str, **labels: object) -> float:
        """Scalar value of one counter/gauge child (0.0 if never touched)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        child = family.children.get(_label_key(labels))
        if child is None or isinstance(child, Histogram):
            return 0.0
        return child.value

    def total(self, name: str) -> float:
        """Sum of one counter family over all its labeled children."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        return sum(
            c.value for c in family.children.values() if not isinstance(c, Histogram)
        )

    def scalar_children(self) -> list[tuple[str, LabelKey, float]]:
        """``(name, label key, value)`` for every counter/gauge child.

        The family and child maps are copied while holding the registry
        lock, so callers (e.g. the flight recorder's per-step counter
        deltas) can iterate safely while other threads create metrics.
        """
        with self._lock:
            children = [
                (family.name, key, child)
                for family in self._families.values()
                if family.kind != "histogram"
                for key, child in family.children.items()
            ]
        return [(name, key, child.value) for name, key, child in children]

    def snapshot(self) -> dict:
        """All metrics as a JSON-ready dict (runs registered collectors)."""
        for fn in list(self._collectors):
            try:
                fn(self)
            except Exception:  # a broken collector must not kill a report
                logger.exception("telemetry collector %r failed", fn)
        out: dict = {}
        for name, family in sorted(self._families.items()):
            values = []
            for key in sorted(family.children):
                child = family.children[key]
                entry: dict = {"labels": dict(key)}
                if isinstance(child, Histogram):
                    entry.update(
                        buckets=list(child.buckets),
                        counts=list(child.counts),
                        sum=child.sum,
                        count=child.count,
                    )
                else:
                    entry["value"] = child.value
                values.append(entry)
            out[name] = {"type": family.kind, "values": values}
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def reset(self) -> None:
        """Drop every family and child (collectors stay registered)."""
        with self._lock:
            self._families.clear()

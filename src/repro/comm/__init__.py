"""Collective communication: cost models and multipod schedules.

* :mod:`repro.comm.cost` — alpha-beta cost formulas for ring/line
  reduce-scatter, all-gather, all-reduce and broadcast.
* :mod:`repro.comm.allreduce` — the paper's 2-D hierarchical gradient
  summation (Section 3.3): Y-torus reduce-scatter, X reduce-scatter,
  sharded weight update, X/Y all-gather; the model-peer-hopping variant
  used with model parallelism; and a flat single-ring baseline for
  ablations.
* :mod:`repro.comm.halo` — halo-exchange cost for spatial partitioning.
* :mod:`repro.comm.schedule` — link-level discrete-event execution of ring
  schedules, used to validate the analytic formulas.
"""

from repro.comm.cost import (
    reduce_scatter_time,
    all_gather_time,
    ring_all_reduce_time,
    broadcast_time,
    ring_cost_for,
)
from repro.comm.allreduce import (
    AllReduceBreakdown,
    two_phase_allreduce,
    flat_ring_allreduce,
    model_parallel_allreduce,
    gradient_allreduce,
)
from repro.comm.halo import halo_exchange_time, spatial_shard_shape
from repro.comm.schedule import (
    DegradedScheduleResult,
    simulate_degraded_all_gather,
    simulate_degraded_reduce_scatter,
    simulate_ring_all_gather,
    simulate_ring_reduce_scatter,
)

__all__ = [
    "reduce_scatter_time",
    "all_gather_time",
    "ring_all_reduce_time",
    "broadcast_time",
    "ring_cost_for",
    "AllReduceBreakdown",
    "two_phase_allreduce",
    "flat_ring_allreduce",
    "model_parallel_allreduce",
    "gradient_allreduce",
    "halo_exchange_time",
    "spatial_shard_shape",
    "DegradedScheduleResult",
    "simulate_degraded_all_gather",
    "simulate_degraded_reduce_scatter",
    "simulate_ring_reduce_scatter",
    "simulate_ring_all_gather",
]

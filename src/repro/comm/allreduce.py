"""Multipod gradient-summation schedules (Section 3.3, Figure 4).

The paper's optimized global summation is a 2-D hierarchical schedule:

1. bidirectional ring **reduce-scatter along Y** (the torus dimension),
   leaving each chip ``1/y_size`` of the summed gradients;
2. **reduce-scatter along X** on that shard (payload already 32x smaller);
3. the (sharded) **weight update** — costed by the caller, see
   :mod:`repro.core.weight_update_sharding`;
4. **all-gather along X** then **along Y** to broadcast updated weights.

With ``m``-way model parallelism along X, step 2/4 run on the *peer rings*
that hop over model-parallel neighbors, sharing X links (Figure 4, dotted
blue), while the per-chip gradient payload is already ``1/m`` of the model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.comm.cost import (
    all_gather_time,
    reduce_scatter_time,
    ring_cost_for,
)
from repro.hardware.rings import model_peer_ring, x_line, y_ring
from repro.hardware.topology import TorusMesh


@dataclass(frozen=True)
class AllReduceBreakdown:
    """Timing breakdown of a hierarchical all-reduce.

    ``shard_bytes`` is the per-chip gradient shard available between the
    reduce-scatter and all-gather phases — the input of the sharded weight
    update (Section 3.2).
    """

    reduce_scatter_y: float
    reduce_scatter_x: float
    all_gather_x: float
    all_gather_y: float
    shard_bytes: float

    @property
    def reduce_time(self) -> float:
        return self.reduce_scatter_y + self.reduce_scatter_x

    @property
    def broadcast_time(self) -> float:
        return self.all_gather_x + self.all_gather_y

    @property
    def total(self) -> float:
        return self.reduce_time + self.broadcast_time


def two_phase_allreduce(
    mesh: TorusMesh,
    payload_bytes: float,
    *,
    mp_size: int = 1,
) -> AllReduceBreakdown:
    """Cost of the 2-D hierarchical gradient all-reduce on a mesh.

    Parameters
    ----------
    mesh:
        The chip slice.
    payload_bytes:
        Per-chip gradient bytes.  With model parallelism this is already the
        *sharded* gradient size (full model gradients / ``mp_size``).
    mp_size:
        Model-parallelism group size along X.  ``1`` is plain data
        parallelism.  With ``mp_size > 1`` the X phases run on peer rings
        with ``mp_size`` physical hops per step and ``1/mp_size`` of each
        link's bandwidth (all peer rings share the X links).
    """
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be non-negative")
    if mp_size < 1:
        raise ValueError("mp_size must be >= 1")
    if mesh.x_size % mp_size != 0:
        raise ValueError(
            f"mesh x_size {mesh.x_size} not divisible by mp_size {mp_size}"
        )

    # Phase Y: every chip participates in its column ring with the full
    # (per-chip) payload.
    if mesh.y_size > 1:
        yc = ring_cost_for(mesh, y_ring(mesh, 0))
        t_rs_y = reduce_scatter_time(
            yc.num_members, payload_bytes, yc.bandwidth, yc.latency, closed=yc.closed
        )
        t_ag_y = all_gather_time(
            yc.num_members, payload_bytes, yc.bandwidth, yc.latency, closed=yc.closed
        )
        after_y = payload_bytes / mesh.y_size
    else:
        t_rs_y = t_ag_y = 0.0
        after_y = payload_bytes

    # Phase X: replicas along X (hopping over model-parallel peers).
    x_replicas = mesh.x_size // mp_size
    if x_replicas > 1:
        if mp_size == 1:
            ring = x_line(mesh, 0)
            frac = 1.0
        else:
            ring = model_peer_ring(mesh, 0, mp_size, 0)
            frac = 1.0 / mp_size
        xc = ring_cost_for(mesh, ring)
        t_rs_x = reduce_scatter_time(
            xc.num_members,
            after_y,
            xc.bandwidth,
            xc.latency,
            closed=xc.closed,
            hop_links=xc.hop_links,
            bandwidth_fraction=frac,
        )
        t_ag_x = all_gather_time(
            xc.num_members,
            after_y,
            xc.bandwidth,
            xc.latency,
            closed=xc.closed,
            hop_links=xc.hop_links,
            bandwidth_fraction=frac,
        )
        shard = after_y / x_replicas
    else:
        t_rs_x = t_ag_x = 0.0
        shard = after_y

    return AllReduceBreakdown(
        reduce_scatter_y=t_rs_y,
        reduce_scatter_x=t_rs_x,
        all_gather_x=t_ag_x,
        all_gather_y=t_ag_y,
        shard_bytes=shard,
    )


def flat_ring_allreduce(mesh: TorusMesh, payload_bytes: float) -> AllReduceBreakdown:
    """Baseline: one long snake ring over every chip of the slice.

    Used by the ablation benches to show why the 2-D schedule wins at scale:
    the single ring pays ``(n - 1)`` latency steps (4095 on the multipod)
    and cannot exploit the Y torus and X mesh dimensions concurrently.
    """
    n = mesh.num_chips
    # A hamiltonian snake alternates along columns; its closing hop exists
    # only if some wrap link can take it home, otherwise it is an open line.
    closed = mesh.wrap_y or mesh.wrap_x
    latency = mesh.chip.link_latency
    if mesh.cross_pod_every is not None:
        latency = max(latency, mesh.chip.cross_pod_link_latency)
    t_rs = reduce_scatter_time(
        n, payload_bytes, mesh.link_bandwidth, latency, closed=closed
    )
    t_ag = all_gather_time(
        n, payload_bytes, mesh.link_bandwidth, latency, closed=closed
    )
    return AllReduceBreakdown(
        reduce_scatter_y=t_rs,
        reduce_scatter_x=0.0,
        all_gather_x=0.0,
        all_gather_y=t_ag,
        shard_bytes=payload_bytes / n,
    )


def model_parallel_allreduce(
    mesh: TorusMesh, mp_size: int, payload_bytes: float
) -> float:
    """Forward/backward activation all-reduce inside one model-parallel group.

    These are the short "black rings" of Figure 4: ``mp_size`` X-adjacent
    chips summing partial matmul contributions (Section 3.1).  The group is
    an open segment of the X line, so the line formula applies.
    """
    if mp_size < 1:
        raise ValueError("mp_size must be >= 1")
    if mp_size == 1 or payload_bytes == 0:
        return 0.0
    if mp_size > mesh.x_size:
        raise ValueError(f"mp_size {mp_size} exceeds mesh x_size {mesh.x_size}")
    return 2.0 * reduce_scatter_time(
        mp_size,
        payload_bytes,
        mesh.link_bandwidth,
        mesh.chip.link_latency,
        closed=False,
    )


def gradient_allreduce(
    mesh: TorusMesh,
    gradient_bytes: float,
    *,
    mp_size: int = 1,
    use_2d: bool = True,
) -> AllReduceBreakdown:
    """Gradient summation cost for one training step.

    ``gradient_bytes`` is the per-chip gradient payload on the wire (already
    halved if gradients travel in bfloat16, already ``1/mp_size`` if weights
    are model-parallel sharded).
    """
    if use_2d:
        return two_phase_allreduce(mesh, gradient_bytes, mp_size=mp_size)
    if mp_size != 1:
        raise ValueError("flat ring baseline only supports data parallelism")
    return flat_ring_allreduce(mesh, gradient_bytes)


def allreduce_launch_params(
    mesh: TorusMesh,
    *,
    mp_size: int = 1,
    use_2d: bool = True,
    probe_bytes: tuple[float, float] = (float(1 << 20), float(1 << 26)),
) -> tuple[float, float]:
    """Affine ``(alpha, bytes_per_second)`` view of the all-reduce cost.

    For any positive payload the schedule cost is affine:
    ``total(p) = alpha + p / bytes_per_second`` where ``alpha`` is the sum
    of every ring phase's latency chain (paid once per collective *launch*)
    and the slope term is the bandwidth cost, which only depends on total
    bytes.  Splitting a payload into ``k`` bucketed launches therefore
    costs exactly ``k * alpha`` extra — the latency side of the bucket-size
    trade-off the overlap engine sweeps.

    The parameters are recovered from two positive probe payloads (the
    model returns a degenerate 0.0 at payload 0, so probing there would
    miss ``alpha``).  On a single-chip mesh there is no communication:
    returns ``(0.0, inf)``.
    """
    p1, p2 = probe_bytes
    if not 0.0 < p1 < p2:
        raise ValueError("probe_bytes must be two increasing positive payloads")
    t1 = gradient_allreduce(mesh, p1, mp_size=mp_size, use_2d=use_2d).total
    t2 = gradient_allreduce(mesh, p2, mp_size=mp_size, use_2d=use_2d).total
    inv_bw = (t2 - t1) / (p2 - p1)
    if inv_bw <= 0.0:
        return max(t1, 0.0), math.inf
    alpha = max(t1 - p1 * inv_bw, 0.0)
    return alpha, 1.0 / inv_bw

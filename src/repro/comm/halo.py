"""Halo-exchange communication for spatial partitioning (Section 3.1).

When SSD/MaskRCNN images are split along a spatial dimension over ``k``
cores, every convolution with a kernel wider than 1 needs ``halo`` rows of
activations from each spatial neighbor before it can compute its own tile.
The SPMD partitioner inserts these exchanges; here we cost them and compute
the tile shapes (including the uneven tiles that cause the load imbalance
the paper mentions for SSD).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.topology import TorusMesh


@dataclass(frozen=True)
class SpatialShard:
    """One core's tile of a spatially partitioned activation."""

    index: int
    rows: int
    cols: int
    channels: int

    @property
    def elements(self) -> int:
        return self.rows * self.cols * self.channels


def spatial_shard_shape(
    height: int, width: int, channels: int, num_partitions: int
) -> list[SpatialShard]:
    """Tile an ``H x W x C`` activation along H over ``num_partitions`` cores.

    Uses the ceiling/floor split XLA applies: the first ``H % k`` tiles get
    one extra row.  The imbalance between largest and smallest tile is what
    limits spatial-partitioning speedups on small feature maps (Section 4.4).
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    if height < 1 or width < 1 or channels < 1:
        raise ValueError("activation dims must be positive")
    if num_partitions > height:
        raise ValueError(
            f"cannot split {height} rows over {num_partitions} partitions"
        )
    base = height // num_partitions
    extra = height % num_partitions
    shards = []
    for i in range(num_partitions):
        rows = base + (1 if i < extra else 0)
        shards.append(SpatialShard(index=i, rows=rows, cols=width, channels=channels))
    return shards


def load_imbalance(shards: list[SpatialShard]) -> float:
    """max/mean work ratio across tiles (1.0 = perfectly balanced)."""
    if not shards:
        raise ValueError("no shards")
    sizes = [s.elements for s in shards]
    return max(sizes) * len(sizes) / sum(sizes)


def halo_exchange_time(
    mesh: TorusMesh,
    *,
    width: int,
    channels: int,
    halo_rows: int,
    dtype_bytes: int = 2,
    num_partitions: int = 2,
) -> float:
    """Time for one halo exchange between spatial neighbors.

    Each interior core exchanges ``halo_rows`` rows with both neighbors;
    the two directions overlap on the full-duplex links, so the critical
    path is one boundary transfer plus the link latency (plus a barrier-like
    synchronization the paper's XLA barrier optimization reduces — we model
    the optimized form).
    """
    if num_partitions < 2:
        return 0.0
    if halo_rows < 0:
        raise ValueError("halo_rows must be non-negative")
    halo_bytes = halo_rows * width * channels * dtype_bytes
    return mesh.chip.link_latency + halo_bytes / mesh.link_bandwidth


def conv_halo_rows(kernel_size: int) -> int:
    """Halo rows needed per side for a convolution kernel (stride 1)."""
    if kernel_size < 1 or kernel_size % 2 == 0:
        raise ValueError("kernel_size must be odd and positive")
    return (kernel_size - 1) // 2

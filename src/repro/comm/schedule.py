"""Link-level discrete-event execution of ring collective schedules.

These simulations move actual chunk-sized transfers over per-link channels
with FIFO contention, and exist to *validate* the closed-form alpha-beta
costs in :mod:`repro.comm.cost`: tests assert that the event-driven time of
a schedule matches the formula (exactly for single rings, within a small
tolerance for contended peer rings).

The schedules mirror XLA's synchronous collective-permute steps: a ring
reduce-scatter runs ``n - 1`` steps, each step every member forwards one
chunk to its ring neighbor, with a barrier between steps.
"""

from __future__ import annotations

import logging
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from time import perf_counter as _perf

from repro import telemetry as _telemetry
from repro.hardware.rings import Ring, degraded_rings

logger = logging.getLogger("repro.comm")
from repro.hardware.topology import Coordinate, TorusMesh
from repro.resilience.faults import FaultPlan, LinkDownError, RetryPolicy
from repro.sim.engine import Simulator
from repro.sim.resources import Channel


def _build_channels(
    sim: Simulator, mesh: TorusMesh
) -> dict[tuple[Coordinate, Coordinate], Channel]:
    """One FIFO channel per directed physical link."""
    channels: dict[tuple[Coordinate, Coordinate], Channel] = {}
    for link in mesh.links():
        channels[(link.src, link.dst)] = Channel(
            sim,
            bandwidth=mesh.link_bandwidth,
            latency=mesh.link_latency(link),
            name=f"{link.src}->{link.dst}",
        )
    return channels


def _send_chunk(channels, segment, chunk_bytes: float):
    """Store-and-forward a chunk across the links of one ring segment."""
    for link in segment:
        yield from channels[(link.src, link.dst)].transfer(chunk_bytes)


@lru_cache(maxsize=512)
def _ring_segments(
    mesh: TorusMesh, ring: Ring, reverse: bool
) -> tuple[tuple, ...]:
    """Link segments of one ring direction, cached.

    ``TorusMesh`` and ``Ring`` are frozen/hashable, and sweeps replay the
    same (mesh, ring) pairs for every payload point — recomputing the
    per-member link paths dominated small-payload simulations.
    """
    segments = ring.segments(mesh)
    if reverse:
        # Reverse direction: send along each segment's links flipped.
        segments = [
            [mesh.link_between(l.dst, l.src) for l in reversed(seg)]
            for seg in segments
        ]
    return tuple(tuple(seg) for seg in segments)


def _ring_phase(sim: Simulator, channels, mesh: TorusMesh, ring: Ring,
                payload_bytes: float, reverse: bool):
    """One direction of a ring phase: n-1 synchronous chunk-forward steps."""
    n = ring.size
    steps = n - 1
    chunk = payload_bytes / n
    segments = _ring_segments(mesh, ring, reverse)
    for _ in range(steps):
        sends = []
        for seg in segments:
            sends.append(sim.process(_send_chunk(channels, seg, chunk)))
        yield sim.all_of(sends)


#: Memoized healthy-phase results keyed by (topology, rings, payload,
#: direction).  The DES is deterministic, so a repeated (mesh, schedule,
#: payload) point — payload sweeps, trainer steps re-modeling the same
#: collective — returns its virtual time without re-running the event loop.
#: Bounded LRU; degraded/fault-injected phases are never memoized (their
#: outcome depends on the mutable FaultPlan/RetryPolicy state).
_PHASE_CACHE: OrderedDict[tuple, float] = OrderedDict()
_PHASE_CACHE_MAXSIZE = 1024
_PHASE_CACHE_MISS = object()


def _simulate_phase(
    mesh: TorusMesh,
    rings: list[Ring],
    payload_bytes: float,
    bidirectional: bool,
) -> float:
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be non-negative")
    key = (mesh, tuple(rings), float(payload_bytes), bidirectional)
    cached = _PHASE_CACHE.get(key, _PHASE_CACHE_MISS)
    if cached is not _PHASE_CACHE_MISS:
        _PHASE_CACHE.move_to_end(key)
        if _telemetry.enabled:
            _telemetry.metrics.counter("sim_phase_cache_hits").inc()
        return cached  # type: ignore[return-value]
    if _telemetry.enabled:
        _telemetry.metrics.counter("sim_phase_cache_misses").inc()
    sim = Simulator()
    channels = _build_channels(sim, mesh)
    for ring in rings:
        if ring.size < 2:
            continue
        if bidirectional and ring.closed:
            sim.process(_ring_phase(sim, channels, mesh, ring, payload_bytes / 2, False))
            sim.process(_ring_phase(sim, channels, mesh, ring, payload_bytes / 2, True))
        else:
            sim.process(_ring_phase(sim, channels, mesh, ring, payload_bytes, False))
    result = sim.run()
    while len(_PHASE_CACHE) >= _PHASE_CACHE_MAXSIZE:
        _PHASE_CACHE.popitem(last=False)
    _PHASE_CACHE[key] = result
    return result


def simulate_ring_reduce_scatter(
    mesh: TorusMesh,
    rings: list[Ring] | Ring,
    payload_bytes: float,
    *,
    bidirectional: bool = True,
) -> float:
    """Event-driven completion time of a (set of) ring reduce-scatter(s).

    Multiple rings run concurrently and contend for shared physical links —
    pass all ``mp_size`` model-peer rings of a row to observe the bandwidth
    sharing that the analytic model charges as ``bandwidth_fraction``.

    ``bidirectional`` applies the two-half-payloads trick on closed rings;
    open lines always run the one-directional pipeline.
    """
    if isinstance(rings, Ring):
        rings = [rings]
    return _attributed_phase("reduce_scatter", mesh, rings, payload_bytes, bidirectional)


def _attributed_phase(
    phase: str, mesh, rings, payload_bytes: float, bidirectional: bool
) -> float:
    """Run one simulated phase, attributing modeled vs. measured seconds.

    ``sim_phase_modeled_seconds`` accumulates the discrete-event *answer*
    (virtual seconds the schedule would take on hardware) while
    ``sim_phase_wall_seconds`` accumulates the wall-clock cost of producing
    it — the simulated/measured split that lets a report show both phase
    attributions side by side.
    """
    t0 = _perf()
    modeled = _simulate_phase(mesh, rings, payload_bytes, bidirectional)
    if _telemetry.enabled:
        m = _telemetry.metrics
        m.counter("sim_phase_modeled_seconds", phase=phase).inc(modeled)
        m.counter("sim_phase_wall_seconds", phase=phase).inc(_perf() - t0)
        m.counter("sim_phase_runs", phase=phase).inc()
    return modeled


def simulate_ring_all_gather(
    mesh: TorusMesh,
    rings: list[Ring] | Ring,
    payload_bytes: float,
    *,
    bidirectional: bool = True,
) -> float:
    """Event-driven all-gather time (identical data motion to reduce-scatter)."""
    if isinstance(rings, Ring):
        rings = [rings]
    return _attributed_phase("all_gather", mesh, rings, payload_bytes, bidirectional)


# --- fault-aware schedules ----------------------------------------------------


@dataclass
class DegradedScheduleResult:
    """Outcome of one fault-aware ring phase.

    ``seconds`` is the modeled completion time including retry/backoff
    stalls; ``retries`` counts transfer attempts burned on down links;
    ``degraded_transfers`` counts transfers that ran at reduced bandwidth;
    ``dropped_rings`` counts rings with fewer than two survivors (their
    payload has no schedule and must be recovered at a higher layer).
    """

    seconds: float = 0.0
    retries: int = 0
    degraded_transfers: int = 0
    healed_rings: int = 0
    dropped_rings: int = 0
    dead_chips: tuple = ()


def _send_chunk_with_faults(
    sim: Simulator,
    channels,
    segment,
    chunk_bytes: float,
    plan: FaultPlan,
    policy: RetryPolicy,
    result: DegradedScheduleResult,
):
    """Store-and-forward one chunk, retrying links the plan has taken down.

    A transfer attempt on a down link burns the sender's detection timeout
    and an exponential backoff before the next attempt; exhausting
    ``policy.max_attempts`` raises :class:`LinkDownError` into the schedule
    (failing the whole collective, as a synchronous fleet would observe).
    """
    for link in segment:
        attempt = 0
        while True:
            factor = plan.link_factor(link.src, link.dst, sim.now)
            if factor > 0.0:
                if factor < 1.0:
                    result.degraded_transfers += 1
                    if _telemetry.enabled:
                        _telemetry.metrics.counter(
                            "resilience_degraded_transfers"
                        ).inc()
                yield from channels[(link.src, link.dst)].transfer(
                    chunk_bytes, factor=factor
                )
                break
            attempt += 1
            result.retries += 1
            if _telemetry.enabled:
                _telemetry.metrics.counter("resilience_retries").inc()
            if attempt >= policy.max_attempts:
                raise LinkDownError(tuple(link.src), tuple(link.dst), attempt)
            yield sim.timeout(policy.delay_after(attempt))


def _ring_phase_with_faults(
    sim: Simulator, channels, mesh: TorusMesh, ring: Ring, payload_bytes: float,
    reverse: bool, plan: FaultPlan, policy: RetryPolicy,
    result: DegradedScheduleResult,
):
    """One direction of a ring phase over fault-injected links."""
    n = ring.size
    chunk = payload_bytes / n
    segments = _ring_segments(mesh, ring, reverse)
    for _ in range(n - 1):
        sends = []
        for seg in segments:
            sends.append(
                sim.process(
                    _send_chunk_with_faults(
                        sim, channels, seg, chunk, plan, policy, result
                    ),
                    name=f"send[{ring.members[0]}..]",
                )
            )
        yield sim.all_of(sends)


def _simulate_degraded_phase(
    phase: str,
    mesh: TorusMesh,
    rings: list[Ring] | Ring,
    payload_bytes: float,
    plan: FaultPlan,
    policy: RetryPolicy | None,
    bidirectional: bool,
) -> DegradedScheduleResult:
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be non-negative")
    if isinstance(rings, Ring):
        rings = [rings]
    policy = policy if policy is not None else RetryPolicy()
    dead = plan.dead_at_time(0.0)
    healed = degraded_rings(rings, dead)
    result = DegradedScheduleResult(
        healed_rings=len(healed),
        dropped_rings=len(rings) - len(healed),
        dead_chips=tuple(sorted(dead)),
    )
    if result.dropped_rings:
        logger.warning(
            "%s: %d of %d rings dropped (fewer than 2 survivors)",
            phase, result.dropped_rings, len(rings),
        )
    t0 = _perf()
    sim = Simulator()
    channels = _build_channels(sim, mesh)
    for ring in healed:
        if ring.size < 2:
            continue
        if bidirectional and ring.closed:
            for rev in (False, True):
                sim.process(
                    _ring_phase_with_faults(
                        sim, channels, mesh, ring, payload_bytes / 2, rev,
                        plan, policy, result,
                    ),
                    name=f"{phase}[{ring.members[0]}]",
                )
        else:
            sim.process(
                _ring_phase_with_faults(
                    sim, channels, mesh, ring, payload_bytes, False,
                    plan, policy, result,
                ),
                name=f"{phase}[{ring.members[0]}]",
            )
    result.seconds = sim.run()
    if _telemetry.enabled:
        m = _telemetry.metrics
        m.counter("sim_phase_modeled_seconds", phase=phase).inc(result.seconds)
        m.counter("sim_phase_wall_seconds", phase=phase).inc(_perf() - t0)
        m.counter("sim_phase_runs", phase=phase).inc()
    return result


def simulate_degraded_reduce_scatter(
    mesh: TorusMesh,
    rings: list[Ring] | Ring,
    payload_bytes: float,
    plan: FaultPlan,
    *,
    policy: RetryPolicy | None = None,
    bidirectional: bool = True,
) -> DegradedScheduleResult:
    """Reduce-scatter completion time on a faulted mesh.

    Rings are first healed over the plan's dead chips (survivors hop over
    the holes, Figure 4 style); transfers then run against the plan's link
    faults — degraded links slow down, down links retry with backoff and
    ultimately raise :class:`LinkDownError` out of this call.
    """
    return _simulate_degraded_phase(
        "reduce_scatter_degraded", mesh, rings, payload_bytes, plan, policy,
        bidirectional,
    )


def simulate_degraded_all_gather(
    mesh: TorusMesh,
    rings: list[Ring] | Ring,
    payload_bytes: float,
    plan: FaultPlan,
    *,
    policy: RetryPolicy | None = None,
    bidirectional: bool = True,
) -> DegradedScheduleResult:
    """All-gather twin of :func:`simulate_degraded_reduce_scatter`."""
    return _simulate_degraded_phase(
        "all_gather_degraded", mesh, rings, payload_bytes, plan, policy,
        bidirectional,
    )

"""Alpha-beta cost formulas for ring and line collectives.

Conventions
-----------
* ``payload_bytes`` is the per-participant buffer size *before* the
  collective (the gradient size for reduce-scatter, the full result size
  for all-gather).
* Links are full duplex with ``bandwidth`` bytes/s per direction.
* A **closed** ring (a torus dimension) runs the bidirectional ring
  algorithm: the payload is split in two halves circulating in opposite
  directions, so the bandwidth term sees ``2 x bandwidth``.
* An **open** line (a mesh dimension) is limited by its bisection: the
  middle link must carry the full payload in each direction, so the
  bandwidth term sees only ``1 x bandwidth``.  (This is exactly why the
  paper routes the bulk of the gradient reduction along the Y *torus*
  dimension and leaves only ``1/y_size`` of the payload for the X mesh.)
* ``hop_links`` is the number of physical links between ring neighbors
  (``m`` for the model-peer rings of Figure 4 that hop over ``m-1``
  model-parallel chips).
* ``bandwidth_fraction`` accounts for physical links shared by several
  logical rings (the ``m`` peer rings of an ``m``-way model-parallel job
  share every X link, so each sees ``1/m`` of it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.rings import Ring
from repro.hardware.topology import LinkKind, TorusMesh


def _validate(num_members: int, payload_bytes: float, bandwidth: float) -> None:
    if num_members < 1:
        raise ValueError(f"num_members must be >= 1, got {num_members}")
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be non-negative")
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")


def reduce_scatter_time(
    num_members: int,
    payload_bytes: float,
    bandwidth: float,
    latency: float,
    *,
    closed: bool = True,
    hop_links: int = 1,
    bandwidth_fraction: float = 1.0,
) -> float:
    """Time for a ring/line reduce-scatter leaving each member 1/n of the sum."""
    _validate(num_members, payload_bytes, bandwidth)
    if not 0 < bandwidth_fraction <= 1.0:
        raise ValueError("bandwidth_fraction must be in (0, 1]")
    n = num_members
    if n == 1 or payload_bytes == 0:
        return 0.0
    bw = bandwidth * bandwidth_fraction
    directions = 2.0 if closed else 1.0
    bandwidth_term = (n - 1) / n * payload_bytes / (directions * bw)
    latency_term = (n - 1) * latency * hop_links
    return bandwidth_term + latency_term


def all_gather_time(
    num_members: int,
    payload_bytes: float,
    bandwidth: float,
    latency: float,
    *,
    closed: bool = True,
    hop_links: int = 1,
    bandwidth_fraction: float = 1.0,
) -> float:
    """Time for a ring/line all-gather assembling a ``payload_bytes`` result.

    ``payload_bytes`` is the *full* gathered size; each member starts with a
    ``payload_bytes / n`` shard.  The data motion mirrors reduce-scatter, so
    the cost formula is identical.
    """
    return reduce_scatter_time(
        num_members,
        payload_bytes,
        bandwidth,
        latency,
        closed=closed,
        hop_links=hop_links,
        bandwidth_fraction=bandwidth_fraction,
    )


def ring_all_reduce_time(
    num_members: int,
    payload_bytes: float,
    bandwidth: float,
    latency: float,
    *,
    closed: bool = True,
    hop_links: int = 1,
    bandwidth_fraction: float = 1.0,
) -> float:
    """Reduce-scatter followed by all-gather (the classic ring all-reduce)."""
    one_phase = reduce_scatter_time(
        num_members,
        payload_bytes,
        bandwidth,
        latency,
        closed=closed,
        hop_links=hop_links,
        bandwidth_fraction=bandwidth_fraction,
    )
    return 2.0 * one_phase


def broadcast_time(
    num_members: int,
    payload_bytes: float,
    bandwidth: float,
    latency: float,
    *,
    closed: bool = True,
) -> float:
    """Pipelined chunk broadcast from one member to all others.

    On a closed ring the payload is split in two halves travelling opposite
    ways (each covering half the ring); on a line it pipelines one way.
    """
    _validate(num_members, payload_bytes, bandwidth)
    n = num_members
    if n == 1 or payload_bytes == 0:
        return 0.0
    if closed:
        hops = n // 2
        return payload_bytes / (2 * bandwidth) + hops * latency
    return payload_bytes / bandwidth + (n - 1) * latency


@dataclass(frozen=True)
class RingCostParams:
    """Concrete alpha-beta parameters extracted from a mesh ring."""

    num_members: int
    bandwidth: float
    latency: float
    closed: bool
    hop_links: int


def ring_cost_for(mesh: TorusMesh, ring: Ring) -> RingCostParams:
    """Extract cost parameters for a ring laid out on a mesh.

    The per-step latency is gated by the slowest link any segment uses —
    on a multipod X line that is the cross-pod optical link.
    """
    worst_latency = mesh.chip.link_latency
    for segment in ring.segments(mesh):
        for link in segment:
            if link.kind is LinkKind.CROSS_POD:
                worst_latency = max(worst_latency, mesh.chip.cross_pod_link_latency)
    return RingCostParams(
        num_members=ring.size,
        bandwidth=mesh.link_bandwidth,
        latency=worst_latency,
        closed=ring.closed,
        hop_links=ring.hop_stride,
    )

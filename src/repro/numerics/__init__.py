"""Numeric formats used by the paper's communication optimizations."""

from repro.numerics.bfloat16 import (
    BF16_EPS,
    bf16_dtype_bytes,
    round_to_bfloat16,
    is_bfloat16_representable,
    bf16_add,
    bf16_sum,
)

__all__ = [
    "BF16_EPS",
    "bf16_dtype_bytes",
    "round_to_bfloat16",
    "is_bfloat16_representable",
    "bf16_add",
    "bf16_sum",
]

"""bfloat16 emulation on top of numpy float32.

Sections 3.3 and 4.1 of the paper transfer gradients in bfloat16 (brain
float: 1 sign, 8 exponent, 7 mantissa bits) to halve all-reduce payloads.
numpy has no native bfloat16, so we emulate it as the subset of float32
values whose low 16 mantissa bits are zero, with IEEE round-to-nearest-even
conversion — bit-identical to the hardware behaviour for normal numbers.
"""

from __future__ import annotations

import numpy as np

#: Machine epsilon of bfloat16 (2**-7): relative error bound of one rounding.
BF16_EPS = 2.0 ** -7


def bf16_dtype_bytes() -> int:
    """Wire size of one bfloat16 element."""
    return 2


def round_to_bfloat16(x: np.ndarray | float) -> np.ndarray:
    """Round float values to the nearest bfloat16 (ties to even).

    Returns a float32 array whose values are exactly representable in
    bfloat16.  NaN is preserved; overflow saturates to +/-inf exactly as a
    hardware cast would.
    """
    arr = np.atleast_1d(np.asarray(x, dtype=np.float32))
    bits = arr.view(np.uint32).copy()
    nan_mask = np.isnan(arr)
    # Round-to-nearest-even on the upper 16 bits.
    lsb = (bits >> np.uint32(16)) & np.uint32(1)
    bias = np.uint32(0x7FFF) + lsb
    with np.errstate(over="ignore"):
        bits = (bits + bias) & np.uint32(0xFFFF0000)
    out = bits.view(np.float32).copy()
    # Rounding a NaN must stay NaN (the bias trick can corrupt the payload).
    out[nan_mask] = np.nan
    return out.reshape(np.shape(x))


def is_bfloat16_representable(x: np.ndarray | float) -> np.ndarray | bool:
    """Whether each value is exactly representable in bfloat16."""
    arr = np.asarray(x, dtype=np.float32)
    bits = arr.view(np.uint32)
    rep = (bits & np.uint32(0xFFFF)) == 0
    rep = rep | np.isnan(arr)
    return rep if np.ndim(x) else bool(rep)


def bf16_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Add two bf16 operands with a bf16 result (the TPU reduction step).

    Operands are first quantized (a no-op if already representable); the
    sum is computed in float32 and rounded back, matching the accumulate-
    and-truncate behaviour of in-network bf16 reductions.
    """
    return round_to_bfloat16(round_to_bfloat16(a) + round_to_bfloat16(b))


def bf16_sum(arrays: list[np.ndarray]) -> np.ndarray:
    """Left-to-right bf16 accumulation of several arrays.

    This mirrors what a ring reduce-scatter does to each chunk: the partial
    sum is rounded to bfloat16 at every hop.
    """
    if not arrays:
        raise ValueError("need at least one array")
    acc = round_to_bfloat16(arrays[0])
    for a in arrays[1:]:
        acc = bf16_add(acc, a)
    return acc

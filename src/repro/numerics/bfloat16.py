"""bfloat16 emulation on top of numpy float32.

Sections 3.3 and 4.1 of the paper transfer gradients in bfloat16 (brain
float: 1 sign, 8 exponent, 7 mantissa bits) to halve all-reduce payloads.
numpy has no native bfloat16, so we emulate it as the subset of float32
values whose low 16 mantissa bits are zero, with IEEE round-to-nearest-even
conversion — bit-identical to the hardware behaviour for normal numbers.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

#: Machine epsilon of bfloat16 (2**-7): relative error bound of one rounding.
BF16_EPS = 2.0 ** -7

#: Pooled temporaries for the in-place rounding path, keyed by
#: (shape, dtype).  The ring kernels round thousands of segments per
#: collective; reusing the bias/NaN-mask buffers keeps those calls
#: allocation-free.  Bounded LRU: distinct-shape sweeps evict the oldest
#: buffers instead of clearing the whole pool (which would throw away the
#: hot-loop entries too).  Not thread-safe (nothing in this layer is).
_SCRATCH: OrderedDict[tuple, np.ndarray] = OrderedDict()
_SCRATCH_MAXSIZE = 256


def _tmp(shape: tuple[int, ...], dtype) -> np.ndarray:
    key = (shape, np.dtype(dtype).str)
    buf = _SCRATCH.get(key)
    if buf is not None:
        _SCRATCH.move_to_end(key)
        return buf
    while len(_SCRATCH) >= _SCRATCH_MAXSIZE:
        _SCRATCH.popitem(last=False)
    buf = _SCRATCH[key] = np.empty(shape, dtype)
    return buf


def bf16_dtype_bytes() -> int:
    """Wire size of one bfloat16 element."""
    return 2


def _round_inplace_nonan(out: np.ndarray) -> np.ndarray:
    """In-place RNE rounding of a float32 array assumed to hold no NaN.

    ±inf is handled correctly (the bias cannot carry out of an all-ones
    exponent with a zero mantissa); only NaN payloads would be corrupted.
    The ring kernels call this on accumulator segments whose *inputs* were
    proven finite at staging time: a chain of additions over finite
    operands can saturate to ±inf, but once saturated it stays on that
    infinity and can never produce NaN, so skipping the NaN mask there is
    exact and saves two of the seven memory passes per hop.
    """
    bits = out.view(np.uint32)
    bias = np.right_shift(bits, np.uint32(16), out=_tmp(out.shape, np.uint32))
    np.bitwise_and(bias, np.uint32(1), out=bias)
    np.add(bias, np.uint32(0x7FFF), out=bias)
    with np.errstate(over="ignore"):
        np.add(bits, bias, out=bits)
    np.bitwise_and(bits, np.uint32(0xFFFF0000), out=bits)
    return out


def round_to_bfloat16(
    x: np.ndarray | float, out: np.ndarray | None = None
) -> np.ndarray:
    """Round float values to the nearest bfloat16 (ties to even).

    Returns a float32 array whose values are exactly representable in
    bfloat16.  NaN is preserved; overflow saturates to +/-inf exactly as a
    hardware cast would.

    When ``out`` is a float32 array of the input's shape, the rounding is
    performed writing into it (``out is x`` is allowed and rounds fully in
    place) — the hot path of the vectorized bf16 ring kernel, which would
    otherwise allocate several temporaries per hop.
    """
    if out is not None:
        if out.dtype != np.float32:
            raise ValueError("out must be a float32 array")
        src = np.asarray(x)
        if src.dtype != np.float32 or src.shape != out.shape:
            np.copyto(out, src, casting="same_kind")
            src = out
        # Read the bias straight off the source and write the rounded bits
        # into out — when out is not src this fuses the copy into the
        # rounding passes instead of paying a separate copyto sweep.
        src_bits = src.view(np.uint32)
        nan_mask = np.isnan(src, out=_tmp(out.shape, np.bool_))
        bias = np.right_shift(src_bits, np.uint32(16), out=_tmp(out.shape, np.uint32))
        np.bitwise_and(bias, np.uint32(1), out=bias)
        np.add(bias, np.uint32(0x7FFF), out=bias)
        out_bits = out.view(np.uint32)
        with np.errstate(over="ignore"):
            np.add(src_bits, bias, out=out_bits)
        np.bitwise_and(out_bits, np.uint32(0xFFFF0000), out=out_bits)
        # The bias trick can corrupt NaN payloads (even into inf/-0.0);
        # restoring is a fancy-indexed pass, so only pay it when needed.
        if nan_mask.any():
            out[nan_mask] = np.nan
        return out
    arr = np.atleast_1d(np.asarray(x, dtype=np.float32))
    bits = arr.view(np.uint32).copy()
    nan_mask = np.isnan(arr)
    # Round-to-nearest-even on the upper 16 bits.
    lsb = (bits >> np.uint32(16)) & np.uint32(1)
    bias = np.uint32(0x7FFF) + lsb
    with np.errstate(over="ignore"):
        bits = (bits + bias) & np.uint32(0xFFFF0000)
    result = bits.view(np.float32).copy()
    # Rounding a NaN must stay NaN (the bias trick can corrupt the payload).
    result[nan_mask] = np.nan
    return result.reshape(np.shape(x))


def is_bfloat16_representable(x: np.ndarray | float) -> np.ndarray | bool:
    """Whether each value is exactly representable in bfloat16."""
    arr = np.asarray(x, dtype=np.float32)
    bits = arr.view(np.uint32)
    rep = (bits & np.uint32(0xFFFF)) == 0
    rep = rep | np.isnan(arr)
    return rep if np.ndim(x) else bool(rep)


def bf16_add(
    a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Add two bf16 operands with a bf16 result (the TPU reduction step).

    Operands are first quantized (a no-op if already representable); the
    sum is computed in float32 and rounded back, matching the accumulate-
    and-truncate behaviour of in-network bf16 reductions.

    With ``out`` (a C-contiguous float32 array, ``out is a`` allowed) the
    sum and the rounding both write into ``out``, avoiding the ~6
    temporaries of the allocating form.
    """
    if out is not None:
        round_to_bfloat16(a, out=out)
        np.add(out, round_to_bfloat16(b), out=out)
        return round_to_bfloat16(out, out=out)
    return round_to_bfloat16(round_to_bfloat16(a) + round_to_bfloat16(b))


def bf16_sum(arrays: list[np.ndarray]) -> np.ndarray:
    """Left-to-right bf16 accumulation of several arrays.

    This mirrors what a ring reduce-scatter does to each chunk: the partial
    sum is rounded to bfloat16 at every hop.
    """
    if not arrays:
        raise ValueError("need at least one array")
    acc = round_to_bfloat16(arrays[0])
    for a in arrays[1:]:
        acc = bf16_add(acc, a)
    return acc

"""Host groups and the two control-plane topologies of Section 2.

A :class:`HostGroup` is the host-granularity view of a chip mesh: hosts
own row-major blocks of chips (the shared :func:`~repro.resilience.faults.host_map`
rule), and a host failure — preemption, kernel panic, NIC flap — takes out
every chip in its block at once.

On top of the group sit the paper's two control planes:

* :class:`SingleClientCoordinator` — TF-style.  One coordinator host
  drives every worker, heartbeats them, and is itself a single point of
  failure: nobody monitors the monitor, so its death kills the job.  Init
  and re-init both pay the per-worker linear term of Table 2.
* :class:`MultiClientGroup` — JAX-style.  Every host is a peer client;
  failure detection is a successor-ring lease (host ``h`` is watched by
  ``h+1 mod n``, like a gossip ring), so *any* host's death is observed
  by a survivor and the job re-forms elastically in ~constant time.

The topologies only describe *who watches whom* and *what dying costs*;
the actual heartbeat timing model lives in
:mod:`repro.controlplane.heartbeat`.
"""

from __future__ import annotations

import abc
import logging
from dataclasses import dataclass, field

from repro.frameworks.base import FrameworkModel, GraphProfile
from repro.frameworks.jax import MultiClientJAX
from repro.frameworks.tensorflow import SingleClientTF
from repro.resilience.faults import Device, host_map

logger = logging.getLogger("repro.controlplane")


class JobKilledError(RuntimeError):
    """A host failure hit the control plane itself; the job cannot recover."""

    def __init__(self, host: int, reason: str = "") -> None:
        self.host = host
        super().__init__(
            reason or f"host {host} failure is fatal to the control plane"
        )


@dataclass(frozen=True)
class HostGroup:
    """The host-granularity failure domains of an ``(x, y)`` chip mesh.

    ``hosts`` is derived once from the shared :func:`host_map` rule, so
    the control plane and :func:`repro.resilience.faults.fail_host` can
    never disagree about which chips die with a host.
    """

    mesh_shape: tuple[int, int]
    chips_per_host: int = 8
    hosts: dict[int, tuple[Device, ...]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "hosts", host_map(self.mesh_shape, self.chips_per_host)
        )

    @property
    def num_hosts(self) -> int:
        return len(self.hosts)

    def chips_of(self, host: int) -> tuple[Device, ...]:
        """The failure domain of one host (every chip it drives)."""
        try:
            return self.hosts[host]
        except KeyError:
            raise ValueError(
                f"host {host} not in group of {self.num_hosts} hosts"
            ) from None

    def host_of(self, device: Device) -> int:
        """Inverse lookup: the host driving ``device``."""
        x, y = device
        x_size, y_size = self.mesh_shape
        if not (0 <= x < x_size and 0 <= y < y_size):
            raise ValueError(f"device {device} outside mesh {x_size}x{y_size}")
        return (x * y_size + y) // self.chips_per_host

    def host_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self.hosts))


class ControlTopology(abc.ABC):
    """Who watches whom, and what init/failure cost the control plane pays."""

    def __init__(self, group: HostGroup, framework: FrameworkModel) -> None:
        self.group = group
        self.framework = framework

    @property
    def num_hosts(self) -> int:
        return self.group.num_hosts

    def init_time(self, profile: GraphProfile) -> float:
        """Job launch to first step — delegated to the framework model."""
        return self.framework.init_time(self.num_hosts, profile)

    def reinit_time(self, num_hosts: int, profile: GraphProfile) -> float:
        """Cost of re-forming the job on ``num_hosts`` survivors."""
        return self.framework.reinit_time(num_hosts, profile)

    @abc.abstractmethod
    def observers_of(self, host: int) -> tuple[int, ...]:
        """Hosts whose heartbeat monitoring covers ``host``."""

    def is_fatal_host_failure(self, host: int) -> bool:
        """Whether losing ``host`` kills the job (no elastic recovery)."""
        return self.framework.is_fatal_host_failure(host)

    def check_host_failure(self, host: int) -> None:
        """Raise :class:`JobKilledError` when losing ``host`` is fatal."""
        if self.is_fatal_host_failure(host):
            err = JobKilledError(
                host,
                f"{type(self).__name__}: host {host} is the coordinator; "
                "its death kills the job",
            )
            from repro.telemetry import on_terminal_failure

            on_terminal_failure(
                err, origin="controlplane.host_failure", host=host
            )
            raise err


class SingleClientCoordinator(ControlTopology):
    """TF-style: the coordinator heartbeats every worker, and is a SPOF."""

    def __init__(
        self, group: HostGroup, framework: FrameworkModel | None = None
    ) -> None:
        super().__init__(group, framework or SingleClientTF())
        if self.framework.coordinator_host is None:
            raise ValueError(
                "single-client topology needs a framework with a coordinator "
                f"({type(self.framework).__name__} has none)"
            )
        self.coordinator = self.framework.coordinator_host
        if self.coordinator not in group.hosts:
            raise ValueError(
                f"coordinator host {self.coordinator} not in group "
                f"of {group.num_hosts} hosts"
            )

    def observers_of(self, host: int) -> tuple[int, ...]:
        """Workers are watched by the coordinator; the coordinator by nobody."""
        if host == self.coordinator:
            return ()
        return (self.coordinator,)


class MultiClientGroup(ControlTopology):
    """JAX-style peer group: successor-ring lease monitoring, no SPOF."""

    def __init__(
        self,
        group: HostGroup,
        framework: FrameworkModel | None = None,
        *,
        gossip_fanout: int = 1,
    ) -> None:
        super().__init__(group, framework or MultiClientJAX())
        if gossip_fanout < 1:
            raise ValueError("gossip_fanout must be >= 1")
        self.gossip_fanout = gossip_fanout

    def observers_of(self, host: int) -> tuple[int, ...]:
        """The ``gossip_fanout`` ring successors of ``host`` hold its lease."""
        ids = self.group.host_ids()
        n = len(ids)
        if n <= 1:
            return ()
        pos = ids.index(host)
        fanout = min(self.gossip_fanout, n - 1)
        return tuple(ids[(pos + k) % n] for k in range(1, fanout + 1))

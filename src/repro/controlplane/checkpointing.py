"""Checkpoint-interval policies: when to pay the snapshot to bound rework.

The chaos harness originally checkpointed on a fixed step interval.  That
is one point in a classic trade-off: checkpoint too often and the save
overhead eats goodput, too rarely and every failure rewinds a long way.
This module turns the decision into policy objects consumed by
:func:`repro.resilience.chaos.run_chaos`:

* :class:`StepInterval` — every ``k`` steps (the legacy behavior);
* :class:`WallClockInterval` — every ``T`` modeled seconds, which under
  stragglers checkpoints by *time at risk* rather than step count;
* :class:`RiskAdaptive` — the Young/Daly square-root rule
  ``interval = sqrt(2 * C / h)`` for checkpoint cost ``C`` and hazard
  rate ``h``, derived from a :class:`~repro.resilience.faults.FaultPlan`
  via :meth:`RiskAdaptive.from_plan`.

Policies are pure predicates over (step, modeled time, last checkpoint);
they own no state, so a replayed run makes identical decisions.
"""

from __future__ import annotations

import abc
import math

from repro.resilience.faults import FaultPlan


class CheckpointPolicy(abc.ABC):
    """Decide, after each completed step, whether to snapshot now."""

    @abc.abstractmethod
    def should_checkpoint(
        self,
        *,
        step: int,
        now_s: float,
        last_checkpoint_step: int,
        last_checkpoint_time_s: float,
    ) -> bool:
        """``step`` steps are complete and the clock reads ``now_s``."""


class StepInterval(CheckpointPolicy):
    """Checkpoint every ``every_steps`` completed steps."""

    def __init__(self, every_steps: int) -> None:
        if every_steps < 1:
            raise ValueError("every_steps must be >= 1")
        self.every_steps = every_steps

    def should_checkpoint(
        self, *, step, now_s, last_checkpoint_step, last_checkpoint_time_s
    ) -> bool:
        return step - last_checkpoint_step >= self.every_steps


class WallClockInterval(CheckpointPolicy):
    """Checkpoint whenever ``every_seconds`` of modeled time is at risk."""

    def __init__(self, every_seconds: float) -> None:
        if every_seconds <= 0:
            raise ValueError("every_seconds must be > 0")
        self.every_seconds = every_seconds

    def should_checkpoint(
        self, *, step, now_s, last_checkpoint_step, last_checkpoint_time_s
    ) -> bool:
        return now_s - last_checkpoint_time_s >= self.every_seconds


class RiskAdaptive(CheckpointPolicy):
    """Young/Daly optimal interval from a hazard rate and a snapshot cost.

    ``interval_s = sqrt(2 * checkpoint_seconds / hazard_per_second)`` —
    the first-order optimum balancing snapshot overhead against expected
    rework.  A zero hazard rate degenerates to "never checkpoint again"
    (the interval is infinite), which is the right call for a fault-free
    plan.
    """

    def __init__(
        self, hazard_per_second: float, checkpoint_seconds: float
    ) -> None:
        if hazard_per_second < 0:
            raise ValueError("hazard_per_second must be >= 0")
        if checkpoint_seconds <= 0:
            raise ValueError("checkpoint_seconds must be > 0")
        self.hazard_per_second = hazard_per_second
        self.checkpoint_seconds = checkpoint_seconds

    @property
    def interval_s(self) -> float:
        if self.hazard_per_second == 0:
            return math.inf
        return math.sqrt(2 * self.checkpoint_seconds / self.hazard_per_second)

    def should_checkpoint(
        self, *, step, now_s, last_checkpoint_step, last_checkpoint_time_s
    ) -> bool:
        return now_s - last_checkpoint_time_s >= self.interval_s

    @classmethod
    def from_plan(
        cls,
        plan: FaultPlan,
        *,
        horizon_s: float,
        state_bytes: int,
        bandwidth_bytes_per_s: float,
    ) -> "RiskAdaptive":
        """Estimate the hazard rate from a plan's interrupting events.

        Chip failures and preemptions force a restore; link flaps and
        stragglers only slow steps down, so they carry no hazard here.
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be > 0")
        interrupting = len(plan.chip_failures) + len(plan.preemptions)
        return cls(
            hazard_per_second=interrupting / horizon_s,
            checkpoint_seconds=max(
                state_bytes / bandwidth_bytes_per_s, 1e-12
            ),
        )

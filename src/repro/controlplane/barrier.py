"""A synchronization barrier with timeout and straggler attribution.

Synchronous SPMD training is one giant implicit barrier per step: the
all-reduce completes only when the slowest participant arrives.  The
control plane's job is to turn "the step is slow" into *names* — which
host is late, and by how much — so the chaos harness and the input-
pipeline imbalance study (§3.5) can attribute stalls instead of just
observing them.

:class:`Barrier` is a discrete-event primitive on
:class:`repro.sim.engine.Simulator`: participants ``arrive()``, and the
barrier's event fires either when everyone has arrived or when
``timeout_s`` expires — in which case the missing hosts are attributed
as stragglers in the :class:`BarrierResult`.  :func:`resolve_barrier`
wraps the common case of known arrival times, and the two ``*_arrivals``
helpers derive those times from a
:class:`~repro.resilience.faults.StragglerFault` plan or a
:class:`~repro.input_pipeline.imbalance.ImbalanceReport`.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import telemetry as _telemetry
from repro.controlplane.group import HostGroup
from repro.input_pipeline.imbalance import ImbalanceReport
from repro.resilience.faults import FaultPlan
from repro.sim.engine import Simulator

logger = logging.getLogger("repro.controlplane")


@dataclass(frozen=True)
class BarrierResult:
    """Outcome of one barrier: who made it, who gets the blame."""

    released_at: float
    arrived: tuple[int, ...]
    stragglers: tuple[int, ...]
    timed_out: bool

    @property
    def num_participants(self) -> int:
        return len(self.arrived) + len(self.stragglers)


class Barrier:
    """A one-shot barrier over named participants, with a timeout.

    The barrier opens at construction time (``sim.now``); its
    :attr:`event` fires with a :class:`BarrierResult` when every
    participant has arrived, or at ``timeout_s`` with the missing
    participants attributed as stragglers.  A zero-participant barrier
    releases immediately — there is nobody to wait for.

    Late ``arrive()`` calls (after release) are recorded but change
    nothing; arrivals for unknown participants raise.
    """

    def __init__(
        self, sim: Simulator, participants: Sequence[int], timeout_s: float
    ) -> None:
        if timeout_s <= 0:
            raise ValueError("timeout_s must be > 0")
        self.sim = sim
        self.participants = tuple(participants)
        if len(set(self.participants)) != len(self.participants):
            raise ValueError("duplicate barrier participants")
        self.timeout_s = timeout_s
        self.opened_at = sim.now
        self.event = sim.event()
        self._arrival_times: dict[int, float] = {}
        if not self.participants:
            self.event.succeed(
                BarrierResult(
                    released_at=sim.now, arrived=(), stragglers=(),
                    timed_out=False,
                )
            )
            return
        deadline = sim.timeout(timeout_s)
        deadline.callbacks.append(self._on_timeout)

    def arrive(self, participant: int) -> None:
        """Mark ``participant`` as arrived at the current simulation time."""
        if participant not in self.participants:
            raise ValueError(f"{participant} is not a barrier participant")
        self._arrival_times.setdefault(participant, self.sim.now)
        if self.event.triggered:
            return  # late arrival after release/timeout: already attributed
        if len(self._arrival_times) == len(self.participants):
            self.event.succeed(self._result(timed_out=False))

    def arrival_time(self, participant: int) -> float | None:
        return self._arrival_times.get(participant)

    def _result(self, timed_out: bool) -> BarrierResult:
        arrived = tuple(sorted(self._arrival_times))
        stragglers = tuple(
            sorted(set(self.participants) - set(self._arrival_times))
        )
        result = BarrierResult(
            released_at=self.sim.now,
            arrived=arrived,
            stragglers=stragglers,
            timed_out=timed_out,
        )
        if _telemetry.enabled:
            m = _telemetry.metrics
            m.counter("controlplane_barrier_releases").inc()
            if timed_out:
                m.counter("controlplane_barrier_timeouts").inc()
                m.counter("controlplane_barrier_stragglers").inc(
                    len(stragglers)
                )
        _telemetry.flight_recorder.record(
            "barrier",
            "timeout" if timed_out else "release",
            released_at=self.sim.now,
            arrived=len(arrived),
            participants=len(self.participants),
            stragglers=list(stragglers),
        )
        if timed_out:
            logger.warning(
                "barrier timed out at t=%.3f: %d/%d arrived, stragglers %s",
                self.sim.now, len(arrived), len(self.participants), stragglers,
            )
        return result

    def _on_timeout(self, event) -> None:
        if not self.event.triggered:
            self.event.succeed(self._result(timed_out=True))


def resolve_barrier(
    arrival_times: Mapping[int, float], timeout_s: float
) -> BarrierResult:
    """Resolve a barrier whose arrival times are already known.

    Spins up a private simulator, arrives each participant at its time,
    and returns the :class:`BarrierResult` — hosts later than
    ``timeout_s`` are attributed as stragglers.
    """
    sim = Simulator()
    barrier = Barrier(sim, tuple(arrival_times), timeout_s)

    def arriver(host: int, at: float):
        yield sim.timeout(at)
        barrier.arrive(host)

    for host, at in arrival_times.items():
        if at < 0:
            raise ValueError(f"negative arrival time for host {host}")
        sim.process(arriver(host, at), name=f"arrive[{host}]")
    sim.run()
    return barrier.event.value


def step_arrivals(
    plan: FaultPlan, group: HostGroup, step: int, base_step_seconds: float
) -> dict[int, float]:
    """Per-host barrier arrival times for one step under a straggler plan.

    A host arrives when its *slowest* chip finishes — the per-host max of
    the plan's straggler factors times the fault-free step time.
    """
    if base_step_seconds <= 0:
        raise ValueError("base_step_seconds must be > 0")
    return {
        host: base_step_seconds
        * max(plan.straggler_factor(chip, step) for chip in chips)
        for host, chips in group.hosts.items()
    }


def pipeline_arrivals(
    report: ImbalanceReport, device_step_seconds: float
) -> dict[int, float]:
    """Per-host arrival times implied by an input-pipeline imbalance report.

    Each host's feed slowdown inflates its arrival at the step barrier —
    the §3.5 mechanism by which one slow JPEG-decoding host gates the
    whole multipod.
    """
    if device_step_seconds <= 0:
        raise ValueError("device_step_seconds must be > 0")
    return {
        host: device_step_seconds * result.slowdown
        for host, result in enumerate(report.per_host)
    }

"""Silent-corruption guards: what the collectives cannot raise on.

A dead chip breaks a collective loudly.  A flipped bit in one replica's
parameter copy breaks *nothing* — every collective completes, the job
reports healthy, and the model silently trains on diverged state.  The
:class:`ConsistencyGuard` catches this class of failure with two probes:

* **Cross-replica hash checks**: every ``check_interval`` steps, hash
  each replica's parameter tree and majority-vote.  Replicas in the
  minority are desynced; with a clear majority they are quarantined and
  resynced from a healthy peer, and with no majority (e.g. two replicas
  disagreeing 1-1) the only safe recovery is a rewind to the last
  hash-verified checkpoint.
* **Non-finite tripwires**: scan gradients/params for NaN/Inf before
  they propagate through an all-reduce (one NaN poisons every replica in
  a single collective).

Divergence bookkeeping: the repo's trainers collapse replication (one
parameter copy stands for all replicas), so a replica's corrupted view is
carried as a sparse *overlay* of pending
:class:`~repro.resilience.faults.BitFlipFault` deltas on the shared
trajectory.  For translation-invariant optimizers (SGD, momentum, Adam —
updates depend on gradients and slots, not on the weights' values) the
overlay is exact: identical updates preserve the flip delta bit-for-bit,
so hashing ``params + overlay`` is hashing exactly what the corrupted
replica would hold.
"""

from __future__ import annotations

import hashlib
import logging
from collections import Counter as _Counter
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro import telemetry as _telemetry
from repro.optim.base import Params
from repro.resilience.faults import BitFlipFault, Device

logger = logging.getLogger("repro.controlplane")


class SilentCorruptionError(RuntimeError):
    """A tripwire found non-finite values in a tensor tree."""

    def __init__(self, kind: str, names: tuple[str, ...], step: int | None) -> None:
        self.kind = kind
        self.names = names
        self.step = step
        at = f" at step {step}" if step is not None else ""
        super().__init__(
            f"non-finite {kind} values{at} in: {', '.join(names)}"
        )


@dataclass(frozen=True)
class DesyncEvent:
    """One caught parameter desync: injection vs. detection, and the fix."""

    device: Device
    injected_step: int
    detected_step: int
    recovery: str  # "resync" (from majority) or "rewind" (to checkpoint)

    @property
    def detection_steps(self) -> int:
        """Steps the corruption went unnoticed (bounded by check_interval)."""
        return self.detected_step - self.injected_step


def apply_bit_flips(params: Params, flips: Iterable[BitFlipFault]) -> Params:
    """A copy of ``params`` with each flip's bit toggled in place.

    The flip addresses ``index % size`` of the (optionally named) tensor
    and toggles bit ``bit`` of that element's low 32-bit word — for f64
    parameters that is deep in the mantissa, the quiet kind of SDC.
    Tensors untouched by any flip are shared, not copied.
    """
    out = dict(params)
    for flip in flips:
        name = flip.param if flip.param is not None else sorted(out)[0]
        if name not in out:
            raise KeyError(f"bit flip targets unknown parameter {name!r}")
        arr = np.ascontiguousarray(out[name]).copy()
        words_per_elem = max(1, arr.dtype.itemsize // 4)
        words = arr.reshape(-1).view(np.uint32)
        word = (flip.index % arr.size) * words_per_elem
        words[word] ^= np.uint32(1 << flip.bit)
        out[name] = arr
    return out


class ConsistencyGuard:
    """Cross-replica hash checks plus NaN/Inf tripwires.

    ``check_interval`` is in steps; ``hash_seconds`` is the modeled cost
    of one fleet-wide hash round (charged by the chaos harness);
    ``on_nonfinite`` is ``"raise"`` (stop the run with
    :class:`SilentCorruptionError`) or ``"count"`` (telemetry only).
    """

    def __init__(
        self,
        check_interval: int = 1,
        *,
        hash_seconds: float = 0.0,
        on_nonfinite: str = "raise",
    ) -> None:
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        if hash_seconds < 0:
            raise ValueError("hash_seconds must be >= 0")
        if on_nonfinite not in ("raise", "count"):
            raise ValueError("on_nonfinite must be 'raise' or 'count'")
        self.check_interval = check_interval
        self.hash_seconds = hash_seconds
        self.on_nonfinite = on_nonfinite

    def due(self, step: int) -> bool:
        """Whether the hash check runs after ``step`` completed steps."""
        return step > 0 and step % self.check_interval == 0

    # --- parameter hashing ----------------------------------------------------

    def param_hash(self, params: Params) -> str:
        """Order-independent digest of a parameter tree (names + bytes)."""
        digest = hashlib.sha256()
        for name in sorted(params):
            arr = np.ascontiguousarray(params[name])
            digest.update(name.encode())
            digest.update(str(arr.shape).encode())
            digest.update(arr.tobytes())
        return digest.hexdigest()

    def find_desynced(
        self, hashes: Mapping[Device, str]
    ) -> tuple[tuple[Device, ...], bool]:
        """Minority replicas under majority vote.

        Returns ``(desynced_devices, ambiguous)``: with a strict majority
        hash, the minority is desynced and resyncable; without one (a
        1-1 split, or three ways) every divergent replica is returned
        and ``ambiguous`` is True — no peer can be trusted as the donor,
        so recovery must rewind to a verified checkpoint.
        """
        if not hashes:
            return (), False
        counts = _Counter(hashes.values())
        if len(counts) == 1:
            return (), False
        (top_hash, top_n), (_, second_n) = counts.most_common(2)
        if top_n == second_n:
            return tuple(sorted(hashes)), True
        desynced = tuple(
            sorted(d for d, h in hashes.items() if h != top_hash)
        )
        return desynced, False

    def check_replicas(
        self, views: Mapping[Device, Params], step: int
    ) -> tuple[tuple[Device, ...], bool]:
        """Hash every replica view and majority-vote; telemetry-counted."""
        hashes = {d: self.param_hash(p) for d, p in views.items()}
        desynced, ambiguous = self.find_desynced(hashes)
        if _telemetry.enabled:
            m = _telemetry.metrics
            m.counter("controlplane_hash_checks").inc()
            if desynced:
                m.counter("controlplane_desyncs_caught").inc(len(desynced))
        if desynced:
            logger.warning(
                "desync at step %d: %s diverged (%s recovery)",
                step, desynced, "rewind" if ambiguous else "resync",
            )
            _telemetry.flight_recorder.record(
                "guard", "desync",
                step=step,
                devices=[list(d) for d in desynced],
                ambiguous=ambiguous,
            )
        return desynced, ambiguous

    # --- non-finite tripwires -------------------------------------------------

    def scan_tree(
        self,
        tree: Mapping[str, np.ndarray],
        *,
        kind: str = "gradient",
        step: int | None = None,
    ) -> tuple[str, ...]:
        """Names of tensors containing NaN/Inf; raises per ``on_nonfinite``."""
        bad = tuple(
            name
            for name in sorted(tree)
            if not np.all(np.isfinite(tree[name]))
        )
        if bad:
            if _telemetry.enabled:
                _telemetry.metrics.counter(
                    "controlplane_nonfinite_tensors", kind=kind
                ).inc(len(bad))
            logger.error(
                "non-finite %s tensors%s: %s",
                kind, f" at step {step}" if step is not None else "", bad,
            )
            if self.on_nonfinite == "raise":
                err = SilentCorruptionError(kind, bad, step)
                _telemetry.on_terminal_failure(
                    err, origin="guard.nonfinite", tensor_kind=kind
                )
                raise err
        return bad

"""Heartbeat failure detection as a discrete-event model.

PR 3's chaos harness detected failures by oracle: a chip died and the
fleet *instantly* knew, paying only a fixed timeout.  Real control planes
pay a measurable **detection latency** (MTTD) set by three knobs — how
often hosts heartbeat (``interval_s``), how long an observer waits past a
deadline before counting a miss (``timeout_s``), and how many consecutive
misses it takes to declare death (``suspicion_threshold``, >1 to ride out
link flaps without false job-kills).

Two detector flavors share the ``detection_latency`` protocol consumed by
:func:`repro.resilience.chaos.run_chaos`:

* :class:`OracleDetector` — the PR 3 behavior as an explicit object: a
  constant latency, for baselines and hand-checkable accounting.
* :class:`HeartbeatDetector` — deadline arithmetic for the closed-form
  latency, plus :meth:`HeartbeatDetector.simulate`, which runs emitter
  and monitor processes on :class:`repro.sim.engine.Simulator` against a
  :class:`~repro.controlplane.group.ControlTopology` and a
  :class:`~repro.resilience.faults.FaultPlan` (link flaps drop beats in
  flight) and returns per-host :class:`Detection` records.

Everything is deterministic: the same plan and knobs replay the same
beats, suspicions, and detection times.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass
from typing import Mapping

from repro import telemetry as _telemetry
from repro.controlplane.group import ControlTopology
from repro.resilience.faults import FaultPlan
from repro.sim.engine import Simulator

logger = logging.getLogger("repro.controlplane")


@dataclass(frozen=True)
class Detection:
    """One declared host death: when it really happened vs. when we knew.

    ``false_positive`` marks a declaration against a host that was in
    fact alive (suspicion threshold too low for the link weather) — the
    detector's job-killing failure mode.
    """

    host: int
    fault_time: float
    detect_time: float
    by: int
    false_positive: bool = False

    @property
    def latency(self) -> float:
        """Detection latency (MTTD contribution) in seconds."""
        return self.detect_time - self.fault_time


class OracleDetector:
    """PR 3's omniscient detection as an explicit, constant-latency object."""

    def __init__(self, latency_s: float = 0.5) -> None:
        if latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        self.latency_s = latency_s

    def detection_latency(self, fault_time: float) -> float:
        return self.latency_s


class HeartbeatDetector:
    """Periodic-heartbeat failure detection with suspicion counting.

    Hosts send a beat every ``interval_s`` (beats at ``k * interval_s``
    for ``k >= 1``); an observer checks each beat ``timeout_s`` after its
    deadline and declares a watched host dead after
    ``suspicion_threshold`` *consecutive* misses.
    """

    def __init__(
        self,
        interval_s: float = 1.0,
        timeout_s: float = 0.5,
        suspicion_threshold: int = 2,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if timeout_s <= 0:
            raise ValueError("timeout_s must be > 0")
        if suspicion_threshold < 1:
            raise ValueError("suspicion_threshold must be >= 1")
        self.interval_s = interval_s
        self.timeout_s = timeout_s
        self.suspicion_threshold = suspicion_threshold

    # --- closed form ----------------------------------------------------------

    def detection_latency(self, fault_time: float) -> float:
        """Flap-free detection latency for a host dying at ``fault_time``.

        The first beat missed is the one due at the smallest
        ``k * interval_s >= fault_time`` (a host dying exactly on a
        deadline never sends that beat); death is declared at the check
        of the ``suspicion_threshold``-th consecutive miss.  This is the
        value the chaos harness charges as MTTD, and
        :meth:`simulate` reproduces it event by event.
        """
        if fault_time < 0:
            raise ValueError("fault_time must be >= 0")
        first_missed = max(1, math.ceil(fault_time / self.interval_s))
        detect_time = (
            (first_missed + self.suspicion_threshold - 1) * self.interval_s
            + self.timeout_s
        )
        return detect_time - fault_time

    # --- discrete-event simulation -------------------------------------------

    def simulate(
        self,
        topology: ControlTopology,
        deaths: Mapping[int, float],
        *,
        plan: FaultPlan | None = None,
        horizon_s: float | None = None,
    ) -> list[Detection]:
        """Run the heartbeat protocol on the simulator; return detections.

        ``deaths`` maps host -> death time (hosts absent stay alive).  A
        beat from host ``h`` to observer ``o`` at time ``t`` is dropped
        when ``plan`` says the link between the hosts' first chips is
        down at ``t`` — so a :class:`~repro.resilience.faults.LinkFault`
        flap window raises suspicion without a real death, and only a
        ``suspicion_threshold`` > 1 keeps the job alive through it.

        A dead host with no observers (a single-client coordinator)
        produces **no** detection — that is the job-killing hole the
        topology's ``check_host_failure`` reports.

        Only the earliest declaration per host is returned, sorted by
        detection time.  Telemetry: ``controlplane_heartbeats_sent``,
        ``controlplane_heartbeats_missed``,
        ``controlplane_false_suspicions``, ``controlplane_detections``
        and the ``controlplane_detection_latency_seconds`` histogram.
        """
        group = topology.group
        if horizon_s is None:
            base = max(deaths.values(), default=0.0)
            horizon_s = (
                base
                + (self.suspicion_threshold + 2) * self.interval_s
                + self.timeout_s
            )
        sim = Simulator()
        sent: dict[int, set[int]] = {h: set() for h in group.host_ids()}
        detections: dict[int, Detection] = {}

        def emitter(host: int, death: float):
            k = 1
            while True:
                beat_time = k * self.interval_s
                if beat_time > horizon_s:
                    return
                yield sim.timeout(beat_time - sim.now)
                if sim.now >= death:
                    return
                sent[host].add(k)
                if _telemetry.enabled:
                    _telemetry.metrics.counter(
                        "controlplane_heartbeats_sent"
                    ).inc()
                k += 1

        def link_up(src_host: int, dst_host: int, t: float) -> bool:
            if plan is None:
                return True
            src = group.chips_of(src_host)[0]
            dst = group.chips_of(dst_host)[0]
            return plan.link_factor(src, dst, t) > 0.0

        def monitor(observer: int, watched: int, death: float):
            suspicion = 0
            k = 1
            while True:
                check_time = k * self.interval_s + self.timeout_s
                if check_time > horizon_s:
                    return
                yield sim.timeout(check_time - sim.now)
                beat_time = k * self.interval_s
                delivered = k in sent[watched] and link_up(
                    watched, observer, beat_time
                )
                if delivered:
                    if suspicion and _telemetry.enabled and sim.now < death:
                        _telemetry.metrics.counter(
                            "controlplane_false_suspicions"
                        ).inc(suspicion)
                    suspicion = 0
                else:
                    suspicion += 1
                    if _telemetry.enabled:
                        _telemetry.metrics.counter(
                            "controlplane_heartbeats_missed"
                        ).inc()
                    if suspicion >= self.suspicion_threshold:
                        declared = Detection(
                            host=watched,
                            fault_time=death,
                            detect_time=sim.now,
                            by=observer,
                            false_positive=sim.now < death,
                        )
                        prior = detections.get(watched)
                        if prior is None or declared.detect_time < prior.detect_time:
                            detections[watched] = declared
                        return
                k += 1

        for host in group.host_ids():
            death = deaths.get(host, math.inf)
            sim.process(emitter(host, death), name=f"beat[{host}]")
            for observer in topology.observers_of(host):
                observer_death = deaths.get(observer, math.inf)
                if observer_death <= 0:
                    continue  # a dead observer watches nothing
                sim.process(
                    monitor(observer, host, death),
                    name=f"watch[{observer}->{host}]",
                )
        sim.run()

        out = sorted(detections.values(), key=lambda d: (d.detect_time, d.host))
        if _telemetry.enabled:
            m = _telemetry.metrics
            for d in out:
                m.counter("controlplane_detections").inc()
                if not d.false_positive:
                    m.histogram(
                        "controlplane_detection_latency_seconds"
                    ).observe(d.latency)
        for d in out:
            _telemetry.flight_recorder.record(
                "heartbeat",
                "false_positive" if d.false_positive else "detection",
                host=d.host, by=d.by,
                fault_time=d.fault_time, detect_time=d.detect_time,
            )
        for d in out:
            logger.info(
                "host %d declared dead at t=%.3f by host %d (fault at %.3f, "
                "latency %.3f%s)",
                d.host, d.detect_time, d.by, d.fault_time,
                d.latency if not d.false_positive else float("nan"),
                ", FALSE POSITIVE" if d.false_positive else "",
            )
        return out

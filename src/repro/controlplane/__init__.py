"""Host-level control plane: groups, heartbeats, barriers, guards, policies.

The paper's Section 2 contrast — one TF coordinator driving every worker
versus per-host JAX clients — is a *control-plane* architecture choice,
and it decides how a Multipod job fails, not just how fast it starts.
This package models that layer on top of :mod:`repro.sim` and the
resilience substrates:

* :mod:`~repro.controlplane.group` — :class:`HostGroup` failure domains
  (the shared :func:`~repro.resilience.faults.host_map` rule) and the two
  topologies, :class:`SingleClientCoordinator` (heartbeats fan out from a
  single point of failure) and :class:`MultiClientGroup` (peer lease
  ring, any death observed by survivors);
* :mod:`~repro.controlplane.heartbeat` — :class:`HeartbeatDetector`
  (discrete-event heartbeat protocol + closed-form detection latency)
  and the :class:`OracleDetector` baseline;
* :mod:`~repro.controlplane.barrier` — :class:`Barrier` with timeout and
  straggler attribution, wired to straggler faults and input imbalance;
* :mod:`~repro.controlplane.checkpointing` — step/wall-clock/
  risk-adaptive checkpoint policies;
* :mod:`~repro.controlplane.guard` — :class:`ConsistencyGuard` hash
  desync checks and NaN/Inf tripwires for the silent-corruption class no
  collective raises on.

:func:`repro.resilience.chaos.run_chaos` consumes all of it: pass
``detector=HeartbeatDetector(...)`` to replace oracle detection with a
measured MTTD, ``guard=ConsistencyGuard(...)`` to catch injected
:class:`~repro.resilience.faults.BitFlipFault` SDC, and
``checkpoint_policy=`` to tune the rework/overhead trade-off.
"""

from __future__ import annotations

from repro.controlplane.barrier import (
    Barrier,
    BarrierResult,
    pipeline_arrivals,
    resolve_barrier,
    step_arrivals,
)
from repro.controlplane.checkpointing import (
    CheckpointPolicy,
    RiskAdaptive,
    StepInterval,
    WallClockInterval,
)
from repro.controlplane.group import (
    ControlTopology,
    HostGroup,
    JobKilledError,
    MultiClientGroup,
    SingleClientCoordinator,
)
from repro.controlplane.guard import (
    ConsistencyGuard,
    DesyncEvent,
    SilentCorruptionError,
    apply_bit_flips,
)
from repro.controlplane.heartbeat import (
    Detection,
    HeartbeatDetector,
    OracleDetector,
)

__all__ = [
    "Barrier",
    "BarrierResult",
    "CheckpointPolicy",
    "ConsistencyGuard",
    "ControlTopology",
    "DesyncEvent",
    "Detection",
    "HeartbeatDetector",
    "HostGroup",
    "JobKilledError",
    "MultiClientGroup",
    "OracleDetector",
    "RiskAdaptive",
    "SilentCorruptionError",
    "SingleClientCoordinator",
    "StepInterval",
    "WallClockInterval",
    "apply_bit_flips",
    "pipeline_arrivals",
    "resolve_barrier",
    "step_arrivals",
]

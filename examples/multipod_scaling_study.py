"""Scaling study: reproduce the Figures 5-8 sweeps and the 2-D all-reduce
ablation on slices from 16 to 4096 chips.

Shows the three phenomena the paper's evaluation is built on:

* throughput scales near-ideally while end-to-end speedup bends away
  (large batches need more epochs — 44 at 4K vs 88 at 64K for ResNet);
* per-step compute shrinks with scale while the ring all-reduce stays
  nearly constant, reaching 22% (ResNet) / 27% (BERT) of the step at
  4096 chips;
* the 2-D hierarchical summation beats a flat 4096-chip ring by an order
  of magnitude (latency steps: ~160 vs 4095).

Run:
    python examples/multipod_scaling_study.py
"""

from repro.comm.allreduce import flat_ring_allreduce, two_phase_allreduce
from repro.experiments.scaling import sweep
from repro.hardware.topology import multipod


def scaling_tables() -> None:
    for benchmark, anchor in (("resnet50", 0.22), ("bert", 0.273)):
        s = sweep(benchmark, "tf")
        e2e = s.end_to_end_speedup(16)
        thr = s.throughput_speedup(16)
        breakdown = s.step_breakdown_ms()
        bpc = s.batch_per_chip()
        print(f"=== {benchmark}: speedup and step breakdown vs chips ===")
        print(f"{'chips':>6s} {'batch/chip':>10s} {'compute ms':>11s} "
              f"{'allreduce ms':>12s} {'e2e x':>7s} {'thr x':>7s} {'ideal':>6s}")
        for c in s.chips:
            comp, ar = breakdown[c]
            print(f"{c:6d} {bpc[c]:10.0f} {comp:11.3f} {ar:12.3f} "
                  f"{e2e[c]:7.2f} {thr[c]:7.2f} {c // 16:6d}")
        frac = s.allreduce_fraction(4096)
        print(f"allreduce fraction at 4096 chips: {frac:.1%} "
              f"(paper: {anchor:.1%})\n")


def allreduce_ablation() -> None:
    mesh = multipod(4)
    print("=== gradient summation on 4096 chips: flat ring vs 2-D ===")
    for label, payload in (("ResNet-50 fp32", 25.6e6 * 4),
                           ("BERT bf16", 334e6 * 2)):
        flat = flat_ring_allreduce(mesh, payload).total * 1e3
        hier = two_phase_allreduce(mesh, payload).total * 1e3
        print(f"{label:16s} flat {flat:8.3f} ms   2-D {hier:7.3f} ms   "
              f"({flat / hier:.1f}x)")


if __name__ == "__main__":
    scaling_tables()
    allreduce_ablation()

"""Quickstart: model an MLPerf run on the TPU-v3 multipod.

Builds the 4096-chip multipod topology, lets the planner choose the
parallelization for each benchmark (data parallelism for BERT/ResNet,
model parallelism for Transformer — Section 6 of the paper), and prints
the modeled step breakdown and end-to-end time next to the paper's
Table 1 values.  Then actually *trains* a toy model through the unified
``make_trainer`` API, with backprop-overlapped bucketed gradient
collectives.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro.core import TrainerConfig, make_trainer
from repro.core.planner import plan_parallelism
from repro.experiments.calibration import end_to_end_model, spec_for
from repro.experiments.table1 import PAPER_TF_MINUTES, TABLE1_ROWS
from repro.hardware.topology import multipod
from repro.models.mlp import MLP, synthetic_classification
from repro.optim import LAMB


def train_demo() -> None:
    """Train for real: one TrainerConfig, any strategy."""
    rng = np.random.default_rng(0)
    x, y = synthetic_classification(rng, 64, 16, 4, noise=0.1)
    config = TrainerConfig(
        model=MLP([16, 32, 4]),
        optimizer=LAMB(0.02),
        strategy="wus",            # weight-update sharding (Section 3.2)
        mesh_shape=(8, 1),         # 8 data-parallel replicas
        num_buckets=4,             # bucketed gradient collectives ...
        overlap=True,              # ... modeled as overlapped with backprop
        seed=7,                    # seed -> make_trainer returns it initialized
    )
    trainer = make_trainer(config)
    for _ in range(5):
        result = trainer.step(x, y)
    print(f"\nfunctional train demo ({config.strategy}, "
          f"{config.num_replicas} replicas, {config.num_buckets} buckets): "
          f"final loss {float(result):.4f}")
    overlap = trainer.last_overlap
    if overlap is not None:
        print(f"overlap model: {overlap.overlap_efficiency:.1%} of collective "
              f"time hidden behind backprop")


def main() -> None:
    mesh = multipod(4)
    print(f"Machine: {mesh} — {mesh.num_chips} chips, {mesh.num_cores} cores, "
          f"{mesh.num_hosts} hosts")
    print(f"Bisection bandwidth: {mesh.bisection_bandwidth() / 1e12:.2f} TB/s\n")

    header = (f"{'benchmark':12s} {'chips':>5s} {'batch':>6s} {'mp':>3s} "
              f"{'step ms':>8s} {'allreduce':>9s} {'e2e min':>8s} {'paper':>6s}")
    print(header)
    print("-" * len(header))
    for name, chips, _ in TABLE1_ROWS:
        spec = spec_for(name)
        plan = plan_parallelism(spec, chips)
        result = end_to_end_model(name, "tf").run(plan.config)
        step = result.step
        print(
            f"{name:12s} {chips:5d} {plan.config.global_batch:6d} "
            f"{plan.config.mp_cores:3d} {step.total * 1e3:8.2f} "
            f"{step.allreduce_fraction:8.1%} "
            f"{result.total_minutes:8.3f} "
            f"{PAPER_TF_MINUTES[(name, chips)]:6.3f}"
        )
        print(f"{'':12s} plan: {plan.rationale}")
    train_demo()
    print("\nRegenerate every table/figure with: python -m repro.experiments all")


if __name__ == "__main__":
    main()

"""Quickstart: model an MLPerf run on the TPU-v3 multipod.

Builds the 4096-chip multipod topology, lets the planner choose the
parallelization for each benchmark (data parallelism for BERT/ResNet,
model parallelism for Transformer — Section 6 of the paper), and prints
the modeled step breakdown and end-to-end time next to the paper's
Table 1 values.

Run:
    python examples/quickstart.py
"""

from repro.core.planner import plan_parallelism
from repro.experiments.calibration import end_to_end_model, spec_for
from repro.experiments.table1 import PAPER_TF_MINUTES, TABLE1_ROWS
from repro.hardware.topology import multipod


def main() -> None:
    mesh = multipod(4)
    print(f"Machine: {mesh} — {mesh.num_chips} chips, {mesh.num_cores} cores, "
          f"{mesh.num_hosts} hosts")
    print(f"Bisection bandwidth: {mesh.bisection_bandwidth() / 1e12:.2f} TB/s\n")

    header = (f"{'benchmark':12s} {'chips':>5s} {'batch':>6s} {'mp':>3s} "
              f"{'step ms':>8s} {'allreduce':>9s} {'e2e min':>8s} {'paper':>6s}")
    print(header)
    print("-" * len(header))
    for name, chips, _ in TABLE1_ROWS:
        spec = spec_for(name)
        plan = plan_parallelism(spec, chips)
        result = end_to_end_model(name, "tf").run(plan.config)
        step = result.step
        print(
            f"{name:12s} {chips:5d} {plan.config.global_batch:6d} "
            f"{plan.config.mp_cores:3d} {step.total * 1e3:8.2f} "
            f"{step.allreduce_fraction:8.1%} "
            f"{result.total_minutes:8.3f} "
            f"{PAPER_TF_MINUTES[(name, chips)]:6.3f}"
        )
        print(f"{'':12s} plan: {plan.rationale}")
    print("\nRegenerate every table/figure with: python -m repro.experiments all")


if __name__ == "__main__":
    main()

"""Model parallelism for the Transformer benchmark (Sections 3.1 / 4.3).

Two views of the same technique:

1. **Functional**: trains an MLP with feature-sharded weights (the
   Mesh-TensorFlow-style column/row sharding the paper applies to the
   Transformer's attention and feed-forward layers) on a hybrid
   data x model device grid, with real all-reduces inside model groups and
   peer gradient reductions across replicas (Figure 4) — and checks
   equivalence with single-device training.
2. **Compiler view**: partitions the Transformer-block IR graph with the
   SPMD partitioner, prints the inserted communication, and reports the
   Figure 9 speedup curve (paper anchor: ~2.3x on 4 cores).

Run:
    python examples/transformer_model_parallel.py
"""

import functools

import numpy as np

from repro.core import TrainerConfig, make_trainer
from repro.models.mlp import MLP, synthetic_classification
from repro.optim import SGDMomentum
from repro.spmd import ShardingSpec, make_partitioner
from repro.spmd.estimator import model_parallel_speedup
from repro.spmd.modelgraphs import transformer_block_graph, transformer_seeds


def functional_demo() -> None:
    print("=== functional: hybrid data x model parallel training ===")
    rng = np.random.default_rng(0)
    model = MLP([16, 32, 16, 4])
    x, y = synthetic_classification(rng, 96, 16, 4)

    base = TrainerConfig(model=model, optimizer=SGDMomentum(0.1), seed=1)
    ref = make_trainer(base.with_(strategy="single"))
    hybrid = make_trainer(
        base.with_(strategy="hybrid", mesh_shape=(3, 1), mp_size=4)
    )

    for step in range(10):
        ref_loss = ref.step(x, y)
        hyb_loss = hybrid.step(x, y)
    diff = max(
        float(np.max(np.abs(hybrid.full_params()[k] - ref.params[k])))
        for k in ref.params
    )
    print(f"3 replicas x 4 model cores, 10 steps: loss {hyb_loss:.6f} "
          f"(single device {ref_loss:.6f})")
    print(f"max |param difference| vs single device: {diff:.3e}\n")


def compiler_demo() -> None:
    print("=== compiler view: SPMD partitioning of a Transformer block ===")
    graph = transformer_block_graph(seq=27)
    partitioner = make_partitioner("v07")
    plan = partitioner.partition(
        graph, ShardingSpec.from_seeds(4, dict(transformer_seeds(graph, 4)))
    )
    print("sharded tensors:")
    for name, node_id in graph.handles.items():
        print(f"  {name:12s} -> {plan.shardings[node_id].describe()}")
    print("inserted communication:")
    for op in plan.comm_ops:
        print(f"  {op.kind:11s} after {graph.node(op.node_id).name:12s} "
              f"{op.bytes_per_shard / 1e3:8.1f} KB/core")
    print(f"comm fraction of the partitioned step: {plan.cost.comm_fraction:.1%}\n")

    builder = functools.partial(transformer_block_graph, seq=27)
    speedups = model_parallel_speedup(builder, transformer_seeds, [1, 2, 4])
    print("Figure 9 series (paper: ~2.3x at 4 cores):")
    for cores, speedup in speedups.items():
        print(f"  {cores} cores: {speedup:.2f}x")


if __name__ == "__main__":
    functional_demo()
    compiler_demo()

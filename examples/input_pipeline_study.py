"""Host-side studies: input-pipeline imbalance, shuffle quality, DLRM
input optimizations, and the fast AUC metric (Sections 3.5 and 4.6).

Run:
    python examples/input_pipeline_study.py
"""

import time

import numpy as np

from repro.hardware.chip import HostSpec
from repro.input_pipeline.dlrm_input import DlrmInputConfig, dlrm_input_throughput
from repro.input_pipeline.imbalance import multipod_input_imbalance
from repro.input_pipeline.shuffle import simulate_shuffle_policy
from repro.metrics.auc import auc_sorted, synthetic_pctr


def imbalance_study() -> None:
    print("=== ResNet-50 input pipeline: compressed vs uncompressed ===")
    host = HostSpec(jpeg_decode_rate=50e6)
    compressed, uncompressed = multipod_input_imbalance(
        num_hosts=12, batch_per_host=128, device_step_seconds=0.0105,
        steps=25, host=host,
    )
    for rep in (compressed, uncompressed):
        print(f"{rep.label:16s} slowest-host slowdown {rep.max_slowdown:5.3f}  "
              f"mean {rep.mean_slowdown:5.3f}  stall {rep.stall_fraction:5.1%}")
    print("(the synchronous multipod runs at the slowest host's pace)\n")


def shuffle_study() -> None:
    print("=== BERT shuffle quality: policy x buffer size ===")
    for before in (True, False):
        for buffer_size in (64, 1024):
            rep = simulate_shuffle_policy(
                shuffle_before_repeat=before, buffer_size=buffer_size,
                num_runs=4, hosts_sampled=4, num_batches=24,
            )
            print(f"{rep.policy:22s} buffer {buffer_size:5d}: "
                  f"coverage {rep.coverage:5.3f}  "
                  f"run-to-run batch bias std {rep.batch_bias_std:.5f}")
    print()


def dlrm_study() -> None:
    print("=== DLRM host input pipeline ===")
    device_rate = 8192 / 1.4e-3
    for config in (
        DlrmInputConfig(False, False, False),
        DlrmInputConfig(True, False, False),
        DlrmInputConfig(True, True, False),
        DlrmInputConfig(True, True, True),
    ):
        rate = dlrm_input_throughput(config)
        verdict = "feeds device" if rate >= device_rate else "INPUT BOUND"
        print(f"{config.label:48s} {rate / 1e6:6.2f} M ex/s   {verdict}")
    print()


def auc_study() -> None:
    print("=== AUC metric: the paper's custom implementation (4.6) ===")
    rng = np.random.default_rng(0)
    scores, labels = synthetic_pctr(rng, 2_000_000)
    start = time.perf_counter()
    auc = auc_sorted(scores, labels)
    elapsed = time.perf_counter() - start
    print(f"sorted AUC over 2M samples: {auc:.4f} in {elapsed:.2f} s "
          f"(naive pairwise would take hours; see the ablation bench)")


if __name__ == "__main__":
    imbalance_study()
    shuffle_study()
    dlrm_study()
    auc_study()
